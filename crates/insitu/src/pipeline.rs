//! The in-situ pipeline (Sections 2.3 and 3, Figures 2 and 3): simulate →
//! reduce (bitmaps / sampling / nothing) → select time-steps → write the
//! selected summaries.
//!
//! Two core-allocation strategies are implemented exactly as described:
//!
//! * **Shared Cores** — every phase uses all the cores, phases alternate:
//!   simulate a step, pause the simulation, build its bitmaps, continue.
//! * **Separate Cores** — the cores are split into a simulation set and a
//!   bitmaps set; the simulation streams steps into a bounded **data queue**
//!   (a crossbeam channel whose capacity models the memory budget) and the
//!   bitmap cores drain it concurrently.
//!
//! Selection is the streaming greedy algorithm of Figure 3 with fixed-length
//! intervals: the pipeline buffers one interval of summaries, scores each
//! against the previously selected step when the interval completes, keeps
//! the most dissimilar one, writes it out, and frees the rest.
//!
//! ## Fault tolerance
//!
//! Because the bitmap store *replaces* the raw output, the pipeline must
//! not lose data silently. Every worker runs its per-step work under
//! `catch_unwind`; a contained panic is resolved by the configured
//! [`FailurePolicy`]: abort with a structured [`IbisError`], skip the step
//! (recorded as a [`StepOutcome`]), or rebuild the summary from the
//! Section 6 sampling baseline. Under Separate-Cores a dead consumer drops
//! the queue receiver so the blocked producer unblocks immediately (its
//! `send` fails) instead of deadlocking, and a dead producer's steps are
//! reported step-by-step rather than hanging the consumer. Storage writes
//! go through [`write_with_retry`] with exponential backoff and a
//! deadline. All fault handling is deterministic: the same
//! [`FaultPlan`](crate::fault::FaultPlan) produces the same failure report
//! (same error value, same step outcomes, same event log) on every run.
//!
//! [`run_durable`] / [`resume_durable`] additionally persist each selected
//! summary to a checksummed [`StoreWriter`] directory and checkpoint the
//! selector state after every step, so a killed run can resume and produce
//! a byte-identical store.

use crate::error::{panic_message, IbisError, Result, WorkerRole};
use crate::fault::{FaultInjector, FaultSite};
use crate::io::{codec, write_atomic, Storage};
use crate::machine::{
    decontend, modeled_seconds, timed_in_pool, MachineModel, PhaseClock, ScalingModel,
};
use crate::memory::MemoryTracker;
use crate::report::{InsituReport, PhaseTimes, StepOutcome};
use crate::retry::{write_with_retry, RetryPolicy};
use crate::store::StoreWriter;
use ibis_analysis::sampling::{sample, SamplingMethod};
use ibis_analysis::selection::fixed_intervals;
use ibis_analysis::{Metric, StepSummary, VarSummary};
use ibis_core::{
    build_index_parallel, build_index_parallel_permuted, Binner, RowOrder, RowPermutation,
};
use ibis_datagen::{Simulation, StepOutput};
use ibis_obs::{LazyCounter, LazyGauge, LazyHistogram};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

// Pipeline metrics (family `pipeline`, see DESIGN.md §6e). The
// shared/separate step counters calibrate the paper's Equations 1-2 core
// accounting; the queue gauge and stall counter make the Separate-Cores
// memory bound and backpressure observable. All no-ops without `obs`.
static OBS_RUNS: LazyCounter = LazyCounter::new("pipeline.runs");
static OBS_RUN_WALL_NS: LazyCounter = LazyCounter::new("pipeline.run.wall_ns");
static OBS_SHARED_STEPS: LazyCounter = LazyCounter::new("pipeline.shared.steps");
static OBS_SEPARATE_STEPS: LazyCounter = LazyCounter::new("pipeline.separate.steps");
static OBS_PRODUCE_NS: LazyHistogram =
    LazyHistogram::new("pipeline.step.produce_ns", ibis_obs::TIME_NS_BOUNDS);
static OBS_COMPRESS_NS: LazyHistogram =
    LazyHistogram::new("pipeline.step.compress_ns", ibis_obs::TIME_NS_BOUNDS);
static OBS_SELECT_NS: LazyCounter = LazyCounter::new("pipeline.select.ns");
static OBS_STORE_WRITES: LazyCounter = LazyCounter::new("pipeline.store.writes");
static OBS_STORE_MODELED_US: LazyCounter = LazyCounter::new("pipeline.store.modeled_us");
/// Steps successfully enqueued and not yet accounted by the consumer:
/// the queue contents plus at most the one message the consumer has just
/// popped but not yet decremented, so the watermark is bounded by
/// `queue_capacity + 1` (published as `pipeline.queue.bound`). Each
/// consumer receive is preceded, in consumer program order, by the
/// previous message's decrement, which is what makes the bound hold.
static OBS_QUEUE_IN_FLIGHT: LazyGauge = LazyGauge::new("pipeline.queue.in_flight");
static OBS_QUEUE_BOUND: LazyGauge = LazyGauge::new("pipeline.queue.bound");
static OBS_QUEUE_STALLS: LazyCounter = LazyCounter::new("pipeline.queue.stalls");
static OBS_QUEUE_STALL_NS: LazyCounter = LazyCounter::new("pipeline.queue.stall_ns");
/// Steps whose summaries were built under a non-identity row permutation
/// (family `reorder`, see DESIGN.md §6j).
static OBS_REORDER_STEPS: LazyCounter = LazyCounter::new("reorder.pipeline.steps");
/// Summaries transiently restored to original row order so that cross-step
/// metrics compare aligned rows (see [`restored_summary`]).
static OBS_REORDER_RESTORES: LazyCounter = LazyCounter::new("reorder.metric.restores");

/// What each time-step is reduced to before the raw data is discarded.
#[derive(Debug, Clone)]
pub enum Reduction {
    /// WAH bitmap indices (the paper's method) — raw data freed afterwards.
    Bitmaps,
    /// Keep the raw arrays (the *full data* baseline).
    FullData,
    /// Keep a sample of the elements (the Section 5.5 baseline).
    Sampling {
        /// Percentage of elements kept, in `(0, 100]`.
        percent: f64,
        /// Element-choice policy.
        method: SamplingMethod,
    },
}

/// How cores are divided between simulation and reduction (Section 2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreAllocation {
    /// All cores alternate between the phases.
    Shared,
    /// Dedicated sets running concurrently, joined by the data queue.
    Separate {
        /// Cores running the simulation.
        sim_cores: usize,
        /// Cores generating bitmaps.
        bitmap_cores: usize,
    },
}

/// What to do when a worker's per-step work panics.
#[derive(Debug, Clone, Default)]
pub enum FailurePolicy {
    /// Contain the panic and abort the run with a structured error.
    #[default]
    Abort,
    /// Drop the failed step, record it, and keep going.
    SkipStep,
    /// Rebuild the failed step's summary from the Section 6 sampling
    /// baseline (sample the raw data, then reduce the sample); if the
    /// fallback fails too the step is recorded as failed and dropped.
    /// Steps summarized this way are scored against the selection history
    /// by entropy difference (the paper's importance measure), since a
    /// sampled summary covers fewer elements than a full one.
    FallbackSampling {
        /// Percentage of elements kept by the fallback, in `(0, 100]`.
        percent: f64,
        /// Element-choice policy of the fallback.
        method: SamplingMethod,
    },
}

/// Fault-tolerance knobs of a run. `Default` is a clean, strict run:
/// abort on any contained panic, retry storage with the default schedule,
/// inject nothing.
#[derive(Debug, Clone, Default)]
pub struct RobustnessConfig {
    /// Panic-containment policy.
    pub policy: FailurePolicy,
    /// Retry schedule for storage writes.
    pub retry: RetryPolicy,
    /// Deterministic fault plan (empty = no injection).
    pub faults: crate::fault::FaultPlan,
}

/// Full configuration of a pipeline run.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Platform profile (core budget, core speed, disk bandwidth).
    pub machine: MachineModel,
    /// Cores used by this run (≤ `machine.total_cores`).
    pub cores: usize,
    /// Core-allocation strategy.
    pub allocation: CoreAllocation,
    /// Reduction method.
    pub reduction: Reduction,
    /// Time-steps to simulate.
    pub steps: usize,
    /// Time-steps to select (K of N).
    pub select_k: usize,
    /// Correlation metric for selection.
    pub metric: Metric,
    /// One binning scale per simulation output field, shared by every
    /// time-step (so cross-step metrics are well-defined). Ignored when
    /// `per_step_precision` is set.
    pub binners: Vec<Binner>,
    /// The paper's actual Heat3D configuration: bin each step to this many
    /// decimal digits over *that step's own value range*, anchored to a
    /// shared lattice (their runs used 64–206 bitvectors depending on the
    /// step's temperature range). Cross-step EMD uses the lattice-aligned
    /// variants; conditional entropy needs no alignment.
    pub per_step_precision: Option<i32>,
    /// Row layout bitmap summaries are built under: each step's rows are
    /// permuted by this order before the fused bin+compress pass, trading
    /// an O(n) gather for longer constant runs (smaller bitmaps). Queries
    /// stay in original row ids — the durable path persists each step's
    /// inverse permutation next to its indices and the query engine maps
    /// selections back transparently. [`RowOrder::Identity`] (the
    /// default) is the pre-reorder pipeline, byte-identical stores
    /// included.
    pub row_order: RowOrder,
    /// Data-queue capacity for Separate-Cores (steps buffered between the
    /// simulation and bitmap cores; bounds memory).
    pub queue_capacity: usize,
    /// Scalability curve of the simulation workload.
    pub sim_scaling: ScalingModel,
    /// Fault-tolerance configuration (policy, retry schedule, injection).
    pub robustness: RobustnessConfig,
}

impl PipelineConfig {
    fn validate(&self) -> Result<()> {
        if self.cores < 1 || self.cores > self.machine.total_cores {
            return Err(IbisError::Config(format!(
                "bad core count {} (machine has {})",
                self.cores, self.machine.total_cores
            )));
        }
        if self.steps < 1 {
            return Err(IbisError::Config("need at least one step".into()));
        }
        if self.select_k < 1 || self.select_k > self.steps {
            return Err(IbisError::Config(format!(
                "cannot select {} of {} steps",
                self.select_k, self.steps
            )));
        }
        if self.binners.is_empty() && self.per_step_precision.is_none() {
            return Err(IbisError::Config(
                "need binners or per-step precision".into(),
            ));
        }
        if let CoreAllocation::Separate {
            sim_cores,
            bitmap_cores,
        } = self.allocation
        {
            if sim_cores < 1 || bitmap_cores < 1 {
                return Err(IbisError::Config("both core sets must be non-empty".into()));
            }
            if sim_cores + bitmap_cores > self.cores {
                return Err(IbisError::Config(format!(
                    "separate sets exceed the core budget ({sim_cores}+{bitmap_cores} > {})",
                    self.cores
                )));
            }
            if self.queue_capacity < 1 {
                return Err(IbisError::Config("data queue needs capacity".into()));
            }
        }
        self.robustness.retry.validate()
    }
}

/// Builds the summary of one step under the configured reduction; returns
/// the summary plus the row permutation it was built under (`None` for
/// identity layouts and non-bitmap reductions).
///
/// Bitmap reductions go through [`build_index_parallel`], which runs the
/// fused bin+compress fast path per sub-block on per-thread reusable
/// builder scratch — both Shared and Separate allocations stop paying
/// per-step binning/builder allocations in steady state. Under a
/// non-identity [`RowOrder`] the same pass runs permuted
/// ([`build_index_parallel_permuted`]): *one* permutation per step,
/// computed from the first field, applied to every field, so
/// cross-variable correlation bitmaps stay row-aligned.
fn summarize(
    out: &StepOutput,
    reduction: &Reduction,
    binners: &[Binner],
    per_step_precision: Option<i32>,
    row_order: RowOrder,
    dims: &[usize],
) -> (StepSummary, Option<Arc<RowPermutation>>) {
    let fit = |f: &ibis_datagen::Field| match per_step_precision {
        Some(digits) => Binner::fit_precision_anchored(&f.data, digits),
        None => unreachable!("callers pass binners when precision is unset"),
    };
    if per_step_precision.is_none() {
        assert_eq!(
            out.fields.len(),
            binners.len(),
            "one binner per field required"
        );
    }
    let perm = match (reduction, out.fields.first()) {
        (Reduction::Bitmaps, Some(f0))
            // a shared per-step permutation needs every field on the
            // same grid
            if out.fields.iter().all(|f| f.data.len() == f0.data.len()) =>
        {
            let binner0 = match per_step_precision {
                Some(_) => fit(f0),
                None => binners[0].clone(),
            };
            row_order
                .permutation(dims, &binner0, &f0.data)
                .map(Arc::new)
        }
        _ => None,
    };
    if perm.is_some() {
        OBS_REORDER_STEPS.inc();
    }
    let vars = out
        .fields
        .iter()
        .enumerate()
        .map(|(i, f)| {
            let binner = match per_step_precision {
                Some(_) => fit(f),
                None => binners[i].clone(),
            };
            (f, binner)
        })
        .map(|(f, binner)| match reduction {
            Reduction::Bitmaps => VarSummary::Bitmap(match &perm {
                Some(p) => build_index_parallel_permuted(&f.data, binner, p),
                None => build_index_parallel(&f.data, binner),
            }),
            Reduction::FullData => VarSummary::full(f.data.clone(), binner),
            Reduction::Sampling { percent, method } => {
                VarSummary::full(sample(&f.data, *percent, *method), binner)
            }
        })
        .collect();
    (
        StepSummary {
            step: out.step,
            vars,
        },
        perm,
    )
}

/// The sampling-baseline fallback: sample each field, then reduce the
/// sample with the run's reduction *kind* so summary kinds stay
/// homogeneous (a bitmaps run gets a bitmap over the sample, a full-data
/// or sampling run gets the sampled array).
fn fallback_summarize(
    out: &StepOutput,
    reduction: &Reduction,
    percent: f64,
    method: SamplingMethod,
    binners: &[Binner],
    per_step_precision: Option<i32>,
) -> StepSummary {
    let vars = out
        .fields
        .iter()
        .enumerate()
        .map(|(i, f)| {
            let binner = match per_step_precision {
                Some(digits) => Binner::fit_precision_anchored(&f.data, digits),
                None => binners[i].clone(),
            };
            let sampled = sample(&f.data, percent, method);
            match reduction {
                Reduction::Bitmaps => VarSummary::Bitmap(build_index_parallel(&sampled, binner)),
                _ => VarSummary::full(sampled, binner),
            }
        })
        .collect();
    StepSummary {
        step: out.step,
        vars,
    }
}

/// Streaming greedy selection over fixed-length intervals (Figure 3): holds
/// the current interval's summaries, scores them against the previous
/// selection at interval end, emits the winner. Fault-aware: seeds on the
/// first *successful* step, tolerates skipped steps (an interval whose
/// steps all failed simply emits nothing), and scores degraded (fallback)
/// summaries by entropy difference instead of the full metric.
struct StreamingSelector {
    intervals: Vec<std::ops::Range<usize>>,
    cur: usize,
    /// The previously selected summary, whether it is degraded, and the
    /// row permutation it was built under (the durable path persists it
    /// next to the winner's indices).
    prev: Option<(StepSummary, bool, Option<Arc<RowPermutation>>)>,
    buffer: Vec<(usize, StepSummary, bool, Option<Arc<RowPermutation>>)>,
    selected: Vec<usize>,
    metric: Metric,
    /// Metric-evaluation time (measured).
    select_time: Duration,
}

/// A summary the selector decided to keep — must be written out.
struct Emitted {
    step: usize,
    summary_bytes: u64,
}

/// The summary re-expressed in original row order, for metric scoring.
///
/// Data-dependent orders give every step its *own* permutation, so two
/// reordered summaries share no common row space: the row-alignment-
/// sensitive metrics (conditional entropy's joint counts, spatial EMD's
/// per-bin XOR) would compare unrelated rows and steer the selection away
/// from the identity-order run's. Restoring both sides before scoring
/// keeps the selection byte-identical to an identity-order run. The
/// restore is transient — O(n) per variable, alive only while one
/// interval is scored — and the persisted form stays reordered.
fn restored_summary(s: &StepSummary, perm: &RowPermutation) -> StepSummary {
    OBS_REORDER_RESTORES.inc();
    StepSummary {
        step: s.step,
        vars: s
            .vars
            .iter()
            .map(|v| match v {
                VarSummary::Bitmap(idx) => VarSummary::Bitmap(idx.unpermute(perm)),
                // Full summaries are never built under a permutation (the
                // reorder pass is fused into the bitmap build).
                full @ VarSummary::Full { .. } => full.clone(),
            })
            .collect(),
    }
}

/// [`restored_summary`] as a borrow-when-identity view.
fn restored_view<'a>(
    s: &'a StepSummary,
    perm: Option<&RowPermutation>,
) -> std::borrow::Cow<'a, StepSummary> {
    match perm {
        Some(p) => std::borrow::Cow::Owned(restored_summary(s, p)),
        None => std::borrow::Cow::Borrowed(s),
    }
}

impl StreamingSelector {
    fn new(steps: usize, k: usize, metric: Metric) -> Self {
        let intervals = if k > 1 {
            fixed_intervals(steps, k - 1)
        } else {
            Vec::new()
        };
        StreamingSelector {
            intervals,
            cur: 0,
            prev: None,
            buffer: Vec::new(),
            selected: Vec::new(),
            metric,
            select_time: Duration::ZERO,
        }
    }

    /// The most recently selected summary (the durable path persists it
    /// right after an emission).
    fn prev_summary(&self) -> Option<&StepSummary> {
        self.prev.as_ref().map(|(s, _, _)| s)
    }

    /// The row permutation of the most recently selected summary, if it
    /// was built under one.
    fn prev_order(&self) -> Option<&Arc<RowPermutation>> {
        self.prev.as_ref().and_then(|(_, _, p)| p.as_ref())
    }

    /// Offers the next step's summary; returns a selection event if one was
    /// emitted, plus the bytes of summaries freed.
    fn offer(
        &mut self,
        idx: usize,
        summary: StepSummary,
        degraded: bool,
        perm: Option<Arc<RowPermutation>>,
        mem: &MemoryTracker,
    ) -> Option<Emitted> {
        if self.prev.is_none() {
            // The first successful step seeds the selection (step 0 on a
            // clean run).
            let bytes = summary.size_bytes() as u64;
            self.selected.push(idx);
            self.prev = Some((summary, degraded, perm));
            let _ = self.close_due(idx, mem); // buffer is empty: advances only
            return Some(Emitted {
                step: idx,
                summary_bytes: bytes,
            });
        }
        self.buffer.push((idx, summary, degraded, perm));
        self.close_due(idx, mem)
    }

    /// Records that step `idx` produced no summary (skipped/failed), still
    /// advancing interval bookkeeping so later intervals do not stall.
    fn note_skipped(&mut self, idx: usize, mem: &MemoryTracker) -> Option<Emitted> {
        self.close_due(idx, mem)
    }

    /// Closes every interval that ends at or before `idx + 1`, emitting
    /// that interval's winner (at most one interval has a non-empty
    /// buffer, so at most one emission results).
    fn close_due(&mut self, idx: usize, mem: &MemoryTracker) -> Option<Emitted> {
        let mut emitted = None;
        while self
            .intervals
            .get(self.cur)
            .is_some_and(|iv| idx + 1 >= iv.end)
        {
            self.cur += 1;
            if self.buffer.is_empty() {
                continue; // every step of the interval failed: emit nothing
            }
            let Some((prev, prev_degraded, prev_perm)) = self.prev.as_ref() else {
                // unreachable (buffer only fills after seeding) — but if it
                // ever happened, dropping the buffer beats panicking
                for (_, s, _, _) in self.buffer.drain(..) {
                    mem.free(s.size_bytes() as u64);
                }
                continue;
            };
            // Score the interval against the previous selection; keep the
            // max. Reordered summaries are restored to original row order
            // first, so cross-step metrics always compare aligned rows
            // (entropy is count-based and needs no restore).
            let t0 = PhaseClock::start();
            let prev_view = restored_view(prev, prev_perm.as_deref());
            let mut best = 0usize;
            let mut best_score = f64::NEG_INFINITY;
            for (pos, (_, s, degraded, perm)) in self.buffer.iter().enumerate() {
                let score = if *degraded || *prev_degraded {
                    (s.entropy() - prev.entropy()).abs()
                } else {
                    restored_view(s, perm.as_deref()).metric(&prev_view, self.metric)
                };
                if score > best_score {
                    best_score = score;
                    best = pos;
                }
            }
            self.select_time += t0.elapsed();
            let prev_bytes = prev.size_bytes() as u64;
            let mut winner = None;
            for (pos_i, entry) in self.buffer.drain(..).enumerate() {
                if pos_i == best {
                    winner = Some(entry);
                } else {
                    mem.free(entry.1.size_bytes() as u64);
                }
            }
            if let Some((widx, wsum, wdeg, wperm)) = winner {
                let bytes = wsum.size_bytes() as u64;
                self.selected.push(widx);
                // the previous selection is no longer needed in memory
                mem.free(prev_bytes);
                self.prev = Some((wsum, wdeg, wperm));
                emitted = Some(Emitted {
                    step: widx,
                    summary_bytes: bytes,
                });
            }
        }
        emitted
    }

    fn finish(self, mem: &MemoryTracker) -> (Vec<usize>, Duration) {
        for (_, s, _, _) in self.buffer {
            mem.free(s.size_bytes() as u64);
        }
        if let Some((p, _, _)) = self.prev {
            mem.free(p.size_bytes() as u64);
        }
        (self.selected, self.select_time)
    }
}

/// Runs the pipeline on a simulation, writing selected summaries to
/// `storage`. Returns the full report, or a structured error — a panic in
/// any worker, an exhausted storage retry, or an injected kill all surface
/// here instead of unwinding or deadlocking.
pub fn run_pipeline<S: Simulation>(
    sim: S,
    cfg: &PipelineConfig,
    storage: &dyn Storage,
) -> Result<InsituReport> {
    cfg.validate()?;
    OBS_RUNS.inc();
    let _run_span = OBS_RUN_WALL_NS.span();
    let injector = Arc::new(FaultInjector::new(cfg.robustness.faults.clone()));
    let mut report = match cfg.allocation {
        CoreAllocation::Shared => run_shared(sim, cfg, storage, &injector)?,
        CoreAllocation::Separate { .. } => run_separate(sim, cfg, storage, &injector)?,
    };
    report.fault_events = injector.events();
    Ok(report)
}

fn reduce_scaling(reduction: &Reduction) -> ScalingModel {
    match reduction {
        // sampling is a trivially parallel copy; bitmaps near-linear
        Reduction::Bitmaps | Reduction::Sampling { .. } => ScalingModel::bitmap_gen(),
        Reduction::FullData => ScalingModel::new(0.0),
    }
}

/// What a contained reduction attempt produced.
enum StepAttempt {
    /// A usable summary (possibly degraded via the sampling fallback),
    /// with the row permutation it was built under.
    Kept(StepSummary, Option<Arc<RowPermutation>>, bool, StepOutcome),
    /// The step is gone; the outcome says why.
    Dropped(StepOutcome),
}

/// Resolves the grid dims a spatial [`RowOrder`] needs, as a typed error
/// when the simulation has none (a mesh workload under `zorder`/`hilbert`
/// should fail loudly, not silently keep the identity layout).
fn resolve_dims<S: Simulation>(sim: &S, cfg: &PipelineConfig) -> Result<Vec<usize>> {
    if !cfg.row_order.is_spatial() {
        return Ok(Vec::new());
    }
    match sim.grid_dims() {
        Some(d) => Ok(d.to_vec()),
        None => Err(IbisError::Config(format!(
            "row order '{}' needs a structured grid, but {} reports no grid dims",
            cfg.row_order.name(),
            sim.name()
        ))),
    }
}

/// Runs `summarize` for one step under `catch_unwind`, resolving a panic
/// per the failure policy. The injected consumer panic (if scheduled for
/// this step) fires inside the protected region.
fn contained_summarize(
    out: &StepOutput,
    i: usize,
    cfg: &PipelineConfig,
    dims: &[usize],
    pool: &rayon::ThreadPool,
    injector: &FaultInjector,
    reduce_t: &mut Duration,
) -> Result<StepAttempt> {
    let t0 = Instant::now();
    let attempt = catch_unwind(AssertUnwindSafe(|| {
        pool.install(|| {
            injector.maybe_panic(FaultSite::Consumer, i);
            summarize(
                out,
                &cfg.reduction,
                &cfg.binners,
                cfg.per_step_precision,
                cfg.row_order,
                dims,
            )
        })
    }));
    let spent = t0.elapsed();
    *reduce_t += spent;
    OBS_COMPRESS_NS.record(spent.as_nanos() as u64);
    let payload = match attempt {
        Ok((summary, perm)) => {
            return Ok(StepAttempt::Kept(
                summary,
                perm,
                false,
                StepOutcome::Completed,
            ))
        }
        Err(payload) => payload,
    };
    let msg = panic_message(payload.as_ref());
    match &cfg.robustness.policy {
        FailurePolicy::Abort => Err(IbisError::WorkerPanic {
            role: WorkerRole::Consumer,
            step: Some(i),
            message: msg,
        }),
        FailurePolicy::SkipStep => Ok(StepAttempt::Dropped(StepOutcome::Skipped {
            reason: format!("summarize panicked: {msg}"),
        })),
        FailurePolicy::FallbackSampling { percent, method } => {
            let (percent, method) = (*percent, *method);
            let t0 = Instant::now();
            let fb = catch_unwind(AssertUnwindSafe(|| {
                pool.install(|| {
                    fallback_summarize(
                        out,
                        &cfg.reduction,
                        percent,
                        method,
                        &cfg.binners,
                        cfg.per_step_precision,
                    )
                })
            }));
            *reduce_t += t0.elapsed();
            match fb {
                // Fallback summaries cover a sampled subset, so the
                // step's permutation doesn't apply: stored identity.
                Ok(summary) => Ok(StepAttempt::Kept(
                    summary,
                    None,
                    true,
                    StepOutcome::FallbackSampled {
                        reason: format!("summarize panicked: {msg}"),
                    },
                )),
                Err(payload2) => Ok(StepAttempt::Dropped(StepOutcome::Failed {
                    error: format!(
                        "summarize panicked ({msg}); sampling fallback also panicked ({})",
                        panic_message(payload2.as_ref())
                    ),
                })),
            }
        }
    }
}

/// Advances the simulation one step under `catch_unwind`. `Ok(Err(msg))`
/// means the step panicked but the policy says keep running.
fn contained_sim_step<S: Simulation>(
    sim: &mut S,
    i: usize,
    pool: &rayon::ThreadPool,
    injector: &FaultInjector,
    policy: &FailurePolicy,
    sim_t: &mut Duration,
) -> Result<std::result::Result<StepOutput, String>> {
    let t0 = Instant::now();
    let attempt = catch_unwind(AssertUnwindSafe(|| {
        pool.install(|| {
            injector.maybe_panic(FaultSite::Producer, i);
            sim.step()
        })
    }));
    let spent = t0.elapsed();
    *sim_t += spent;
    OBS_PRODUCE_NS.record(spent.as_nanos() as u64);
    match attempt {
        Ok(out) => Ok(Ok(out)),
        Err(payload) => {
            let msg = panic_message(payload.as_ref());
            match policy {
                FailurePolicy::Abort => Err(IbisError::WorkerPanic {
                    role: WorkerRole::Producer,
                    step: Some(i),
                    message: msg,
                }),
                // no data to fall back on: both lenient policies skip
                _ => Ok(Err(msg)),
            }
        }
    }
}

/// Ships one emitted summary through the retrying write path.
fn persist_emitted(
    e: &Emitted,
    storage: &dyn Storage,
    injector: &FaultInjector,
    retry: &RetryPolicy,
    output_modeled: &mut f64,
    bytes_written: &mut u64,
) -> Result<()> {
    let receipt = write_with_retry(storage, injector, retry, *output_modeled, e.summary_bytes)?;
    OBS_STORE_WRITES.inc();
    OBS_STORE_MODELED_US.add((receipt.seconds * 1e6) as u64);
    *output_modeled += receipt.seconds;
    *bytes_written += e.summary_bytes;
    Ok(())
}

fn run_shared<S: Simulation>(
    mut sim: S,
    cfg: &PipelineConfig,
    storage: &dyn Storage,
    injector: &FaultInjector,
) -> Result<InsituReport> {
    let wall0 = Instant::now();
    let dims = resolve_dims(&sim, cfg)?;
    let pool = cfg.machine.pool(cfg.cores);
    let threads = pool.current_num_threads();
    let mem = MemoryTracker::new();
    let sim_resident = sim.resident_bytes() as u64;
    mem.alloc(sim_resident);
    let mut selector = StreamingSelector::new(cfg.steps, cfg.select_k, cfg.metric);
    let mut outcomes: Vec<StepOutcome> = Vec::with_capacity(cfg.steps);
    let mut sim_t = Duration::ZERO;
    let mut reduce_t = Duration::ZERO;
    let mut output_modeled = 0.0f64;
    let mut bytes_written = 0u64;
    let mut summary_bytes_total = 0u64;
    let mut raw_bytes_per_step = 0u64;
    let retry = &cfg.robustness.retry;

    for i in 0..cfg.steps {
        OBS_SHARED_STEPS.inc();
        if injector.should_kill_at(i) {
            return Err(IbisError::Killed { step: i });
        }
        let out = match contained_sim_step(
            &mut sim,
            i,
            &pool,
            injector,
            &cfg.robustness.policy,
            &mut sim_t,
        )? {
            Ok(out) => out,
            Err(msg) => {
                outcomes.push(StepOutcome::Skipped {
                    reason: format!("producer panicked: {msg}"),
                });
                if let Some(e) = selector.note_skipped(i, &mem) {
                    persist_emitted(
                        &e,
                        storage,
                        injector,
                        retry,
                        &mut output_modeled,
                        &mut bytes_written,
                    )?;
                }
                continue;
            }
        };
        let raw = out.size_bytes() as u64;
        raw_bytes_per_step = raw;
        mem.alloc(raw);

        match contained_summarize(&out, i, cfg, &dims, &pool, injector, &mut reduce_t)? {
            StepAttempt::Kept(summary, perm, degraded, outcome) => {
                let sbytes = summary.size_bytes() as u64;
                summary_bytes_total += sbytes;
                mem.alloc(sbytes);
                drop(out);
                mem.free(raw); // raw data discarded once the summary exists
                outcomes.push(outcome);
                if let Some(e) = selector.offer(i, summary, degraded, perm, &mem) {
                    persist_emitted(
                        &e,
                        storage,
                        injector,
                        retry,
                        &mut output_modeled,
                        &mut bytes_written,
                    )?;
                }
            }
            StepAttempt::Dropped(outcome) => {
                drop(out);
                mem.free(raw);
                outcomes.push(outcome);
                if let Some(e) = selector.note_skipped(i, &mem) {
                    persist_emitted(
                        &e,
                        storage,
                        injector,
                        retry,
                        &mut output_modeled,
                        &mut bytes_written,
                    )?;
                }
            }
        }
    }
    let (selected, select_t) = selector.finish(&mem);
    OBS_SELECT_NS.add(select_t.as_nanos() as u64);
    mem.free(sim_resident);

    let speed = cfg.machine.core_speed;
    let phases = PhaseTimes {
        simulate: modeled_seconds(sim_t, threads, cfg.cores, &cfg.sim_scaling, speed),
        reduce: modeled_seconds(
            reduce_t,
            threads,
            cfg.cores,
            &reduce_scaling(&cfg.reduction),
            speed,
        ),
        select: modeled_seconds(
            select_t,
            threads,
            cfg.cores,
            &ScalingModel::selection(),
            speed,
        ),
        output: output_modeled,
    };
    Ok(InsituReport {
        total_modeled: phases.sum(),
        phases,
        wall_seconds: wall0.elapsed().as_secs_f64(),
        selected,
        peak_memory_bytes: mem.peak(),
        bytes_written,
        raw_bytes_per_step,
        summary_bytes_total,
        steps: cfg.steps,
        step_outcomes: outcomes,
        fault_events: Vec::new(), // filled by run_pipeline
    })
}

/// One unit of the Separate-Cores data queue: a step's output, or proof
/// that the producer failed at that step (so the consumer can account for
/// it instead of waiting forever).
struct StepMsg {
    step: usize,
    payload: std::result::Result<StepOutput, String>,
}

fn run_separate<S: Simulation>(
    mut sim: S,
    cfg: &PipelineConfig,
    storage: &dyn Storage,
    injector: &Arc<FaultInjector>,
) -> Result<InsituReport> {
    let CoreAllocation::Separate {
        sim_cores,
        bitmap_cores,
    } = cfg.allocation
    else {
        unreachable!("dispatched on allocation");
    };
    let wall0 = Instant::now();
    let dims = resolve_dims(&sim, cfg)?;
    let mem = MemoryTracker::new();
    let sim_resident = sim.resident_bytes() as u64;
    mem.alloc(sim_resident);
    let (tx, rx) = crossbeam::channel::bounded::<StepMsg>(cfg.queue_capacity);
    // The in-flight watermark can reach capacity + 1: `queue_capacity`
    // buffered messages plus the one a blocked producer holds in hand-off.
    OBS_QUEUE_BOUND.set(cfg.queue_capacity as i64 + 1);
    let sim_pool = cfg.machine.pool(sim_cores);
    let bm_pool = cfg.machine.pool(bitmap_cores);
    let sim_threads = sim_pool.current_num_threads();
    let bm_threads = bm_pool.current_num_threads();
    let steps = cfg.steps;
    let abort_on_panic = matches!(cfg.robustness.policy, FailurePolicy::Abort);
    let retry = &cfg.robustness.retry;

    let mut selector = StreamingSelector::new(cfg.steps, cfg.select_k, cfg.metric);
    let mut outcomes: Vec<StepOutcome> = Vec::with_capacity(cfg.steps);
    let mut reduce_t = Duration::ZERO;
    let mut output_modeled = 0.0f64;
    let mut bytes_written = 0u64;
    let mut summary_bytes_total = 0u64;
    let mut raw_bytes_per_step = 0u64;

    let sim_t = std::thread::scope(|scope| -> Result<Duration> {
        let mem_ref = &mem;
        let producer_inj = Arc::clone(injector);
        // Producer: the simulation core set, feeding the bounded data
        // queue. Every per-step panic is contained here; under Abort the
        // producer reports the step and stops, otherwise it reports and
        // keeps simulating. A failed send means the consumer is gone —
        // exit instead of blocking on a dead queue.
        let producer = scope.spawn(move || {
            // Hand-off with backpressure accounting: the in-flight gauge
            // charges the gauge once a message is actually enqueued (the
            // consumer side decrements), and a full queue routes through a
            // timed blocking send so stall time lands on the stall
            // counter. Observational only — try-then-block has the same
            // delivery semantics as a plain blocking send, so the no-op
            // build behaves identically.
            use crossbeam::channel::{SendError, TrySendError};
            let send_counted = |msg: StepMsg| -> std::result::Result<(), SendError<StepMsg>> {
                let msg = match tx.try_send(msg) {
                    Ok(()) => {
                        OBS_QUEUE_IN_FLIGHT.inc();
                        return Ok(());
                    }
                    Err(TrySendError::Disconnected(m)) => return Err(SendError(m)),
                    Err(TrySendError::Full(m)) => m,
                };
                OBS_QUEUE_STALLS.inc();
                let t0 = ibis_obs::ENABLED.then(Instant::now);
                let sent = tx.send(msg);
                if let Some(t0) = t0 {
                    OBS_QUEUE_STALL_NS.add(t0.elapsed().as_nanos() as u64);
                }
                if sent.is_ok() {
                    OBS_QUEUE_IN_FLIGHT.inc();
                }
                sent
            };
            let mut sim_t = Duration::ZERO;
            for i in 0..steps {
                let attempt = catch_unwind(AssertUnwindSafe(|| {
                    timed_in_pool(&sim_pool, || {
                        producer_inj.maybe_panic(FaultSite::Producer, i);
                        sim.step()
                    })
                }));
                match attempt {
                    Ok((out, d)) => {
                        sim_t += d;
                        OBS_PRODUCE_NS.record(d.as_nanos() as u64);
                        let raw = out.size_bytes() as u64;
                        mem_ref.alloc(raw);
                        // blocks when the queue is full — the paper's
                        // memory bound; errs when the consumer died
                        if let Err(e) = send_counted(StepMsg {
                            step: i,
                            payload: Ok(out),
                        }) {
                            if let Ok(out) = e.0.payload {
                                mem_ref.free(out.size_bytes() as u64);
                            }
                            break;
                        }
                    }
                    Err(payload) => {
                        let msg = panic_message(payload.as_ref());
                        let stop = abort_on_panic;
                        if send_counted(StepMsg {
                            step: i,
                            payload: Err(msg),
                        })
                        .is_err()
                            || stop
                        {
                            break;
                        }
                    }
                }
            }
            sim_t
        });

        // Consumer: the bitmap core set, draining the queue head. A fatal
        // condition breaks the loop; dropping `rx` afterwards poisons the
        // queue so the producer's next send fails and it exits promptly —
        // the structured error below replaces the old deadlock.
        let mut fatal: Option<IbisError> = None;
        for msg in rx.iter() {
            OBS_QUEUE_IN_FLIGHT.dec();
            OBS_SEPARATE_STEPS.inc();
            let i = msg.step;
            if injector.should_kill_at(i) {
                fatal = Some(IbisError::Killed { step: i });
                break;
            }
            let out = match msg.payload {
                Ok(out) => out,
                Err(msg) => {
                    if abort_on_panic {
                        fatal = Some(IbisError::WorkerPanic {
                            role: WorkerRole::Producer,
                            step: Some(i),
                            message: msg,
                        });
                        break;
                    }
                    outcomes.push(StepOutcome::Skipped {
                        reason: format!("producer panicked: {msg}"),
                    });
                    if let Some(e) = selector.note_skipped(i, &mem) {
                        if let Err(err) = persist_emitted(
                            &e,
                            storage,
                            injector,
                            retry,
                            &mut output_modeled,
                            &mut bytes_written,
                        ) {
                            fatal = Some(err);
                            break;
                        }
                    }
                    continue;
                }
            };
            let raw = out.size_bytes() as u64;
            raw_bytes_per_step = raw;
            let attempt = catch_unwind(AssertUnwindSafe(|| {
                timed_in_pool(&bm_pool, || {
                    injector.maybe_panic(FaultSite::Consumer, i);
                    summarize(
                        &out,
                        &cfg.reduction,
                        &cfg.binners,
                        cfg.per_step_precision,
                        cfg.row_order,
                        &dims,
                    )
                })
            }));
            let kept = match attempt {
                Ok(((summary, perm), d)) => {
                    reduce_t += d;
                    OBS_COMPRESS_NS.record(d.as_nanos() as u64);
                    Some((summary, perm, false, StepOutcome::Completed))
                }
                Err(payload) => {
                    let msg = panic_message(payload.as_ref());
                    match &cfg.robustness.policy {
                        FailurePolicy::Abort => {
                            mem.free(raw);
                            fatal = Some(IbisError::WorkerPanic {
                                role: WorkerRole::Consumer,
                                step: Some(i),
                                message: msg,
                            });
                            break;
                        }
                        FailurePolicy::SkipStep => None.or({
                            outcomes.push(StepOutcome::Skipped {
                                reason: format!("summarize panicked: {msg}"),
                            });
                            None
                        }),
                        FailurePolicy::FallbackSampling { percent, method } => {
                            let (percent, method) = (*percent, *method);
                            let fb = catch_unwind(AssertUnwindSafe(|| {
                                timed_in_pool(&bm_pool, || {
                                    fallback_summarize(
                                        &out,
                                        &cfg.reduction,
                                        percent,
                                        method,
                                        &cfg.binners,
                                        cfg.per_step_precision,
                                    )
                                })
                            }));
                            match fb {
                                Ok((summary, d)) => {
                                    reduce_t += d;
                                    OBS_COMPRESS_NS.record(d.as_nanos() as u64);
                                    Some((
                                        summary,
                                        None,
                                        true,
                                        StepOutcome::FallbackSampled {
                                            reason: format!("summarize panicked: {msg}"),
                                        },
                                    ))
                                }
                                Err(payload2) => {
                                    outcomes.push(StepOutcome::Failed {
                                        error: format!(
                                            "summarize panicked ({msg}); sampling fallback also panicked ({})",
                                            panic_message(payload2.as_ref())
                                        ),
                                    });
                                    None
                                }
                            }
                        }
                    }
                }
            };
            let emitted = match kept {
                Some((summary, perm, degraded, outcome)) => {
                    let sbytes = summary.size_bytes() as u64;
                    summary_bytes_total += sbytes;
                    mem.alloc(sbytes);
                    drop(out);
                    mem.free(raw);
                    outcomes.push(outcome);
                    selector.offer(i, summary, degraded, perm, &mem)
                }
                None => {
                    drop(out);
                    mem.free(raw);
                    selector.note_skipped(i, &mem)
                }
            };
            if let Some(e) = emitted {
                if let Err(err) = persist_emitted(
                    &e,
                    storage,
                    injector,
                    retry,
                    &mut output_modeled,
                    &mut bytes_written,
                ) {
                    fatal = Some(err);
                    break;
                }
            }
        }
        drop(rx); // unblock a producer stuck on a full queue
        let sim_t = match producer.join() {
            Ok(d) => d,
            Err(payload) => {
                // a panic that escaped the per-step containment
                let err = IbisError::WorkerPanic {
                    role: WorkerRole::Producer,
                    step: None,
                    message: panic_message(payload.as_ref()),
                };
                return Err(fatal.unwrap_or(err));
            }
        };
        match fatal {
            Some(err) => Err(err),
            None => Ok(sim_t),
        }
    })?;
    let (selected, select_t) = selector.finish(&mem);
    OBS_SELECT_NS.add(select_t.as_nanos() as u64);
    mem.free(sim_resident);

    // One-thread pools were measured in thread CPU time (exact under
    // oversubscription); wider pools used wall clock and need the
    // host-contention correction.
    let active = sim_threads + bm_threads;
    let sim_t = if sim_threads == 1 {
        sim_t
    } else {
        decontend(sim_t, active)
    };
    let reduce_t = if bm_threads == 1 {
        reduce_t
    } else {
        decontend(reduce_t, active)
    };
    let select_t = if bm_threads == 1 {
        select_t
    } else {
        decontend(select_t, active)
    };
    let speed = cfg.machine.core_speed;
    let phases = PhaseTimes {
        simulate: modeled_seconds(sim_t, sim_threads, sim_cores, &cfg.sim_scaling, speed),
        reduce: modeled_seconds(
            reduce_t,
            bm_threads,
            bitmap_cores,
            &reduce_scaling(&cfg.reduction),
            speed,
        ),
        select: modeled_seconds(
            select_t,
            bm_threads,
            bitmap_cores,
            &ScalingModel::selection(),
            speed,
        ),
        output: output_modeled,
    };
    // Simulation and reduction overlap; selection rides the bitmap cores.
    let total_modeled = phases.simulate.max(phases.reduce + phases.select) + phases.output;
    Ok(InsituReport {
        phases,
        total_modeled,
        wall_seconds: wall0.elapsed().as_secs_f64(),
        selected,
        peak_memory_bytes: mem.peak(),
        bytes_written,
        raw_bytes_per_step,
        summary_bytes_total,
        steps: cfg.steps,
        step_outcomes: outcomes,
        fault_events: Vec::new(), // filled by run_pipeline
    })
}

// ---------------------------------------------------------------------------
// Durable runs: checkpointed, resumable, persisted to a checksummed store
// ---------------------------------------------------------------------------

/// Magic prefix of a CHECKPOINT file.
const CHECKPOINT_MAGIC: &[u8; 4] = b"IBCK";
/// Checkpoint format version. v2 appends each embedded summary's row
/// permutation (data-dependent orders cannot recompute it after resume —
/// the raw step data is gone — and a buffered step may still win its
/// interval and need its permutation persisted).
const CHECKPOINT_VERSION: u32 = 2;

/// Everything needed to pick a durable run back up after a crash.
#[derive(Default)]
struct CheckpointState {
    next_step: usize,
    selected: Vec<usize>,
    cur_interval: usize,
    prev: Option<(StepSummary, bool, Option<Arc<RowPermutation>>)>,
    buffer: Vec<(usize, StepSummary, bool, Option<Arc<RowPermutation>>)>,
    outcomes: Vec<StepOutcome>,
    output_modeled: f64,
    bytes_written: u64,
    summary_bytes_total: u64,
    raw_bytes_per_step: u64,
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u64(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

fn put_summary(
    buf: &mut Vec<u8>,
    summary: &StepSummary,
    degraded: bool,
    perm: Option<&RowPermutation>,
) -> Result<()> {
    put_u64(buf, summary.step as u64);
    buf.push(degraded as u8);
    put_u64(buf, summary.vars.len() as u64);
    for var in &summary.vars {
        let VarSummary::Bitmap(idx) = var else {
            return Err(IbisError::Config(
                "durable runs persist bitmap summaries only".into(),
            ));
        };
        let blob = codec::encode_index(idx);
        put_u64(buf, blob.len() as u64);
        buf.extend_from_slice(&blob);
    }
    match perm {
        Some(p) => {
            buf.push(1);
            let payload = crate::store::encode_perm_payload(p.inv());
            put_u64(buf, payload.len() as u64);
            buf.extend_from_slice(&payload);
        }
        None => buf.push(0),
    }
    Ok(())
}

fn encode_checkpoint(state: &CheckpointState) -> Result<Vec<u8>> {
    let mut buf = Vec::new();
    buf.extend_from_slice(CHECKPOINT_MAGIC);
    buf.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
    put_u64(&mut buf, state.next_step as u64);
    put_u64(&mut buf, state.selected.len() as u64);
    for &s in &state.selected {
        put_u64(&mut buf, s as u64);
    }
    put_u64(&mut buf, state.cur_interval as u64);
    match &state.prev {
        Some((summary, degraded, perm)) => {
            buf.push(1);
            put_summary(&mut buf, summary, *degraded, perm.as_deref())?;
        }
        None => buf.push(0),
    }
    put_u64(&mut buf, state.buffer.len() as u64);
    for (idx, summary, degraded, perm) in &state.buffer {
        put_u64(&mut buf, *idx as u64);
        put_summary(&mut buf, summary, *degraded, perm.as_deref())?;
    }
    put_u64(&mut buf, state.outcomes.len() as u64);
    for outcome in &state.outcomes {
        let (tag, text): (u8, &str) = match outcome {
            StepOutcome::Completed => (0, ""),
            StepOutcome::Skipped { reason } => (1, reason),
            StepOutcome::FallbackSampled { reason } => (2, reason),
            StepOutcome::Failed { error } => (3, error),
        };
        buf.push(tag);
        put_str(&mut buf, text);
    }
    put_u64(&mut buf, state.output_modeled.to_bits());
    put_u64(&mut buf, state.bytes_written);
    put_u64(&mut buf, state.summary_bytes_total);
    put_u64(&mut buf, state.raw_bytes_per_step);
    buf.extend_from_slice(&crate::crc::crc32c(&buf).to_le_bytes());
    Ok(buf)
}

/// A minimal cursor over checkpoint bytes; every read is bounds-checked.
struct CkptReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> CkptReader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| IbisError::BadCheckpoint(format!("truncated at byte {}", self.pos)))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(crate::crc::le_u64(self.take(8)?))
    }

    fn usize(&mut self) -> Result<usize> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| IbisError::BadCheckpoint(format!("value {v} overflows")))
    }

    fn string(&mut self) -> Result<String> {
        let len = self.usize()?;
        if len > self.buf.len() {
            return Err(IbisError::BadCheckpoint("string length overflows".into()));
        }
        String::from_utf8(self.take(len)?.to_vec())
            .map_err(|_| IbisError::BadCheckpoint("non-UTF-8 string".into()))
    }

    fn summary(&mut self) -> Result<(StepSummary, bool, Option<Arc<RowPermutation>>)> {
        let step = self.usize()?;
        let degraded = self.u8()? != 0;
        let nvars = self.usize()?;
        if nvars > 4096 {
            return Err(IbisError::BadCheckpoint(format!(
                "implausible variable count {nvars}"
            )));
        }
        let mut vars = Vec::with_capacity(nvars);
        for _ in 0..nvars {
            let len = self.usize()?;
            if len > self.buf.len() {
                return Err(IbisError::BadCheckpoint("blob length overflows".into()));
            }
            let blob = self.take(len)?;
            let idx = codec::decode_index(blob)
                .map_err(|e| IbisError::BadCheckpoint(format!("embedded index: {e}")))?;
            vars.push(VarSummary::Bitmap(idx));
        }
        let perm = match self.u8()? {
            0 => None,
            1 => {
                let len = self.usize()?;
                if len > self.buf.len() {
                    return Err(IbisError::BadCheckpoint(
                        "permutation length overflows".into(),
                    ));
                }
                let inv = crate::store::decode_perm_payload(self.take(len)?)
                    .map_err(|e| IbisError::BadCheckpoint(format!("embedded permutation: {e}")))?;
                let perm = RowPermutation::from_inverse(inv)
                    .map_err(|e| IbisError::BadCheckpoint(format!("embedded permutation: {e}")))?;
                Some(Arc::new(perm))
            }
            t => {
                return Err(IbisError::BadCheckpoint(format!(
                    "bad permutation-presence tag {t}"
                )))
            }
        };
        Ok((StepSummary { step, vars }, degraded, perm))
    }
}

fn parse_checkpoint(bytes: &[u8]) -> Result<CheckpointState> {
    if bytes.len() < 12 {
        return Err(IbisError::BadCheckpoint("file too short".into()));
    }
    let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
    let stored = crate::crc::le_u32(crc_bytes);
    let actual = crate::crc::crc32c(body);
    if stored != actual {
        return Err(IbisError::BadCheckpoint(format!(
            "CRC mismatch: stored {stored:08x}, computed {actual:08x}"
        )));
    }
    let mut r = CkptReader { buf: body, pos: 0 };
    if r.take(4)? != CHECKPOINT_MAGIC {
        return Err(IbisError::BadCheckpoint("bad magic".into()));
    }
    let version = crate::crc::le_u32(r.take(4)?);
    if version != CHECKPOINT_VERSION {
        return Err(IbisError::BadCheckpoint(format!(
            "unsupported version {version}"
        )));
    }
    let next_step = r.usize()?;
    let nselected = r.usize()?;
    if nselected > next_step.max(1) {
        return Err(IbisError::BadCheckpoint(
            "more selections than completed steps".into(),
        ));
    }
    let mut selected = Vec::with_capacity(nselected);
    for _ in 0..nselected {
        selected.push(r.usize()?);
    }
    let cur_interval = r.usize()?;
    let prev = match r.u8()? {
        0 => None,
        1 => Some(r.summary()?),
        t => {
            return Err(IbisError::BadCheckpoint(format!(
                "bad prev-presence tag {t}"
            )))
        }
    };
    let nbuffer = r.usize()?;
    if nbuffer > next_step.max(1) {
        return Err(IbisError::BadCheckpoint("buffer larger than run".into()));
    }
    let mut buffer = Vec::with_capacity(nbuffer);
    for _ in 0..nbuffer {
        let idx = r.usize()?;
        let (summary, degraded, perm) = r.summary()?;
        buffer.push((idx, summary, degraded, perm));
    }
    let noutcomes = r.usize()?;
    if noutcomes != next_step {
        return Err(IbisError::BadCheckpoint(format!(
            "{noutcomes} outcomes for {next_step} completed steps"
        )));
    }
    let mut outcomes = Vec::with_capacity(noutcomes);
    for _ in 0..noutcomes {
        let tag = r.u8()?;
        let text = r.string()?;
        outcomes.push(match tag {
            0 => StepOutcome::Completed,
            1 => StepOutcome::Skipped { reason: text },
            2 => StepOutcome::FallbackSampled { reason: text },
            3 => StepOutcome::Failed { error: text },
            t => return Err(IbisError::BadCheckpoint(format!("bad outcome tag {t}"))),
        });
    }
    let output_modeled = f64::from_bits(r.u64()?);
    let bytes_written = r.u64()?;
    let summary_bytes_total = r.u64()?;
    let raw_bytes_per_step = r.u64()?;
    if r.pos != body.len() {
        return Err(IbisError::BadCheckpoint(format!(
            "{} trailing bytes",
            body.len() - r.pos
        )));
    }
    Ok(CheckpointState {
        next_step,
        selected,
        cur_interval,
        prev,
        buffer,
        outcomes,
        output_modeled,
        bytes_written,
        summary_bytes_total,
        raw_bytes_per_step,
    })
}

/// Runs a durable Shared-Cores bitmaps pipeline: every selected summary is
/// persisted to a checksummed store at `dir`, and the selector state is
/// checkpointed atomically after every step. If the run dies (crash, kill
/// injection), [`resume_durable`] picks it up where it stopped and the
/// final store is byte-identical to an uninterrupted run's.
pub fn run_durable<S: Simulation>(
    sim: S,
    cfg: &PipelineConfig,
    dir: impl AsRef<Path>,
) -> Result<InsituReport> {
    durable_impl(sim, cfg, dir.as_ref(), false)
}

/// Resumes a durable run that was interrupted. `sim` must be a *fresh*
/// instance of the same deterministic simulation — the completed prefix is
/// replayed to restore its state, then the run continues from the
/// checkpoint. With no checkpoint present this is a fresh run.
pub fn resume_durable<S: Simulation>(
    sim: S,
    cfg: &PipelineConfig,
    dir: impl AsRef<Path>,
) -> Result<InsituReport> {
    durable_impl(sim, cfg, dir.as_ref(), true)
}

fn durable_impl<S: Simulation>(
    mut sim: S,
    cfg: &PipelineConfig,
    dir: &Path,
    resume: bool,
) -> Result<InsituReport> {
    cfg.validate()?;
    if !matches!(cfg.allocation, CoreAllocation::Shared) {
        return Err(IbisError::Config(
            "durable runs support Shared-Cores only".into(),
        ));
    }
    if !matches!(cfg.reduction, Reduction::Bitmaps) {
        return Err(IbisError::Config(
            "durable runs persist bitmap summaries only".into(),
        ));
    }
    OBS_RUNS.inc();
    let _run_span = OBS_RUN_WALL_NS.span();
    let injector = Arc::new(FaultInjector::new(cfg.robustness.faults.clone()));
    let wall0 = Instant::now();
    let pool = cfg.machine.pool(cfg.cores);
    let threads = pool.current_num_threads();
    let ckpt_path = dir.join("CHECKPOINT");

    let state = if resume {
        match std::fs::read(&ckpt_path) {
            Ok(bytes) => parse_checkpoint(&bytes)?,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => CheckpointState::default(),
            Err(e) => return Err(IbisError::io("read CHECKPOINT", &e)),
        }
    } else {
        CheckpointState::default()
    };
    if state.next_step > cfg.steps {
        return Err(IbisError::BadCheckpoint(format!(
            "checkpoint is at step {} but the run has only {}",
            state.next_step, cfg.steps
        )));
    }
    let mut writer = if resume {
        StoreWriter::resume(dir)?
    } else {
        StoreWriter::create(dir)?
    }
    .with_fault_injector(Arc::clone(&injector));

    let dims = resolve_dims(&sim, cfg)?;

    // Replay the completed prefix to restore the deterministic simulation's
    // state (recovery overhead: charged to wall time, not modeled time).
    for _ in 0..state.next_step {
        let _ = pool.install(|| sim.step());
    }

    let mem = MemoryTracker::new();
    let sim_resident = sim.resident_bytes() as u64;
    mem.alloc(sim_resident);
    let mut selector = StreamingSelector::new(cfg.steps, cfg.select_k, cfg.metric);
    selector.cur = state.cur_interval;
    selector.selected = state.selected;
    selector.prev = state.prev;
    selector.buffer = state.buffer;
    if let Some((p, _, _)) = &selector.prev {
        mem.alloc(p.size_bytes() as u64);
    }
    for (_, s, _, _) in &selector.buffer {
        mem.alloc(s.size_bytes() as u64);
    }
    let mut outcomes = state.outcomes;
    let mut sim_t = Duration::ZERO;
    let mut reduce_t = Duration::ZERO;
    let mut output_modeled = state.output_modeled;
    let mut bytes_written = state.bytes_written;
    let mut summary_bytes_total = state.summary_bytes_total;
    let mut raw_bytes_per_step = state.raw_bytes_per_step;
    let mut field_names: Option<Vec<String>> = None;
    let disk_bw = cfg.machine.disk_bw;

    let persist_winner = |selector: &StreamingSelector,
                          writer: &mut StoreWriter,
                          names: &Option<Vec<String>>,
                          e: &Emitted,
                          output_modeled: &mut f64,
                          bytes_written: &mut u64|
     -> Result<()> {
        let Some(summary) = selector.prev_summary() else {
            return Ok(());
        };
        let names = names.as_ref().ok_or_else(|| {
            IbisError::Config("selection emitted before any field names were seen".into())
        })?;
        for (j, var) in summary.vars.iter().enumerate() {
            let VarSummary::Bitmap(idx) = var else {
                return Err(IbisError::Config(
                    "durable runs persist bitmap summaries only".into(),
                ));
            };
            let name = names.get(j).map(String::as_str).unwrap_or("field");
            writer.put(e.step, name, idx)?;
        }
        if let Some(perm) = selector.prev_order() {
            // The winner's indices are stored permuted: persist the
            // inverse permutation next to them so the query engine can
            // map selections back to original row ids.
            writer.put_order(e.step, cfg.row_order, perm)?;
        }
        *output_modeled += e.summary_bytes as f64 / disk_bw;
        *bytes_written += e.summary_bytes;
        Ok(())
    };

    for i in state.next_step..cfg.steps {
        OBS_SHARED_STEPS.inc();
        if injector.should_kill_at(i) {
            // the checkpoint written after step i-1 and the journal make
            // this recoverable; report the kill as a structured error
            return Err(IbisError::Killed { step: i });
        }
        let produced = contained_sim_step(
            &mut sim,
            i,
            &pool,
            &injector,
            &cfg.robustness.policy,
            &mut sim_t,
        )?;
        match produced {
            Err(msg) => {
                outcomes.push(StepOutcome::Skipped {
                    reason: format!("producer panicked: {msg}"),
                });
                if let Some(e) = selector.note_skipped(i, &mem) {
                    persist_winner(
                        &selector,
                        &mut writer,
                        &field_names,
                        &e,
                        &mut output_modeled,
                        &mut bytes_written,
                    )?;
                }
            }
            Ok(out) => {
                if field_names.is_none() {
                    field_names = Some(out.fields.iter().map(|f| f.name.to_string()).collect());
                }
                let raw = out.size_bytes() as u64;
                raw_bytes_per_step = raw;
                mem.alloc(raw);
                match contained_summarize(&out, i, cfg, &dims, &pool, &injector, &mut reduce_t)? {
                    StepAttempt::Kept(summary, perm, degraded, outcome) => {
                        let sbytes = summary.size_bytes() as u64;
                        summary_bytes_total += sbytes;
                        mem.alloc(sbytes);
                        drop(out);
                        mem.free(raw);
                        outcomes.push(outcome);
                        if let Some(e) = selector.offer(i, summary, degraded, perm, &mem) {
                            persist_winner(
                                &selector,
                                &mut writer,
                                &field_names,
                                &e,
                                &mut output_modeled,
                                &mut bytes_written,
                            )?;
                        }
                    }
                    StepAttempt::Dropped(outcome) => {
                        drop(out);
                        mem.free(raw);
                        outcomes.push(outcome);
                        if let Some(e) = selector.note_skipped(i, &mem) {
                            persist_winner(
                                &selector,
                                &mut writer,
                                &field_names,
                                &e,
                                &mut output_modeled,
                                &mut bytes_written,
                            )?;
                        }
                    }
                }
            }
        }
        // Checkpoint the post-step state atomically: a crash between here
        // and the next step resumes exactly at step i+1.
        let snapshot = CheckpointState {
            next_step: i + 1,
            selected: selector.selected.clone(),
            cur_interval: selector.cur,
            prev: selector.prev.clone(),
            buffer: selector.buffer.clone(),
            outcomes: outcomes.clone(),
            output_modeled,
            bytes_written,
            summary_bytes_total,
            raw_bytes_per_step,
        };
        let bytes = encode_checkpoint(&snapshot)?;
        write_atomic(&dir.join(".CHECKPOINT.tmp"), &ckpt_path, &bytes)
            .map_err(|e| IbisError::io("write CHECKPOINT", &e))?;
    }

    let (selected, select_t) = selector.finish(&mem);
    OBS_SELECT_NS.add(select_t.as_nanos() as u64);
    mem.free(sim_resident);
    writer.finish()?;
    match std::fs::remove_file(&ckpt_path) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => return Err(IbisError::io("remove CHECKPOINT", &e)),
    }

    let speed = cfg.machine.core_speed;
    let phases = PhaseTimes {
        simulate: modeled_seconds(sim_t, threads, cfg.cores, &cfg.sim_scaling, speed),
        reduce: modeled_seconds(
            reduce_t,
            threads,
            cfg.cores,
            &reduce_scaling(&cfg.reduction),
            speed,
        ),
        select: modeled_seconds(
            select_t,
            threads,
            cfg.cores,
            &ScalingModel::selection(),
            speed,
        ),
        output: output_modeled,
    };
    Ok(InsituReport {
        total_modeled: phases.sum(),
        phases,
        wall_seconds: wall0.elapsed().as_secs_f64(),
        selected,
        peak_memory_bytes: mem.peak(),
        bytes_written,
        raw_bytes_per_step,
        summary_bytes_total,
        steps: cfg.steps,
        step_outcomes: outcomes,
        fault_events: injector.events(),
    })
}

/// The durable run directory's checkpoint file, if one is pending (i.e.
/// the run at `dir` was interrupted and can be resumed).
pub fn pending_checkpoint(dir: impl AsRef<Path>) -> Option<PathBuf> {
    let p = dir.as_ref().join("CHECKPOINT");
    p.exists().then_some(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use crate::io::LocalDisk;
    use ibis_datagen::{Heat3D, Heat3DConfig};

    fn heat_cfg() -> Heat3DConfig {
        Heat3DConfig {
            nx: 16,
            ny: 16,
            nz: 16,
            ..Heat3DConfig::tiny()
        }
    }

    fn base_cfg(reduction: Reduction) -> PipelineConfig {
        PipelineConfig {
            machine: MachineModel::xeon32(),
            cores: 4,
            allocation: CoreAllocation::Shared,
            reduction,
            steps: 13,
            select_k: 4,
            metric: Metric::ConditionalEntropy,
            binners: vec![Binner::precision(-1.0, 101.0, 0)],
            per_step_precision: None,
            row_order: RowOrder::Identity,
            queue_capacity: 3,
            sim_scaling: ScalingModel::heat3d(),
            robustness: RobustnessConfig::default(),
        }
    }

    #[test]
    fn shared_bitmaps_run_end_to_end() {
        let cfg = base_cfg(Reduction::Bitmaps);
        let disk = LocalDisk::new(1e9);
        let r = run_pipeline(Heat3D::new(heat_cfg()), &cfg, &disk).unwrap();
        assert_eq!(r.selected.len(), 4);
        assert_eq!(r.selected[0], 0);
        assert!(r.selected.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(r.steps, 13);
        assert!(r.bytes_written > 0);
        assert_eq!(disk.bytes_written(), r.bytes_written);
        assert!(r.phases.simulate > 0.0 && r.phases.reduce > 0.0);
        assert!(r.total_modeled >= r.phases.output);
        assert!(
            r.compression_ratio() > 1.0,
            "bitmaps should compress heat3d"
        );
        assert_eq!(r.step_outcomes.len(), 13);
        assert!(r.step_outcomes.iter().all(StepOutcome::is_completed));
        assert!(r.fault_events.is_empty());
    }

    #[test]
    fn full_data_writes_raw_sizes() {
        let cfg = base_cfg(Reduction::FullData);
        let disk = LocalDisk::new(1e9);
        let r = run_pipeline(Heat3D::new(heat_cfg()), &cfg, &disk).unwrap();
        // each selected step is the raw array
        assert_eq!(r.bytes_written, 4 * r.raw_bytes_per_step);
        assert!(
            r.phases.reduce < r.phases.simulate,
            "full data has ~no reduce phase"
        );
    }

    #[test]
    fn bitmaps_write_less_and_peak_lower_than_full() {
        let disk = LocalDisk::new(1e9);
        let rb = run_pipeline(
            Heat3D::new(heat_cfg()),
            &base_cfg(Reduction::Bitmaps),
            &disk,
        )
        .unwrap();
        let rf = run_pipeline(
            Heat3D::new(heat_cfg()),
            &base_cfg(Reduction::FullData),
            &disk,
        )
        .unwrap();
        assert!(
            rb.bytes_written < rf.bytes_written,
            "bitmaps must shrink I/O"
        );
        assert!(
            rb.peak_memory_bytes < rf.peak_memory_bytes,
            "bitmaps {} must hold less than full {}",
            rb.peak_memory_bytes,
            rf.peak_memory_bytes
        );
    }

    #[test]
    fn both_strategies_select_identical_steps() {
        let disk = LocalDisk::new(1e9);
        let shared = run_pipeline(
            Heat3D::new(heat_cfg()),
            &base_cfg(Reduction::Bitmaps),
            &disk,
        )
        .unwrap();
        let mut cfg = base_cfg(Reduction::Bitmaps);
        cfg.allocation = CoreAllocation::Separate {
            sim_cores: 2,
            bitmap_cores: 2,
        };
        let separate = run_pipeline(Heat3D::new(heat_cfg()), &cfg, &disk).unwrap();
        assert_eq!(shared.selected, separate.selected);
        assert_eq!(shared.bytes_written, separate.bytes_written);
    }

    #[test]
    fn bitmap_selection_equals_full_selection() {
        // the no-accuracy-loss claim at pipeline level
        let disk = LocalDisk::new(1e9);
        let rb = run_pipeline(
            Heat3D::new(heat_cfg()),
            &base_cfg(Reduction::Bitmaps),
            &disk,
        )
        .unwrap();
        let rf = run_pipeline(
            Heat3D::new(heat_cfg()),
            &base_cfg(Reduction::FullData),
            &disk,
        )
        .unwrap();
        assert_eq!(rb.selected, rf.selected);
    }

    #[test]
    fn sampling_reduces_bytes_but_changes_selection_possible() {
        let mut cfg = base_cfg(Reduction::Sampling {
            percent: 10.0,
            method: SamplingMethod::Stride,
        });
        cfg.metric = Metric::ConditionalEntropy;
        let disk = LocalDisk::new(1e9);
        let r = run_pipeline(Heat3D::new(heat_cfg()), &cfg, &disk).unwrap();
        assert_eq!(r.selected.len(), 4);
        assert!(
            r.bytes_written < 4 * r.raw_bytes_per_step / 5,
            "10% samples are small"
        );
    }

    #[test]
    fn select_one_keeps_only_step_zero() {
        let mut cfg = base_cfg(Reduction::Bitmaps);
        cfg.select_k = 1;
        let disk = LocalDisk::new(1e9);
        let r = run_pipeline(Heat3D::new(heat_cfg()), &cfg, &disk).unwrap();
        assert_eq!(r.selected, vec![0]);
    }

    #[test]
    fn select_all_keeps_everything() {
        let mut cfg = base_cfg(Reduction::Bitmaps);
        cfg.steps = 5;
        cfg.select_k = 5;
        let disk = LocalDisk::new(1e9);
        let r = run_pipeline(Heat3D::new(heat_cfg()), &cfg, &disk).unwrap();
        assert_eq!(r.selected, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn memory_tracker_ends_at_zero() {
        // peak > 0 and everything freed: no leak in the accounting
        let cfg = base_cfg(Reduction::Bitmaps);
        let disk = LocalDisk::new(1e9);
        let r = run_pipeline(Heat3D::new(heat_cfg()), &cfg, &disk).unwrap();
        assert!(r.peak_memory_bytes > 0);
    }

    #[test]
    fn rejects_overcommitted_split() {
        let mut cfg = base_cfg(Reduction::Bitmaps);
        cfg.allocation = CoreAllocation::Separate {
            sim_cores: 3,
            bitmap_cores: 3,
        };
        let err = cfg.validate().unwrap_err();
        assert!(err.to_string().contains("separate sets exceed"), "{err}");
    }

    #[test]
    fn rejects_bad_k() {
        let mut cfg = base_cfg(Reduction::Bitmaps);
        cfg.select_k = 50;
        let err = cfg.validate().unwrap_err();
        assert!(err.to_string().contains("cannot select"), "{err}");
    }

    #[test]
    fn consumer_panic_aborts_with_structured_error() {
        let mut cfg = base_cfg(Reduction::Bitmaps);
        cfg.robustness.faults = FaultPlan::none().with_consumer_panic_at(3);
        let disk = LocalDisk::new(1e9);
        let err = run_pipeline(Heat3D::new(heat_cfg()), &cfg, &disk).unwrap_err();
        assert_eq!(
            err,
            IbisError::WorkerPanic {
                role: WorkerRole::Consumer,
                step: Some(3),
                message: "injected fault: consumer panic at step 3".into(),
            }
        );
    }

    #[test]
    fn skip_policy_survives_consumer_panic() {
        let mut cfg = base_cfg(Reduction::Bitmaps);
        cfg.robustness.policy = FailurePolicy::SkipStep;
        cfg.robustness.faults = FaultPlan::none().with_consumer_panic_at(3);
        let disk = LocalDisk::new(1e9);
        let r = run_pipeline(Heat3D::new(heat_cfg()), &cfg, &disk).unwrap();
        assert!(matches!(r.step_outcomes[3], StepOutcome::Skipped { .. }));
        assert!(!r.selected.contains(&3));
        assert_eq!(r.selected[0], 0);
        assert_eq!(r.fault_events, vec!["consumer step 3: injected panic"]);
    }

    #[test]
    fn fallback_policy_substitutes_sampled_summary() {
        let mut cfg = base_cfg(Reduction::Bitmaps);
        cfg.robustness.policy = FailurePolicy::FallbackSampling {
            percent: 10.0,
            method: SamplingMethod::Stride,
        };
        cfg.robustness.faults = FaultPlan::none().with_consumer_panic_at(5);
        let disk = LocalDisk::new(1e9);
        let r = run_pipeline(Heat3D::new(heat_cfg()), &cfg, &disk).unwrap();
        assert!(matches!(
            r.step_outcomes[5],
            StepOutcome::FallbackSampled { .. }
        ));
        assert_eq!(r.selected.len(), 4, "selection count is preserved");
    }

    #[test]
    fn producer_panic_at_step_zero_still_seeds_later() {
        let mut cfg = base_cfg(Reduction::Bitmaps);
        cfg.robustness.policy = FailurePolicy::SkipStep;
        cfg.robustness.faults = FaultPlan::none().with_producer_panic_at(0);
        let disk = LocalDisk::new(1e9);
        let r = run_pipeline(Heat3D::new(heat_cfg()), &cfg, &disk).unwrap();
        assert!(matches!(r.step_outcomes[0], StepOutcome::Skipped { .. }));
        assert_eq!(r.selected[0], 1, "step 1 seeds when step 0 failed");
    }

    #[test]
    fn separate_cores_consumer_panic_does_not_deadlock() {
        let mut cfg = base_cfg(Reduction::Bitmaps);
        cfg.allocation = CoreAllocation::Separate {
            sim_cores: 2,
            bitmap_cores: 2,
        };
        cfg.queue_capacity = 1; // smallest queue: producer blocks hardest
        cfg.robustness.faults = FaultPlan::none().with_consumer_panic_at(2);
        let disk = LocalDisk::new(1e9);
        let err = run_pipeline(Heat3D::new(heat_cfg()), &cfg, &disk).unwrap_err();
        assert!(
            matches!(
                err,
                IbisError::WorkerPanic {
                    role: WorkerRole::Consumer,
                    step: Some(2),
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn injected_kill_reports_step() {
        let mut cfg = base_cfg(Reduction::Bitmaps);
        cfg.robustness.faults = FaultPlan::none().with_kill_at_step(7);
        let disk = LocalDisk::new(1e9);
        let err = run_pipeline(Heat3D::new(heat_cfg()), &cfg, &disk).unwrap_err();
        assert_eq!(err, IbisError::Killed { step: 7 });
    }

    #[test]
    fn checkpoint_round_trips() {
        let data: Vec<f64> = (0..200).map(|i| (i % 30) as f64).collect();
        let binner = Binner::distinct_ints(0, 29);
        let perm = Arc::new(
            RowOrder::HistogramSorted
                .permutation(&[], &binner, &data)
                .unwrap(),
        );
        let idx = ibis_core::BitmapIndex::build_permuted(&data, binner, &perm);
        let summary = StepSummary {
            step: 4,
            vars: vec![VarSummary::Bitmap(idx)],
        };
        let state = CheckpointState {
            next_step: 5,
            selected: vec![0, 4],
            cur_interval: 1,
            prev: Some((summary.clone(), false, None)),
            buffer: vec![(4, summary, true, Some(Arc::clone(&perm)))],
            outcomes: vec![
                StepOutcome::Completed,
                StepOutcome::Skipped { reason: "x".into() },
                StepOutcome::FallbackSampled { reason: "y".into() },
                StepOutcome::Failed { error: "z".into() },
                StepOutcome::Completed,
            ],
            output_modeled: 1.25,
            bytes_written: 777,
            summary_bytes_total: 999,
            raw_bytes_per_step: 4096,
        };
        let bytes = encode_checkpoint(&state).unwrap();
        let back = parse_checkpoint(&bytes).unwrap();
        assert_eq!(back.next_step, 5);
        assert_eq!(back.selected, vec![0, 4]);
        assert_eq!(back.cur_interval, 1);
        assert_eq!(back.outcomes, state.outcomes);
        assert_eq!(back.output_modeled, 1.25);
        assert_eq!(back.bytes_written, 777);
        assert!(back.prev.is_some());
        assert_eq!(
            back.prev.as_ref().unwrap().2,
            None,
            "identity-layout summaries carry no permutation"
        );
        assert_eq!(back.buffer.len(), 1);
        assert!(back.buffer[0].2, "degraded flag survives");
        assert_eq!(
            back.buffer[0].3.as_deref(),
            Some(perm.as_ref()),
            "v2 checkpoints round-trip the buffered step's permutation"
        );

        // any flipped byte must be rejected
        let mut bad = bytes.clone();
        bad[bytes.len() / 2] ^= 0x40;
        assert!(matches!(
            parse_checkpoint(&bad),
            Err(IbisError::BadCheckpoint(_))
        ));
        assert!(matches!(
            parse_checkpoint(&bytes[..bytes.len() - 3]),
            Err(IbisError::BadCheckpoint(_))
        ));
    }
}
