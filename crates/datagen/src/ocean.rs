//! A synthetic ocean-state generator standing in for the Parallel Ocean
//! Program (POP) dataset.
//!
//! The paper's correlation-mining evaluation uses POP output (26 variables
//! on a lon×lat×depth grid, NetCDF) because "some of them have strong
//! correlations within either the value or spatial subsets". The data (and
//! even to the authors, the simulation code) is unavailable, so this module
//! synthesizes fields engineered to have the same property:
//!
//! * `temperature` — a thermocline profile (warm surface, tanh decay with
//!   depth), a latitudinal gradient, plus drifting Gaussian eddies.
//! * `salinity` — inside a "current" band it is a linear function of the
//!   local temperature anomaly plus small noise (**high mutual
//!   information**, concentrated in specific value ranges and spatial
//!   blocks); outside the band it follows an independent pattern (**low
//!   MI**).
//!
//! Because we control where the correlation lives, the miner's output can
//! be *tested* against ground truth, which the real POP data would not
//! allow.

use crate::field::{Field, StepOutput};
use crate::Simulation;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for the [`OceanModel`].
#[derive(Debug, Clone)]
pub struct OceanConfig {
    /// Longitude cells (fastest-varying).
    pub nlon: usize,
    /// Latitude cells.
    pub nlat: usize,
    /// Depth levels (slowest-varying).
    pub ndepth: usize,
    /// Number of drifting warm-core eddies.
    pub eddies: usize,
    /// RNG seed (fields are fully reproducible).
    pub seed: u64,
    /// Latitude band `[lo, hi)` (as a fraction of `nlat`) where salinity is
    /// temperature-coupled — the planted high-correlation region.
    pub current_band: (f64, f64),
    /// Coupling slope between temperature anomaly and salinity inside the
    /// band.
    pub coupling: f64,
    /// Amplitude of the independent noise.
    pub noise: f64,
}

impl Default for OceanConfig {
    fn default() -> Self {
        OceanConfig {
            nlon: 64,
            nlat: 48,
            ndepth: 8,
            eddies: 4,
            seed: 0x0CEA_2015,
            current_band: (0.25, 0.5),
            coupling: 0.8,
            noise: 0.05,
        }
    }
}

impl OceanConfig {
    /// A small configuration for tests.
    pub fn tiny() -> Self {
        OceanConfig {
            nlon: 16,
            nlat: 12,
            ndepth: 4,
            eddies: 2,
            ..Default::default()
        }
    }

    /// Cells per variable per time-step.
    pub fn num_elements(&self) -> usize {
        self.nlon * self.nlat * self.ndepth
    }
}

/// The variables the generator produces each step. POP carries 26
/// variables; we synthesize twelve with physically-motivated couplings —
/// enough structure for multivariate queries and mining to have real
/// relationships to find.
pub const OCEAN_FIELDS: [&str; 12] = [
    "temperature",
    "salinity",
    "velocity_u",
    "velocity_v",
    "velocity_w",
    "ssh",
    "oxygen",
    "density",
    "pressure",
    "nitrate",
    "chlorophyll",
    "mixed_layer_depth",
];

#[derive(Debug, Clone, Copy)]
struct Eddy {
    lon: f64,
    lat: f64,
    radius: f64,
    amplitude: f64,
    drift: f64,
}

/// The synthetic ocean model.
#[derive(Debug, Clone)]
pub struct OceanModel {
    cfg: OceanConfig,
    eddies: Vec<Eddy>,
    step: usize,
}

impl OceanModel {
    /// Creates the model; eddy positions/strengths are drawn from `seed`.
    pub fn new(cfg: OceanConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let eddies = (0..cfg.eddies)
            .map(|_| Eddy {
                lon: rng.gen_range(0.0..cfg.nlon as f64),
                lat: rng.gen_range(0.2..0.8) * cfg.nlat as f64,
                radius: rng.gen_range(0.08..0.2) * cfg.nlon as f64,
                amplitude: rng.gen_range(2.0..5.0),
                drift: rng.gen_range(0.2..0.8),
            })
            .collect();
        OceanModel {
            cfg,
            eddies,
            step: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &OceanConfig {
        &self.cfg
    }

    /// `true` if cell latitude `j` lies in the planted high-correlation band.
    pub fn in_current_band(&self, lat_cell: usize) -> bool {
        let f = lat_cell as f64 / self.cfg.nlat as f64;
        f >= self.cfg.current_band.0 && f < self.cfg.current_band.1
    }

    /// Deterministic per-cell noise in `[-1, 1]` (hashed, so any cell of any
    /// step can be regenerated independently).
    fn noise(&self, cell: usize, salt: u64) -> f64 {
        let mut h = (cell as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(self.cfg.seed)
            .wrapping_add(salt.wrapping_mul(0xBF58_476D_1CE4_E5B9));
        h ^= h >> 30;
        h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h ^= h >> 27;
        h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^= h >> 31;
        (h as f64 / u64::MAX as f64) * 2.0 - 1.0
    }

    fn temperature_at(&self, i: usize, j: usize, k: usize, t: f64) -> f64 {
        let cfg = &self.cfg;
        // Thermocline: 22 °C at the surface decaying towards 4 °C at depth.
        let depth_frac = k as f64 / cfg.ndepth.max(1) as f64;
        let base = 4.0 + 18.0 * (1.0 - (4.0 * (depth_frac - 0.3)).tanh()) / 2.0;
        // Latitudinal gradient: warm "equator" at lat = nlat/2.
        let lat_frac = (j as f64 / cfg.nlat as f64 - 0.5).abs();
        let lat_term = -10.0 * lat_frac;
        // Drifting eddies (surface-intensified warm cores).
        let mut eddy_term = 0.0;
        for e in &self.eddies {
            let lon = (e.lon + e.drift * t).rem_euclid(cfg.nlon as f64);
            let mut dlon = (i as f64 - lon).abs();
            dlon = dlon.min(cfg.nlon as f64 - dlon); // periodic longitude
            let dlat = j as f64 - e.lat;
            let d2 = dlon * dlon + dlat * dlat;
            eddy_term +=
                e.amplitude * (-d2 / (2.0 * e.radius * e.radius)).exp() * (1.0 - depth_frac);
        }
        let cell = (k * cfg.nlat + j) * cfg.nlon + i;
        base + lat_term + eddy_term + cfg.noise * self.noise(cell, 1 + t as u64)
    }

    /// Generates one variable at the current step.
    pub fn variable(&self, name: &str) -> Vec<f64> {
        let cfg = &self.cfg;
        let t = self.step as f64;
        let n = cfg.num_elements();
        let mut out = Vec::with_capacity(n);
        for k in 0..cfg.ndepth {
            for j in 0..cfg.nlat {
                for i in 0..cfg.nlon {
                    let cell = (k * cfg.nlat + j) * cfg.nlon + i;
                    let temp = self.temperature_at(i, j, k, t);
                    let v = match name {
                        "temperature" => temp,
                        "salinity" => {
                            // baseline haline profile
                            let base = 34.0 + 0.8 * (k as f64 / cfg.ndepth.max(1) as f64);
                            if self.in_current_band(j) {
                                // planted correlation: salinity tracks the
                                // temperature anomaly inside the band
                                let anomaly = temp - 12.0;
                                base + cfg.coupling * anomaly * 0.1
                                    + cfg.noise * 0.1 * self.noise(cell, 2)
                            } else {
                                base + 0.4 * ((i as f64 * 0.23).sin() * (j as f64 * 0.31).cos())
                                    + cfg.noise * self.noise(cell, 3)
                            }
                        }
                        "velocity_u" => {
                            // geostrophic-ish: proportional to the meridional
                            // temperature gradient
                            let tm = self.temperature_at(i, j.saturating_sub(1), k, t);
                            let tp = self.temperature_at(i, (j + 1).min(cfg.nlat - 1), k, t);
                            (tp - tm) * 0.5
                        }
                        "velocity_v" => {
                            let im = self.temperature_at(i.saturating_sub(1), j, k, t);
                            let ip = self.temperature_at((i + 1).min(cfg.nlon - 1), j, k, t);
                            (im - ip) * 0.5
                        }
                        "velocity_w" => {
                            // weak vertical motion: eddy pumping — upwelling
                            // where the surface is anomalously warm
                            let anomaly = temp - 12.0;
                            0.01 * anomaly * (1.0 - k as f64 / cfg.ndepth.max(1) as f64)
                                + cfg.noise * 0.02 * self.noise(cell, 11)
                        }
                        "ssh" => {
                            // sea-surface height ~ column-integrated warmth
                            (temp - 10.0) * 0.02 + cfg.noise * 0.01 * self.noise(cell, 4)
                        }
                        "oxygen" => {
                            // anticorrelated with temperature (solubility)
                            9.0 - 0.15 * temp + cfg.noise * self.noise(cell, 5)
                        }
                        "density" => {
                            // linearized seawater equation of state:
                            // rho = rho0 - alpha*T + beta*S
                            let base_sal = 34.0 + 0.8 * (k as f64 / cfg.ndepth.max(1) as f64);
                            1025.0 - 0.2 * (temp - 10.0)
                                + 0.78 * (base_sal - 34.0)
                                + cfg.noise * 0.02 * self.noise(cell, 6)
                        }
                        "pressure" => {
                            // hydrostatic: ~1 dbar per meter of depth
                            let depth_m = (k as f64 + 0.5) * 50.0;
                            depth_m * 1.005 + cfg.noise * 0.1 * self.noise(cell, 7)
                        }
                        "nitrate" => {
                            // nutrients deplete at the warm surface,
                            // accumulate at depth
                            let depth_frac = k as f64 / cfg.ndepth.max(1) as f64;
                            (2.0 + 28.0 * depth_frac - 0.3 * (temp - 10.0)).max(0.0)
                                + cfg.noise * self.noise(cell, 8)
                        }
                        "chlorophyll" => {
                            // blooms where warm eddy water meets the surface
                            let depth_frac = k as f64 / cfg.ndepth.max(1) as f64;
                            let light = (1.0 - depth_frac).max(0.0);
                            let anomaly = (temp - 12.0).max(0.0);
                            (0.1 + 0.08 * anomaly * light)
                                + cfg.noise * 0.05 * self.noise(cell, 9).abs()
                        }
                        "mixed_layer_depth" => {
                            // deepens toward the "poles" (cold, convective)
                            let lat_frac = (j as f64 / cfg.nlat as f64 - 0.5).abs();
                            30.0 + 140.0 * lat_frac
                                + 5.0 * (t * 0.2).sin()
                                + cfg.noise * 2.0 * self.noise(cell, 10)
                        }
                        other => panic!("unknown ocean variable {other:?}"),
                    };
                    out.push(v);
                }
            }
        }
        out
    }
}

impl Simulation for OceanModel {
    fn step(&mut self) -> StepOutput {
        let fields = OCEAN_FIELDS
            .iter()
            .map(|&n| Field::new(n, self.variable(n)))
            .collect();
        let out = StepOutput {
            step: self.step,
            fields,
        };
        self.step += 1;
        out
    }

    fn num_elements(&self) -> usize {
        self.cfg.num_elements()
    }

    fn name(&self) -> &'static str {
        "ocean"
    }

    fn grid_dims(&self) -> Option<[usize; 3]> {
        // index = (k * nlat + j) * nlon + i — longitude fastest
        Some([self.cfg.ndepth, self.cfg.nlat, self.cfg.nlon])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corr(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len() as f64;
        let ma = a.iter().sum::<f64>() / n;
        let mb = b.iter().sum::<f64>() / n;
        let mut cov = 0.0;
        let mut va = 0.0;
        let mut vb = 0.0;
        for (&x, &y) in a.iter().zip(b) {
            cov += (x - ma) * (y - mb);
            va += (x - ma).powi(2);
            vb += (y - mb).powi(2);
        }
        cov / (va.sqrt() * vb.sqrt()).max(1e-12)
    }

    #[test]
    fn produces_all_variables() {
        let mut m = OceanModel::new(OceanConfig::tiny());
        let out = m.step();
        assert_eq!(out.fields.len(), 12);
        let n = OceanConfig::tiny().num_elements();
        for f in &out.fields {
            assert_eq!(f.data.len(), n);
            assert!(f.data.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = OceanModel::new(OceanConfig::tiny()).variable("temperature");
        let b = OceanModel::new(OceanConfig::tiny()).variable("temperature");
        assert_eq!(a, b);
        let mut other_seed = OceanConfig::tiny();
        other_seed.seed ^= 1;
        let c = OceanModel::new(other_seed).variable("temperature");
        assert_ne!(a, c);
    }

    #[test]
    fn surface_warmer_than_deep() {
        let cfg = OceanConfig::tiny();
        let m = OceanModel::new(cfg.clone());
        let t = m.variable("temperature");
        let plane = cfg.nlon * cfg.nlat;
        let surface: f64 = t[..plane].iter().sum::<f64>() / plane as f64;
        let deep: f64 = t[t.len() - plane..].iter().sum::<f64>() / plane as f64;
        assert!(surface > deep + 3.0, "surface {surface} vs deep {deep}");
    }

    #[test]
    fn correlation_is_planted_in_band_only() {
        let cfg = OceanConfig::tiny();
        let m = OceanModel::new(cfg.clone());
        let t = m.variable("temperature");
        let s = m.variable("salinity");
        let (mut band_t, mut band_s) = (Vec::new(), Vec::new());
        let (mut out_t, mut out_s) = (Vec::new(), Vec::new());
        for k in 0..cfg.ndepth {
            for j in 0..cfg.nlat {
                for i in 0..cfg.nlon {
                    let c = (k * cfg.nlat + j) * cfg.nlon + i;
                    if m.in_current_band(j) {
                        band_t.push(t[c]);
                        band_s.push(s[c]);
                    } else {
                        out_t.push(t[c]);
                        out_s.push(s[c]);
                    }
                }
            }
        }
        let band_corr = corr(&band_t, &band_s).abs();
        let out_corr = corr(&out_t, &out_s).abs();
        assert!(band_corr > 0.8, "in-band correlation too weak: {band_corr}");
        assert!(
            band_corr > out_corr + 0.2,
            "band {band_corr} vs outside {out_corr}"
        );
    }

    #[test]
    fn oxygen_anticorrelates_with_temperature() {
        let m = OceanModel::new(OceanConfig::tiny());
        let t = m.variable("temperature");
        let o = m.variable("oxygen");
        assert!(corr(&t, &o) < -0.8);
    }

    #[test]
    fn eddies_drift_over_time() {
        let mut m = OceanModel::new(OceanConfig::tiny());
        let a = m.step().field("temperature").unwrap().data.clone();
        for _ in 0..5 {
            m.step();
        }
        let b = m.step().field("temperature").unwrap().data.clone();
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "unknown ocean variable")]
    fn unknown_variable_panics() {
        let m = OceanModel::new(OceanConfig::tiny());
        let _ = m.variable("plankton_bloom_index");
    }

    #[test]
    fn density_couples_to_temperature_and_salinity() {
        let m = OceanModel::new(OceanConfig::tiny());
        let t = m.variable("temperature");
        let d = m.variable("density");
        // equation of state: density falls as temperature rises
        assert!(corr(&t, &d) < -0.5, "T-density corr {}", corr(&t, &d));
    }

    #[test]
    fn nitrate_rises_with_depth() {
        let cfg = OceanConfig::tiny();
        let m = OceanModel::new(cfg.clone());
        let n = m.variable("nitrate");
        let plane = cfg.nlon * cfg.nlat;
        let surface: f64 = n[..plane].iter().sum::<f64>() / plane as f64;
        let deep: f64 = n[n.len() - plane..].iter().sum::<f64>() / plane as f64;
        assert!(deep > surface + 5.0, "surface {surface} deep {deep}");
    }

    #[test]
    fn pressure_is_nearly_hydrostatic() {
        let cfg = OceanConfig::tiny();
        let m = OceanModel::new(cfg.clone());
        let p = m.variable("pressure");
        let plane = cfg.nlon * cfg.nlat;
        for k in 1..cfg.ndepth {
            let upper: f64 = p[(k - 1) * plane..k * plane].iter().sum::<f64>() / plane as f64;
            let lower: f64 = p[k * plane..(k + 1) * plane].iter().sum::<f64>() / plane as f64;
            assert!(lower > upper + 40.0, "level {k}: {upper} vs {lower}");
        }
    }

    #[test]
    fn chlorophyll_nonnegative_and_surface_intensified() {
        let cfg = OceanConfig::tiny();
        let m = OceanModel::new(cfg.clone());
        let c = m.variable("chlorophyll");
        assert!(c.iter().all(|&v| v >= 0.0));
        let plane = cfg.nlon * cfg.nlat;
        let surface: f64 = c[..plane].iter().sum::<f64>() / plane as f64;
        let deep: f64 = c[c.len() - plane..].iter().sum::<f64>() / plane as f64;
        assert!(surface > deep);
    }
}
