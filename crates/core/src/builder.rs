//! Streaming WAH construction — the paper's Algorithm 1.
//!
//! [`WahBuilder`] appends bits / 31-bit segments / runs to a single
//! compressed vector in O(1) working state, merging fills on the fly, so a
//! bitvector is never held uncompressed. [`MultiWahBuilder`] runs one builder
//! per bin and consumes a stream of bin ids (one per data element), which is
//! exactly the in-place in-situ compression of Algorithm 1: data is scanned
//! once, segment by segment, and each segment is merged into the existing
//! compressed bitvectors.

use crate::binning::Binner;
use crate::wah::{
    fill_bits, is_fill, make_fill, WahVec, FLAG_MASK, LITERAL_MASK, MAX_FILL_BITS, ONE_FILL,
    SEG_BITS, ZERO_FILL,
};
use ibis_obs::{LazyCounter, LazyHistogram};

// Generation-path metrics (family `generation`, see DESIGN.md §6f). The
// fast/mixed split shows how much of the ingest ran the batched
// constant-segment path vs the per-element scatter fallback; run hits count
// segments absorbed into an already-open cross-segment constant run, and the
// histogram records the lengths of the 1-fills those runs became. All
// no-ops when ibis-obs is built without its `obs` feature; the hot loop
// tallies locally and flushes once per `extend_binned` call.
static OBS_FAST_SEGS: LazyCounter = LazyCounter::new("generation.segments.fast");
static OBS_MIXED_SEGS: LazyCounter = LazyCounter::new("generation.segments.mixed");
static OBS_RUN_HITS: LazyCounter = LazyCounter::new("generation.run.hits");
static OBS_RUN_BITS: LazyHistogram =
    LazyHistogram::new("generation.run.bits", ibis_obs::RUN_BITS_BOUNDS);
// Reorder-path metric (family `reorder`, see DESIGN.md §6j): gather chunks
// fed through the fused reorder+bin+compress ingest.
static OBS_GATHER_CHUNKS: LazyCounter = LazyCounter::new("reorder.gather.chunks");

/// Incremental builder for a single [`WahVec`].
///
/// ```
/// use ibis_core::WahBuilder;
///
/// let mut b = WahBuilder::new();
/// b.append_run(false, 1000);
/// b.push_bit(true);
/// b.append_run(false, 1000);
/// let v = b.finish();
/// assert_eq!(v.len(), 2001);
/// assert_eq!(v.count_ones(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct WahBuilder {
    words: Vec<u32>,
    /// Bits committed into `words`; always a multiple of 31.
    committed: u64,
    /// Partial segment not yet committed (LSB-first).
    pending: u32,
    pending_bits: u8,
}

impl WahBuilder {
    /// A builder for an empty vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resumes building from an existing vector (its bits are kept).
    pub fn from_vec(v: WahVec) -> Self {
        let mut words = v.words;
        let len = v.len_bits;
        let tail = len % SEG_BITS;
        let (pending, pending_bits) = if tail != 0 {
            let w = words.pop().expect("non-empty tail requires a word");
            debug_assert!(!is_fill(w), "partial tail must be a literal");
            (w, tail as u8)
        } else {
            (0, 0)
        };
        WahBuilder {
            words,
            committed: len - tail,
            pending,
            pending_bits,
        }
    }

    /// Total bits appended so far.
    #[inline]
    pub fn len(&self) -> u64 {
        self.committed + self.pending_bits as u64
    }

    /// `true` if no bits have been appended.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends a single bit.
    #[inline]
    pub fn push_bit(&mut self, bit: bool) {
        if bit {
            self.pending |= 1 << self.pending_bits;
        }
        self.pending_bits += 1;
        if self.pending_bits as u64 == SEG_BITS {
            let seg = self.pending;
            self.pending = 0;
            self.pending_bits = 0;
            self.append_seg31(seg);
        }
    }

    /// Appends a full 31-bit segment (LSB-first payload). This is the merge
    /// step of Algorithm 1, lines 10–27: an all-ones segment extends or
    /// starts a 1-fill, an all-zeros segment a 0-fill, anything else is
    /// pushed as a literal word.
    ///
    /// # Panics (debug)
    /// The builder must be on a segment boundary.
    #[inline]
    pub fn append_seg31(&mut self, payload: u32) {
        debug_assert_eq!(self.pending_bits, 0, "append_seg31 off segment boundary");
        debug_assert_eq!(payload & !LITERAL_MASK, 0, "payload has flag bits set");
        match payload {
            0 => self.append_fill_aligned(false, SEG_BITS),
            LITERAL_MASK => self.append_fill_aligned(true, SEG_BITS),
            _ => {
                self.words.push(payload);
                self.committed += SEG_BITS;
            }
        }
    }

    /// Appends the low `nbits` bits of `payload` (LSB-first, `nbits` ≤ 31)
    /// in at most two word operations: the low part completes the pending
    /// partial segment, the high part becomes the new pending remainder.
    /// Equivalent to `nbits` [`WahBuilder::push_bit`] calls, but O(1).
    ///
    /// # Panics (debug)
    /// `payload` must have no bits set at or above `nbits`.
    #[inline]
    pub fn append_bits(&mut self, payload: u32, nbits: u8) {
        debug_assert!(nbits as u64 <= SEG_BITS, "append_bits of {nbits} > 31");
        debug_assert!(
            nbits as u64 == SEG_BITS || payload & !((1u32 << nbits) - 1) == 0,
            "payload has bits beyond nbits"
        );
        if nbits == 0 {
            return;
        }
        let total = self.pending_bits + nbits;
        if (total as u64) < SEG_BITS {
            self.pending |= payload << self.pending_bits;
            self.pending_bits = total;
        } else {
            // `pending_bits` < 31 and `nbits` <= 31, so both shifts below
            // stay under 32 and the high bits lost by `<<` are exactly the
            // bits recovered by `>>` into the new pending remainder.
            let seg = (self.pending | (payload << self.pending_bits)) & LITERAL_MASK;
            let consumed = SEG_BITS as u8 - self.pending_bits;
            self.pending = 0;
            self.pending_bits = 0;
            self.append_seg31(seg);
            self.pending = payload >> consumed;
            self.pending_bits = total - SEG_BITS as u8;
        }
    }

    /// Appends `nbits` copies of `bit`, handling any alignment.
    pub fn append_run(&mut self, bit: bool, mut nbits: u64) {
        if self.pending_bits != 0 && nbits > 0 {
            // Head: top the pending segment up word-wise (≤ 30 bits).
            let head = (SEG_BITS - self.pending_bits as u64).min(nbits) as u8;
            self.append_bits(if bit { (1u32 << head) - 1 } else { 0 }, head);
            nbits -= head as u64;
        }
        let whole = nbits - nbits % SEG_BITS;
        if whole > 0 {
            self.append_fill_aligned(bit, whole);
        }
        let tail = (nbits % SEG_BITS) as u8;
        if tail > 0 {
            self.append_bits(if bit { (1u32 << tail) - 1 } else { 0 }, tail);
        }
    }

    /// Appends an aligned fill; `nbits` must be a positive multiple of 31 and
    /// the builder must sit on a segment boundary.
    fn append_fill_aligned(&mut self, bit: bool, mut nbits: u64) {
        debug_assert_eq!(self.pending_bits, 0);
        debug_assert!(nbits > 0 && nbits.is_multiple_of(SEG_BITS));
        self.committed += nbits;
        let flag = if bit { ONE_FILL } else { ZERO_FILL };
        if let Some(last) = self.words.last_mut() {
            if is_fill(*last) && *last & FLAG_MASK == flag {
                let have = fill_bits(*last);
                let take = nbits.min(MAX_FILL_BITS - have);
                debug_assert!(take.is_multiple_of(SEG_BITS));
                if take > 0 {
                    *last += take as u32; // the paper's `LastSeg += 31`, batched
                    nbits -= take;
                }
            }
        }
        while nbits > 0 {
            let take = nbits.min(MAX_FILL_BITS);
            self.words.push(make_fill(bit, take));
            nbits -= take;
        }
    }

    /// Appends the contents of a compressed vector (used to concatenate the
    /// per-sub-block results of parallel generation). O(words of `other`)
    /// even when the receiver sits off a segment boundary: unaligned
    /// literals are spliced with [`WahBuilder::append_bits`] shifts instead
    /// of per-bit pushes, which is what makes the phase-2 concat of
    /// [`crate::build_index_parallel`] linear in compressed words rather
    /// than bits.
    pub fn append_wah(&mut self, other: &WahVec) {
        for run in other.runs() {
            match run {
                crate::runs::Run::Fill(bit, n) => self.append_run(bit, n),
                crate::runs::Run::Literal(payload, nbits) => {
                    if nbits as u64 == SEG_BITS && self.pending_bits == 0 {
                        self.append_seg31(payload);
                    } else {
                        self.append_bits(payload, nbits);
                    }
                }
            }
        }
    }

    /// Clears the builder for a fresh vector, keeping the word allocation.
    pub fn reset(&mut self) {
        self.words.clear();
        self.committed = 0;
        self.pending = 0;
        self.pending_bits = 0;
    }

    /// Finalizes the vector and resets the builder in place, so a caller
    /// holding a long-lived builder (the in-situ pipelines build one index
    /// per field per time-step) can reuse it without reallocating. The
    /// produced vector takes ownership of the accumulated words.
    pub fn finish_reset(&mut self) -> WahVec {
        let len = self.len();
        if self.pending_bits > 0 {
            self.words.push(self.pending & LITERAL_MASK);
        }
        let words = std::mem::take(&mut self.words);
        self.reset();
        WahVec {
            words,
            len_bits: len,
            stats: std::sync::OnceLock::new(),
        }
    }

    /// Finalizes the vector; a partial segment becomes the tail literal.
    pub fn finish(mut self) -> WahVec {
        self.finish_reset()
    }
}

/// Algorithm 1 over all bins at once: one [`WahBuilder`] per bin consuming a
/// stream of bin ids.
///
/// Memory never exceeds the compressed output plus one 31-bit segment per
/// *touched* bin — the property that makes in-situ generation viable on
/// memory-constrained nodes. Bins untouched by a segment are extended with
/// 0-fills lazily (a per-bin segment deficit), so each segment costs
/// O(bins touched), not O(total bins).
///
/// ```
/// use ibis_core::MultiWahBuilder;
///
/// let mut mb = MultiWahBuilder::new(4);
/// for id in [0u32, 1, 1, 2, 3, 3, 2, 0] {
///     mb.push(id);
/// }
/// let bins = mb.finish();
/// assert_eq!(bins.len(), 4);
/// assert_eq!(bins[1].iter_ones().collect::<Vec<_>>(), vec![1, 2]);
/// ```
#[derive(Debug)]
pub struct MultiWahBuilder {
    builders: Vec<WahBuilder>,
    /// Per-bin count of 31-bit segments already appended to its builder.
    appended_segs: Vec<u64>,
    /// Current segment payload per bin (valid only for touched bins).
    segbuf: Vec<u32>,
    /// Bins touched by the current segment.
    touched: Vec<u32>,
    pos_in_seg: u8,
    /// Completed segments so far.
    global_segs: u64,
    /// Total elements consumed.
    total_bits: u64,
}

impl MultiWahBuilder {
    /// A builder producing `nbins` parallel bitvectors.
    pub fn new(nbins: usize) -> Self {
        MultiWahBuilder {
            builders: vec![WahBuilder::new(); nbins],
            appended_segs: vec![0; nbins],
            segbuf: vec![0; nbins],
            touched: Vec::with_capacity(SEG_BITS as usize),
            pos_in_seg: 0,
            global_segs: 0,
            total_bits: 0,
        }
    }

    /// Number of bins.
    #[inline]
    pub fn nbins(&self) -> usize {
        self.builders.len()
    }

    /// Elements consumed so far.
    #[inline]
    pub fn len(&self) -> u64 {
        self.total_bits
    }

    /// `true` if no elements have been consumed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.total_bits == 0
    }

    /// Consumes one element mapped to `bin_id` (Algorithm 1 lines 6–9).
    #[inline]
    pub fn push(&mut self, bin_id: u32) {
        let b = bin_id as usize;
        debug_assert!(b < self.builders.len(), "bin id {b} out of range");
        if self.segbuf[b] == 0 {
            self.touched.push(bin_id);
        }
        self.segbuf[b] |= 1 << self.pos_in_seg;
        self.pos_in_seg += 1;
        self.total_bits += 1;
        if self.pos_in_seg as u64 == SEG_BITS {
            self.flush_seg();
        }
    }

    /// Consumes a slice of bin ids.
    pub fn extend_from(&mut self, ids: &[u32]) {
        for &id in ids {
            self.push(id);
        }
    }

    /// Fused bin+compress fast path: consumes raw values in 31-element
    /// segments and merges each with one of two paths:
    ///
    /// * **constant segment** (all 31 values bin equally — the common case
    ///   on spatially smooth simulation fields), detected from the chunk's
    ///   min/max without binning every element: no per-element `segbuf`
    ///   writes at all; consecutive constant segments of the same bin
    ///   accumulate into a single run that lands as one O(1) 1-fill
    ///   extension on that bin's builder (other bins just grow their lazy
    ///   zero-deficit).
    /// * **mixed segment**: bin into a stack buffer with the binner's
    ///   branchless bulk loop, scatter the 31 ids into `segbuf`, and merge
    ///   via the ordinary segment flush.
    ///
    /// Output is byte-identical to `for &v in data { self.push(binner.bin_of(v)) }`
    /// (property-tested against that oracle); `binner.nbins()` must equal
    /// [`MultiWahBuilder::nbins`].
    pub fn extend_binned(&mut self, binner: &Binner, data: &[f64]) {
        debug_assert_eq!(binner.nbins(), self.nbins(), "binner/builder bin mismatch");
        let mut data = data;
        // Head: scalar-push until the builder sits on a segment boundary.
        if self.pos_in_seg != 0 {
            let head = ((SEG_BITS - self.pos_in_seg as u64) as usize).min(data.len());
            for &v in &data[..head] {
                self.push(binner.bin_of(v));
            }
            data = &data[head..];
        }
        let seg = SEG_BITS as usize;
        let mut ids = [0u32; SEG_BITS as usize];
        // Open cross-segment constant run: (bin, completed segments).
        let mut run: Option<(u32, u64)> = None;
        // Local obs tallies, flushed once (hot-loop hygiene, §6e).
        let mut fast_segs = 0u64;
        let mut mixed_segs = 0u64;
        let mut run_hits = 0u64;
        let mut run_buckets = [0u64; ibis_obs::RUN_BITS_BOUNDS.len() + 1];
        let mut run_bits_sum = 0u64;
        let mut note_run = |segs: u64| {
            if ibis_obs::ENABLED {
                let bits = segs * SEG_BITS;
                run_buckets[ibis_obs::bucket_index(ibis_obs::RUN_BITS_BOUNDS, bits)] += 1;
                run_bits_sum = run_bits_sum.wrapping_add(bits);
            }
        };
        let mut chunks = data.chunks_exact(seg);
        for chunk in &mut chunks {
            // Branchless min/max + NaN sweep (auto-vectorizes). bin_of is
            // monotone in v, so a NaN-free chunk whose extremes share a bin
            // is entirely that bin — two bin_of calls instead of 31.
            let mut mn = chunk[0];
            let mut mx = chunk[0];
            let mut nan = false;
            for &v in chunk {
                mn = if v < mn { v } else { mn };
                mx = if v > mx { v } else { mx };
                nan |= v.is_nan();
            }
            let const_bin = if nan {
                None
            } else {
                let b = binner.bin_of(mn);
                (b == binner.bin_of(mx)).then_some(b)
            };
            if let Some(first) = const_bin {
                fast_segs += 1;
                run = match run {
                    Some((b, k)) if b == first => {
                        run_hits += 1;
                        Some((b, k + 1))
                    }
                    Some((b, k)) => {
                        note_run(k);
                        self.flush_const_run(b, k);
                        Some((first, 1))
                    }
                    None => Some((first, 1)),
                };
            } else {
                if let Some((b, k)) = run.take() {
                    note_run(k);
                    self.flush_const_run(b, k);
                }
                mixed_segs += 1;
                // Scatter the segment; identical to 31 scalar pushes.
                binner.bin_slice_into(chunk, &mut ids);
                for (j, &id) in ids.iter().enumerate() {
                    let b = id as usize;
                    if self.segbuf[b] == 0 {
                        self.touched.push(id);
                    }
                    self.segbuf[b] |= 1 << j;
                }
                self.total_bits += SEG_BITS;
                self.flush_seg();
            }
        }
        if let Some((b, k)) = run.take() {
            note_run(k);
            self.flush_const_run(b, k);
        }
        // Tail: fewer than 31 elements left.
        for &v in chunks.remainder() {
            self.push(binner.bin_of(v));
        }
        if ibis_obs::ENABLED {
            OBS_FAST_SEGS.add(fast_segs);
            OBS_MIXED_SEGS.add(mixed_segs);
            OBS_RUN_HITS.add(run_hits);
            OBS_RUN_BITS.merge_counts(&run_buckets, run_bits_sum);
        }
    }

    /// The fused reorder+bin+compress ingest: consumes the permuted stream
    /// `perm.iter().map(|&o| data[o])` without materializing a permuted
    /// copy of `data`, gathering 31-segment-aligned chunks into a small
    /// scratch buffer and handing each to
    /// [`MultiWahBuilder::extend_binned`]. Byte-identical to
    /// `extend_binned` over the fully permuted array because the batched
    /// path is call-split invariant (property-proven in
    /// `prop_generation.rs`), so the constant-segment and cross-segment
    /// run detection see exactly the same element stream.
    pub fn extend_binned_gather(&mut self, binner: &Binner, data: &[f64], perm: &[u32]) {
        // 64 segments per gather: big enough to amortize the chunk loop,
        // small enough to stay in L1 (16 KiB of f64).
        const GATHER_CHUNK: usize = SEG_BITS as usize * 64;
        let mut scratch: Vec<f64> = Vec::with_capacity(GATHER_CHUNK.min(perm.len()));
        let mut chunks = 0u64;
        for block in perm.chunks(GATHER_CHUNK) {
            scratch.clear();
            scratch.extend(block.iter().map(|&o| data[o as usize]));
            self.extend_binned(binner, &scratch);
            chunks += 1;
        }
        if ibis_obs::ENABLED {
            OBS_GATHER_CHUNKS.add(chunks);
        }
    }

    /// Merges `segs` consecutive all-`bin` segments in O(1): one deficit
    /// settle plus one (possibly merging) 1-fill extension on that bin's
    /// builder; every other bin's zero-deficit grows lazily. Byte-identical
    /// to `segs` scalar segment flushes with only `bin` touched.
    fn flush_const_run(&mut self, bin: u32, segs: u64) {
        debug_assert_eq!(self.pos_in_seg, 0);
        debug_assert!(segs > 0);
        let b = bin as usize;
        let deficit = self.global_segs - self.appended_segs[b];
        if deficit > 0 {
            self.builders[b].append_fill_aligned(false, deficit * SEG_BITS);
        }
        self.builders[b].append_fill_aligned(true, segs * SEG_BITS);
        self.global_segs += segs;
        self.appended_segs[b] = self.global_segs;
        self.total_bits += segs * SEG_BITS;
    }

    /// Merges the completed segment into every touched builder
    /// (Algorithm 1 lines 10–27).
    fn flush_seg(&mut self) {
        for &b in &self.touched {
            let b = b as usize;
            let deficit = self.global_segs - self.appended_segs[b];
            if deficit > 0 {
                self.builders[b].append_fill_aligned(false, deficit * SEG_BITS);
            }
            self.builders[b].append_seg31(self.segbuf[b]);
            self.appended_segs[b] = self.global_segs + 1;
            self.segbuf[b] = 0;
        }
        self.touched.clear();
        self.global_segs += 1;
        self.pos_in_seg = 0;
    }

    /// Resets the builder for a fresh stream over `nbins` bins, keeping
    /// every allocation that can be kept (the per-bin bookkeeping vectors
    /// and the builder list), so pipelines building one index per time-step
    /// stop allocating working state per step.
    pub fn reset(&mut self, nbins: usize) {
        self.builders.truncate(nbins);
        for b in &mut self.builders {
            b.reset();
        }
        self.builders.resize_with(nbins, WahBuilder::new);
        self.appended_segs.clear();
        self.appended_segs.resize(nbins, 0);
        self.segbuf.clear();
        self.segbuf.resize(nbins, 0);
        self.touched.clear();
        self.pos_in_seg = 0;
        self.global_segs = 0;
        self.total_bits = 0;
    }

    /// Finalizes all bins and resets the builder in place (see
    /// [`MultiWahBuilder::reset`]); every bitvector has length equal to the
    /// number of elements consumed.
    pub fn finish_reset(&mut self) -> Vec<WahVec> {
        // Partial tail segment: append deficits then the partial literals.
        let partial = self.pos_in_seg;
        let touched = std::mem::take(&mut self.touched);
        for &b in &touched {
            let b = b as usize;
            let deficit = self.global_segs - self.appended_segs[b];
            if deficit > 0 {
                self.builders[b].append_fill_aligned(false, deficit * SEG_BITS);
            }
            let seg = self.segbuf[b];
            for j in 0..partial {
                self.builders[b].push_bit(seg & (1 << j) != 0);
            }
            self.segbuf[b] = 0;
            self.appended_segs[b] = self.global_segs; // deficit now settled
        }
        let total = self.total_bits;
        let nbins = self.builders.len();
        let out = self
            .builders
            .iter_mut()
            .map(|bld| {
                let miss = total - bld.len();
                if miss > 0 {
                    bld.append_run(false, miss);
                }
                bld.finish_reset()
            })
            .collect();
        self.reset(nbins);
        out
    }

    /// Finalizes all bins; every bitvector has length equal to the number of
    /// elements consumed.
    pub fn finish(mut self) -> Vec<WahVec> {
        self.finish_reset()
    }

    /// [`MultiWahBuilder::finish_reset`], with each bin handed to its
    /// auto-selected codec ([`crate::select_codec`]) on the way out. The
    /// selection reads the stats the finalization already computes, so
    /// batched ingestion pays nothing extra to decide; bins that stay WAH
    /// are moved, not cloned.
    pub fn finish_codecs_reset(&mut self) -> Vec<crate::codec::CodecVec> {
        self.finish_reset()
            .into_iter()
            .map(crate::codec::CodecVec::from_wah_auto_owned)
            .collect()
    }
}

thread_local! {
    /// Per-thread builder scratch shared by [`crate::BitmapIndex::build`]
    /// and the per-block phase of [`crate::build_index_parallel`], so
    /// repeated index builds on one thread (the in-situ pipelines build one
    /// index per field per time-step) reuse the per-bin bookkeeping instead
    /// of allocating it each call.
    static BUILD_SCRATCH: std::cell::RefCell<MultiWahBuilder> =
        std::cell::RefCell::new(MultiWahBuilder::new(0));
}

/// Runs the fused bin+compress fast path over `data` on the thread's
/// reusable builder scratch and returns the finished bins.
pub(crate) fn build_bins_reusing_scratch(binner: &Binner, data: &[f64]) -> Vec<WahVec> {
    BUILD_SCRATCH.with(|cell| {
        let mut mb = cell.borrow_mut();
        mb.reset(binner.nbins());
        mb.extend_binned(binner, data);
        mb.finish_reset()
    })
}

/// [`build_bins_reusing_scratch`] over the permuted stream `data[perm[i]]`
/// (gathered chunk-wise, never materialized whole) — the reorder pass of
/// [`crate::BitmapIndex::build_permuted`].
pub(crate) fn build_bins_reusing_scratch_permuted(
    binner: &Binner,
    data: &[f64],
    perm: &[u32],
) -> Vec<WahVec> {
    BUILD_SCRATCH.with(|cell| {
        let mut mb = cell.borrow_mut();
        mb.reset(binner.nbins());
        mb.extend_binned_gather(binner, data, perm);
        mb.finish_reset()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wah::COUNT_MASK;

    #[test]
    fn push_bits_roundtrip() {
        let bits: Vec<bool> = (0..97).map(|i| i % 5 < 2).collect();
        let mut b = WahBuilder::new();
        for &bit in &bits {
            b.push_bit(bit);
        }
        let v = b.finish();
        assert_eq!(v.to_bools(), bits);
        v.check_canonical().unwrap();
    }

    #[test]
    fn append_run_merges_across_calls() {
        let mut b = WahBuilder::new();
        b.append_run(true, 62);
        b.append_run(true, 62);
        let v = b.finish();
        assert_eq!(v.words().len(), 1);
        assert_eq!(v.count_ones(), 124);
        v.check_canonical().unwrap();
    }

    #[test]
    fn append_run_zero_is_noop() {
        let mut b = WahBuilder::new();
        b.append_run(true, 0);
        b.push_bit(false);
        b.append_run(false, 0);
        let v = b.finish();
        assert_eq!(v.len(), 1);
        assert_eq!(v.count_ones(), 0);
    }

    #[test]
    fn unaligned_run_then_segment() {
        let mut b = WahBuilder::new();
        b.push_bit(true); // off-boundary
        b.append_run(false, 100);
        b.append_run(true, 100);
        let v = b.finish();
        assert_eq!(v.len(), 201);
        assert_eq!(v.count_ones(), 101);
        assert!(v.get(0));
        assert!(!v.get(1));
        assert!(!v.get(100));
        assert!(v.get(101));
        v.check_canonical().unwrap();
    }

    #[test]
    fn fill_overflow_splits() {
        let huge = MAX_FILL_BITS * 2 + SEG_BITS * 3;
        let mut b = WahBuilder::new();
        b.append_run(true, huge);
        let v = b.finish();
        assert_eq!(v.len(), huge);
        assert_eq!(v.count_ones(), huge);
        assert_eq!(v.words().len(), 3);
        v.check_canonical().unwrap();
    }

    #[test]
    fn from_vec_resumes_partial_tail() {
        let bits: Vec<bool> = (0..40).map(|i| i % 2 == 0).collect();
        let v = WahVec::from_bits(bits.iter().copied());
        let mut b = WahBuilder::from_vec(v);
        b.push_bit(true);
        let v2 = b.finish();
        let mut want = bits;
        want.push(true);
        assert_eq!(v2.to_bools(), want);
        v2.check_canonical().unwrap();
    }

    #[test]
    fn from_vec_resumes_aligned() {
        let v = WahVec::ones(62);
        let mut b = WahBuilder::from_vec(v);
        b.append_run(true, 31);
        let v2 = b.finish();
        assert_eq!(v2.len(), 93);
        assert_eq!(v2.words().len(), 1);
    }

    #[test]
    fn append_wah_equals_manual_concat() {
        let a_bits: Vec<bool> = (0..75).map(|i| i % 7 == 0).collect();
        let b_bits: Vec<bool> = (0..50).map(|i| i % 2 == 0).collect();
        let mut bld = WahBuilder::new();
        bld.append_wah(&WahVec::from_bits(a_bits.iter().copied()));
        bld.append_wah(&WahVec::from_bits(b_bits.iter().copied()));
        let v = bld.finish();
        let want: Vec<bool> = a_bits.into_iter().chain(b_bits).collect();
        assert_eq!(v.to_bools(), want);
        v.check_canonical().unwrap();
    }

    #[test]
    fn multi_builder_basic() {
        let ids = [0u32, 1, 1, 2, 3, 3, 2, 0]; // Figure 1's example dataset
        let mut mb = MultiWahBuilder::new(4);
        mb.extend_from(&ids);
        assert_eq!(mb.len(), 8);
        let bins = mb.finish();
        assert_eq!(bins[0].iter_ones().collect::<Vec<_>>(), vec![0, 7]);
        assert_eq!(bins[1].iter_ones().collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(bins[2].iter_ones().collect::<Vec<_>>(), vec![3, 6]);
        assert_eq!(bins[3].iter_ones().collect::<Vec<_>>(), vec![4, 5]);
        for b in &bins {
            assert_eq!(b.len(), 8);
            b.check_canonical().unwrap();
        }
    }

    #[test]
    fn multi_builder_exactly_one_bin_per_position() {
        let ids: Vec<u32> = (0..500).map(|i| (i * i) % 7).collect();
        let mut mb = MultiWahBuilder::new(7);
        mb.extend_from(&ids);
        let bins = mb.finish();
        for pos in 0..500u64 {
            let set: Vec<usize> = (0..7).filter(|&b| bins[b].get(pos)).collect();
            assert_eq!(set, vec![ids[pos as usize] as usize], "position {pos}");
        }
    }

    #[test]
    fn multi_builder_untouched_bin_is_all_zero_fill() {
        let ids = vec![0u32; 310];
        let mut mb = MultiWahBuilder::new(3);
        mb.extend_from(&ids);
        let bins = mb.finish();
        assert_eq!(bins[0].count_ones(), 310);
        assert_eq!(bins[1].count_ones(), 0);
        assert_eq!(
            bins[1].words().len(),
            1,
            "untouched bin should be a single fill"
        );
        assert_eq!(bins[2].words().len(), 1);
        for b in &bins {
            b.check_canonical().unwrap();
        }
    }

    #[test]
    fn multi_builder_partial_tail() {
        let ids = [2u32, 0, 1]; // 3 elements, well under a segment
        let mut mb = MultiWahBuilder::new(3);
        mb.extend_from(&ids);
        let bins = mb.finish();
        for (b, bin) in bins.iter().enumerate() {
            assert_eq!(bin.len(), 3);
            assert_eq!(bin.count_ones(), 1, "bin {b}");
            bin.check_canonical().unwrap();
        }
        assert!(bins[2].get(0));
        assert!(bins[0].get(1));
        assert!(bins[1].get(2));
    }

    #[test]
    fn multi_builder_deficit_spanning_many_segments() {
        // Bin 1 is touched only at the very start and very end; the long gap
        // must appear as one merged 0-fill.
        let mut ids = vec![0u32; 31 * 100];
        ids[0] = 1;
        let last = ids.len() - 1;
        ids[last] = 1;
        let mut mb = MultiWahBuilder::new(2);
        mb.extend_from(&ids);
        let bins = mb.finish();
        assert_eq!(bins[1].count_ones(), 2);
        assert_eq!(
            bins[1].iter_ones().collect::<Vec<_>>(),
            vec![0, last as u64]
        );
        assert!(
            bins[1].words().len() <= 4,
            "gap should compress to one fill"
        );
        bins[0].check_canonical().unwrap();
        bins[1].check_canonical().unwrap();
    }

    #[test]
    fn multi_builder_zero_bins_zero_elems() {
        let mb = MultiWahBuilder::new(0);
        assert!(mb.finish().is_empty());
        let mb = MultiWahBuilder::new(3);
        let bins = mb.finish();
        assert!(bins.iter().all(|b| b.is_empty()));
    }

    #[test]
    fn builder_len_tracks() {
        let mut b = WahBuilder::new();
        assert!(b.is_empty());
        b.push_bit(true);
        assert_eq!(b.len(), 1);
        b.append_run(false, 61);
        assert_eq!(b.len(), 62);
    }

    #[test]
    fn count_mask_capacity_sane() {
        assert!(MAX_FILL_BITS.is_multiple_of(SEG_BITS));
        assert!(MAX_FILL_BITS + SEG_BITS <= COUNT_MASK as u64);
    }
}
