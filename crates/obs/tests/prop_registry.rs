//! Property tests for the metrics registry: counter monotonicity under
//! concurrent increment, snapshot-merge algebra (associative, commutative,
//! equal to a sequential oracle), and histogram bucketing vs a naive fold.

use ibis_obs::{MetricValue, MetricsRegistry, Snapshot};
use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::BTreeMap;

// -- counter monotonicity ---------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Concurrent `add`s: every reading a watcher takes is non-decreasing,
    /// and the final value is exactly the sum of all increments.
    #[test]
    fn counter_is_monotonic_under_concurrent_increment(
        per_thread in vec(vec(0u64..1_000, 0..40), 1..5),
    ) {
        let registry = MetricsRegistry::new();
        let counter = registry.counter("prop.concurrent");
        let expected: u64 = per_thread.iter().flatten().sum();
        let mut readings = Vec::new();
        std::thread::scope(|s| {
            for increments in &per_thread {
                let counter = registry.counter("prop.concurrent");
                s.spawn(move || {
                    for &inc in increments {
                        counter.add(inc);
                    }
                });
            }
            // watcher: sample while writers run
            let mut last = 0u64;
            for _ in 0..200 {
                let now = counter.value();
                readings.push((last, now));
                last = now;
            }
        });
        for (before, after) in readings {
            prop_assert!(after >= before, "counter went backwards: {before} -> {after}");
        }
        prop_assert_eq!(counter.value(), expected);
        let snap = registry.snapshot();
        prop_assert_eq!(
            snap.get("prop.concurrent"),
            Some(&MetricValue::Counter(expected))
        );
    }
}

// -- snapshot merge algebra -------------------------------------------------

/// Two bucket layouts so the strategy can produce both mergeable and
/// conflicting histogram pairs.
const BOUNDS_A: &[u64] = &[10, 100, 1_000];
const BOUNDS_B: &[u64] = &[5, 50];

fn histogram_value(bounds: &'static [u64]) -> impl Strategy<Value = MetricValue> {
    vec(0u64..50, bounds.len() + 1).prop_map(move |buckets| {
        let count = buckets.iter().sum();
        let sum = buckets.iter().enumerate().map(|(i, b)| i as u64 * b).sum();
        MetricValue::Histogram {
            bounds: bounds.to_vec(),
            buckets,
            count,
            sum,
        }
    })
}

fn metric_value() -> impl Strategy<Value = MetricValue> {
    prop_oneof![
        (0u64..10_000).prop_map(MetricValue::Counter),
        (-100i64..100, -100i64..100).prop_map(|(value, max)| MetricValue::Gauge { value, max }),
        histogram_value(BOUNDS_A),
        histogram_value(BOUNDS_B),
        Just(MetricValue::Conflict),
    ]
}

fn snapshot() -> impl Strategy<Value = Snapshot> {
    // a small name pool forces overlap between generated snapshots, which
    // is where the merge algebra actually gets exercised
    vec(((0usize..6), metric_value()), 0..8).prop_map(|pairs| {
        let entries: BTreeMap<String, MetricValue> = pairs
            .into_iter()
            .map(|(i, v)| (format!("family{}.metric{i}", i % 2), v))
            .collect();
        Snapshot::from_entries(entries)
    })
}

/// Independent re-statement of the merge semantics: one sequential pass
/// that combines all snapshots name by name.
fn oracle_merge(snaps: &[Snapshot]) -> Snapshot {
    let mut out: BTreeMap<String, MetricValue> = BTreeMap::new();
    for snap in snaps {
        for (name, value) in snap.entries() {
            let combined = match (out.get(name), value) {
                (None, v) => v.clone(),
                (Some(MetricValue::Counter(a)), MetricValue::Counter(b)) => {
                    MetricValue::Counter(a + b)
                }
                (
                    Some(MetricValue::Gauge { value: v1, max: m1 }),
                    MetricValue::Gauge { value: v2, max: m2 },
                ) => MetricValue::Gauge {
                    value: v1 + v2,
                    max: (*m1).max(*m2),
                },
                (
                    Some(MetricValue::Histogram {
                        bounds: b1,
                        buckets: k1,
                        count: c1,
                        sum: s1,
                    }),
                    MetricValue::Histogram {
                        bounds: b2,
                        buckets: k2,
                        count: c2,
                        sum: s2,
                    },
                ) if b1 == b2 && k1.len() == k2.len() => MetricValue::Histogram {
                    bounds: b1.clone(),
                    buckets: k1.iter().zip(k2).map(|(a, b)| a + b).collect(),
                    count: c1 + c2,
                    sum: s1.wrapping_add(*s2),
                },
                _ => MetricValue::Conflict,
            };
            out.insert(name.clone(), combined);
        }
    }
    Snapshot::from_entries(out)
}

proptest! {
    #[test]
    fn merge_is_associative(a in snapshot(), b in snapshot(), c in snapshot()) {
        prop_assert_eq!(a.merge(&b).merge(&c), a.merge(&b.merge(&c)));
    }

    #[test]
    fn merge_is_commutative(a in snapshot(), b in snapshot()) {
        prop_assert_eq!(a.merge(&b), b.merge(&a));
    }

    #[test]
    fn merge_matches_sequential_oracle(snaps in vec(snapshot(), 0..5)) {
        let folded = snaps
            .iter()
            .fold(Snapshot::default(), |acc, s| acc.merge(s));
        prop_assert_eq!(folded, oracle_merge(&snaps));
    }

    #[test]
    fn empty_snapshot_is_merge_identity(a in snapshot()) {
        let empty = Snapshot::default();
        prop_assert_eq!(a.merge(&empty), a.clone());
        prop_assert_eq!(empty.merge(&a), a);
    }
}

// -- histogram bucketing ----------------------------------------------------

fn strict_bounds() -> impl Strategy<Value = Vec<u64>> {
    // strictly increasing bounds from positive increments
    vec(1u64..1_000, 1..6).prop_map(|incs| {
        incs.iter()
            .scan(0u64, |acc, &i| {
                *acc += i;
                Some(*acc)
            })
            .collect()
    })
}

proptest! {
    #[test]
    fn histogram_buckets_equal_naive_fold(
        bounds in strict_bounds(),
        values in vec(0u64..5_000, 0..200),
    ) {
        let registry = MetricsRegistry::new();
        let h = registry.histogram("prop.hist", &bounds);
        for &v in &values {
            h.record(v);
        }

        // naive oracle: first bucket whose bound is >= v, by linear scan
        let mut expected = vec![0u64; bounds.len() + 1];
        for &v in &values {
            let idx = bounds
                .iter()
                .position(|&b| v <= b)
                .unwrap_or(bounds.len());
            expected[idx] += 1;
        }

        let Some(MetricValue::Histogram { buckets, count, sum, bounds: got_bounds }) =
            registry.snapshot().get("prop.hist").cloned()
        else {
            return Err(TestCaseError::Fail("histogram missing from snapshot".into()));
        };
        prop_assert_eq!(got_bounds, bounds);
        prop_assert_eq!(buckets, expected);
        prop_assert_eq!(count, values.len() as u64);
        prop_assert_eq!(sum, values.iter().fold(0u64, |a, &v| a.wrapping_add(v)));
    }

    /// The batch path (`bucket_index` locally + one `merge_counts`) must be
    /// indistinguishable from per-value `record`.
    #[test]
    fn merge_counts_equals_repeated_record(
        bounds in strict_bounds(),
        values in vec(0u64..5_000, 0..200),
    ) {
        let registry = MetricsRegistry::new();
        let one_by_one = registry.histogram("prop.single", &bounds);
        for &v in &values {
            one_by_one.record(v);
        }

        let mut local = vec![0u64; bounds.len() + 1];
        let mut sum = 0u64;
        for &v in &values {
            local[ibis_obs::bucket_index(&bounds, v)] += 1;
            sum = sum.wrapping_add(v);
        }
        let batched = registry.histogram("prop.batched", &bounds);
        batched.merge_counts(&local, sum);

        prop_assert_eq!(batched.bucket_counts(), one_by_one.bucket_counts());
        prop_assert_eq!(batched.count(), one_by_one.count());
        prop_assert_eq!(batched.sum(), one_by_one.sum());
    }
}
