//! The query engine: subset and correlation queries served from a durable
//! store through the [`CachedStore`], with a JSON batch protocol for the
//! `ibis query` CLI.
//!
//! This is the read path the ROADMAP's "serve heavy traffic" goal needs:
//! open a finished run directory once, then answer any number of queries
//! against it, decoding each `(variable, step)` blob at most once per cache
//! residency. The engine is `&self` throughout and the cache is sharded,
//! so one engine instance serves concurrent reader threads.
//!
//! Every failure — unknown variable, malformed region, NaN bound, corrupt
//! blob, bad JSON — is a structured [`IbisError`]; no query input can panic
//! the process (the adversarial corpus in `tests/query_engine.rs` holds
//! this line). A batch keeps going after a failed query: each request gets
//! its own `Result`, so one typo doesn't void an expensive batch.
//!
//! # Batch protocol
//!
//! ```json
//! {"queries": [
//!   {"kind": "subset", "step": 0, "variable": "temperature",
//!    "value_range": [2.0, 5.0], "region": [0, 4096]},
//!   {"kind": "correlation", "step": 0,
//!    "var_a": "temperature", "var_b": "salinity",
//!    "value_a": [18.0, 30.0], "region": [0, 4096]}
//! ]}
//! ```
//!
//! Answers come back in request order as `{"answers": [...]}`, each either
//! `{"ok": {...}}` or `{"error": "..."}`.

use crate::cache::{CacheStats, CachedStore};
use crate::error::{IbisError, Result};
use crate::json::{self, Json};
use ibis_analysis::{
    correlation_query_ml, correlation_query_ml_mapped, CorrelationAnswer, SubsetQuery,
};
use ibis_obs::LazyCounter;
use std::ops::Range;
use std::time::Instant;

static OBS_QUERIES_OK: LazyCounter = LazyCounter::new("query.engine.ok");
static OBS_QUERIES_REJECTED: LazyCounter = LazyCounter::new("query.engine.rejected");
// Lossy filter + exact refine path (family `lossy`, see DESIGN.md §6l).
static OBS_LOSSY_FILTER_USED: LazyCounter = LazyCounter::new("lossy.filter.used");
static OBS_LOSSY_FILTER_EMPTY: LazyCounter = LazyCounter::new("lossy.filter.empty");
static OBS_LOSSY_REFINE_ROWS: LazyCounter = LazyCounter::new("lossy.refine.rows");

/// One query against the store.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryRequest {
    /// Count the elements of one variable matching a subset predicate.
    Subset {
        /// Time-step to query.
        step: usize,
        /// Variable to query.
        variable: String,
        /// The predicate.
        query: SubsetQuery,
    },
    /// Correlate two variables of one step over their subset predicates.
    Correlation {
        /// Time-step to query.
        step: usize,
        /// First variable.
        var_a: String,
        /// Second variable.
        var_b: String,
        /// Predicate on the first variable.
        query_a: SubsetQuery,
        /// Predicate on the second variable.
        query_b: SubsetQuery,
    },
}

/// A successful query's answer.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryAnswer {
    /// Answer to a [`QueryRequest::Subset`].
    Subset {
        /// Elements matching the predicate.
        selected: u64,
        /// Elements the variable covers at that step.
        of: u64,
    },
    /// Answer to a [`QueryRequest::Correlation`].
    Correlation(CorrelationAnswer),
}

/// A query-serving session over one finished run directory.
#[derive(Debug)]
pub struct QueryEngine {
    cache: CachedStore,
    /// Largest companion FPR subset queries may consult as a pre-filter;
    /// `None` answers everything from the exact indices alone.
    lossy_fpr: Option<f64>,
}

impl QueryEngine {
    /// Serves queries from `cache`.
    pub fn new(cache: CachedStore) -> Self {
        QueryEngine {
            cache,
            lossy_fpr: None,
        }
    }

    /// Lets subset queries consult a step's stored lossy superset
    /// companion (of FPR at most `fpr`) as a cheap pre-filter before the
    /// exact index. Answers stay byte-identical to the exact engine: the
    /// companion only ever *admits* extra rows, the exact refine removes
    /// them, and an empty filter result proves the exact answer empty
    /// without loading the exact index at all.
    ///
    /// # Panics
    /// When `fpr` is outside the supported range (see
    /// [`ibis_core::valid_fpr`]); `0.0` disables the filter.
    pub fn with_lossy_fpr(mut self, fpr: f64) -> Self {
        assert!(
            ibis_core::valid_fpr(fpr),
            "lossy FPR {fpr} outside the supported range"
        );
        self.lossy_fpr = (fpr > 0.0).then_some(fpr);
        self
    }

    /// The FPR ceiling set by [`QueryEngine::with_lossy_fpr`], if any.
    pub fn lossy_fpr(&self) -> Option<f64> {
        self.lossy_fpr
    }

    /// The cache behind this engine (stats, catalog).
    pub fn cache(&self) -> &CachedStore {
        &self.cache
    }

    /// This engine's cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Answers one query. Total: every malformed or unanswerable request
    /// is a structured error.
    pub fn run(&self, request: &QueryRequest) -> Result<QueryAnswer> {
        self.run_with_deadline(request, None)
    }

    /// [`QueryEngine::run`] under a wall-clock budget: the deadline is
    /// re-checked before *every* bitmap load, so a request that can no
    /// longer answer in time stops before paying for the next decode
    /// instead of wasting it. An expired budget surfaces as
    /// [`IbisError::DeadlineExceeded`] (`deadline` carries the overrun in
    /// seconds). `None` means no budget — identical to `run`.
    pub fn run_with_deadline(
        &self,
        request: &QueryRequest,
        deadline: Option<Instant>,
    ) -> Result<QueryAnswer> {
        let result = self.run_inner(request, deadline);
        match &result {
            Ok(_) => OBS_QUERIES_OK.inc(),
            Err(_) => OBS_QUERIES_REJECTED.inc(),
        }
        result
    }

    fn run_inner(&self, request: &QueryRequest, deadline: Option<Instant>) -> Result<QueryAnswer> {
        match request {
            QueryRequest::Subset {
                step,
                variable,
                query,
            } => {
                deadline_check(deadline, "subset load")?;
                // A step ingested under a non-identity row order stores
                // rows permuted; region predicates arrive in *original*
                // row ids, so route them through the step's inverse
                // permutation (value ranges are order-invariant).
                let order = self.cache.get_order(*step)?;
                // Lossy fast path: evaluate the (much smaller) superset
                // companion first. Empty means provably-empty — the exact
                // index is never touched; otherwise the exact selection is
                // refined to the admitted rows, a no-op by the superset
                // invariant, so the answer is byte-identical either way.
                let filter = match self.lossy_fpr {
                    Some(ceiling) => self
                        .cache
                        .get_lossy(variable, *step)?
                        .filter(|c| c.fpr <= ceiling),
                    None => None,
                };
                if let Some(companion) = &filter {
                    let lsel = match order.as_deref() {
                        Some((_, perm)) => query.evaluate_mapped(&companion.index, perm),
                        None => query.evaluate(&companion.index),
                    }
                    .map_err(IbisError::Query)?;
                    OBS_LOSSY_FILTER_USED.inc();
                    let admitted = lsel.count_ones();
                    if admitted == 0 {
                        OBS_LOSSY_FILTER_EMPTY.inc();
                        return Ok(QueryAnswer::Subset {
                            selected: 0,
                            of: companion.index.len(),
                        });
                    }
                    OBS_LOSSY_REFINE_ROWS.add(admitted);
                    deadline_check(deadline, "subset refine load")?;
                    let ml = self.cache.get(variable, *step)?;
                    let sel = match order.as_deref() {
                        Some((_, perm)) => query.evaluate_ml_mapped(&ml, perm),
                        None => query.evaluate_ml(&ml),
                    }
                    .map_err(IbisError::Query)?;
                    let refined = sel.and(&lsel);
                    debug_assert_eq!(refined, sel, "companion admitted fewer rows than exact");
                    return Ok(QueryAnswer::Subset {
                        selected: refined.count_ones(),
                        of: ml.low().len(),
                    });
                }
                let ml = self.cache.get(variable, *step)?;
                let sel = match order.as_deref() {
                    Some((_, perm)) => query.evaluate_ml_mapped(&ml, perm),
                    None => query.evaluate_ml(&ml),
                }
                .map_err(IbisError::Query)?;
                Ok(QueryAnswer::Subset {
                    selected: sel.count_ones(),
                    of: ml.low().len(),
                })
            }
            QueryRequest::Correlation {
                step,
                var_a,
                var_b,
                query_a,
                query_b,
            } => {
                deadline_check(deadline, "correlation load a")?;
                let a = self.cache.get(var_a, *step)?;
                deadline_check(deadline, "correlation load b")?;
                let b = self.cache.get(var_b, *step)?;
                // Both operands of one step share the step's permutation
                // (orders are per step, not per variable), so their
                // selections stay row-aligned under the AND.
                let order = self.cache.get_order(*step)?;
                match order.as_deref() {
                    Some((_, perm)) => correlation_query_ml_mapped(&a, &b, query_a, query_b, perm),
                    None => correlation_query_ml(&a, &b, query_a, query_b),
                }
                .map(QueryAnswer::Correlation)
                .map_err(IbisError::Query)
            }
        }
    }

    /// Answers every query of a batch, in order. Failures are per-request;
    /// the batch always completes.
    pub fn run_batch(&self, requests: &[QueryRequest]) -> Vec<Result<QueryAnswer>> {
        requests.iter().map(|r| self.run(r)).collect()
    }

    /// Parses a JSON batch document, runs it, and renders the answers as
    /// JSON. Only a document malformed at the top level errors; per-query
    /// problems are reported inline in the answers array.
    pub fn run_batch_json(&self, text: &str) -> Result<String> {
        let requests = parse_batch(text)?;
        let answers = self.run_batch(&requests);
        Ok(render_answers(&answers))
    }
}

/// Fails fast when a request's wall-clock budget has expired; `site`
/// names the load about to be skipped.
pub(crate) fn deadline_check(deadline: Option<Instant>, site: &str) -> Result<()> {
    let Some(d) = deadline else { return Ok(()) };
    let now = Instant::now();
    if now >= d {
        return Err(IbisError::DeadlineExceeded {
            site: site.to_string(),
            deadline: (now - d).as_secs_f64(),
        });
    }
    Ok(())
}

fn bad(index: Option<usize>, reason: impl Into<String>) -> IbisError {
    IbisError::BadRequest {
        index,
        reason: reason.into(),
    }
}

/// Parses the `{"queries": [...]}` batch document into typed requests.
pub fn parse_batch(text: &str) -> Result<Vec<QueryRequest>> {
    let doc = json::parse(text).map_err(|e| bad(None, e.to_string()))?;
    parse_batch_doc(&doc)
}

/// Parses the `queries` array of an already-parsed batch document — the
/// serving front end parses each socket frame once (to pick up
/// frame-level fields like `deadline_ms`) and hands the document here.
pub(crate) fn parse_batch_doc(doc: &Json) -> Result<Vec<QueryRequest>> {
    let queries = doc
        .get("queries")
        .ok_or_else(|| bad(None, "missing \"queries\" field"))?
        .as_arr()
        .ok_or_else(|| bad(None, "\"queries\" must be an array"))?;
    queries
        .iter()
        .enumerate()
        .map(|(i, q)| parse_request(q).map_err(|reason| bad(Some(i), reason)))
        .collect()
}

fn parse_request(q: &Json) -> std::result::Result<QueryRequest, String> {
    let kind = q
        .get("kind")
        .and_then(Json::as_str)
        .ok_or("missing \"kind\"")?;
    let step = parse_step(q)?;
    match kind {
        "subset" => Ok(QueryRequest::Subset {
            step,
            variable: required_str(q, "variable")?,
            query: parse_subset(q, "value_range")?,
        }),
        "correlation" => Ok(QueryRequest::Correlation {
            step,
            var_a: required_str(q, "var_a")?,
            var_b: required_str(q, "var_b")?,
            query_a: parse_subset(q, "value_a")?,
            query_b: parse_subset(q, "value_b")?,
        }),
        other => Err(format!("unknown kind {other:?}")),
    }
}

fn parse_step(q: &Json) -> std::result::Result<usize, String> {
    let n = match q.get("step") {
        None => return Ok(0),
        Some(v) => v.as_num().ok_or("\"step\" must be a number")?,
    };
    if n < 0.0 || n.fract() != 0.0 || n > usize::MAX as f64 {
        return Err(format!("\"step\" must be a non-negative integer, got {n}"));
    }
    Ok(n as usize)
}

fn required_str(q: &Json, key: &str) -> std::result::Result<String, String> {
    q.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field {key:?}"))
}

/// Builds the [`SubsetQuery`] from a request's optional `value_key` pair
/// and shared `region` pair.
fn parse_subset(q: &Json, value_key: &str) -> std::result::Result<SubsetQuery, String> {
    let mut out = SubsetQuery::all();
    if let Some(v) = q.get(value_key) {
        let (lo, hi) = num_pair(v, value_key)?;
        out = out.with_value(lo, hi);
    }
    if let Some(v) = q.get("region") {
        let (lo, hi) = num_pair(v, "region")?;
        if lo < 0.0 || hi < 0.0 || lo.fract() != 0.0 || hi.fract() != 0.0 {
            return Err(format!(
                "\"region\" bounds must be non-negative integers, got [{lo}, {hi}]"
            ));
        }
        out = out.with_region(lo as u64..hi as u64);
    }
    Ok(out)
}

fn num_pair(v: &Json, key: &str) -> std::result::Result<(f64, f64), String> {
    match v.as_arr() {
        Some([a, b]) => match (a.as_num(), b.as_num()) {
            (Some(a), Some(b)) => Ok((a, b)),
            _ => Err(format!("{key:?} entries must be numbers")),
        },
        _ => Err(format!("{key:?} must be a two-element array")),
    }
}

/// Renders one successful answer as its `{"ok": {...}}` JSON object —
/// shared between the batch renderer and the serving front end.
pub(crate) fn render_ok(answer: &QueryAnswer) -> String {
    match answer {
        QueryAnswer::Subset { selected, of } => {
            format!("{{\"ok\": {{\"kind\": \"subset\", \"selected\": {selected}, \"of\": {of}}}}}")
        }
        QueryAnswer::Correlation(ans) => {
            let pearson = ans
                .pearson
                .map(json::num)
                .unwrap_or_else(|| "null".to_string());
            let mean = |m: &Option<ibis_analysis::Estimate>| match m {
                Some(e) => format!(
                    "{{\"value\": {}, \"bound\": {}}}",
                    json::num(e.value),
                    json::num(e.bound)
                ),
                None => "null".to_string(),
            };
            format!(
                "{{\"ok\": {{\"kind\": \"correlation\", \"selected\": {}, \
                 \"mutual_information\": {}, \"conditional_entropy\": {}, \
                 \"pearson\": {}, \"mean_a\": {}, \"mean_b\": {}}}}}",
                ans.selected,
                json::num(ans.mutual_information),
                json::num(ans.conditional_entropy),
                pearson,
                mean(&ans.mean_a),
                mean(&ans.mean_b),
            )
        }
    }
}

/// Renders a batch's answers as the `{"answers": [...]}` document.
pub fn render_answers(answers: &[Result<QueryAnswer>]) -> String {
    let mut out = String::from("{\"answers\": [");
    for (i, a) in answers.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        match a {
            Ok(answer) => out.push_str(&render_ok(answer)),
            Err(e) => {
                out.push_str(&format!(
                    "{{\"error\": \"{}\"}}",
                    json::escape(&e.to_string())
                ));
            }
        }
    }
    out.push_str("]}");
    out
}

/// Convenience for tests and the CLI: a region request as a typed range.
pub fn region_request(step: usize, variable: &str, range: Range<u64>) -> QueryRequest {
    QueryRequest::Subset {
        step,
        variable: variable.to_string(),
        query: SubsetQuery::region(range),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{Store, StoreWriter};
    use ibis_core::{Binner, BitmapIndex};
    use std::path::PathBuf;

    fn test_store(name: &str) -> (PathBuf, Store) {
        let dir = std::env::temp_dir().join(format!("ibis-engine-{name}"));
        std::fs::remove_dir_all(&dir).ok();
        let mut w = StoreWriter::create(&dir).unwrap();
        for step in [0usize, 2] {
            let temp: Vec<f64> = (0..3000)
                .map(|i| ((i * 7 + step * 11) % 300) as f64 / 10.0)
                .collect();
            let salt: Vec<f64> = temp.iter().map(|t| 30.0 + t / 10.0).collect();
            w.put(
                step,
                "temperature",
                &BitmapIndex::build(&temp, Binner::fixed_width(0.0, 30.0, 64)),
            )
            .unwrap();
            w.put(
                step,
                "salinity",
                &BitmapIndex::build(&salt, Binner::fixed_width(29.0, 34.0, 64)),
            )
            .unwrap();
        }
        w.finish().unwrap();
        let store = Store::open(&dir).unwrap();
        (dir, store)
    }

    fn engine(store: Store) -> QueryEngine {
        QueryEngine::new(CachedStore::new(store, 64 << 20))
    }

    #[test]
    fn subset_and_correlation_round_trip() {
        let (dir, store) = test_store("roundtrip");
        let e = engine(store);
        let ans = e
            .run(&QueryRequest::Subset {
                step: 0,
                variable: "temperature".into(),
                query: SubsetQuery::value(0.0, 15.0),
            })
            .unwrap();
        let QueryAnswer::Subset { selected, of } = ans else {
            panic!("wrong answer kind");
        };
        assert_eq!(of, 3000);
        assert!(selected > 0 && selected < of);

        let ans = e
            .run(&QueryRequest::Correlation {
                step: 0,
                var_a: "temperature".into(),
                var_b: "salinity".into(),
                query_a: SubsetQuery::all(),
                query_b: SubsetQuery::all(),
            })
            .unwrap();
        let QueryAnswer::Correlation(c) = ans else {
            panic!("wrong answer kind");
        };
        assert_eq!(c.selected, 3000);
        assert!(c.pearson.unwrap() > 0.9, "salinity tracks temperature");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn repeated_queries_hit_the_cache() {
        let (dir, store) = test_store("warm");
        let e = engine(store);
        let req = QueryRequest::Correlation {
            step: 0,
            var_a: "temperature".into(),
            var_b: "salinity".into(),
            query_a: SubsetQuery::value(0.0, 20.0),
            query_b: SubsetQuery::all(),
        };
        let first = e.run(&req).unwrap();
        for _ in 0..5 {
            assert_eq!(e.run(&req).unwrap(), first);
        }
        let st = e.cache_stats();
        assert_eq!(st.misses, 2, "one decode per variable");
        assert_eq!(st.hits, 10, "every repeat served warm");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn json_batch_end_to_end() {
        let (dir, store) = test_store("batch");
        let e = engine(store);
        let out = e
            .run_batch_json(
                r#"{"queries": [
                    {"kind": "subset", "step": 0, "variable": "temperature",
                     "value_range": [0.0, 15.0], "region": [0, 1500]},
                    {"kind": "correlation", "step": 2,
                     "var_a": "temperature", "var_b": "salinity"},
                    {"kind": "subset", "step": 0, "variable": "no_such_var"}
                ]}"#,
            )
            .unwrap();
        // answers parse back, in request order, errors inline
        let doc = json::parse(&out).unwrap();
        let answers = doc.get("answers").unwrap().as_arr().unwrap();
        assert_eq!(answers.len(), 3);
        assert!(answers[0].get("ok").is_some());
        let corr = answers[1].get("ok").unwrap();
        assert_eq!(corr.get("kind").unwrap().as_str(), Some("correlation"));
        assert_eq!(corr.get("selected").unwrap().as_num(), Some(3000.0));
        let err = answers[2].get("error").unwrap().as_str().unwrap();
        assert!(err.contains("no_such_var"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn malformed_batches_are_typed_errors() {
        let (dir, store) = test_store("badbatch");
        let e = engine(store);
        for bad in [
            "not json at all",
            "{}",
            r#"{"queries": 3}"#,
            r#"{"queries": [{"kind": "nope"}]}"#,
            r#"{"queries": [{"kind": "subset"}]}"#,
            r#"{"queries": [{"kind": "subset", "variable": "temperature", "step": -1}]}"#,
            r#"{"queries": [{"kind": "subset", "variable": "temperature", "step": 1.5}]}"#,
            r#"{"queries": [{"kind": "subset", "variable": "temperature", "region": [5]}]}"#,
            r#"{"queries": [{"kind": "subset", "variable": "temperature", "region": [-1, 5]}]}"#,
            r#"{"queries": [{"kind": "subset", "variable": "temperature", "value_range": ["a", 5]}]}"#,
            r#"{"queries": [{"kind": "correlation", "var_a": "temperature"}]}"#,
        ] {
            let err = e.run_batch_json(bad).unwrap_err();
            assert!(
                matches!(err, IbisError::BadRequest { .. }),
                "{bad:?} → {err}"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn expired_deadline_stops_before_the_next_load() {
        let (dir, store) = test_store("deadline");
        let e = engine(store);
        let past = Instant::now() - std::time::Duration::from_millis(5);
        let err = e
            .run_with_deadline(&region_request(0, "temperature", 0..10), Some(past))
            .unwrap_err();
        assert!(matches!(err, IbisError::DeadlineExceeded { .. }), "{err}");
        // nothing was decoded: the check fires before the load
        assert_eq!(e.cache_stats().misses, 0);
        // a generous deadline answers normally
        let far = Instant::now() + std::time::Duration::from_secs(60);
        e.run_with_deadline(&region_request(0, "temperature", 0..10), Some(far))
            .unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn query_errors_flow_through_ibis_error() {
        let (dir, store) = test_store("flow");
        let e = engine(store);
        // out-of-range region against a live store: Err, not panic (the
        // regression the panic-free rewrite exists for)
        let err = e
            .run(&region_request(0, "temperature", 0..1_000_000))
            .unwrap_err();
        assert!(
            matches!(
                err,
                IbisError::Query(ibis_analysis::QueryError::RegionOutOfRange { len: 3000, .. })
            ),
            "{err}"
        );
        // NaN bound through the typed API
        let err = e
            .run(&QueryRequest::Subset {
                step: 0,
                variable: "temperature".into(),
                query: SubsetQuery::value(f64::NAN, 1.0),
            })
            .unwrap_err();
        assert!(matches!(
            err,
            IbisError::Query(ibis_analysis::QueryError::NanBound { .. })
        ));
        // unknown step/variable
        let err = e.run(&region_request(99, "temperature", 0..1)).unwrap_err();
        assert!(matches!(err, IbisError::NotFound { step: 99, .. }));
        std::fs::remove_dir_all(&dir).ok();
    }
}
