//! Property tests for the query layer: the planner + prepared-selection
//! engine against a full-data scan oracle (filter raw values by range and
//! positions, build the joint histogram directly from data pairs), across
//! every binner kind — plus the guarantee that multi-level evaluation and
//! every planner strategy produce byte-identical selections, and that no
//! generated query (inverted, empty, NaN, out-of-range) ever panics.

use ibis_analysis::{
    correlation_query, correlation_query_ml, joint_counts_selected, joint_counts_selected_naive,
    QueryError, SubsetQuery,
};
use ibis_core::{Binner, BitmapIndex, MultiLevelIndex, WahVec};
use proptest::prelude::*;

/// One binner of each kind the crate supports, all covering ±50.
fn any_binner() -> impl Strategy<Value = Binner> {
    prop_oneof![
        (1usize..24).prop_map(|n| Binner::fixed_width(-50.0, 50.0, n)),
        Just(Binner::precision(-50.0, 50.0, 0)),
        Just(Binner::precision(-50.0, 50.0, -1)),
        Just(Binner::distinct_ints(-50, 50)),
        proptest::collection::vec(-50i32..50, 2..12).prop_map(|mut edges| {
            edges.sort_unstable();
            edges.dedup();
            if edges.len() < 2 {
                edges = vec![-50, 50];
            }
            Binner::from_edges(edges.into_iter().map(f64::from).collect())
        }),
    ]
}

/// Data plus a binner over the same domain.
fn data_and_binner() -> impl Strategy<Value = (Vec<f64>, Binner)> {
    (
        proptest::collection::vec(-50.0f64..50.0, 1..400),
        any_binner(),
    )
}

/// A subset query: optional value range (sometimes inverted or empty),
/// optional position range (kept in-bounds; out-of-range is tested
/// separately as an error path).
fn subset_query(n: usize) -> impl Strategy<Value = SubsetQuery> {
    (
        any::<bool>(),
        (-55.0f64..55.0, -55.0f64..55.0),
        any::<bool>(),
        (0..n as u64 + 1, 0..n as u64 + 1),
    )
        .prop_map(|(with_value, (lo, hi), with_region, (a, b))| {
            let mut q = SubsetQuery::all();
            if with_value {
                q = q.with_value(lo, hi);
            }
            if with_region {
                q = q.with_region(a.min(b)..a.max(b));
            }
            q
        })
}

/// The scan oracle: an element is selected iff its bin lies in the span
/// the value interval touches and its position is inside the region.
/// (Value predicates are bin-granular by definition — the index can only
/// answer at bin resolution — so the oracle maps each raw value through
/// `bin_of` and checks span membership, scanning the data directly.)
fn scan_selection(data: &[f64], index: &BitmapIndex, q: &SubsetQuery) -> Vec<bool> {
    let span = q.value_range.map(|(lo, hi)| index.bin_span(lo, hi));
    data.iter()
        .enumerate()
        .map(|(i, &v)| {
            let value_ok = match span {
                None => true,
                Some(None) => false,
                Some(Some((b0, b1))) => {
                    let b = index.binner().bin_of(v) as usize;
                    (b0..=b1).contains(&b)
                }
            };
            let region_ok = q
                .position_range
                .as_ref()
                .is_none_or(|r| r.contains(&(i as u64)));
            value_ok && region_ok
        })
        .collect()
}

fn has_nan(q: &SubsetQuery) -> bool {
    matches!(q.value_range, Some((lo, hi)) if lo.is_nan() || hi.is_nan())
}

proptest! {
    #[test]
    fn evaluate_matches_scan_oracle(
        (data, binner) in data_and_binner(),
        lo in -55.0f64..55.0,
        hi in -55.0f64..55.0,
        start_frac in 0.0f64..1.0,
        len_frac in 0.0f64..1.0,
    ) {
        let index = BitmapIndex::build(&data, binner);
        // derive the region from the data length so it stays in range
        let n = data.len() as u64;
        let start = (start_frac * n as f64) as u64;
        let end = start + (len_frac * (n - start) as f64) as u64;
        let query = SubsetQuery::value(lo, hi).with_region(start..end);

        let sel = query.evaluate(&index).unwrap();
        let want = scan_selection(&data, &index, &query);
        prop_assert_eq!(sel.count_ones(), want.iter().filter(|&&b| b).count() as u64);
        for (i, &w) in want.iter().enumerate() {
            prop_assert_eq!(sel.get(i as u64), w, "position {}", i);
        }
    }

    #[test]
    fn multilevel_evaluation_is_byte_identical(
        (data, binner) in data_and_binner(),
        group in 1usize..9,
        lo in -55.0f64..55.0,
        hi in -55.0f64..55.0,
    ) {
        let ml = MultiLevelIndex::build(&data, binner, group);
        let q = SubsetQuery::value(lo, hi);
        let flat = q.evaluate(ml.low()).unwrap();
        let planned = q.evaluate_ml(&ml).unwrap();
        // byte-identical, not just equal-cardinality
        prop_assert_eq!(&flat, &planned);
        prop_assert_eq!(flat.words(), planned.words());
        // and identical to the pre-planner naive per-bin OR
        prop_assert_eq!(&flat, &ml.low().query_range(lo, hi));
    }

    #[test]
    fn joint_counts_match_direct_histogram(
        (data_a, binner_a) in data_and_binner(),
        (data_b, binner_b) in data_and_binner(),
        start_frac in 0.0f64..1.0,
        len_frac in 0.0f64..1.0,
    ) {
        let n = data_a.len().min(data_b.len());
        let a: Vec<f64> = data_a[..n].to_vec();
        let b: Vec<f64> = data_b[..n].to_vec();
        let ia = BitmapIndex::build(&a, binner_a);
        let ib = BitmapIndex::build(&b, binner_b);
        let start = (start_frac * n as f64) as u64;
        let end = start + (len_frac * (n as u64 - start) as f64) as u64;
        let sel = SubsetQuery::region(start..end).evaluate(&ia).unwrap();

        // the oracle joint histogram, built straight from the raw pairs
        let mut want = vec![0u64; ia.nbins() * ib.nbins()];
        for i in start..end {
            let ja = ia.binner().bin_of(a[i as usize]) as usize;
            let jb = ib.binner().bin_of(b[i as usize]) as usize;
            want[ja * ib.nbins() + jb] += 1;
        }
        prop_assert_eq!(&joint_counts_selected(&ia, &ib, &sel), &want);
        prop_assert_eq!(&joint_counts_selected_naive(&ia, &ib, &sel), &want);
    }

    #[test]
    fn correlation_query_agrees_across_engines(
        (data_a, binner_a) in data_and_binner(),
        (data_b, binner_b) in data_and_binner(),
        group in 1usize..9,
    ) {
        let n = data_a.len().min(data_b.len());
        let a: Vec<f64> = data_a[..n].to_vec();
        let b: Vec<f64> = data_b[..n].to_vec();
        let ma = MultiLevelIndex::build(&a, binner_a, group);
        let mb = MultiLevelIndex::build(&b, binner_b, group);
        let qa = SubsetQuery::value(-20.0, 20.0);
        let qb = SubsetQuery::region(0..(n as u64 / 2));
        let flat = correlation_query(ma.low(), mb.low(), &qa, &qb).unwrap();
        let ml = correlation_query_ml(&ma, &mb, &qa, &qb).unwrap();
        prop_assert_eq!(&flat, &ml);
        // MI and H(A|B) are finite on every input, even empty selections
        prop_assert!(flat.mutual_information.is_finite());
        prop_assert!(flat.conditional_entropy.is_finite());
        prop_assert!(flat.mutual_information >= -1e-12);
        prop_assert!(flat.conditional_entropy >= -1e-12);
    }

    #[test]
    fn arbitrary_queries_never_panic(
        (data, binner) in data_and_binner(),
        nan_lo in any::<bool>(),
        nan_hi in any::<bool>(),
    ) {
        let n = data.len();
        let index = BitmapIndex::build(&data, binner);
        // NaN bounds: always a typed error, never a panic
        let lo = if nan_lo { f64::NAN } else { 1.0 };
        let hi = if nan_hi { f64::NAN } else { 2.0 };
        let q = SubsetQuery::value(lo, hi);
        match q.evaluate(&index) {
            Ok(sel) => {
                prop_assert!(!has_nan(&q));
                prop_assert_eq!(sel.len(), n as u64);
            }
            Err(QueryError::NanBound { .. }) => prop_assert!(has_nan(&q)),
            Err(other) => prop_assert!(false, "unexpected error {}", other),
        }
        // out-of-range and inverted regions: typed errors
        let far = SubsetQuery::region(0..n as u64 + 1).evaluate(&index);
        prop_assert!(matches!(far, Err(QueryError::RegionOutOfRange { .. })));
        // mismatched index lengths: typed error
        let other = BitmapIndex::build(&[0.0; 7], Binner::fixed_width(-1.0, 1.0, 2));
        if n != 7 {
            let err = correlation_query(&index, &other, &SubsetQuery::all(), &SubsetQuery::all());
            prop_assert!(matches!(err, Err(QueryError::LengthMismatch { .. })));
        }
    }

    #[test]
    fn generated_queries_evaluate_totally(
        (data, binner) in data_and_binner(),
        queries in proptest::collection::vec(subset_query(200), 1..5),
    ) {
        // Every generated query either evaluates (and matches the scan
        // oracle) or returns a typed error — total behavior end to end.
        let index = BitmapIndex::build(&data, binner);
        for q in &queries {
            let mut q = q.clone();
            // regions were drawn against n=200; clamp into this data's range
            if let Some(r) = &q.position_range {
                let end = r.end.min(data.len() as u64);
                q.position_range = Some(r.start.min(end)..end);
            }
            match q.evaluate(&index) {
                Ok(sel) => {
                    let want = scan_selection(&data, &index, &q);
                    prop_assert_eq!(
                        sel.count_ones(),
                        want.iter().filter(|&&b| b).count() as u64
                    );
                    prop_assert_eq!(sel, WahVec::from_bits(want));
                }
                Err(QueryError::NanBound { .. }) => prop_assert!(has_nan(&q)),
                Err(other) => prop_assert!(false, "unexpected error {}", other),
            }
        }
    }
}
