//! Information-theoretic metrics (Section 3.1, Equations 4–6): Shannon's
//! entropy, mutual information and conditional entropy — each available from
//! a full-data scan or purely from bitmap indices.
//!
//! All scoring is a pure function of counts, so the bitmap path (cached bin
//! popcounts + compressed ANDs) produces bit-identical values to the
//! full-data path under the same binning.

use crate::histogram::{
    histogram, joint_counts_from_indexes, joint_histogram, marginal_a, marginal_b,
};
use ibis_core::{Binner, BitmapIndex};

/// Shannon entropy (bits) of a count vector — Equation 4.
pub fn shannon_entropy_from_counts(counts: &[u64]) -> f64 {
    let n: u64 = counts.iter().sum();
    if n == 0 {
        return 0.0;
    }
    let n = n as f64;
    let mut h = 0.0;
    for &c in counts {
        if c > 0 {
            let p = c as f64 / n;
            h -= p * p.log2();
        }
    }
    h
}

/// Mutual information (bits) from a flattened joint count table —
/// Equation 5. Marginals are derived from the table itself, so the three
/// distributions are always consistent.
pub fn mutual_information_from_counts(joint: &[u64], na: usize, nb: usize) -> f64 {
    let total: u64 = joint.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let pa = marginal_a(joint, na, nb);
    let pb = marginal_b(joint, na, nb);
    let n = total as f64;
    let mut mi = 0.0;
    for j in 0..na {
        if pa[j] == 0 {
            continue;
        }
        for k in 0..nb {
            let c = joint[j * nb + k];
            if c > 0 {
                let pjk = c as f64 / n;
                let pj = pa[j] as f64 / n;
                let pk = pb[k] as f64 / n;
                mi += pjk * (pjk / (pj * pk)).log2();
            }
        }
    }
    mi.max(0.0) // guard tiny negative rounding
}

/// Conditional entropy `H(A|B) = H(A) − I(A;B)` from counts — Equation 6.
pub fn conditional_entropy_from_counts(joint: &[u64], na: usize, nb: usize) -> f64 {
    let pa = marginal_a(joint, na, nb);
    shannon_entropy_from_counts(&pa) - mutual_information_from_counts(joint, na, nb)
}

// ---------------------------------------------------------------------------
// Full-data path
// ---------------------------------------------------------------------------

/// Shannon entropy of raw data under a binning scale (full-data method: one
/// scan to build the histogram).
pub fn shannon_entropy_full(data: &[f64], binner: &Binner) -> f64 {
    shannon_entropy_from_counts(&histogram(data, binner))
}

/// Mutual information of two raw arrays (full-data method: one joint scan).
pub fn mutual_information_full(a: &[f64], b: &[f64], binner_a: &Binner, binner_b: &Binner) -> f64 {
    let joint = joint_histogram(a, b, binner_a, binner_b);
    mutual_information_from_counts(&joint, binner_a.nbins(), binner_b.nbins())
}

/// Conditional entropy `H(A|B)` of two raw arrays.
pub fn conditional_entropy_full(a: &[f64], b: &[f64], binner_a: &Binner, binner_b: &Binner) -> f64 {
    let joint = joint_histogram(a, b, binner_a, binner_b);
    conditional_entropy_from_counts(&joint, binner_a.nbins(), binner_b.nbins())
}

// ---------------------------------------------------------------------------
// Bitmap path
// ---------------------------------------------------------------------------

/// Shannon entropy straight from an index's cached bin counts — no data, no
/// scan (the individual value distribution "is already generated during the
/// bitmaps generation process").
pub fn shannon_entropy_index(index: &BitmapIndex) -> f64 {
    shannon_entropy_from_counts(index.counts())
}

/// Mutual information of two indexed variables: `m × n` compressed ANDs +
/// popcounts produce the joint distribution (Figure 5).
pub fn mutual_information_index(a: &BitmapIndex, b: &BitmapIndex) -> f64 {
    let joint = joint_counts_from_indexes(a, b);
    mutual_information_from_counts(&joint, a.nbins(), b.nbins())
}

/// Conditional entropy `H(A|B)` of two indexed variables.
pub fn conditional_entropy_index(a: &BitmapIndex, b: &BitmapIndex) -> f64 {
    let joint = joint_counts_from_indexes(a, b);
    conditional_entropy_from_counts(&joint, a.nbins(), b.nbins())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entropy_of_uniform_and_constant() {
        assert_eq!(shannon_entropy_from_counts(&[0, 0, 0]), 0.0);
        assert_eq!(shannon_entropy_from_counts(&[100]), 0.0);
        let h = shannon_entropy_from_counts(&[25, 25, 25, 25]);
        assert!(
            (h - 2.0).abs() < 1e-12,
            "uniform over 4 bins = 2 bits, got {h}"
        );
        // Constant data has low entropy, random data high (the paper's prose).
        let skewed = shannon_entropy_from_counts(&[97, 1, 1, 1]);
        assert!(skewed < h);
    }

    #[test]
    fn mi_of_identical_equals_entropy() {
        let data: Vec<f64> = (0..1000).map(|i| ((i * 37) % 10) as f64).collect();
        let b = Binner::distinct_ints(0, 9);
        let h = shannon_entropy_full(&data, &b);
        let mi = mutual_information_full(&data, &data, &b, &b);
        assert!((mi - h).abs() < 1e-10, "I(A;A) = H(A): {mi} vs {h}");
        // ...and H(A|A) = 0.
        let ce = conditional_entropy_full(&data, &data, &b, &b);
        assert!(ce.abs() < 1e-10);
    }

    #[test]
    fn mi_of_independent_is_near_zero() {
        // Construct exactly independent variables: all (j, k) combinations
        // appear equally often.
        let mut a = Vec::new();
        let mut b = Vec::new();
        for j in 0..4 {
            for k in 0..4 {
                for _ in 0..10 {
                    a.push(j as f64);
                    b.push(k as f64);
                }
            }
        }
        let binner = Binner::distinct_ints(0, 3);
        let mi = mutual_information_full(&a, &b, &binner, &binner);
        assert!(
            mi.abs() < 1e-12,
            "independent vars must have zero MI, got {mi}"
        );
    }

    #[test]
    fn mi_symmetry() {
        let a: Vec<f64> = (0..500).map(|i| ((i * 3) % 17) as f64).collect();
        let b: Vec<f64> = (0..500).map(|i| ((i * 11 + 2) % 13) as f64).collect();
        let ba = Binner::distinct_ints(0, 16);
        let bb = Binner::distinct_ints(0, 12);
        let ab = mutual_information_full(&a, &b, &ba, &bb);
        let ba_ = mutual_information_full(&b, &a, &bb, &ba);
        assert!((ab - ba_).abs() < 1e-12);
    }

    #[test]
    fn conditional_entropy_bounds() {
        let a: Vec<f64> = (0..800).map(|i| ((i / 7) % 12) as f64).collect();
        let b: Vec<f64> = (0..800).map(|i| ((i / 13) % 9) as f64).collect();
        let ba = Binner::distinct_ints(0, 11);
        let bb = Binner::distinct_ints(0, 8);
        let h = shannon_entropy_full(&a, &ba);
        let ce = conditional_entropy_full(&a, &b, &ba, &bb);
        assert!(
            ce >= -1e-12 && ce <= h + 1e-12,
            "0 <= H(A|B) <= H(A): {ce} vs {h}"
        );
    }

    #[test]
    fn bitmap_path_is_exact() {
        // The paper's central claim: same binning scale ⇒ identical results.
        let a: Vec<f64> = (0..3000).map(|i| (i as f64 * 0.01).sin() * 40.0).collect();
        let b: Vec<f64> = (0..3000)
            .map(|i| (i as f64 * 0.013).cos() * 35.0 + 5.0)
            .collect();
        let ba = Binner::fixed_width(-41.0, 41.0, 30);
        let bb = Binner::fixed_width(-36.0, 41.0, 24);
        let ia = BitmapIndex::build(&a, ba.clone());
        let ib = BitmapIndex::build(&b, bb.clone());

        assert_eq!(shannon_entropy_index(&ia), shannon_entropy_full(&a, &ba));
        assert_eq!(
            mutual_information_index(&ia, &ib),
            mutual_information_full(&a, &b, &ba, &bb)
        );
        assert_eq!(
            conditional_entropy_index(&ia, &ib),
            conditional_entropy_full(&a, &b, &ba, &bb)
        );
    }

    #[test]
    fn entropy_increases_with_spread() {
        let narrow: Vec<f64> = vec![5.0; 100];
        let wide: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let b = Binner::fixed_width(0.0, 100.0, 20);
        assert!(shannon_entropy_full(&wide, &b) > shannon_entropy_full(&narrow, &b));
    }
}
