#!/usr/bin/env bash
# Local CI gate: formatting, lints (warnings are errors), and the full
# workspace test suite — in both kernel configurations and both
# observability configurations (instrumented and no-op).
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> test hygiene: no ignored tests"
# The seed suite has zero #[ignore]d tests; keep it that way. An ignored
# test silently stops gating and rots — delete it or fix it instead.
if grep -rn '#\[ignore' --include='*.rs' crates/ src/ tests/ vendor/; then
    echo "error: found #[ignore]d tests (listed above); un-ignore or delete them" >&2
    exit 1
fi

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, all targets, -D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo clippy (ibis-insitu non-test code: no unwrap/expect)"
# Lints only the plain lib target: #[cfg(test)] modules are not compiled,
# so the crate-level deny(clippy::unwrap_used, clippy::expect_used) in
# crates/insitu/src/lib.rs gates exactly the non-test code.
cargo clippy -p ibis-insitu --lib -- -D warnings

# The observability differential harness accumulates per-config digests
# under target/obs_differential; start from a clean slate so the digests
# compared below both come from this CI run.
rm -rf target/obs_differential

echo "==> cargo test (workspace, instrumented: obs on by default)"
cargo test -q --workspace

echo "==> cargo test (observability layer with obs feature off: no-op build)"
cargo test -q -p ibis-obs --no-default-features

echo "==> obs differential: no-op build must match the instrumented run byte-for-byte"
cargo test -q -p ibis --no-default-features --test obs_differential
test -f target/obs_differential/instrumented.digest
test -f target/obs_differential/noop.digest
cmp target/obs_differential/instrumented.digest target/obs_differential/noop.digest

echo "==> cargo test (fault-injection + crash/resume suites, default kernels)"
cargo test -q -p ibis-insitu --test fault_injection --test crash_resume

echo "==> cargo test (ibis-core with legacy-kernels, for the A/B sweep)"
cargo test -q -p ibis-core --features legacy-kernels

echo "==> cargo test (fault suite against legacy kernels)"
cargo test -q -p ibis-insitu --features ibis-core/legacy-kernels \
    --test fault_injection --test crash_resume

echo "==> generation bench smoke (both kernel configs) + report schema"
# IBIS_GEN_SMOKE=1 shrinks the sweep and writes to target/ so CI never
# clobbers the committed full-size BENCH_generation.json.
check_generation_report() {
    local report="$1"
    test -f "$report"
    for key in '"samples"' '"batched_over_scalar_speedup"' \
        '"parallel_over_scalar_speedup"' '"min_coherent_batched_speedup"' \
        '"uniform_random_within_5pct_target"'; do
        grep -q "$key" "$report" || {
            echo "error: $report missing $key" >&2
            exit 1
        }
    done
}
rm -f target/BENCH_generation.smoke.json
IBIS_GEN_SMOKE=1 cargo bench -q -p ibis-bench --bench generation
check_generation_report target/BENCH_generation.smoke.json
# Same smoke in the no-op observability twin: the fast path must produce
# (and schema-check) identically with the generation counters const-folded.
rm -f target/BENCH_generation.smoke.json
IBIS_GEN_SMOKE=1 cargo bench -q -p ibis-bench --no-default-features \
    --bench generation
check_generation_report target/BENCH_generation.smoke.json
echo "==> committed BENCH_generation.json present with full-size sweep"
check_generation_report BENCH_generation.json

echo "==> query suites in the no-op observability build"
# The workspace run above covers the instrumented config; re-run the query
# proptests, adversarial corpus, and multi-threaded cache stress with the
# obs counters const-folded away — neither config may panic or diverge.
cargo test -q -p ibis-analysis --no-default-features --test prop_query
cargo test -q -p ibis-insitu --no-default-features --test query_engine

echo "==> serving suite in the no-op observability build"
# Socket protocol adversaries, fault determinism, coalescing accounting,
# and queue-bound stress — the instrumented run is covered by the
# workspace tests above.
cargo test -q -p ibis-insitu --no-default-features --test serving

echo "==> query bench smoke (both obs configs) + report schema"
check_query_report() {
    local report="$1"
    test -f "$report"
    for key in '"warm_over_cold_speedup"' '"warm_over_5x_target"' \
        '"prepared_over_naive_speedup"' '"prepared_beats_naive"' \
        '"planner_identity_ranges_checked"' \
        '"planner_strategies_all_byte_identical"' \
        '"planner_all_strategies_exercised"'; do
        grep -q "$key" "$report" || {
            echo "error: $report missing $key" >&2
            exit 1
        }
    done
}
rm -f target/BENCH_query.smoke.json
IBIS_QUERY_SMOKE=1 cargo bench -q -p ibis-bench --bench query
check_query_report target/BENCH_query.smoke.json
rm -f target/BENCH_query.smoke.json
IBIS_QUERY_SMOKE=1 cargo bench -q -p ibis-bench --no-default-features \
    --bench query
check_query_report target/BENCH_query.smoke.json
echo "==> committed BENCH_query.json present with full-size sweep"
check_query_report BENCH_query.json

echo "==> codec shootout smoke (both obs configs) + report schema"
# IBIS_CODEC_SMOKE=1 shrinks the sweep and writes to target/ so CI never
# clobbers the committed full-size BENCH_codecs.json. The sweep itself
# asserts every codec × kernel result identical to the verbatim oracle
# before timing it, so a pass is also a cross-codec correctness gate.
check_codec_report() {
    local report="$1"
    test -f "$report"
    for key in '"samples"' '"bytes_per_bitmap"' '"auto_selected"' \
        '"roaring_over_wah_speedup"' \
        '"bbc_header_merge_over_bytewise_speedup"' \
        '"auto_over_best_ratio"' '"auto_within_10pct_of_best"' \
        '"identity_checked"'; do
        grep -q "$key" "$report" || {
            echo "error: $report missing $key" >&2
            exit 1
        }
    done
}
rm -f target/BENCH_codecs.smoke.json
IBIS_CODEC_SMOKE=1 cargo bench -q -p ibis-bench --bench codecs
check_codec_report target/BENCH_codecs.smoke.json
rm -f target/BENCH_codecs.smoke.json
IBIS_CODEC_SMOKE=1 cargo bench -q -p ibis-bench --no-default-features \
    --bench codecs
check_codec_report target/BENCH_codecs.smoke.json
echo "==> committed BENCH_codecs.json present with full-size sweep"
check_codec_report BENCH_codecs.json

echo "==> lossy superset sweep smoke (both obs configs) + report schema"
# IBIS_LOSSY_SMOKE=1 shrinks the grids and writes to target/ so CI never
# clobbers the committed full-size BENCH_lossy.json. The sweep asserts
# the superset identity (exact & lossy == exact), the FPR bound, and the
# refine byte-identity before every timed point, so a pass is also a
# lossy-correctness gate.
check_lossy_report() {
    local report="$1"
    test -f "$report"
    for key in '"samples"' '"identity_checked"' '"size_reduction"' \
        '"measured_fpr"' '"fpr_bound_met"' '"bits_dropped"' \
        '"size_reduction_ge_1p5x_at_fpr_le_1e-2"' '"all_fpr_bounds_met"'; do
        grep -q "$key" "$report" || {
            echo "error: $report missing $key" >&2
            exit 1
        }
    done
    grep -q '"all_fpr_bounds_met": true' "$report" || {
        echo "error: $report has a sample above its requested FPR bound" >&2
        exit 1
    }
}
rm -f target/BENCH_lossy.smoke.json
IBIS_LOSSY_SMOKE=1 cargo bench -q -p ibis-bench --bench lossy
check_lossy_report target/BENCH_lossy.smoke.json
rm -f target/BENCH_lossy.smoke.json
IBIS_LOSSY_SMOKE=1 cargo bench -q -p ibis-bench --no-default-features \
    --bench lossy
check_lossy_report target/BENCH_lossy.smoke.json
echo "==> committed BENCH_lossy.json present with full-size sweep"
check_lossy_report BENCH_lossy.json
# The headline size target only binds on the committed full-size sweep:
# the smoke grids are too small for the surface/volume ratio it rides on.
grep -q '"size_reduction_ge_1p5x_at_fpr_le_1e-2": true' BENCH_lossy.json || {
    echo "error: committed BENCH_lossy.json does not meet the size target" >&2
    exit 1
}

echo "==> row-order sweep smoke (both obs configs) + report schema"
# IBIS_ORDER_SMOKE=1 shrinks the grids and writes to target/ so CI never
# clobbers the committed full-size BENCH_reorder.json. The sweep asserts
# every reordered bin byte-identical to the identity-order oracle (mapped
# through the inverse permutation) before timing, so a pass is also a
# reorder correctness gate.
check_reorder_report() {
    local report="$1"
    test -f "$report"
    for key in '"samples"' '"elements"' '"vs_identity"' '"criterion"' \
        '"identity_checked"' '"size_ratio"' '"latency_ratio"' \
        '"size_win_15pct_within_latency_10pct"'; do
        grep -q "$key" "$report" || {
            echo "error: $report missing $key" >&2
            exit 1
        }
    done
}
rm -f target/BENCH_reorder.smoke.json
IBIS_ORDER_SMOKE=1 cargo bench -q -p ibis-bench --bench reorder
check_reorder_report target/BENCH_reorder.smoke.json
rm -f target/BENCH_reorder.smoke.json
IBIS_ORDER_SMOKE=1 cargo bench -q -p ibis-bench --no-default-features \
    --bench reorder
check_reorder_report target/BENCH_reorder.smoke.json
echo "==> committed BENCH_reorder.json present with full-size sweep"
check_reorder_report BENCH_reorder.json

echo "==> serving bench smoke (both obs configs) + report schema"
# IBIS_SERVE_SMOKE=1 shrinks the load phases and writes to target/ so CI
# never clobbers the committed full-size BENCH_serving.json. The bench
# itself asserts the SLO (faulted p99 within 5x fault-free, typed sheds,
# queue bound respected, exact coalesce accounting), so a pass is also
# an overload-control correctness gate.
check_serving_report() {
    local report="$1"
    test -f "$report"
    for key in '"samples"' '"fault_free_p99_ms"' '"saturation_qps"' \
        '"faulted_p99_ms"' '"faulted_p99_within_5x"' '"shed"' \
        '"coalesce_hits"' '"coalesce_decodes"' '"queue_peak"' \
        '"queue_bound_respected"' '"socket_rtt_p50_ms"'; do
        grep -q "$key" "$report" || {
            echo "error: $report missing $key" >&2
            exit 1
        }
    done
}
rm -f target/BENCH_serving.smoke.json
IBIS_SERVE_SMOKE=1 cargo bench -q -p ibis-bench --bench serving
check_serving_report target/BENCH_serving.smoke.json
rm -f target/BENCH_serving.smoke.json
IBIS_SERVE_SMOKE=1 cargo bench -q -p ibis-bench --no-default-features \
    --bench serving
check_serving_report target/BENCH_serving.smoke.json
echo "==> committed BENCH_serving.json present with full-size sweep"
check_serving_report BENCH_serving.json

echo "==> sharded store suite in the no-op observability build"
# Oracle identity across shard counts/bins/row orders, shard-local
# fsck/repair, and killed-writer resume — the instrumented run is
# covered by the workspace tests above.
cargo test -q -p ibis-insitu --no-default-features --test shard

echo "==> shard bench smoke (both obs configs) + report schema"
# IBIS_SHARD_SMOKE=1 shrinks the sweep and writes to target/ so CI never
# clobbers the committed full-size BENCH_shard.json. The bench asserts
# every sharded answer identical to the flat oracle before timing, plus
# the over-budget eviction/latency and node-kill resume properties, so a
# pass is also a scatter-gather correctness gate.
check_shard_report() {
    local report="$1"
    test -f "$report"
    for key in '"samples"' '"shards"' '"throughput_qps"' \
        '"speedup_4x_over_1"' '"scaling_target_met"' \
        '"identity_checked"' '"ocean_over_budget"' '"ocean_p99_ms"' \
        '"ocean_p99_interactive"' '"cache_evictions"' \
        '"nodekill_resumed"'; do
        grep -q "$key" "$report" || {
            echo "error: $report missing $key" >&2
            exit 1
        }
    done
}
rm -f target/BENCH_shard.smoke.json
IBIS_SHARD_SMOKE=1 cargo bench -q -p ibis-bench --bench shard
check_shard_report target/BENCH_shard.smoke.json
rm -f target/BENCH_shard.smoke.json
IBIS_SHARD_SMOKE=1 cargo bench -q -p ibis-bench --no-default-features \
    --bench shard
check_shard_report target/BENCH_shard.smoke.json
echo "==> committed BENCH_shard.json present with full-size sweep"
check_shard_report BENCH_shard.json
grep -q '"scaling_target_met": true' BENCH_shard.json || {
    echo "error: committed BENCH_shard.json does not meet the scaling target" >&2
    exit 1
}

echo "==> ibis serve + loadgen end-to-end smoke (both obs configs)"
# Build a tiny store once, then drive a live server with the zipf load
# generator for a few hundred requests in each obs config. --conns 1
# makes the server exit cleanly after the load generator disconnects.
serve_smoke() {
    local features=("$@")
    local store=target/ci_serve_store
    rm -rf "$store"
    # --row-order exercises the reordered-store read path end to end:
    # the served store carries inverse permutations the engine must apply.
    cargo run -q --release "${features[@]}" --bin ibis -- insitu \
        --sim heat3d --steps 2 --select 2 --cores 2 \
        --row-order graybin --out "$store" >/dev/null
    local port=$((20000 + RANDOM % 20000))
    # --conns 2: the readiness probe below counts as one completed
    # connection, the load generator's single client is the second; the
    # server exits cleanly once both have disconnected.
    cargo run -q --release "${features[@]}" --bin ibis -- serve \
        --store "$store" --addr "127.0.0.1:$port" --workers 2 --queue 16 \
        --conns 2 &
    local serve_pid=$!
    # Wait for the listener to come up before pointing the clients at it.
    for _ in $(seq 1 100); do
        if (exec 3<>"/dev/tcp/127.0.0.1/$port") 2>/dev/null; then
            break
        fi
        sleep 0.1
    done
    cargo run -q --release "${features[@]}" --bin ibis -- loadgen \
        --addr "127.0.0.1:$port" --store "$store" --requests 300 \
        --clients 1 --deadline-ms 2000 --seed 7
    wait "$serve_pid"
}
serve_smoke
serve_smoke --no-default-features

echo "==> sharded ibis serve + loadgen end-to-end smoke (both obs configs)"
# Same live drill against a 4-shard store: sharded ingest via --shards,
# scatter-gather serving with background maintenance, and the load
# generator reading its catalog from a shard. --conns 2 as above.
shard_serve_smoke() {
    local features=("$@")
    local store=target/ci_shard_store
    rm -rf "$store"
    cargo run -q --release "${features[@]}" --bin ibis -- insitu \
        --sim heat3d --steps 2 --select 2 --cores 2 \
        --out "$store" --shards 4 >/dev/null
    test -f "$store/SHARDS"
    local port=$((20000 + RANDOM % 20000))
    cargo run -q --release "${features[@]}" --bin ibis -- serve \
        --store "$store" --shards 4 --addr "127.0.0.1:$port" --workers 2 \
        --queue 16 --maintain-ms 200 --conns 2 &
    local serve_pid=$!
    for _ in $(seq 1 100); do
        if (exec 3<>"/dev/tcp/127.0.0.1/$port") 2>/dev/null; then
            break
        fi
        sleep 0.1
    done
    cargo run -q --release "${features[@]}" --bin ibis -- loadgen \
        --addr "127.0.0.1:$port" --store "$store" --requests 300 \
        --clients 1 --deadline-ms 2000 --seed 7
    wait "$serve_pid"
}
shard_serve_smoke
shard_serve_smoke --no-default-features

echo "CI OK"
