//! Mini-LULESH: a Lagrangian explicit shock-hydrodynamics proxy.
//!
//! The paper's second workload is LLNL's LULESH 2.0 — "a complex simulation
//! with more time and memory cost", whose analysed output is 12 node arrays:
//! coordinates, force, velocity and acceleration, each in X/Y/Z. We cannot
//! ship LULESH, so this module implements a genuinely-computing proxy with
//! the same structure: a hexahedral mesh, an ideal-gas EOS with artificial
//! viscosity, nodal force gather, and explicit time integration of a
//! Sedov-style point blast. The physics is simplified (first-order force
//! geometry) but every array evolves through real arithmetic over the whole
//! mesh, and — as in the paper — a step costs far more than a Heat3D step,
//! which is what drives the Figure 9/10/12c shapes.

use crate::field::{Field, StepOutput};
use crate::Simulation;
use rayon::prelude::*;

/// Configuration for a [`MiniLulesh`] run.
#[derive(Debug, Clone)]
pub struct LuleshConfig {
    /// Elements per edge (the mesh has `edge^3` elements and `(edge+1)^3`
    /// nodes).
    pub edge: usize,
    /// Time-step size.
    pub dt: f64,
    /// Ideal-gas gamma.
    pub gamma: f64,
    /// Initial blast energy deposited in the corner element.
    pub blast_energy: f64,
    /// Linear artificial-viscosity coefficient.
    pub q_lin: f64,
    /// Integration sub-steps per output time-step.
    pub substeps: usize,
}

impl Default for LuleshConfig {
    fn default() -> Self {
        LuleshConfig {
            edge: 20,
            dt: 2e-3,
            gamma: 1.4,
            blast_energy: 3.0,
            q_lin: 0.2,
            substeps: 4,
        }
    }
}

impl LuleshConfig {
    /// A small configuration for tests.
    pub fn tiny() -> Self {
        LuleshConfig {
            edge: 6,
            ..Default::default()
        }
    }

    /// Nodes per edge.
    pub fn nodes_per_edge(&self) -> usize {
        self.edge + 1
    }

    /// Total node count — the length of each of the 12 output arrays.
    pub fn num_nodes(&self) -> usize {
        self.nodes_per_edge().pow(3)
    }

    /// Total element count.
    pub fn num_elements(&self) -> usize {
        self.edge.pow(3)
    }
}

/// The 12 analysed node arrays, in the paper's order (coordinates, force,
/// velocity, acceleration — each in X, Y, Z).
pub const LULESH_FIELDS: [&str; 12] = [
    "coord_x",
    "coord_y",
    "coord_z",
    "force_x",
    "force_y",
    "force_z",
    "velocity_x",
    "velocity_y",
    "velocity_z",
    "accel_x",
    "accel_y",
    "accel_z",
];

/// The proxy simulation state.
#[derive(Debug, Clone)]
pub struct MiniLulesh {
    cfg: LuleshConfig,
    // node arrays
    x: Vec<f64>,
    y: Vec<f64>,
    z: Vec<f64>,
    vx: Vec<f64>,
    vy: Vec<f64>,
    vz: Vec<f64>,
    fx: Vec<f64>,
    fy: Vec<f64>,
    fz: Vec<f64>,
    ax: Vec<f64>,
    ay: Vec<f64>,
    az: Vec<f64>,
    node_mass: Vec<f64>,
    // element arrays
    energy: Vec<f64>,
    volume: Vec<f64>,
    ref_volume: Vec<f64>,
    mass: Vec<f64>,
    pressure: Vec<f64>,
    step: usize,
}

impl MiniLulesh {
    /// Builds the mesh and deposits the blast energy (Sedov corner blast).
    pub fn new(cfg: LuleshConfig) -> Self {
        let npe = cfg.nodes_per_edge();
        let nn = cfg.num_nodes();
        let ne = cfg.num_elements();
        let mut x = vec![0.0; nn];
        let mut y = vec![0.0; nn];
        let mut z = vec![0.0; nn];
        let h = 1.0 / cfg.edge as f64;
        for k in 0..npe {
            for j in 0..npe {
                for i in 0..npe {
                    let n = (k * npe + j) * npe + i;
                    x[n] = i as f64 * h;
                    y[n] = j as f64 * h;
                    z[n] = k as f64 * h;
                }
            }
        }
        let elem_vol = h * h * h;
        let mut energy = vec![1e-6; ne];
        energy[0] = cfg.blast_energy; // corner blast, as in Sedov problems
        let mass = vec![elem_vol; ne]; // unit density
        let mut node_mass = vec![0.0; nn];
        // Each element contributes 1/8 of its mass to each corner node.
        for (e, &m) in mass.iter().enumerate() {
            for n in element_nodes(e, cfg.edge) {
                node_mass[n] += m / 8.0;
            }
        }
        MiniLulesh {
            x,
            y,
            z,
            vx: vec![0.0; nn],
            vy: vec![0.0; nn],
            vz: vec![0.0; nn],
            fx: vec![0.0; nn],
            fy: vec![0.0; nn],
            fz: vec![0.0; nn],
            ax: vec![0.0; nn],
            ay: vec![0.0; nn],
            az: vec![0.0; nn],
            node_mass,
            energy,
            volume: vec![elem_vol; ne],
            ref_volume: vec![elem_vol; ne],
            mass,
            pressure: vec![0.0; ne],
            step: 0,
            cfg,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &LuleshConfig {
        &self.cfg
    }

    /// Total energy (internal + kinetic); conserved up to the first-order
    /// integrator's error, asserted by tests.
    pub fn total_energy(&self) -> f64 {
        let internal: f64 = self.energy.iter().sum();
        let kinetic: f64 = (0..self.node_mass.len())
            .map(|n| {
                0.5 * self.node_mass[n]
                    * (self.vx[n] * self.vx[n] + self.vy[n] * self.vy[n] + self.vz[n] * self.vz[n])
            })
            .sum();
        internal + kinetic
    }

    fn eos(&mut self) {
        let gamma = self.cfg.gamma;
        let q_lin = self.cfg.q_lin;
        let ne = self.cfg.num_elements();
        let edge = self.cfg.edge;
        let (vx, vy, vz) = (&self.vx, &self.vy, &self.vz);
        let (vol, refv, energy, mass) = (&self.volume, &self.ref_volume, &self.energy, &self.mass);
        self.pressure.par_iter_mut().enumerate().for_each(|(e, p)| {
            let rho = mass[e] / vol[e].max(1e-12);
            let base = (gamma - 1.0) * rho * (energy[e] / mass[e]).max(0.0);
            // Artificial viscosity: resist compression, scaled by the
            // average inward velocity of the element's corners.
            let mut div = 0.0;
            let (cx, cy, cz) = element_center_of(e, edge);
            for n in element_nodes(e, edge) {
                // crude divergence estimate from corner velocities
                let (nx, ny, nz) = node_coords_of(n, edge + 1);
                let dx = nx as f64 - cx;
                let dy = ny as f64 - cy;
                let dz = nz as f64 - cz;
                div += vx[n] * dx + vy[n] * dy + vz[n] * dz;
            }
            let q = if div < 0.0 && vol[e] < refv[e] {
                -q_lin * div * rho
            } else {
                0.0
            };
            *p = base + q;
        });
        debug_assert_eq!(self.pressure.len(), ne);
    }

    fn gather_forces(&mut self) {
        let edge = self.cfg.edge;
        let npe = edge + 1;
        let pressure = &self.pressure;
        let volume = &self.volume;
        let (x, y, z) = (&self.x, &self.y, &self.z);
        // Gather formulation: each node sums contributions of its (≤8)
        // adjacent elements — no atomics, race-free by construction.
        let fx = &mut self.fx;
        let fy = &mut self.fy;
        let fz = &mut self.fz;
        (fx, fy, fz)
            .into_par_iter()
            .enumerate()
            .for_each(|(n, (fx, fy, fz))| {
                let (ni, nj, nk) = node_coords_of(n, npe);
                let (mut sx, mut sy, mut sz) = (0.0, 0.0, 0.0);
                for dk in 0..2usize {
                    for dj in 0..2usize {
                        for di in 0..2usize {
                            let (ei, ej, ek) = (
                                ni.wrapping_sub(1 - di),
                                nj.wrapping_sub(1 - dj),
                                nk.wrapping_sub(1 - dk),
                            );
                            if ei >= edge || ej >= edge || ek >= edge {
                                continue;
                            }
                            let e = (ek * edge + ej) * edge + ei;
                            // Push the node away from the element center with
                            // force p * A / corner-count; A ~ vol^(2/3).
                            let area = volume[e].max(1e-12).powf(2.0 / 3.0);
                            let f = pressure[e] * area / 8.0;
                            let (ecx, ecy, ecz) = element_center_pos(e, edge, x, y, z);
                            let (dx, dy, dz) = (x[n] - ecx, y[n] - ecy, z[n] - ecz);
                            let norm = (dx * dx + dy * dy + dz * dz).sqrt().max(1e-12);
                            sx += f * dx / norm;
                            sy += f * dy / norm;
                            sz += f * dz / norm;
                        }
                    }
                }
                *fx = sx;
                *fy = sy;
                *fz = sz;
            });
    }

    fn integrate(&mut self) {
        let dt = self.cfg.dt;
        let nn = self.node_mass.len();
        for n in 0..nn {
            let inv_m = 1.0 / self.node_mass[n];
            self.ax[n] = self.fx[n] * inv_m;
            self.ay[n] = self.fy[n] * inv_m;
            self.az[n] = self.fz[n] * inv_m;
            self.vx[n] += self.ax[n] * dt;
            self.vy[n] += self.ay[n] * dt;
            self.vz[n] += self.az[n] * dt;
            self.x[n] += self.vx[n] * dt;
            self.y[n] += self.vy[n] * dt;
            self.z[n] += self.vz[n] * dt;
        }
    }

    fn update_volumes_and_energy(&mut self) {
        let edge = self.cfg.edge;
        let (x, y, z) = (&self.x, &self.y, &self.z);
        let pressure = &self.pressure;
        let old_vol: Vec<f64> = self.volume.clone();
        self.volume.par_iter_mut().enumerate().for_each(|(e, v)| {
            *v = hex_volume(e, edge, x, y, z).max(1e-9);
        });
        for e in 0..self.energy.len() {
            // pdV work: expansion converts internal energy to kinetic.
            let dv = self.volume[e] - old_vol[e];
            self.energy[e] = (self.energy[e] - pressure[e] * dv).max(0.0);
        }
    }

    fn substep(&mut self) {
        self.eos();
        self.gather_forces();
        self.integrate();
        self.update_volumes_and_energy();
    }
}

impl Simulation for MiniLulesh {
    fn step(&mut self) -> StepOutput {
        for _ in 0..self.cfg.substeps {
            self.substep();
        }
        let out = StepOutput {
            step: self.step,
            fields: vec![
                Field::new("coord_x", self.x.clone()),
                Field::new("coord_y", self.y.clone()),
                Field::new("coord_z", self.z.clone()),
                Field::new("force_x", self.fx.clone()),
                Field::new("force_y", self.fy.clone()),
                Field::new("force_z", self.fz.clone()),
                Field::new("velocity_x", self.vx.clone()),
                Field::new("velocity_y", self.vy.clone()),
                Field::new("velocity_z", self.vz.clone()),
                Field::new("accel_x", self.ax.clone()),
                Field::new("accel_y", self.ay.clone()),
                Field::new("accel_z", self.az.clone()),
            ],
        };
        self.step += 1;
        out
    }

    fn num_elements(&self) -> usize {
        self.cfg.num_nodes()
    }

    fn name(&self) -> &'static str {
        "mini-lulesh"
    }

    fn grid_dims(&self) -> Option<[usize; 3]> {
        // node arrays over the (edge+1)^3 lattice: idx = (k*npe + j)*npe + i
        let npe = self.cfg.nodes_per_edge();
        Some([npe, npe, npe])
    }

    fn resident_bytes(&self) -> usize {
        // 13 node arrays plus 5 element arrays — the mesh state the paper
        // notes makes LULESH memory-heavy
        13 * self.node_mass.len() * 8 + 5 * self.energy.len() * 8
    }
}

/// The 8 corner node ids of element `e` in an `edge^3` element mesh.
fn element_nodes(e: usize, edge: usize) -> [usize; 8] {
    let npe = edge + 1;
    let ei = e % edge;
    let ej = (e / edge) % edge;
    let ek = e / (edge * edge);
    let base = (ek * npe + ej) * npe + ei;
    [
        base,
        base + 1,
        base + npe,
        base + npe + 1,
        base + npe * npe,
        base + npe * npe + 1,
        base + npe * npe + npe,
        base + npe * npe + npe + 1,
    ]
}

fn node_coords_of(n: usize, npe: usize) -> (usize, usize, usize) {
    (n % npe, (n / npe) % npe, n / (npe * npe))
}

fn element_center_of(e: usize, edge: usize) -> (f64, f64, f64) {
    let ei = e % edge;
    let ej = (e / edge) % edge;
    let ek = e / (edge * edge);
    (ei as f64 + 0.5, ej as f64 + 0.5, ek as f64 + 0.5)
}

fn element_center_pos(e: usize, edge: usize, x: &[f64], y: &[f64], z: &[f64]) -> (f64, f64, f64) {
    let nodes = element_nodes(e, edge);
    let (mut cx, mut cy, mut cz) = (0.0, 0.0, 0.0);
    for &n in &nodes {
        cx += x[n];
        cy += y[n];
        cz += z[n];
    }
    (cx / 8.0, cy / 8.0, cz / 8.0)
}

/// Approximate hexahedron volume: parallelepiped spanned by the three mean
/// edge vectors (exact for parallelepipeds, first-order otherwise).
fn hex_volume(e: usize, edge: usize, x: &[f64], y: &[f64], z: &[f64]) -> f64 {
    let n = element_nodes(e, edge);
    // mean edge vectors along local i, j, k
    let ex = mean_edge(&n, [(0, 1), (2, 3), (4, 5), (6, 7)], x, y, z);
    let ey = mean_edge(&n, [(0, 2), (1, 3), (4, 6), (5, 7)], x, y, z);
    let ez = mean_edge(&n, [(0, 4), (1, 5), (2, 6), (3, 7)], x, y, z);
    // scalar triple product
    (ex.0 * (ey.1 * ez.2 - ey.2 * ez.1) - ex.1 * (ey.0 * ez.2 - ey.2 * ez.0)
        + ex.2 * (ey.0 * ez.1 - ey.1 * ez.0))
        .abs()
}

fn mean_edge(
    n: &[usize; 8],
    pairs: [(usize, usize); 4],
    x: &[f64],
    y: &[f64],
    z: &[f64],
) -> (f64, f64, f64) {
    let (mut dx, mut dy, mut dz) = (0.0, 0.0, 0.0);
    for (a, b) in pairs {
        dx += x[n[b]] - x[n[a]];
        dy += y[n[b]] - y[n[a]];
        dz += z[n[b]] - z[n[a]];
    }
    (dx / 4.0, dy / 4.0, dz / 4.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_output_arrays() {
        let mut sim = MiniLulesh::new(LuleshConfig::tiny());
        let out = sim.step();
        assert_eq!(out.fields.len(), 12);
        let names: Vec<&str> = out.fields.iter().map(|f| f.name).collect();
        assert_eq!(names, LULESH_FIELDS.to_vec());
        let nn = LuleshConfig::tiny().num_nodes();
        for f in &out.fields {
            assert_eq!(f.data.len(), nn);
        }
    }

    #[test]
    fn element_nodes_are_cube_corners() {
        let n = element_nodes(0, 3); // 3^3 mesh, npe = 4
        assert_eq!(n, [0, 1, 4, 5, 16, 17, 20, 21]);
    }

    #[test]
    fn blast_moves_matter_outward() {
        let cfg = LuleshConfig::tiny();
        let mut sim = MiniLulesh::new(cfg);
        for _ in 0..10 {
            sim.step();
        }
        // the blast is at the origin corner: the origin-adjacent nodes
        // should have moved and gained speed
        let speed0: f64 = (sim.vx[0].powi(2) + sim.vy[0].powi(2) + sim.vz[0].powi(2)).sqrt();
        assert!(speed0 > 0.0, "corner node should be moving");
        // far corner stays (nearly) quiet early on
        let last = sim.node_mass.len() - 1;
        let speed_far: f64 =
            (sim.vx[last].powi(2) + sim.vy[last].powi(2) + sim.vz[last].powi(2)).sqrt();
        assert!(speed0 > speed_far, "blast should be strongest near origin");
    }

    #[test]
    fn values_stay_finite() {
        let mut sim = MiniLulesh::new(LuleshConfig::tiny());
        for _ in 0..25 {
            let out = sim.step();
            for f in &out.fields {
                assert!(
                    f.data.iter().all(|v| v.is_finite()),
                    "{} not finite",
                    f.name
                );
            }
        }
    }

    #[test]
    fn energy_does_not_explode() {
        let cfg = LuleshConfig::tiny();
        let mut sim = MiniLulesh::new(cfg.clone());
        let e0 = sim.total_energy();
        for _ in 0..25 {
            sim.step();
        }
        let e1 = sim.total_energy();
        assert!(e1.is_finite());
        // first-order integrator: allow drift, forbid blow-up
        assert!(e1 < e0 * 3.0, "energy grew from {e0} to {e1}");
    }

    #[test]
    fn fields_differ_across_steps() {
        let mut sim = MiniLulesh::new(LuleshConfig::tiny());
        let a = sim.step();
        let b = sim.step();
        let va = a.field("velocity_x").unwrap();
        let vb = b.field("velocity_x").unwrap();
        assert_ne!(va.data, vb.data);
    }

    #[test]
    fn step_cost_exceeds_heat3d() {
        use crate::heat3d::{Heat3D, Heat3DConfig};
        use std::time::Instant;
        // Comparable element counts; LULESH must be the heavier step — the
        // property the paper's Figure 12c relies on.
        let mut lul = MiniLulesh::new(LuleshConfig {
            edge: 12,
            ..LuleshConfig::tiny()
        });
        let mut heat = Heat3D::new(Heat3DConfig {
            nx: 13,
            ny: 13,
            nz: 13,
            ..Heat3DConfig::tiny()
        });
        let t0 = Instant::now();
        lul.step();
        let t_lul = t0.elapsed();
        let t0 = Instant::now();
        heat.step();
        let t_heat = t0.elapsed();
        assert!(
            t_lul > t_heat,
            "mini-lulesh ({t_lul:?}) should cost more than heat3d ({t_heat:?})"
        );
    }
}
