//! Incomplete-data analysis on bitmaps — the missing-value imputation
//! capability the paper lists in Section 2.2 (citing the authors'
//! bitmaps-based imputation work [2]).
//!
//! Scientific outputs often have gaps (sensor dropouts, masked land cells).
//! With bitmaps, the observed subset of a variable `A` and a fully-observed
//! correlated variable `B` are enough to fill the gaps: the conditional
//! distribution `P(A-bin | B-bin)` is a table of compressed AND counts over
//! the observed positions, and each missing cell receives the midpoint of
//! the most likely `A` bin given its `B` bin — no raw `A` data needed
//! beyond what was indexed.

use crate::histogram::decode_bin_ids;
use ibis_core::{Binner, BitmapIndex, MultiWahBuilder, WahVec};

/// A variable with missing values, summarized as bitmaps: the index covers
/// all positions, but missing positions are set in *no* bin; `present` has
/// a 1 where the value was observed.
#[derive(Debug, Clone)]
pub struct MaskedIndex {
    index: BitmapIndex,
    present: WahVec,
}

impl MaskedIndex {
    /// Builds from data and a presence mask (`present[i] == false` means
    /// `data[i]` is missing and is ignored).
    pub fn build(data: &[f64], present: &[bool], binner: Binner) -> Self {
        assert_eq!(data.len(), present.len(), "mask length mismatch");
        // A bin id per element, with missing elements in a sentinel bin that
        // is stripped afterwards.
        let nbins = binner.nbins();
        let mut mb = MultiWahBuilder::new(nbins + 1);
        for (&v, &p) in data.iter().zip(present) {
            mb.push(if p { binner.bin_of(v) } else { nbins as u32 });
        }
        let mut bins = mb.finish();
        bins.pop(); // drop the sentinel bin
        let index = BitmapIndex::from_bins(binner, bins);
        MaskedIndex {
            index,
            present: WahVec::from_bits(present.iter().copied()),
        }
    }

    /// The underlying (partial) index: bin counts cover observed positions
    /// only.
    pub fn index(&self) -> &BitmapIndex {
        &self.index
    }

    /// The presence mask.
    pub fn present(&self) -> &WahVec {
        &self.present
    }

    /// Observed element count.
    pub fn observed(&self) -> u64 {
        self.present.count_ones()
    }

    /// Missing element count.
    pub fn missing(&self) -> u64 {
        self.present.len() - self.observed()
    }
}

/// How the conditional distribution is turned into a value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImputeStrategy {
    /// Midpoint of the most likely `A` bin given the `B` bin (MAP) — best
    /// when the conditional is concentrated.
    ConditionalMode,
    /// Expectation of the bin midpoints under `P(A | B)` — lower RMSE when
    /// the conditional is spread or multi-modal.
    ConditionalMean,
}

/// One imputed value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Imputed {
    /// Element position.
    pub position: u64,
    /// Imputed value (midpoint of the chosen bin).
    pub value: f64,
    /// Confidence: the conditional probability mass of the chosen bin.
    pub confidence: f64,
}

/// Imputes the missing values of `a` from a fully-observed correlated
/// variable `b`: each missing position receives the midpoint of
/// `argmax_j P(A-bin j | B-bin of that position)`, with the conditional
/// estimated over the observed positions. Positions whose `B` bin was never
/// seen alongside an observed `A` fall back to `A`'s (observed) modal bin.
pub fn impute_from(a: &MaskedIndex, b: &BitmapIndex, strategy: ImputeStrategy) -> Vec<Imputed> {
    assert_eq!(
        a.index.len(),
        b.len(),
        "variables must cover the same positions"
    );
    let (na, nb) = (a.index.nbins(), b.nbins());
    if a.missing() == 0 {
        return Vec::new();
    }
    // conditional table over observed positions: cond[k][j] = |A=j ∧ B=k|
    // (A's bins already exclude missing positions)
    let mut cond = vec![0u64; nb * na];
    for j in 0..na {
        if a.index.counts()[j] == 0 {
            continue;
        }
        for k in 0..nb {
            if b.counts()[k] == 0 {
                continue;
            }
            cond[k * na + j] = a.index.bin(j).and_count(b.bin(k));
        }
    }
    // per-B-bin argmax + fallback to A's modal observed bin
    let modal_a = a
        .index
        .counts()
        .iter()
        .enumerate()
        .max_by_key(|(_, &c)| c)
        .map(|(j, _)| j)
        .unwrap_or(0);
    let mid = |j: usize| {
        let (lo, hi) = a.index.binner().bin_range(j);
        (lo + hi) / 2.0
    };
    // per-B-bin (value, confidence): MAP midpoint or conditional mean; the
    // confidence is always the modal bin's conditional mass
    let choice: Vec<(f64, f64)> = (0..nb)
        .map(|k| {
            let row = &cond[k * na..(k + 1) * na];
            let total: u64 = row.iter().sum();
            if total == 0 {
                return (mid(modal_a), 0.0);
            }
            let (j, &c) = row.iter().enumerate().max_by_key(|(_, &c)| c).unwrap();
            let confidence = c as f64 / total as f64;
            let value = match strategy {
                ImputeStrategy::ConditionalMode => mid(j),
                ImputeStrategy::ConditionalMean => {
                    row.iter()
                        .enumerate()
                        .map(|(j, &c)| c as f64 * mid(j))
                        .sum::<f64>()
                        / total as f64
                }
            };
            (value, confidence)
        })
        .collect();
    // walk the missing positions; B's bin per position via one decode
    let b_ids = decode_bin_ids(b);
    a.present
        .not()
        .iter_ones()
        .map(|pos| {
            let k = b_ids[pos as usize] as usize;
            let (value, confidence) = choice[k];
            Imputed {
                position: pos,
                value,
                confidence,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `a = 2b + 1` exactly; 20% of `a` masked.
    fn correlated(n: usize) -> (Vec<f64>, Vec<f64>, Vec<bool>) {
        let b: Vec<f64> = (0..n).map(|i| ((i * 17) % 40) as f64 / 4.0).collect();
        let a: Vec<f64> = b.iter().map(|v| 2.0 * v + 1.0).collect();
        // hashed mask, so missingness does not alias with b's value cycle
        let present: Vec<bool> = (0..n)
            .map(|i| (i.wrapping_mul(2654435761) >> 13) % 5 != 0)
            .collect();
        (a, b, present)
    }

    #[test]
    fn masked_index_counts_only_observed() {
        let (a, _, present) = correlated(1000);
        let m = MaskedIndex::build(&a, &present, Binner::fixed_width(0.0, 21.0, 42));
        let observed = present.iter().filter(|&&p| p).count() as u64;
        assert_eq!(m.observed(), observed);
        assert_eq!(m.missing(), 1000 - observed);
        assert_eq!(m.index().counts().iter().sum::<u64>(), observed);
    }

    #[test]
    fn imputation_recovers_linear_relationship() {
        let (a, b, present) = correlated(2000);
        let ma = MaskedIndex::build(&a, &present, Binner::fixed_width(0.0, 21.0, 84));
        let ib = BitmapIndex::build(&b, Binner::fixed_width(0.0, 10.0, 40));
        let imputed = impute_from(&ma, &ib, ImputeStrategy::ConditionalMode);
        assert_eq!(imputed.len() as u64, ma.missing());
        // error must be far below the global spread
        let mut max_err = 0.0f64;
        for im in &imputed {
            let truth = a[im.position as usize];
            max_err = max_err.max((im.value - truth).abs());
            assert!(im.confidence > 0.5, "deterministic mapping ⇒ confident");
        }
        assert!(max_err < 0.5, "max error {max_err} should be ~bin width");
    }

    #[test]
    fn imputation_beats_mean_fill() {
        let (a, b, present) = correlated(2000);
        let ma = MaskedIndex::build(&a, &present, Binner::fixed_width(0.0, 21.0, 84));
        let ib = BitmapIndex::build(&b, Binner::fixed_width(0.0, 10.0, 40));
        let imputed = impute_from(&ma, &ib, ImputeStrategy::ConditionalMode);
        let observed_mean = {
            let (mut s, mut c) = (0.0, 0u64);
            for (v, p) in a.iter().zip(&present) {
                if *p {
                    s += v;
                    c += 1;
                }
            }
            s / c as f64
        };
        let rmse =
            |errs: &[f64]| (errs.iter().map(|e| e * e).sum::<f64>() / errs.len() as f64).sqrt();
        let ours: Vec<f64> = imputed
            .iter()
            .map(|im| im.value - a[im.position as usize])
            .collect();
        let mean_fill: Vec<f64> = imputed
            .iter()
            .map(|im| observed_mean - a[im.position as usize])
            .collect();
        assert!(
            rmse(&ours) * 5.0 < rmse(&mean_fill),
            "bitmap imputation {} should crush mean-fill {}",
            rmse(&ours),
            rmse(&mean_fill)
        );
    }

    #[test]
    fn nothing_missing_nothing_imputed() {
        let (a, b, _) = correlated(100);
        let all = vec![true; 100];
        let ma = MaskedIndex::build(&a, &all, Binner::fixed_width(0.0, 21.0, 21));
        let ib = BitmapIndex::build(&b, Binner::fixed_width(0.0, 10.0, 10));
        assert!(impute_from(&ma, &ib, ImputeStrategy::ConditionalMean).is_empty());
    }

    #[test]
    fn unseen_b_bin_falls_back_to_mode() {
        // all observations of A have B in bin 0; a missing cell has B in a
        // different bin → fallback with zero confidence
        let a = vec![3.0, 3.0, 3.0, 9.0];
        let b = vec![0.5, 0.5, 0.5, 5.5];
        let present = vec![true, true, true, false];
        let ma = MaskedIndex::build(&a, &present, Binner::fixed_width(0.0, 10.0, 10));
        let ib = BitmapIndex::build(&b, Binner::fixed_width(0.0, 10.0, 10));
        let imputed = impute_from(&ma, &ib, ImputeStrategy::ConditionalMode);
        assert_eq!(imputed.len(), 1);
        assert_eq!(imputed[0].confidence, 0.0);
        assert!((imputed[0].value - 3.5).abs() < 1e-9, "modal bin midpoint");
    }

    #[test]
    fn conditional_mean_beats_mode_on_noisy_relation() {
        // a = b + heavy symmetric noise: the conditional spreads over many
        // bins; the mean estimator should win on RMSE
        let n = 4000usize;
        let b: Vec<f64> = (0..n).map(|i| ((i * 13) % 50) as f64 / 5.0).collect();
        let a: Vec<f64> = b
            .iter()
            .enumerate()
            .map(|(i, v)| {
                let noise =
                    (((i.wrapping_mul(0x9E3779B9) >> 7) % 1000) as f64 / 1000.0 - 0.5) * 4.0;
                v + noise + 5.0
            })
            .collect();
        let present: Vec<bool> = (0..n)
            .map(|i| (i.wrapping_mul(2654435761) >> 13) % 4 != 0)
            .collect();
        let ma = MaskedIndex::build(&a, &present, Binner::fixed_width(0.0, 20.0, 80));
        let ib = BitmapIndex::build(&b, Binner::fixed_width(0.0, 10.0, 50));
        let rmse = |imp: &[Imputed]| {
            (imp.iter()
                .map(|im| (im.value - a[im.position as usize]).powi(2))
                .sum::<f64>()
                / imp.len() as f64)
                .sqrt()
        };
        let mode = rmse(&impute_from(&ma, &ib, ImputeStrategy::ConditionalMode));
        let mean = rmse(&impute_from(&ma, &ib, ImputeStrategy::ConditionalMean));
        assert!(
            mean < mode,
            "mean {mean} should beat mode {mode} under noise"
        );
    }

    #[test]
    #[should_panic(expected = "mask length mismatch")]
    fn bad_mask_panics() {
        let _ = MaskedIndex::build(&[1.0], &[true, false], Binner::fixed_width(0.0, 2.0, 2));
    }
}
