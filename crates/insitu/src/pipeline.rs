//! The in-situ pipeline (Sections 2.3 and 3, Figures 2 and 3): simulate →
//! reduce (bitmaps / sampling / nothing) → select time-steps → write the
//! selected summaries.
//!
//! Two core-allocation strategies are implemented exactly as described:
//!
//! * **Shared Cores** — every phase uses all the cores, phases alternate:
//!   simulate a step, pause the simulation, build its bitmaps, continue.
//! * **Separate Cores** — the cores are split into a simulation set and a
//!   bitmaps set; the simulation streams steps into a bounded **data queue**
//!   (a crossbeam channel whose capacity models the memory budget) and the
//!   bitmap cores drain it concurrently.
//!
//! Selection is the streaming greedy algorithm of Figure 3 with fixed-length
//! intervals: the pipeline buffers one interval of summaries, scores each
//! against the previously selected step when the interval completes, keeps
//! the most dissimilar one, writes it out, and frees the rest.

use crate::io::Storage;
use crate::machine::{
    decontend, modeled_seconds, timed_in_pool, MachineModel, PhaseClock, ScalingModel,
};
use crate::memory::MemoryTracker;
use crate::report::{InsituReport, PhaseTimes};
use ibis_analysis::sampling::{sample, SamplingMethod};
use ibis_analysis::selection::fixed_intervals;
use ibis_analysis::{Metric, StepSummary, VarSummary};
use ibis_core::{build_index_parallel, Binner};
use ibis_datagen::{Simulation, StepOutput};
use std::time::{Duration, Instant};

/// What each time-step is reduced to before the raw data is discarded.
#[derive(Debug, Clone)]
pub enum Reduction {
    /// WAH bitmap indices (the paper's method) — raw data freed afterwards.
    Bitmaps,
    /// Keep the raw arrays (the *full data* baseline).
    FullData,
    /// Keep a sample of the elements (the Section 5.5 baseline).
    Sampling {
        /// Percentage of elements kept, in `(0, 100]`.
        percent: f64,
        /// Element-choice policy.
        method: SamplingMethod,
    },
}

/// How cores are divided between simulation and reduction (Section 2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreAllocation {
    /// All cores alternate between the phases.
    Shared,
    /// Dedicated sets running concurrently, joined by the data queue.
    Separate {
        /// Cores running the simulation.
        sim_cores: usize,
        /// Cores generating bitmaps.
        bitmap_cores: usize,
    },
}

/// Full configuration of a pipeline run.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Platform profile (core budget, core speed, disk bandwidth).
    pub machine: MachineModel,
    /// Cores used by this run (≤ `machine.total_cores`).
    pub cores: usize,
    /// Core-allocation strategy.
    pub allocation: CoreAllocation,
    /// Reduction method.
    pub reduction: Reduction,
    /// Time-steps to simulate.
    pub steps: usize,
    /// Time-steps to select (K of N).
    pub select_k: usize,
    /// Correlation metric for selection.
    pub metric: Metric,
    /// One binning scale per simulation output field, shared by every
    /// time-step (so cross-step metrics are well-defined). Ignored when
    /// `per_step_precision` is set.
    pub binners: Vec<Binner>,
    /// The paper's actual Heat3D configuration: bin each step to this many
    /// decimal digits over *that step's own value range*, anchored to a
    /// shared lattice (their runs used 64–206 bitvectors depending on the
    /// step's temperature range). Cross-step EMD uses the lattice-aligned
    /// variants; conditional entropy needs no alignment.
    pub per_step_precision: Option<i32>,
    /// Data-queue capacity for Separate-Cores (steps buffered between the
    /// simulation and bitmap cores; bounds memory).
    pub queue_capacity: usize,
    /// Scalability curve of the simulation workload.
    pub sim_scaling: ScalingModel,
}

impl PipelineConfig {
    fn validate(&self) {
        assert!(
            self.cores >= 1 && self.cores <= self.machine.total_cores,
            "bad core count"
        );
        assert!(self.steps >= 1, "need at least one step");
        assert!(
            self.select_k >= 1 && self.select_k <= self.steps,
            "cannot select {} of {} steps",
            self.select_k,
            self.steps
        );
        assert!(
            !self.binners.is_empty() || self.per_step_precision.is_some(),
            "need binners or per-step precision"
        );
        if let CoreAllocation::Separate {
            sim_cores,
            bitmap_cores,
        } = self.allocation
        {
            assert!(
                sim_cores >= 1 && bitmap_cores >= 1,
                "both core sets must be non-empty"
            );
            assert!(
                sim_cores + bitmap_cores <= self.cores,
                "separate sets exceed the core budget"
            );
            assert!(self.queue_capacity >= 1, "data queue needs capacity");
        }
    }
}

/// Builds the summary of one step under the configured reduction; returns
/// the summary and its resident byte size.
fn summarize(
    out: &StepOutput,
    reduction: &Reduction,
    binners: &[Binner],
    per_step_precision: Option<i32>,
) -> StepSummary {
    let fit = |f: &ibis_datagen::Field| match per_step_precision {
        Some(digits) => Binner::fit_precision_anchored(&f.data, digits),
        None => unreachable!("callers pass binners when precision is unset"),
    };
    if per_step_precision.is_none() {
        assert_eq!(
            out.fields.len(),
            binners.len(),
            "one binner per field required"
        );
    }
    let vars = out
        .fields
        .iter()
        .enumerate()
        .map(|(i, f)| {
            let binner = match per_step_precision {
                Some(_) => fit(f),
                None => binners[i].clone(),
            };
            (f, binner)
        })
        .map(|(f, binner)| match reduction {
            Reduction::Bitmaps => VarSummary::Bitmap(build_index_parallel(&f.data, binner)),
            Reduction::FullData => VarSummary::full(f.data.clone(), binner),
            Reduction::Sampling { percent, method } => {
                VarSummary::full(sample(&f.data, *percent, *method), binner)
            }
        })
        .collect();
    StepSummary {
        step: out.step,
        vars,
    }
}

/// Streaming greedy selection over fixed-length intervals (Figure 3): holds
/// the current interval's summaries, scores them against the previous
/// selection at interval end, emits the winner.
struct StreamingSelector {
    intervals: Vec<std::ops::Range<usize>>,
    cur: usize,
    prev: Option<StepSummary>,
    buffer: Vec<(usize, StepSummary)>,
    selected: Vec<usize>,
    metric: Metric,
    /// Metric-evaluation time (measured).
    select_time: Duration,
}

/// A summary the selector decided to keep — must be written out.
struct Emitted {
    step: usize,
    summary_bytes: u64,
}

impl StreamingSelector {
    fn new(steps: usize, k: usize, metric: Metric) -> Self {
        let intervals = if k > 1 {
            fixed_intervals(steps, k - 1)
        } else {
            Vec::new()
        };
        StreamingSelector {
            intervals,
            cur: 0,
            prev: None,
            buffer: Vec::new(),
            selected: Vec::new(),
            metric,
            select_time: Duration::ZERO,
        }
    }

    /// Offers the next step's summary; returns a selection event if one was
    /// emitted, plus the bytes of summaries freed.
    fn offer(&mut self, idx: usize, summary: StepSummary, mem: &MemoryTracker) -> Option<Emitted> {
        if idx == 0 {
            // Step 0 always seeds the selection.
            let bytes = summary.size_bytes() as u64;
            self.selected.push(0);
            self.prev = Some(summary);
            return Some(Emitted {
                step: 0,
                summary_bytes: bytes,
            });
        }
        self.buffer.push((idx, summary));
        let interval_done = self
            .intervals
            .get(self.cur)
            .is_some_and(|iv| idx + 1 == iv.end);
        if !interval_done {
            return None;
        }
        self.cur += 1;
        // Score the interval against the previous selection; keep the max.
        let prev = self.prev.as_ref().expect("seeded by step 0");
        let t0 = PhaseClock::start();
        let mut best: Option<(usize, f64)> = None;
        for (pos, (_, s)) in self.buffer.iter().enumerate() {
            let score = s.metric(prev, self.metric);
            if best.is_none_or(|(_, b)| score > b) {
                best = Some((pos, score));
            }
        }
        self.select_time += t0.elapsed();
        let (pos, _) = best.expect("interval is non-empty");
        let mut winner = None;
        for (pos_i, (idx_i, s)) in self.buffer.drain(..).enumerate() {
            if pos_i == pos {
                winner = Some((idx_i, s));
            } else {
                mem.free(s.size_bytes() as u64);
            }
        }
        let (widx, wsum) = winner.expect("winner drained");
        let bytes = wsum.size_bytes() as u64;
        self.selected.push(widx);
        // the previous selection is no longer needed in memory
        mem.free(prev.size_bytes() as u64);
        self.prev = Some(wsum);
        Some(Emitted {
            step: widx,
            summary_bytes: bytes,
        })
    }

    fn finish(self, mem: &MemoryTracker) -> (Vec<usize>, Duration) {
        for (_, s) in self.buffer {
            mem.free(s.size_bytes() as u64);
        }
        if let Some(p) = self.prev {
            mem.free(p.size_bytes() as u64);
        }
        (self.selected, self.select_time)
    }
}

/// Runs the pipeline on a simulation, writing selected summaries to
/// `storage`. Returns the full report.
pub fn run_pipeline<S: Simulation>(
    sim: S,
    cfg: &PipelineConfig,
    storage: &dyn Storage,
) -> InsituReport {
    cfg.validate();
    match cfg.allocation {
        CoreAllocation::Shared => run_shared(sim, cfg, storage),
        CoreAllocation::Separate { .. } => run_separate(sim, cfg, storage),
    }
}

fn reduce_scaling(reduction: &Reduction) -> ScalingModel {
    match reduction {
        // sampling is a trivially parallel copy; bitmaps near-linear
        Reduction::Bitmaps | Reduction::Sampling { .. } => ScalingModel::bitmap_gen(),
        Reduction::FullData => ScalingModel::new(0.0),
    }
}

fn run_shared<S: Simulation>(
    mut sim: S,
    cfg: &PipelineConfig,
    storage: &dyn Storage,
) -> InsituReport {
    let wall0 = Instant::now();
    let pool = cfg.machine.pool(cfg.cores);
    let threads = pool.current_num_threads();
    let mem = MemoryTracker::new();
    let sim_resident = sim.resident_bytes() as u64;
    mem.alloc(sim_resident);
    let mut selector = StreamingSelector::new(cfg.steps, cfg.select_k, cfg.metric);
    let mut sim_t = Duration::ZERO;
    let mut reduce_t = Duration::ZERO;
    let mut output_modeled = 0.0f64;
    let mut bytes_written = 0u64;
    let mut summary_bytes_total = 0u64;
    let mut raw_bytes_per_step = 0u64;

    for i in 0..cfg.steps {
        let t0 = Instant::now();
        let out = pool.install(|| sim.step());
        sim_t += t0.elapsed();
        let raw = out.size_bytes() as u64;
        raw_bytes_per_step = raw;
        mem.alloc(raw);

        let t0 = Instant::now();
        let summary =
            pool.install(|| summarize(&out, &cfg.reduction, &cfg.binners, cfg.per_step_precision));
        reduce_t += t0.elapsed();
        let sbytes = summary.size_bytes() as u64;
        summary_bytes_total += sbytes;
        mem.alloc(sbytes);
        drop(out);
        mem.free(raw); // raw data discarded once the summary exists

        if let Some(e) = selector.offer(i, summary, &mem) {
            let secs = storage.write(output_modeled, e.summary_bytes);
            output_modeled += secs;
            bytes_written += e.summary_bytes;
            let _ = e.step;
        }
    }
    let (selected, select_t) = selector.finish(&mem);
    mem.free(sim_resident);

    let speed = cfg.machine.core_speed;
    let phases = PhaseTimes {
        simulate: modeled_seconds(sim_t, threads, cfg.cores, &cfg.sim_scaling, speed),
        reduce: modeled_seconds(
            reduce_t,
            threads,
            cfg.cores,
            &reduce_scaling(&cfg.reduction),
            speed,
        ),
        select: modeled_seconds(
            select_t,
            threads,
            cfg.cores,
            &ScalingModel::selection(),
            speed,
        ),
        output: output_modeled,
    };
    InsituReport {
        total_modeled: phases.sum(),
        phases,
        wall_seconds: wall0.elapsed().as_secs_f64(),
        selected,
        peak_memory_bytes: mem.peak(),
        bytes_written,
        raw_bytes_per_step,
        summary_bytes_total,
        steps: cfg.steps,
    }
}

fn run_separate<S: Simulation>(
    mut sim: S,
    cfg: &PipelineConfig,
    storage: &dyn Storage,
) -> InsituReport {
    let CoreAllocation::Separate {
        sim_cores,
        bitmap_cores,
    } = cfg.allocation
    else {
        unreachable!("dispatched on allocation");
    };
    let wall0 = Instant::now();
    let mem = MemoryTracker::new();
    let sim_resident = sim.resident_bytes() as u64;
    mem.alloc(sim_resident);
    let (tx, rx) = crossbeam::channel::bounded::<StepOutput>(cfg.queue_capacity);
    let sim_pool = cfg.machine.pool(sim_cores);
    let bm_pool = cfg.machine.pool(bitmap_cores);
    let sim_threads = sim_pool.current_num_threads();
    let bm_threads = bm_pool.current_num_threads();
    let steps = cfg.steps;

    let mut selector = StreamingSelector::new(cfg.steps, cfg.select_k, cfg.metric);
    let mut reduce_t = Duration::ZERO;
    let mut output_modeled = 0.0f64;
    let mut bytes_written = 0u64;
    let mut summary_bytes_total = 0u64;
    let mut raw_bytes_per_step = 0u64;

    let sim_t = std::thread::scope(|scope| {
        let mem_ref = &mem;
        // Producer: the simulation core set, feeding the bounded data queue.
        let producer = scope.spawn(move || {
            let mut sim_t = Duration::ZERO;
            for _ in 0..steps {
                let (out, d) = timed_in_pool(&sim_pool, || sim.step());
                sim_t += d;
                mem_ref.alloc(out.size_bytes() as u64);
                // blocks when the queue is full — the paper's memory bound
                tx.send(out).expect("consumer hung up");
            }
            drop(tx);
            sim_t
        });

        // Consumer: the bitmap core set, draining the queue head.
        for (i, out) in rx.iter().enumerate() {
            let raw = out.size_bytes() as u64;
            raw_bytes_per_step = raw;
            let (summary, d) = timed_in_pool(&bm_pool, || {
                summarize(&out, &cfg.reduction, &cfg.binners, cfg.per_step_precision)
            });
            reduce_t += d;
            let sbytes = summary.size_bytes() as u64;
            summary_bytes_total += sbytes;
            mem.alloc(sbytes);
            drop(out);
            mem.free(raw);
            if let Some(e) = selector.offer(i, summary, &mem) {
                let secs = storage.write(output_modeled, e.summary_bytes);
                output_modeled += secs;
                bytes_written += e.summary_bytes;
            }
        }
        producer.join().expect("simulation thread panicked")
    });
    let (selected, select_t) = selector.finish(&mem);
    mem.free(sim_resident);

    // One-thread pools were measured in thread CPU time (exact under
    // oversubscription); wider pools used wall clock and need the
    // host-contention correction.
    let active = sim_threads + bm_threads;
    let sim_t = if sim_threads == 1 {
        sim_t
    } else {
        decontend(sim_t, active)
    };
    let reduce_t = if bm_threads == 1 {
        reduce_t
    } else {
        decontend(reduce_t, active)
    };
    let select_t = if bm_threads == 1 {
        select_t
    } else {
        decontend(select_t, active)
    };
    let speed = cfg.machine.core_speed;
    let phases = PhaseTimes {
        simulate: modeled_seconds(sim_t, sim_threads, sim_cores, &cfg.sim_scaling, speed),
        reduce: modeled_seconds(
            reduce_t,
            bm_threads,
            bitmap_cores,
            &reduce_scaling(&cfg.reduction),
            speed,
        ),
        select: modeled_seconds(
            select_t,
            bm_threads,
            bitmap_cores,
            &ScalingModel::selection(),
            speed,
        ),
        output: output_modeled,
    };
    // Simulation and reduction overlap; selection rides the bitmap cores.
    let total_modeled = phases.simulate.max(phases.reduce + phases.select) + phases.output;
    InsituReport {
        phases,
        total_modeled,
        wall_seconds: wall0.elapsed().as_secs_f64(),
        selected,
        peak_memory_bytes: mem.peak(),
        bytes_written,
        raw_bytes_per_step,
        summary_bytes_total,
        steps: cfg.steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::LocalDisk;
    use ibis_datagen::{Heat3D, Heat3DConfig};

    fn heat_cfg() -> Heat3DConfig {
        Heat3DConfig {
            nx: 16,
            ny: 16,
            nz: 16,
            ..Heat3DConfig::tiny()
        }
    }

    fn base_cfg(reduction: Reduction) -> PipelineConfig {
        PipelineConfig {
            machine: MachineModel::xeon32(),
            cores: 4,
            allocation: CoreAllocation::Shared,
            reduction,
            steps: 13,
            select_k: 4,
            metric: Metric::ConditionalEntropy,
            binners: vec![Binner::precision(-1.0, 101.0, 0)],
            per_step_precision: None,
            queue_capacity: 3,
            sim_scaling: ScalingModel::heat3d(),
        }
    }

    #[test]
    fn shared_bitmaps_run_end_to_end() {
        let cfg = base_cfg(Reduction::Bitmaps);
        let disk = LocalDisk::new(1e9);
        let r = run_pipeline(Heat3D::new(heat_cfg()), &cfg, &disk);
        assert_eq!(r.selected.len(), 4);
        assert_eq!(r.selected[0], 0);
        assert!(r.selected.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(r.steps, 13);
        assert!(r.bytes_written > 0);
        assert_eq!(disk.bytes_written(), r.bytes_written);
        assert!(r.phases.simulate > 0.0 && r.phases.reduce > 0.0);
        assert!(r.total_modeled >= r.phases.output);
        assert!(
            r.compression_ratio() > 1.0,
            "bitmaps should compress heat3d"
        );
    }

    #[test]
    fn full_data_writes_raw_sizes() {
        let cfg = base_cfg(Reduction::FullData);
        let disk = LocalDisk::new(1e9);
        let r = run_pipeline(Heat3D::new(heat_cfg()), &cfg, &disk);
        // each selected step is the raw array
        assert_eq!(r.bytes_written, 4 * r.raw_bytes_per_step);
        assert!(
            r.phases.reduce < r.phases.simulate,
            "full data has ~no reduce phase"
        );
    }

    #[test]
    fn bitmaps_write_less_and_peak_lower_than_full() {
        let disk = LocalDisk::new(1e9);
        let rb = run_pipeline(
            Heat3D::new(heat_cfg()),
            &base_cfg(Reduction::Bitmaps),
            &disk,
        );
        let rf = run_pipeline(
            Heat3D::new(heat_cfg()),
            &base_cfg(Reduction::FullData),
            &disk,
        );
        assert!(
            rb.bytes_written < rf.bytes_written,
            "bitmaps must shrink I/O"
        );
        assert!(
            rb.peak_memory_bytes < rf.peak_memory_bytes,
            "bitmaps {} must hold less than full {}",
            rb.peak_memory_bytes,
            rf.peak_memory_bytes
        );
    }

    #[test]
    fn both_strategies_select_identical_steps() {
        let disk = LocalDisk::new(1e9);
        let shared = run_pipeline(
            Heat3D::new(heat_cfg()),
            &base_cfg(Reduction::Bitmaps),
            &disk,
        );
        let mut cfg = base_cfg(Reduction::Bitmaps);
        cfg.allocation = CoreAllocation::Separate {
            sim_cores: 2,
            bitmap_cores: 2,
        };
        let separate = run_pipeline(Heat3D::new(heat_cfg()), &cfg, &disk);
        assert_eq!(shared.selected, separate.selected);
        assert_eq!(shared.bytes_written, separate.bytes_written);
    }

    #[test]
    fn bitmap_selection_equals_full_selection() {
        // the no-accuracy-loss claim at pipeline level
        let disk = LocalDisk::new(1e9);
        let rb = run_pipeline(
            Heat3D::new(heat_cfg()),
            &base_cfg(Reduction::Bitmaps),
            &disk,
        );
        let rf = run_pipeline(
            Heat3D::new(heat_cfg()),
            &base_cfg(Reduction::FullData),
            &disk,
        );
        assert_eq!(rb.selected, rf.selected);
    }

    #[test]
    fn sampling_reduces_bytes_but_changes_selection_possible() {
        let mut cfg = base_cfg(Reduction::Sampling {
            percent: 10.0,
            method: SamplingMethod::Stride,
        });
        cfg.metric = Metric::ConditionalEntropy;
        let disk = LocalDisk::new(1e9);
        let r = run_pipeline(Heat3D::new(heat_cfg()), &cfg, &disk);
        assert_eq!(r.selected.len(), 4);
        assert!(
            r.bytes_written < 4 * r.raw_bytes_per_step / 5,
            "10% samples are small"
        );
    }

    #[test]
    fn select_one_keeps_only_step_zero() {
        let mut cfg = base_cfg(Reduction::Bitmaps);
        cfg.select_k = 1;
        let disk = LocalDisk::new(1e9);
        let r = run_pipeline(Heat3D::new(heat_cfg()), &cfg, &disk);
        assert_eq!(r.selected, vec![0]);
    }

    #[test]
    fn select_all_keeps_everything() {
        let mut cfg = base_cfg(Reduction::Bitmaps);
        cfg.steps = 5;
        cfg.select_k = 5;
        let disk = LocalDisk::new(1e9);
        let r = run_pipeline(Heat3D::new(heat_cfg()), &cfg, &disk);
        assert_eq!(r.selected, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn memory_tracker_ends_at_zero() {
        // peak > 0 and everything freed: no leak in the accounting
        let cfg = base_cfg(Reduction::Bitmaps);
        let disk = LocalDisk::new(1e9);
        let r = run_pipeline(Heat3D::new(heat_cfg()), &cfg, &disk);
        assert!(r.peak_memory_bytes > 0);
    }

    #[test]
    #[should_panic(expected = "separate sets exceed")]
    fn rejects_overcommitted_split() {
        let mut cfg = base_cfg(Reduction::Bitmaps);
        cfg.allocation = CoreAllocation::Separate {
            sim_cores: 3,
            bitmap_cores: 3,
        };
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "cannot select")]
    fn rejects_bad_k() {
        let mut cfg = base_cfg(Reduction::Bitmaps);
        cfg.select_k = 50;
        cfg.validate();
    }
}
