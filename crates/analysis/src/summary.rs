//! Time-step summaries: the unit the online (in-situ) analysis operates on.
//!
//! The *full data* method keeps each step's raw arrays in memory; the
//! *bitmaps* method keeps only the compressed indices (Figure 3). Both
//! support the same correlation metrics — with identical results under the
//! same binning — but at very different memory and compute cost, which is
//! the paper's whole argument.

use crate::emd::{
    emd_counts_full, emd_counts_full_aligned, emd_counts_index, emd_counts_index_aligned,
    emd_spatial_full, emd_spatial_full_aligned, emd_spatial_index, emd_spatial_index_aligned,
};
use crate::entropy::{
    conditional_entropy_full, conditional_entropy_index, shannon_entropy_from_counts,
    shannon_entropy_full, shannon_entropy_index,
};
use ibis_core::{Binner, BitmapIndex, LossyStats};
use ibis_obs::LazyCounter;

static OBS_STEP_METRIC_EVALS: LazyCounter = LazyCounter::new("analysis.metric.step_evals");

/// The correlation metric used to compare two time-steps (Section 3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// `H(candidate | selected)` — conditional entropy (Heat3D experiments).
    ConditionalEntropy,
    /// Count-based Earth Mover's Distance.
    Emd,
    /// Spatial (XOR-based) Earth Mover's Distance (LULESH experiments).
    EmdSpatial,
}

/// Summary of one variable of one time-step.
#[derive(Debug, Clone)]
pub enum VarSummary {
    /// The raw array (full-data method) plus the binning scale used for
    /// metric computation.
    Full {
        /// The retained raw values.
        data: Vec<f64>,
        /// Binning scale used when computing metrics.
        binner: Binner,
    },
    /// The compressed bitmap index (bitmaps method); the raw array has been
    /// discarded.
    Bitmap(BitmapIndex),
}

impl VarSummary {
    /// Summarizes `data` as raw data (full-data method).
    pub fn full(data: Vec<f64>, binner: Binner) -> Self {
        VarSummary::Full { data, binner }
    }

    /// Summarizes `data` as a bitmap index and drops the data.
    pub fn bitmap(data: &[f64], binner: Binner) -> Self {
        VarSummary::Bitmap(BitmapIndex::build(data, binner))
    }

    /// Bytes this summary keeps resident — raw array vs compressed bitmaps
    /// (the Figure 11 quantity).
    pub fn size_bytes(&self) -> usize {
        match self {
            VarSummary::Full { data, .. } => data.len() * 8,
            VarSummary::Bitmap(idx) => idx.size_bytes(),
        }
    }

    /// Shannon entropy of this variable (the importance measure).
    pub fn entropy(&self) -> f64 {
        match self {
            VarSummary::Full { data, binner } => shannon_entropy_full(data, binner),
            VarSummary::Bitmap(idx) => shannon_entropy_index(idx),
        }
    }

    /// The value histogram under the summary's binning.
    pub fn counts(&self) -> Vec<u64> {
        match self {
            VarSummary::Full { data, binner } => crate::histogram::histogram(data, binner),
            VarSummary::Bitmap(idx) => idx.counts().to_vec(),
        }
    }

    /// Dissimilarity of `self` (the candidate) from `other` (the previously
    /// selected step): larger means more new information. Both summaries
    /// must be of the same kind.
    ///
    /// # Panics
    /// Panics when mixing a full summary with a bitmap summary — a run uses
    /// one method throughout, as in the paper.
    pub fn metric(&self, other: &VarSummary, metric: Metric) -> f64 {
        match (self, other) {
            (
                VarSummary::Full {
                    data: a,
                    binner: ba,
                },
                VarSummary::Full {
                    data: b,
                    binner: bb,
                },
            ) => match metric {
                Metric::ConditionalEntropy => conditional_entropy_full(a, b, ba, bb),
                Metric::Emd if ba == bb => emd_counts_full(a, b, ba),
                Metric::Emd => emd_counts_full_aligned(a, b, ba, bb)
                    .expect("EMD needs a shared binning lattice"),
                Metric::EmdSpatial if ba == bb => emd_spatial_full(a, b, ba),
                Metric::EmdSpatial => emd_spatial_full_aligned(a, b, ba, bb)
                    .expect("EMD needs a shared binning lattice"),
            },
            (VarSummary::Bitmap(a), VarSummary::Bitmap(b)) => match metric {
                Metric::ConditionalEntropy => conditional_entropy_index(a, b),
                Metric::Emd if a.binner() == b.binner() => emd_counts_index(a, b),
                Metric::Emd => {
                    emd_counts_index_aligned(a, b).expect("EMD needs a shared binning lattice")
                }
                Metric::EmdSpatial if a.binner() == b.binner() => emd_spatial_index(a, b),
                Metric::EmdSpatial => {
                    emd_spatial_index_aligned(a, b).expect("EMD needs a shared binning lattice")
                }
            },
            _ => panic!("cannot mix full-data and bitmap summaries in one metric"),
        }
    }

    /// The lossy superset view of a bitmap summary (see
    /// [`BitmapIndex::lossy`]): per-bin 0-runs shorter than the FPR-derived
    /// threshold absorbed into surrounding 1-fills. Metrics over lossy
    /// summaries are approximate; selection and loss measurements use them
    /// to trade exactness for resident bytes.
    ///
    /// # Panics
    /// Panics on a full-data summary — lossiness is a bitmap-side notion.
    pub fn lossy(&self, fpr: f64) -> (VarSummary, LossyStats) {
        match self {
            VarSummary::Bitmap(idx) => {
                let (lossy, stats) = idx.lossy(fpr);
                (VarSummary::Bitmap(lossy), stats)
            }
            VarSummary::Full { .. } => {
                panic!("lossy summaries apply to bitmap summaries only")
            }
        }
    }
}

/// Summary of one complete time-step (all its variables).
#[derive(Debug, Clone)]
pub struct StepSummary {
    /// Time-step number.
    pub step: usize,
    /// One summary per output variable (Heat3D: 1; mini-LULESH: 12).
    pub vars: Vec<VarSummary>,
}

impl StepSummary {
    /// Resident bytes across all variables.
    pub fn size_bytes(&self) -> usize {
        self.vars.iter().map(VarSummary::size_bytes).sum()
    }

    /// Total entropy across variables (importance of the step).
    pub fn entropy(&self) -> f64 {
        self.vars.iter().map(VarSummary::entropy).sum()
    }

    /// Dissimilarity from another step: per-variable metrics summed (the
    /// paper analyses all 12 LULESH arrays together).
    pub fn metric(&self, other: &StepSummary, metric: Metric) -> f64 {
        OBS_STEP_METRIC_EVALS.inc();
        assert_eq!(
            self.vars.len(),
            other.vars.len(),
            "steps have different variables"
        );
        self.vars
            .iter()
            .zip(&other.vars)
            .map(|(a, b)| a.metric(b, metric))
            .sum()
    }

    /// Every variable's lossy superset view (see [`VarSummary::lossy`]),
    /// with the per-variable drop accounting merged.
    pub fn lossy(&self, fpr: f64) -> (StepSummary, LossyStats) {
        let mut stats = LossyStats::default();
        let vars = self
            .vars
            .iter()
            .map(|v| {
                let (lossy, s) = v.lossy(fpr);
                stats.merge(&s);
                lossy
            })
            .collect();
        (
            StepSummary {
                step: self.step,
                vars,
            },
            stats,
        )
    }
}

/// Entropy straight from a precomputed histogram (shared helper).
pub fn entropy_of_counts(counts: &[u64]) -> f64 {
    shannon_entropy_from_counts(counts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wave(n: usize, phase: f64) -> Vec<f64> {
        (0..n)
            .map(|i| (i as f64 * 0.05 + phase).sin() * 10.0)
            .collect()
    }

    fn binner() -> Binner {
        Binner::fixed_width(-11.0, 11.0, 22)
    }

    #[test]
    fn bitmap_summary_is_smaller() {
        let data = wave(50_000, 0.0);
        let full = VarSummary::full(data.clone(), binner());
        let bm = VarSummary::bitmap(&data, binner());
        assert!(
            bm.size_bytes() * 2 < full.size_bytes(),
            "bitmap {} vs full {}",
            bm.size_bytes(),
            full.size_bytes()
        );
    }

    #[test]
    fn metrics_agree_between_kinds() {
        let a = wave(5000, 0.0);
        let b = wave(5000, 1.0);
        let fa = VarSummary::full(a.clone(), binner());
        let fb = VarSummary::full(b.clone(), binner());
        let ba = VarSummary::bitmap(&a, binner());
        let bb = VarSummary::bitmap(&b, binner());
        for m in [Metric::ConditionalEntropy, Metric::Emd, Metric::EmdSpatial] {
            assert_eq!(fa.metric(&fb, m), ba.metric(&bb, m), "{m:?}");
        }
        assert_eq!(fa.entropy(), ba.entropy());
        assert_eq!(fa.counts(), ba.counts());
    }

    #[test]
    #[should_panic(expected = "cannot mix")]
    fn mixed_kinds_panic() {
        let a = wave(100, 0.0);
        let f = VarSummary::full(a.clone(), binner());
        let b = VarSummary::bitmap(&a, binner());
        let _ = f.metric(&b, Metric::Emd);
    }

    #[test]
    fn multi_var_metric_sums() {
        let a1 = wave(1000, 0.0);
        let a2 = wave(1000, 0.5);
        let b1 = wave(1000, 1.0);
        let b2 = wave(1000, 1.5);
        let sa = StepSummary {
            step: 0,
            vars: vec![
                VarSummary::bitmap(&a1, binner()),
                VarSummary::bitmap(&a2, binner()),
            ],
        };
        let sb = StepSummary {
            step: 1,
            vars: vec![
                VarSummary::bitmap(&b1, binner()),
                VarSummary::bitmap(&b2, binner()),
            ],
        };
        let total = sa.metric(&sb, Metric::Emd);
        let v0 = sa.vars[0].metric(&sb.vars[0], Metric::Emd);
        let v1 = sa.vars[1].metric(&sb.vars[1], Metric::Emd);
        assert_eq!(total, v0 + v1);
    }

    #[test]
    fn metrics_with_per_step_binners_still_agree_between_kinds() {
        // per-step anchored binners: different nbins, same lattice
        let a = wave(3000, 0.0);
        let b: Vec<f64> = wave(3000, 1.0).iter().map(|v| v * 1.5 + 4.0).collect();
        let ba = ibis_core::Binner::fit_precision_anchored(&a, 1);
        let bb = ibis_core::Binner::fit_precision_anchored(&b, 1);
        assert_ne!(ba.nbins(), bb.nbins());
        let fa = VarSummary::full(a.clone(), ba.clone());
        let fb = VarSummary::full(b.clone(), bb.clone());
        let bma = VarSummary::bitmap(&a, ba);
        let bmb = VarSummary::bitmap(&b, bb);
        for m in [Metric::ConditionalEntropy, Metric::Emd, Metric::EmdSpatial] {
            assert_eq!(fa.metric(&fb, m), bma.metric(&bmb, m), "{m:?}");
        }
    }

    #[test]
    fn self_metric_is_zero_for_emd() {
        let a = wave(500, 0.3);
        let s = VarSummary::bitmap(&a, binner());
        assert_eq!(s.metric(&s, Metric::Emd), 0.0);
        assert_eq!(s.metric(&s, Metric::EmdSpatial), 0.0);
        assert!(s.metric(&s, Metric::ConditionalEntropy).abs() < 1e-10);
    }
}
