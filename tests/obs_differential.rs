//! Differential no-observer-effect harness (the observability layer's core
//! guarantee): an instrumented build and a `--no-default-features` (no-op)
//! build of the *same* Ocean end-to-end run must produce a byte-identical
//! durable store and identical selections. Metrics may observe the run;
//! they may never steer it.
//!
//! One `cargo test` invocation can only ever be one of the two builds, so
//! the harness is split across invocations: each run writes a digest of
//! everything observable (store file bytes, pipeline selection, cluster
//! selection) to `target/obs_differential/{instrumented,noop}.digest`, and
//! whichever run finds the other side's digest already on disk performs the
//! comparison. `scripts/ci.sh` clears the digest directory, runs the
//! workspace tests (instrumented), then this test under
//! `--no-default-features` — so CI always executes the comparison.

use ibis::analysis::Metric;
use ibis::core::RowOrder;
use ibis::datagen::{Heat3DConfig, OceanConfig, OceanModel};
use ibis::insitu::{
    run_cluster, run_durable, ClusterConfig, ClusterIo, ClusterReduction, CoreAllocation,
    MachineModel, PipelineConfig, Reduction, RobustnessConfig, ScalingModel,
};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::time::Duration;

fn pipeline_cfg() -> PipelineConfig {
    PipelineConfig {
        machine: MachineModel::xeon32(),
        cores: 4,
        allocation: CoreAllocation::Shared,
        reduction: Reduction::Bitmaps,
        steps: 11,
        select_k: 4,
        metric: Metric::ConditionalEntropy,
        binners: Vec::new(),
        per_step_precision: Some(0),
        // A data-dependent order keeps the run on the reorder path, so the
        // differential also proves reordering itself has no observer effect
        // (and populates the `reorder.*` family below).
        row_order: RowOrder::HistogramSorted,
        queue_capacity: 2,
        sim_scaling: ScalingModel::heat3d(),
        robustness: RobustnessConfig::default(),
    }
}

fn cluster_cfg() -> ClusterConfig {
    ClusterConfig {
        nodes: 2,
        cores_per_node: 2,
        machine: MachineModel::oakley_node(),
        heat: Heat3DConfig {
            nx: 12,
            ny: 12,
            nz: 16,
            ..Heat3DConfig::tiny()
        },
        sweeps_per_step: 1,
        steps: 7,
        select_k: 3,
        binner: ibis::core::Binner::precision(-1.0, 101.0, 0),
        reduction: ClusterReduction::Bitmaps,
        io: ClusterIo::Local,
        remote_bw: MachineModel::remote_link_bw(),
        sim_scaling: ScalingModel::heat3d(),
        robustness: RobustnessConfig::default(),
        coordinator_timeout: Duration::from_secs(30),
    }
}

/// Every durable artifact, name → bytes (same check as the crash/resume
/// suite: only blobs and the manifest may remain).
fn dir_contents(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    for entry in std::fs::read_dir(dir).expect("read store dir") {
        let entry = entry.expect("dir entry");
        let name = entry.file_name().to_string_lossy().into_owned();
        out.insert(name, std::fs::read(entry.path()).expect("read file"));
    }
    out
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A line-oriented, diffable digest of everything the run produced that the
/// outside world can observe.
fn digest(store: &BTreeMap<String, Vec<u8>>, selected: &[usize], cluster: &[usize]) -> String {
    let mut out = String::new();
    out.push_str(&format!("pipeline.selected {selected:?}\n"));
    out.push_str(&format!("cluster.selected {cluster:?}\n"));
    for (name, bytes) in store {
        out.push_str(&format!(
            "store {name} len={} fnv1a={:016x}\n",
            bytes.len(),
            fnv1a(bytes)
        ));
    }
    out
}

fn digest_dir() -> PathBuf {
    PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/target/obs_differential"
    ))
}

#[test]
fn instrumentation_has_no_observer_effect() {
    let config = if ibis::obs::ENABLED {
        "instrumented"
    } else {
        "noop"
    };
    let other = if ibis::obs::ENABLED {
        "noop"
    } else {
        "instrumented"
    };

    let store_dir = std::env::temp_dir().join(format!(
        "ibis-obs-differential-{config}-{}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&store_dir).ok();

    // The workload: an Ocean durable end-to-end run (simulate → compress →
    // select → store) plus a small Heat3D cluster run.
    let report = run_durable(
        OceanModel::new(OceanConfig::tiny()),
        &pipeline_cfg(),
        &store_dir,
    )
    .expect("durable run");
    assert_eq!(report.selected.len(), 4);
    let cluster = run_cluster(&cluster_cfg()).expect("cluster run");
    let contents = dir_contents(&store_dir);
    assert!(!contents.is_empty(), "store must hold blobs + manifest");

    let mine = digest(&contents, &report.selected, &cluster.selected);
    std::fs::remove_dir_all(&store_dir).ok();

    // In the instrumented build the run above must have populated every
    // metric family the issue names — proof the layer actually observed
    // kernels, pipeline, store, cluster, the per-bin codec selection
    // (`codec.select.*` / `codec.encode.bins` tick on every store put), and
    // the row-reorder pass (`reorder.perm.built` / `reorder.pipeline.steps`
    // tick because the run above uses a data-dependent order).
    if ibis::obs::ENABLED {
        let snap = ibis::obs::global().snapshot();
        let families = snap.families();
        for family in [
            "kernels", "pipeline", "store", "cluster", "codec", "reorder",
        ] {
            assert!(
                families.contains(family),
                "family {family:?} missing from snapshot; have {families:?}"
            );
        }
    } else {
        assert!(
            ibis::obs::global().snapshot().is_empty(),
            "no-op build must record nothing"
        );
    }

    // Publish this build's digest; compare when the other build already ran.
    let dir = digest_dir();
    std::fs::create_dir_all(&dir).expect("create digest dir");
    std::fs::write(dir.join(format!("{config}.digest")), &mine).expect("write digest");
    let other_path = dir.join(format!("{other}.digest"));
    if let Ok(theirs) = std::fs::read_to_string(&other_path) {
        assert_eq!(
            mine, theirs,
            "instrumented and no-op builds diverged: observer effect detected"
        );
        eprintln!("differential comparison ran: {config} == {other}");
    } else {
        eprintln!("differential: wrote {config}.digest; waiting for a {other} run to compare");
    }
}
