//! A plain uncompressed bitset.
//!
//! Serves two roles: the correctness oracle for the compressed [`WahVec`]
//! (every compressed operation is property-tested against it) and the
//! "bitmaps before compression" baseline whose size the paper notes can
//! exceed the original data (Section 2.1).

use crate::WahVec;

/// Uncompressed bitset backed by `u64` words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitset {
    words: Vec<u64>,
    len: u64,
}

impl Bitset {
    /// An all-zeros bitset of `len` bits.
    pub fn new(len: u64) -> Self {
        Bitset {
            words: vec![0; len.div_ceil(64) as usize],
            len,
        }
    }

    /// Builds from an iterator of bits.
    pub fn from_bits<I: IntoIterator<Item = bool>>(bits: I) -> Self {
        let mut words = Vec::new();
        let mut len = 0u64;
        let mut cur = 0u64;
        for bit in bits {
            if bit {
                cur |= 1 << (len % 64);
            }
            len += 1;
            if len.is_multiple_of(64) {
                words.push(cur);
                cur = 0;
            }
        }
        if !len.is_multiple_of(64) {
            words.push(cur);
        }
        Bitset { words, len }
    }

    /// Number of bits.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// `true` if the bitset holds zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets bit `i` to `value`.
    pub fn set(&mut self, i: u64, value: bool) {
        assert!(i < self.len, "index {i} out of range {}", self.len);
        let (w, b) = ((i / 64) as usize, i % 64);
        if value {
            self.words[w] |= 1 << b;
        } else {
            self.words[w] &= !(1 << b);
        }
    }

    /// Reads bit `i`.
    pub fn get(&self, i: u64) -> bool {
        assert!(i < self.len, "index {i} out of range {}", self.len);
        self.words[(i / 64) as usize] & (1 << (i % 64)) != 0
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u64 {
        self.words.iter().map(|w| w.count_ones() as u64).sum()
    }

    /// In-place AND.
    pub fn and_assign(&mut self, other: &Bitset) {
        assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place OR.
    pub fn or_assign(&mut self, other: &Bitset) {
        assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place XOR.
    pub fn xor_assign(&mut self, other: &Bitset) {
        assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a ^= b;
        }
    }

    /// Size in bytes — the uncompressed cost the paper's Section 2.1 warns
    /// about (`n × m` bits across an index's bitvectors).
    pub fn size_bytes(&self) -> usize {
        self.words.len() * 8 + std::mem::size_of::<Bitset>()
    }

    /// Compresses into a [`WahVec`].
    pub fn to_wah(&self) -> WahVec {
        WahVec::from_bits((0..self.len).map(|i| self.get(i)))
    }
}

/// The naive two-phase index construction the paper's Algorithm 1 replaces:
/// first materialize every *uncompressed* bitvector, then compress each.
/// Output is identical to [`crate::BitmapIndex::build`], but the transient
/// footprint is `nbins × n` bits — "bitmaps before compression can require
/// more memory than the original data" (Section 2.1) — which the ablation
/// bench quantifies.
///
/// Returns the compressed index and the peak transient bytes the
/// uncompressed phase held.
pub fn build_index_two_phase(data: &[f64], binner: crate::Binner) -> (crate::BitmapIndex, usize) {
    let n = data.len() as u64;
    let mut sets: Vec<Bitset> = (0..binner.nbins()).map(|_| Bitset::new(n)).collect();
    let mut ids = Vec::new();
    binner.bin_into(data, &mut ids);
    for (i, &id) in ids.iter().enumerate() {
        sets[id as usize].set(i as u64, true);
    }
    let transient: usize = sets.iter().map(Bitset::size_bytes).sum();
    let bins = sets.iter().map(Bitset::to_wah).collect();
    (crate::BitmapIndex::from_bins(binner, bins), transient)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_count() {
        let mut b = Bitset::new(130);
        assert_eq!(b.count_ones(), 0);
        b.set(0, true);
        b.set(64, true);
        b.set(129, true);
        assert_eq!(b.count_ones(), 3);
        assert!(b.get(0) && b.get(64) && b.get(129));
        assert!(!b.get(1));
        b.set(64, false);
        assert_eq!(b.count_ones(), 2);
    }

    #[test]
    fn logical_ops() {
        let a_bits: Vec<bool> = (0..100).map(|i| i % 2 == 0).collect();
        let b_bits: Vec<bool> = (0..100).map(|i| i % 3 == 0).collect();
        let a = Bitset::from_bits(a_bits.iter().copied());
        let b = Bitset::from_bits(b_bits.iter().copied());
        let mut x = a.clone();
        x.and_assign(&b);
        assert_eq!(x.count_ones(), 17);
        let mut y = a.clone();
        y.xor_assign(&b);
        for i in 0..100u64 {
            assert_eq!(y.get(i), a_bits[i as usize] ^ b_bits[i as usize]);
        }
    }

    #[test]
    fn wah_roundtrip() {
        let bits: Vec<bool> = (0..200).map(|i| (i * 13) % 17 < 5).collect();
        let b = Bitset::from_bits(bits.iter().copied());
        let w = b.to_wah();
        assert_eq!(w.to_bools(), bits);
        assert_eq!(w.count_ones(), b.count_ones());
    }

    #[test]
    fn two_phase_build_matches_streaming() {
        let data: Vec<f64> = (0..5000).map(|i| ((i / 37) % 12) as f64).collect();
        let binner = crate::Binner::distinct_ints(0, 11);
        let streaming = crate::BitmapIndex::build(&data, binner.clone());
        let (two_phase, transient) = build_index_two_phase(&data, binner);
        for b in 0..12 {
            assert_eq!(streaming.bin(b), two_phase.bin(b), "bin {b}");
        }
        // the uncompressed phase held nbins × n bits — more than the data
        assert!(transient > data.len(), "transient {transient} bytes");
        assert!(
            transient > two_phase.size_bytes(),
            "compression must shrink it"
        );
    }

    #[test]
    fn compression_wins_on_runs() {
        let mut b = Bitset::new(1_000_000);
        b.set(500_000, true);
        let w = b.to_wah();
        assert!(w.size_bytes() * 100 < b.size_bytes());
    }
}
