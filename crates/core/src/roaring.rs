//! A Roaring-style container bitmap (Chambi et al., *Better bitmap
//! performance with Roaring bitmaps*): the position space is cut into
//! 64Ki-bit chunks and each chunk picks the container form that fits its
//! population —
//!
//! * **Array** — a sorted `u16` list, for chunks with at most
//!   [`ARRAY_MAX`] set bits (2 bytes per set bit);
//! * **Bits** — a packed 1024×`u64` bitset, for dense chunks (8 KiB flat);
//! * **Runs** — sorted `(start, end)` inclusive intervals, for coherent
//!   chunks where a few runs cover everything (4 bytes per run).
//!
//! Containers upgrade and downgrade **in place on mutation**: inserting the
//! 4097th element of an array converts it to a bitset, deleting down to
//! [`ARRAY_MAX`] converts back, and mutating a run container re-forms it by
//! cardinality first. Set operations dispatch per container pair on the
//! natural kernels — array×array galloping intersection, array×bitset
//! probes, bitset×bitset `u64` loops — which is what makes this codec win
//! on the scattered-bit patterns where WAH degenerates to literal words
//! (see `BENCH_codecs.json`).

use crate::runs::{Run, RunIter};
use crate::wah::WahVec;
use crate::WahBuilder;
use std::cell::RefCell;

/// Bits covered by one container.
pub const CONTAINER_BITS: u64 = 1 << 16;
/// Words in a bitset container.
const BITS_WORDS: usize = (CONTAINER_BITS / 64) as usize;
/// Maximum cardinality of an array container; one past this upgrades to a
/// bitset (the classic Roaring 4096 threshold: above it the 8 KiB bitset is
/// smaller than the `u16` list).
pub const ARRAY_MAX: usize = 4096;

/// The storage form a container currently uses (introspection for tests,
/// size accounting, and the shootout bench).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContainerForm {
    /// Sorted `u16` list.
    Array,
    /// Packed 1024×`u64` bitset.
    Bits,
    /// Sorted inclusive `(start, end)` intervals.
    Runs,
}

#[derive(Debug, Clone)]
enum Container {
    Array(Vec<u16>),
    Bits {
        words: Box<[u64; BITS_WORDS]>,
        ones: u32,
    },
    Runs(Vec<(u16, u16)>),
}

impl Container {
    fn empty() -> Container {
        Container::Array(Vec::new())
    }

    fn ones(&self) -> u64 {
        match self {
            Container::Array(a) => a.len() as u64,
            Container::Bits { ones, .. } => *ones as u64,
            Container::Runs(rs) => rs.iter().map(|&(s, e)| (e - s) as u64 + 1).sum(),
        }
    }

    fn form(&self) -> ContainerForm {
        match self {
            Container::Array(_) => ContainerForm::Array,
            Container::Bits { .. } => ContainerForm::Bits,
            Container::Runs(_) => ContainerForm::Runs,
        }
    }

    fn heap_bytes(&self) -> usize {
        match self {
            Container::Array(a) => a.len() * 2,
            Container::Bits { .. } => BITS_WORDS * 8,
            Container::Runs(rs) => rs.len() * 4,
        }
    }

    fn get(&self, lo: u16) -> bool {
        match self {
            Container::Array(a) => a.binary_search(&lo).is_ok(),
            Container::Bits { words, .. } => words[lo as usize >> 6] >> (lo & 63) & 1 != 0,
            Container::Runs(rs) => match rs.binary_search_by(|&(s, _)| s.cmp(&lo)) {
                Ok(_) => true,
                Err(i) => i > 0 && rs[i - 1].1 >= lo,
            },
        }
    }

    /// Visits the container's set bits as maximal inclusive runs, in order.
    fn for_each_run(&self, mut f: impl FnMut(u16, u16)) {
        match self {
            Container::Array(a) => {
                let mut i = 0;
                while i < a.len() {
                    let start = a[i];
                    let mut end = start;
                    while i + 1 < a.len() && a[i + 1] == end + 1 {
                        i += 1;
                        end = a[i];
                    }
                    f(start, end);
                    i += 1;
                }
            }
            Container::Bits { words, .. } => for_each_bits_run(words.as_ref(), &mut f),
            Container::Runs(rs) => {
                for &(s, e) in rs {
                    f(s, e);
                }
            }
        }
    }

    /// Expands into a packed scratch bitset (scratch is fully overwritten).
    fn write_bits(&self, out: &mut [u64; BITS_WORDS]) {
        match self {
            Container::Bits { words, .. } => out.copy_from_slice(words.as_ref()),
            _ => {
                out.fill(0);
                self.for_each_run(|s, e| set_bits_range(out, s, e));
            }
        }
    }
}

/// Sets inclusive bit range `[s, e]` in a packed word buffer.
fn set_bits_range(words: &mut [u64; BITS_WORDS], s: u16, e: u16) {
    let (s, e) = (s as usize, e as usize);
    let (ws, we) = (s >> 6, e >> 6);
    let head = !0u64 << (s & 63);
    let tail = !0u64 >> (63 - (e & 63));
    if ws == we {
        words[ws] |= head & tail;
    } else {
        words[ws] |= head;
        for w in &mut words[ws + 1..we] {
            *w = !0;
        }
        words[we] |= tail;
    }
}

/// Visits the maximal 1-runs of a packed word buffer.
fn for_each_bits_run(words: &[u64], f: &mut impl FnMut(u16, u16)) {
    let mut open: Option<u32> = None;
    for (wi, &w) in words.iter().enumerate() {
        let base = (wi * 64) as u32;
        let mut bit = 0u32;
        while bit < 64 {
            match open {
                None => {
                    let ones = w >> bit;
                    if ones == 0 {
                        break;
                    }
                    bit += ones.trailing_zeros();
                    open = Some(base + bit);
                }
                Some(start) => {
                    let zeros = (!w) >> bit;
                    if zeros == 0 {
                        break; // run continues into the next word
                    }
                    bit += zeros.trailing_zeros();
                    f(start as u16, (base + bit - 1) as u16);
                    open = None;
                }
            }
        }
    }
    if let Some(start) = open {
        f(start as u16, (words.len() * 64 - 1) as u16);
    }
}

/// Counts maximal 1-runs in a packed word buffer (with cross-word carry).
fn count_bits_runs(words: &[u64]) -> usize {
    let mut runs = 0usize;
    let mut carry = 0u64; // MSB of the previous word
    for &w in words {
        // a run starts at every 1 whose predecessor bit is 0
        runs += (w & !((w << 1) | carry)).count_ones() as usize;
        carry = w >> 63;
    }
    runs
}

/// Chooses the canonical container form for a populated scratch bitset and
/// extracts it. `ones` must be the scratch's popcount.
fn normalize(words: &[u64; BITS_WORDS], ones: u64) -> Container {
    if ones == 0 {
        return Container::empty();
    }
    let nruns = count_bits_runs(words.as_ref());
    let run_bytes = nruns * 4;
    let array_bytes = ones as usize * 2;
    let bits_bytes = BITS_WORDS * 8;
    if run_bytes < array_bytes && run_bytes < bits_bytes {
        let mut rs = Vec::with_capacity(nruns);
        for_each_bits_run(words.as_ref(), &mut |s, e| rs.push((s, e)));
        Container::Runs(rs)
    } else if ones as usize <= ARRAY_MAX {
        let mut a = Vec::with_capacity(ones as usize);
        for (wi, &w) in words.iter().enumerate() {
            let mut word = w;
            while word != 0 {
                let b = word.trailing_zeros();
                a.push((wi * 64) as u16 + b as u16);
                word &= word - 1;
            }
        }
        Container::Array(a)
    } else {
        Container::Bits {
            words: Box::new(*words),
            ones: ones as u32,
        }
    }
}

/// One heap-allocated bitset-sized word buffer (the scratch unit).
type ScratchWords = Box<[u64; BITS_WORDS]>;

thread_local! {
    /// Reusable scratch for the generic container-op fallback, so op
    /// fan-outs do not allocate 8 KiB buffers per container pair. Each use
    /// fully overwrites the buffer ([`Container::write_bits`] zero-fills
    /// first), so a dirty scratch left by a previous op never leaks into a
    /// result — property-tested in `prop_codecs.rs`.
    static OP_SCRATCH: RefCell<(ScratchWords, ScratchWords)> =
        RefCell::new((Box::new([0; BITS_WORDS]), Box::new([0; BITS_WORDS])));
}

/// A Roaring-style compressed bitvector over a dense position domain
/// (positions `0..len`, one container per 64Ki chunk).
///
/// ```
/// use ibis_core::RoaringVec;
///
/// let mut v = RoaringVec::from_bits((0..100_000u64).map(|i| i % 97 == 0));
/// assert_eq!(v.count_ones(), 1031);
/// v.set(1, true);
/// assert!(v.get(1));
/// ```
#[derive(Debug, Clone)]
pub struct RoaringVec {
    containers: Vec<Container>,
    len_bits: u64,
}

impl RoaringVec {
    /// The empty vector of a given length (all zeros).
    pub fn zeros(len_bits: u64) -> Self {
        let nchunks = len_bits.div_ceil(CONTAINER_BITS) as usize;
        RoaringVec {
            containers: (0..nchunks).map(|_| Container::empty()).collect(),
            len_bits,
        }
    }

    /// Builds from an iterator of bits.
    pub fn from_bits<I: IntoIterator<Item = bool>>(bits: I) -> Self {
        let mut b = RoaringAppender::new();
        for bit in bits {
            b.append_run(bit, 1);
        }
        b.finish()
    }

    /// Converts from WAH in O(compressed runs): fills become range
    /// insertions, literals scatter their (at most 31) bits.
    pub fn from_wah(v: &WahVec) -> Self {
        let mut b = RoaringAppender::new();
        for run in RunIter::new(v.words(), v.len()) {
            match run {
                Run::Fill(bit, n) => b.append_run(bit, n),
                Run::Literal(payload, w) => b.append_literal(payload, w),
            }
        }
        b.finish()
    }

    /// Converts to canonical WAH in O(set-bit runs).
    pub fn to_wah(&self) -> WahVec {
        let mut out = WahBuilder::new();
        let mut pos = 0u64;
        for (ci, c) in self.containers.iter().enumerate() {
            let base = ci as u64 * CONTAINER_BITS;
            c.for_each_run(|s, e| {
                let start = base + s as u64;
                out.append_run(false, start - pos);
                out.append_run(true, (e - s) as u64 + 1);
                pos = base + e as u64 + 1;
            });
        }
        out.append_run(false, self.len_bits - pos);
        out.finish()
    }

    /// Number of bits.
    pub fn len(&self) -> u64 {
        self.len_bits
    }

    /// `true` when the vector holds zero bits.
    pub fn is_empty(&self) -> bool {
        self.len_bits == 0
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u64 {
        self.containers.iter().map(Container::ones).sum()
    }

    /// Heap + inline size in bytes (the at-rest cost the per-bin codec
    /// selection compares against WAH words).
    pub fn size_bytes(&self) -> usize {
        std::mem::size_of::<RoaringVec>()
            + self
                .containers
                .iter()
                .map(|c| c.heap_bytes() + std::mem::size_of::<Container>())
                .sum::<usize>()
    }

    /// The form of each container, in chunk order (tests/bench
    /// introspection).
    pub fn container_forms(&self) -> Vec<ContainerForm> {
        self.containers.iter().map(Container::form).collect()
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    /// If `i >= len`.
    pub fn get(&self, i: u64) -> bool {
        assert!(i < self.len_bits, "bit {i} out of range {}", self.len_bits);
        self.containers[(i / CONTAINER_BITS) as usize].get((i % CONTAINER_BITS) as u16)
    }

    /// Writes bit `i`, upgrading or downgrading the touched container in
    /// place: an array past [`ARRAY_MAX`] becomes a bitset, a bitset at
    /// [`ARRAY_MAX`] becomes an array, and a run container re-forms by
    /// cardinality before the edit.
    ///
    /// # Panics
    /// If `i >= len`.
    pub fn set(&mut self, i: u64, value: bool) {
        assert!(i < self.len_bits, "bit {i} out of range {}", self.len_bits);
        let c = &mut self.containers[(i / CONTAINER_BITS) as usize];
        let lo = (i % CONTAINER_BITS) as u16;
        if let Container::Runs(_) = c {
            if c.get(lo) == value {
                return;
            }
            // Mutating a run container: re-form by cardinality, then edit.
            let ones = c.ones();
            let mut words = Box::new([0u64; BITS_WORDS]);
            c.write_bits(&mut words);
            *c = if ones as usize <= ARRAY_MAX {
                normalize_as_array(&words, ones)
            } else {
                Container::Bits {
                    words,
                    ones: ones as u32,
                }
            };
        }
        match c {
            Container::Array(a) => match (a.binary_search(&lo), value) {
                (Ok(_), true) | (Err(_), false) => {}
                (Err(at), true) => {
                    a.insert(at, lo);
                    if a.len() > ARRAY_MAX {
                        // upgrade: the 4097th element tips to a bitset
                        let mut words = Box::new([0u64; BITS_WORDS]);
                        let ones = a.len() as u32;
                        for &v in a.iter() {
                            words[v as usize >> 6] |= 1u64 << (v & 63);
                        }
                        *c = Container::Bits { words, ones };
                    }
                }
                (Ok(at), false) => {
                    a.remove(at);
                }
            },
            Container::Bits { words, ones } => {
                let (w, m) = (lo as usize >> 6, 1u64 << (lo & 63));
                match (words[w] & m != 0, value) {
                    (false, true) => {
                        words[w] |= m;
                        *ones += 1;
                    }
                    (true, false) => {
                        words[w] &= !m;
                        *ones -= 1;
                        if *ones as usize <= ARRAY_MAX {
                            // downgrade: back under the array threshold
                            *c = normalize_as_array(words, *ones as u64);
                        }
                    }
                    _ => {}
                }
            }
            Container::Runs(_) => unreachable!("run containers re-form before mutation"),
        }
    }

    /// `popcount(self AND other)` without materializing — container-pair
    /// dispatch on the fast kernels (gallop / probe / word loop).
    pub fn and_count(&self, other: &RoaringVec) -> u64 {
        assert_eq!(self.len_bits, other.len_bits, "length mismatch");
        self.containers
            .iter()
            .zip(&other.containers)
            .map(|(a, b)| and_count_pair(a, b))
            .sum()
    }

    /// `popcount(self XOR other)` via the cardinality identity
    /// `|a| + |b| - 2·|a∩b|` (one intersection pass, no materialization).
    pub fn xor_count(&self, other: &RoaringVec) -> u64 {
        self.count_ones() + other.count_ones() - 2 * self.and_count(other)
    }

    /// Serializes to the store blob payload format: `len_bits u64 LE`,
    /// then one record per container — form tag `u8`, element count
    /// `u32 LE`, payload (`u16` values, raw `u64` words, or `(u16, u16)`
    /// inclusive intervals, all LE).
    pub fn serialize(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.size_bytes());
        out.extend_from_slice(&self.len_bits.to_le_bytes());
        for c in &self.containers {
            match c {
                Container::Array(a) => {
                    out.push(0);
                    out.extend_from_slice(&(a.len() as u32).to_le_bytes());
                    for &v in a {
                        out.extend_from_slice(&v.to_le_bytes());
                    }
                }
                Container::Bits { words, ones } => {
                    out.push(1);
                    out.extend_from_slice(&ones.to_le_bytes());
                    for &w in words.iter() {
                        out.extend_from_slice(&w.to_le_bytes());
                    }
                }
                Container::Runs(rs) => {
                    out.push(2);
                    out.extend_from_slice(&(rs.len() as u32).to_le_bytes());
                    for &(s, e) in rs {
                        out.extend_from_slice(&s.to_le_bytes());
                        out.extend_from_slice(&e.to_le_bytes());
                    }
                }
            }
        }
        out
    }

    /// Inverse of [`RoaringVec::serialize`], total on arbitrary bytes: a
    /// corrupt blob is an error, never a panic. Validates form tags,
    /// container count against the stored length, array sortedness, run
    /// ordering/overlap, and the cached bitset popcount.
    pub fn deserialize(bytes: &[u8]) -> Result<RoaringVec, String> {
        let mut r = bytes;
        let take = |r: &mut &[u8], n: usize, what: &str| -> Result<Vec<u8>, String> {
            if r.len() < n {
                return Err(format!(
                    "roaring: truncated {what}: need {n}, have {}",
                    r.len()
                ));
            }
            let (head, rest) = r.split_at(n);
            *r = rest;
            Ok(head.to_vec())
        };
        let len_bits = u64::from_le_bytes(
            take(&mut r, 8, "length")?
                .try_into()
                .map_err(|_| "roaring: bad length".to_string())?,
        );
        let nchunks = len_bits.div_ceil(CONTAINER_BITS) as usize;
        let mut containers = Vec::with_capacity(nchunks);
        for ci in 0..nchunks {
            let tag = take(&mut r, 1, "container tag")?[0];
            let count_bytes: [u8; 4] = take(&mut r, 4, "container count")?
                .try_into()
                .map_err(|_| "roaring: bad count".to_string())?;
            let count = u32::from_le_bytes(count_bytes) as usize;
            let limit = if ci + 1 == nchunks && !len_bits.is_multiple_of(CONTAINER_BITS) {
                len_bits % CONTAINER_BITS
            } else {
                CONTAINER_BITS
            };
            containers.push(match tag {
                0 => {
                    let raw = take(&mut r, count * 2, "array payload")?;
                    let a: Vec<u16> = raw
                        .chunks_exact(2)
                        .map(|p| u16::from_le_bytes([p[0], p[1]]))
                        .collect();
                    if !a.windows(2).all(|w| w[0] < w[1]) {
                        return Err(format!("roaring: container {ci} array not sorted"));
                    }
                    if let Some(&last) = a.last() {
                        if last as u64 >= limit {
                            return Err(format!("roaring: container {ci} value past length"));
                        }
                    }
                    Container::Array(a)
                }
                1 => {
                    let raw = take(&mut r, BITS_WORDS * 8, "bitset payload")?;
                    let mut words = Box::new([0u64; BITS_WORDS]);
                    for (w, p) in words.iter_mut().zip(raw.chunks_exact(8)) {
                        *w = u64::from_le_bytes(p.try_into().expect("chunks_exact(8)"));
                    }
                    let ones: u64 = words.iter().map(|w| w.count_ones() as u64).sum();
                    if ones != count as u64 {
                        return Err(format!(
                            "roaring: container {ci} popcount {ones} != stored {count}"
                        ));
                    }
                    let high = words
                        .iter()
                        .rposition(|&w| w != 0)
                        .map(|wi| wi as u64 * 64 + 63 - words[wi].leading_zeros() as u64);
                    if high.is_some_and(|h| h >= limit) {
                        return Err(format!("roaring: container {ci} bit past length"));
                    }
                    Container::Bits {
                        words,
                        ones: count as u32,
                    }
                }
                2 => {
                    let raw = take(&mut r, count * 4, "runs payload")?;
                    let rs: Vec<(u16, u16)> = raw
                        .chunks_exact(4)
                        .map(|p| {
                            (
                                u16::from_le_bytes([p[0], p[1]]),
                                u16::from_le_bytes([p[2], p[3]]),
                            )
                        })
                        .collect();
                    for (i, &(s, e)) in rs.iter().enumerate() {
                        if s > e {
                            return Err(format!("roaring: container {ci} inverted run"));
                        }
                        if i > 0 && rs[i - 1].1 >= s {
                            return Err(format!("roaring: container {ci} unordered runs"));
                        }
                    }
                    if let Some(&(_, e)) = rs.last() {
                        if e as u64 >= limit {
                            return Err(format!("roaring: container {ci} run past length"));
                        }
                    }
                    Container::Runs(rs)
                }
                t => return Err(format!("roaring: container {ci} unknown form tag {t}")),
            });
        }
        if !r.is_empty() {
            return Err(format!("roaring: {} trailing bytes", r.len()));
        }
        Ok(RoaringVec {
            containers,
            len_bits,
        })
    }

    /// Bitwise AND.
    pub fn and(&self, other: &RoaringVec) -> RoaringVec {
        self.binary(other, |a, b| a & b)
    }

    /// Bitwise OR.
    pub fn or(&self, other: &RoaringVec) -> RoaringVec {
        self.binary(other, |a, b| a | b)
    }

    /// Bitwise XOR.
    pub fn xor(&self, other: &RoaringVec) -> RoaringVec {
        self.binary(other, |a, b| a ^ b)
    }

    /// Bitwise AND-NOT (`self & !other`).
    pub fn andnot(&self, other: &RoaringVec) -> RoaringVec {
        self.binary(other, |a, b| a & !b)
    }

    /// Generic container-wise binary op. Array×array AND and intersections
    /// short-circuit on the sorted lists; everything else runs the packed
    /// scratch kernel (two expands + one `u64` loop per container), with
    /// the result re-normalized to its canonical form. The final partial
    /// container is masked so bits past `len` never materialize.
    fn binary(&self, other: &RoaringVec, f: impl Fn(u64, u64) -> u64) -> RoaringVec {
        assert_eq!(self.len_bits, other.len_bits, "length mismatch");
        let containers = OP_SCRATCH.with(|cell| {
            let mut scratch = cell.borrow_mut();
            let (sa, sb) = &mut *scratch;
            self.containers
                .iter()
                .zip(&other.containers)
                .enumerate()
                .map(|(ci, (a, b))| {
                    a.write_bits(sa);
                    b.write_bits(sb);
                    let mut ones = 0u64;
                    for (x, y) in sa.iter_mut().zip(sb.iter()) {
                        *x = f(*x, *y);
                        ones += x.count_ones() as u64;
                    }
                    let tail = self.len_bits - ci as u64 * CONTAINER_BITS;
                    if tail < CONTAINER_BITS {
                        // mask the partial final chunk
                        let last = (tail / 64) as usize;
                        if !tail.is_multiple_of(64) {
                            let keep = !0u64 >> (64 - tail % 64);
                            ones -= (sa[last] & !keep).count_ones() as u64;
                            sa[last] &= keep;
                        }
                        for w in &mut sa[last + usize::from(!tail.is_multiple_of(64))..] {
                            ones -= w.count_ones() as u64;
                            *w = 0;
                        }
                    }
                    normalize(sa, ones)
                })
                .collect()
        });
        RoaringVec {
            containers,
            len_bits: self.len_bits,
        }
    }
}

/// Array extraction without the form heuristics (used by downgrades, which
/// must land on Array by contract).
fn normalize_as_array(words: &[u64; BITS_WORDS], ones: u64) -> Container {
    debug_assert!(ones as usize <= ARRAY_MAX);
    let mut a = Vec::with_capacity(ones as usize);
    for (wi, &w) in words.iter().enumerate() {
        let mut word = w;
        while word != 0 {
            let b = word.trailing_zeros();
            a.push((wi * 64) as u16 + b as u16);
            word &= word - 1;
        }
    }
    Container::Array(a)
}

/// Intersection cardinality of one container pair — the per-pair kernel
/// dispatch named in the paper: gallop, probe, or word loop.
fn and_count_pair(a: &Container, b: &Container) -> u64 {
    use Container::*;
    match (a, b) {
        (Array(x), Array(y)) => gallop_intersect_count(x, y),
        (Array(x), Bits { words, .. }) | (Bits { words, .. }, Array(x)) => {
            x.iter()
                .filter(|&&v| words[v as usize >> 6] >> (v & 63) & 1 != 0)
                .count() as u64
        }
        (Bits { words: wa, .. }, Bits { words: wb, .. }) => wa
            .iter()
            .zip(wb.iter())
            .map(|(x, y)| (x & y).count_ones() as u64)
            .sum(),
        (Runs(rs), Runs(qs)) => {
            // two-pointer overlap walk
            let (mut i, mut j, mut total) = (0usize, 0usize, 0u64);
            while i < rs.len() && j < qs.len() {
                let (s1, e1) = rs[i];
                let (s2, e2) = qs[j];
                let lo = s1.max(s2);
                let hi = e1.min(e2);
                if lo <= hi {
                    total += (hi - lo) as u64 + 1;
                }
                if e1 <= e2 {
                    i += 1;
                } else {
                    j += 1;
                }
            }
            total
        }
        (Runs(rs), Array(x)) | (Array(x), Runs(rs)) => {
            // per run, count array members inside it via partition points
            rs.iter()
                .map(|&(s, e)| {
                    (x.partition_point(|&v| v <= e) - x.partition_point(|&v| v < s)) as u64
                })
                .sum()
        }
        (Runs(rs), Bits { words, .. }) | (Bits { words, .. }, Runs(rs)) => rs
            .iter()
            .map(|&(s, e)| count_range(words.as_ref(), s, e))
            .sum(),
    }
}

/// Popcount of inclusive bit range `[s, e]` in a packed word buffer.
fn count_range(words: &[u64], s: u16, e: u16) -> u64 {
    let (s, e) = (s as usize, e as usize);
    let (ws, we) = (s >> 6, e >> 6);
    let head = !0u64 << (s & 63);
    let tail = !0u64 >> (63 - (e & 63));
    if ws == we {
        return (words[ws] & head & tail).count_ones() as u64;
    }
    let mut total = (words[ws] & head).count_ones() as u64 + (words[we] & tail).count_ones() as u64;
    for &w in &words[ws + 1..we] {
        total += w.count_ones() as u64;
    }
    total
}

/// Sorted-list intersection count. When the lists are badly mismatched the
/// short side gallops (exponential probe + binary search) through the long
/// side; near-equal sizes run the linear merge.
fn gallop_intersect_count(a: &[u16], b: &[u16]) -> u64 {
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if short.is_empty() {
        return 0;
    }
    if long.len() / short.len() >= 16 {
        // gallop: for each short element, exponential probe from a
        // monotone frontier, then binary search the probed window
        let mut total = 0u64;
        let mut base = 0usize;
        for &v in short {
            let mut step = 1usize;
            while base + step < long.len() && long[base + step] < v {
                step *= 2;
            }
            let hi = (base + step + 1).min(long.len());
            match long[base..hi].binary_search(&v) {
                Ok(i) => {
                    total += 1;
                    base += i + 1;
                }
                Err(i) => base += i,
            }
            if base >= long.len() {
                break;
            }
        }
        total
    } else {
        let (mut i, mut j, mut total) = (0usize, 0usize, 0u64);
        while i < short.len() && j < long.len() {
            match short[i].cmp(&long[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    total += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        total
    }
}

/// Streaming builder used by the conversions: consumes monotone runs and
/// finalizes each 64Ki chunk into its canonical container form as the
/// stream crosses it.
struct RoaringAppender {
    containers: Vec<Container>,
    scratch: Box<[u64; BITS_WORDS]>,
    scratch_ones: u64,
    /// Chunk the scratch currently covers.
    chunk: usize,
    /// Absolute bit position of the next append.
    pos: u64,
}

impl RoaringAppender {
    fn new() -> Self {
        RoaringAppender {
            containers: Vec::new(),
            scratch: Box::new([0; BITS_WORDS]),
            scratch_ones: 0,
            chunk: 0,
            pos: 0,
        }
    }

    /// Finalizes the scratch chunk and fast-forwards (via empty containers)
    /// to `chunk`.
    fn advance_to(&mut self, chunk: usize) {
        debug_assert!(chunk > self.chunk);
        self.containers
            .push(normalize(&self.scratch, self.scratch_ones));
        self.scratch.fill(0);
        self.scratch_ones = 0;
        while self.containers.len() < chunk {
            self.containers.push(Container::empty());
        }
        self.chunk = chunk;
    }

    fn append_run(&mut self, bit: bool, mut n: u64) {
        if !bit {
            self.pos += n;
            return;
        }
        while n > 0 {
            let chunk = (self.pos / CONTAINER_BITS) as usize;
            if chunk != self.chunk {
                self.advance_to(chunk);
            }
            let lo = self.pos % CONTAINER_BITS;
            let take = n.min(CONTAINER_BITS - lo);
            set_bits_range(&mut self.scratch, lo as u16, (lo + take - 1) as u16);
            self.scratch_ones += take;
            self.pos += take;
            n -= take;
        }
    }

    fn append_literal(&mut self, payload: u32, width: u8) {
        if payload == 0 {
            self.pos += width as u64;
            return;
        }
        let chunk = (self.pos / CONTAINER_BITS) as usize;
        if chunk != self.chunk {
            self.advance_to(chunk);
        }
        let lo = self.pos % CONTAINER_BITS;
        if lo + width as u64 <= CONTAINER_BITS {
            // common case: the segment fits the current chunk
            let w = (lo / 64) as usize;
            let sh = lo % 64;
            let bits = payload as u64;
            self.scratch[w] |= bits << sh;
            if sh + width as u64 > 64 && w + 1 < BITS_WORDS {
                self.scratch[w + 1] |= bits >> (64 - sh);
            }
            self.scratch_ones += payload.count_ones() as u64;
            self.pos += width as u64;
        } else {
            // segment straddles a chunk boundary: split bit-wise
            for j in 0..width {
                let bit = payload & (1 << j) != 0;
                self.append_run(bit, 1);
            }
        }
    }

    fn finish(mut self) -> RoaringVec {
        let len_bits = self.pos;
        let nchunks = len_bits.div_ceil(CONTAINER_BITS) as usize;
        self.containers
            .push(normalize(&self.scratch, self.scratch_ones));
        while self.containers.len() < nchunks {
            self.containers.push(Container::empty());
        }
        self.containers.truncate(nchunks);
        RoaringVec {
            containers: self.containers,
            len_bits,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn patterns() -> Vec<Vec<bool>> {
        vec![
            vec![],
            vec![true],
            vec![false; 70_000],
            vec![true; 70_000],
            (0..200_000).map(|i| i % 97 == 0).collect(),
            (0..100_000).map(|i| (i / 40) % 2 == 0).collect(),
            (0..65_536).map(|i| (i * 31) % 7 < 3).collect(),
            (0..65_537).map(|i| i >= 65_535).collect(),
        ]
    }

    #[test]
    fn from_bits_roundtrip() {
        for bits in patterns() {
            let v = RoaringVec::from_bits(bits.iter().copied());
            assert_eq!(v.len(), bits.len() as u64);
            assert_eq!(
                v.count_ones(),
                bits.iter().filter(|&&b| b).count() as u64,
                "len {}",
                bits.len()
            );
            for (i, &b) in bits.iter().enumerate() {
                assert_eq!(v.get(i as u64), b, "bit {i} of len {}", bits.len());
            }
        }
    }

    #[test]
    fn wah_conversion_roundtrip_is_exact() {
        for bits in patterns() {
            let w = WahVec::from_bits(bits.iter().copied());
            let r = RoaringVec::from_wah(&w);
            let back = r.to_wah();
            assert_eq!(back, w, "len {}", bits.len());
            back.check_canonical().unwrap();
        }
    }

    #[test]
    fn forms_match_population() {
        // sparse scatter → array; dense noise → bits; coherent → runs
        let sparse = RoaringVec::from_bits((0..65_536u32).map(|i| i % 1000 == 0));
        assert_eq!(sparse.container_forms(), vec![ContainerForm::Array]);
        let dense =
            RoaringVec::from_bits((0..65_536u32).map(|i| i.wrapping_mul(2_654_435_761) % 7 < 3));
        assert_eq!(dense.container_forms(), vec![ContainerForm::Bits]);
        let runs = RoaringVec::from_bits((0..65_536u32).map(|i| i < 30_000));
        assert_eq!(runs.container_forms(), vec![ContainerForm::Runs]);
    }

    #[test]
    fn array_bitset_threshold_updown() {
        let mut v = RoaringVec::zeros(CONTAINER_BITS);
        for i in 0..ARRAY_MAX as u64 {
            v.set(i * 2, true);
        }
        assert_eq!(v.container_forms(), vec![ContainerForm::Array]);
        v.set(60_001, true); // 4097th: upgrade
        assert_eq!(v.container_forms(), vec![ContainerForm::Bits]);
        v.set(60_001, false); // back to 4096: downgrade
        assert_eq!(v.container_forms(), vec![ContainerForm::Array]);
        assert_eq!(v.count_ones(), ARRAY_MAX as u64);
    }

    #[test]
    fn run_container_mutation_reforms() {
        let mut v = RoaringVec::from_bits((0..65_536u32).map(|i| i < 30_000));
        assert_eq!(v.container_forms(), vec![ContainerForm::Runs]);
        v.set(40_000, true);
        assert!(v.get(40_000));
        assert!(v.get(29_999));
        assert_eq!(v.count_ones(), 30_001);
        assert_eq!(v.container_forms(), vec![ContainerForm::Bits]);
        // setting an already-set bit in a Runs container is a no-op
        let mut w = RoaringVec::from_bits((0..65_536u32).map(|i| i < 30_000));
        w.set(5, true);
        assert_eq!(w.container_forms(), vec![ContainerForm::Runs]);
    }

    #[test]
    fn container_boundary_bit_65535() {
        // The run-emission paths cast bit offsets to u16 (`for_each` tail
        // and in-word run ends); the 65535th bit is the largest value that
        // must survive the cast. Exercise it in every container form.

        // Full container: one run spanning the whole container, tail-emitted.
        let full = RoaringVec::from_bits((0..CONTAINER_BITS).map(|_| true));
        assert_eq!(full.count_ones(), CONTAINER_BITS);
        assert!(full.get(CONTAINER_BITS - 1));
        assert_eq!(full.container_forms(), vec![ContainerForm::Runs]);
        let w = full.to_wah();
        assert_eq!(w.count_ones(), CONTAINER_BITS);
        assert_eq!(RoaringVec::from_wah(&w).to_wah(), w);

        // Run ending exactly at the boundary, on a Bits container (dense
        // noise keeps it from normalizing to Runs), so the conversion goes
        // through for_each_bits_run's open-run tail.
        let bits: Vec<bool> = (0..CONTAINER_BITS)
            .map(|i| i.wrapping_mul(2_654_435_761) % 7 < 3 || i >= CONTAINER_BITS - 100)
            .collect();
        let v = RoaringVec::from_bits(bits.iter().copied());
        assert_eq!(v.container_forms(), vec![ContainerForm::Bits]);
        assert!(v.get(CONTAINER_BITS - 1));
        let w = v.to_wah();
        for (i, &b) in bits.iter().enumerate() {
            assert_eq!(w.get(i as u64), b, "bit {i}");
        }

        // Run ending exactly at the boundary on a Runs container, followed
        // by a second container: the run must not leak across.
        let bits: Vec<bool> = (0..CONTAINER_BITS + 64)
            .map(|i| (60_000..CONTAINER_BITS).contains(&i))
            .collect();
        let v = RoaringVec::from_bits(bits.iter().copied());
        assert_eq!(
            v.container_forms(),
            vec![ContainerForm::Runs, ContainerForm::Array]
        );
        assert!(v.get(CONTAINER_BITS - 1));
        assert!(!v.get(CONTAINER_BITS));
        assert_eq!(v.count_ones(), CONTAINER_BITS - 60_000);
        assert_eq!(RoaringVec::from_wah(&v.to_wah()).to_wah(), v.to_wah());

        // Single set bit at offset 65535 (Array container), and the same
        // through a Bits container forced by mutation.
        let mut bits = vec![false; CONTAINER_BITS as usize];
        bits[CONTAINER_BITS as usize - 1] = true;
        let v = RoaringVec::from_bits(bits.iter().copied());
        assert_eq!(v.container_forms(), vec![ContainerForm::Array]);
        assert_eq!(v.count_ones(), 1);
        assert!(v.get(CONTAINER_BITS - 1));
        let w = v.to_wah();
        assert_eq!(w.count_ones(), 1);
        assert!(w.get(CONTAINER_BITS - 1));

        let mut dense = RoaringVec::from_bits(
            (0..CONTAINER_BITS).map(|i| i < CONTAINER_BITS - 1 && i.wrapping_mul(97) % 5 < 3),
        );
        dense.set(CONTAINER_BITS - 1, true);
        assert_eq!(dense.container_forms(), vec![ContainerForm::Bits]);
        assert!(dense.get(CONTAINER_BITS - 1));
        let w = dense.to_wah();
        assert_eq!(RoaringVec::from_wah(&w).to_wah(), w);
    }

    #[test]
    fn ops_match_naive() {
        let a_bits: Vec<bool> = (0..150_000).map(|i| (i * 7) % 11 < 4).collect();
        let b_bits: Vec<bool> = (0..150_000).map(|i| i % 2 == 0 || i > 100_000).collect();
        let a = RoaringVec::from_bits(a_bits.iter().copied());
        let b = RoaringVec::from_bits(b_bits.iter().copied());
        let naive = |f: fn(bool, bool) -> bool| -> Vec<bool> {
            a_bits.iter().zip(&b_bits).map(|(&x, &y)| f(x, y)).collect()
        };
        let check = |got: &RoaringVec, want: Vec<bool>, label: &str| {
            assert_eq!(got.len(), want.len() as u64);
            for (i, &w) in want.iter().enumerate() {
                assert_eq!(got.get(i as u64), w, "{label} bit {i}");
            }
        };
        check(&a.and(&b), naive(|x, y| x & y), "and");
        check(&a.or(&b), naive(|x, y| x | y), "or");
        check(&a.xor(&b), naive(|x, y| x ^ y), "xor");
        check(&a.andnot(&b), naive(|x, y| x & !y), "andnot");
        let and_ones = naive(|x, y| x & y).iter().filter(|&&v| v).count() as u64;
        let xor_ones = naive(|x, y| x ^ y).iter().filter(|&&v| v).count() as u64;
        assert_eq!(a.and_count(&b), and_ones);
        assert_eq!(a.xor_count(&b), xor_ones);
    }

    #[test]
    fn and_count_covers_all_container_pairs() {
        // one vector per form, all same length, every pairing checked
        let n = 65_536u32;
        let sparse: Vec<bool> = (0..n).map(|i| i % 911 == 0).collect();
        let dense: Vec<bool> = (0..n)
            .map(|i| i.wrapping_mul(2_654_435_761) % 5 < 2)
            .collect();
        let runs: Vec<bool> = (0..n).map(|i| (i / 310) % 3 == 0).collect();
        let all = [sparse, dense, runs];
        for x in &all {
            for y in &all {
                let rx = RoaringVec::from_bits(x.iter().copied());
                let ry = RoaringVec::from_bits(y.iter().copied());
                let want = x.iter().zip(y).filter(|&(&a, &b)| a && b).count() as u64;
                assert_eq!(rx.and_count(&ry), want);
            }
        }
    }

    #[test]
    fn partial_tail_chunk_is_masked() {
        let len = CONTAINER_BITS + 100;
        let a = RoaringVec::from_bits((0..len).map(|_| true));
        let b = RoaringVec::from_bits((0..len).map(|i| i % 2 == 0));
        let o = a.or(&b);
        assert_eq!(o.count_ones(), len);
        let x = a.andnot(&b);
        assert_eq!(x.count_ones(), len - len.div_ceil(2));
        assert_eq!(a.to_wah().len(), len);
    }

    #[test]
    fn serialize_roundtrip_all_forms() {
        for bits in patterns() {
            let v = RoaringVec::from_bits(bits.iter().copied());
            let blob = v.serialize();
            let back = RoaringVec::deserialize(&blob).unwrap();
            assert_eq!(back.len(), v.len());
            assert_eq!(back.count_ones(), v.count_ones());
            assert_eq!(back.container_forms(), v.container_forms());
            assert_eq!(back.to_wah(), v.to_wah(), "len {}", bits.len());
        }
    }

    #[test]
    fn deserialize_rejects_corruption() {
        let v = RoaringVec::from_bits((0..200_000).map(|i| i % 97 == 0));
        let blob = v.serialize();
        // truncation anywhere must error, not panic
        for cut in [0, 4, 8, 9, 12, blob.len() - 1] {
            assert!(RoaringVec::deserialize(&blob[..cut]).is_err(), "cut {cut}");
        }
        // trailing garbage
        let mut long = blob.clone();
        long.push(0);
        assert!(RoaringVec::deserialize(&long).is_err());
        // unknown form tag
        let mut bad = blob.clone();
        bad[8] = 7;
        assert!(RoaringVec::deserialize(&bad).is_err());
        // unsorted array
        let s = RoaringVec::from_bits((0..100u32).map(|i| i % 9 == 0));
        let mut blob = s.serialize();
        // array payload starts at 8 (len) + 1 (tag) + 4 (count); swap two values
        let (a, b) = (13, 15);
        blob.swap(a, b);
        blob.swap(a + 1, b + 1);
        assert!(RoaringVec::deserialize(&blob).is_err());
        // bit set past the stored length
        let t = RoaringVec::from_bits((0..100).map(|_| true));
        let mut blob = t.serialize();
        let n = blob.len();
        // Runs form: last interval end pushed past limit
        blob[n - 1] = 0xFF;
        blob[n - 2] = 0xFF;
        assert!(RoaringVec::deserialize(&blob).is_err());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        let _ = RoaringVec::zeros(10).and_count(&RoaringVec::zeros(11));
    }
}
