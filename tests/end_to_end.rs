//! End-to-end pipeline tests spanning all crates: selection identity
//! between methods and strategies, sampling's information loss, cluster
//! agreement, and the memory/I/O advantages the paper claims.

use ibis::analysis::sampling::SamplingMethod;
use ibis::analysis::Metric;
use ibis::core::{Binner, RowOrder};
use ibis::datagen::{Heat3D, Heat3DConfig, LuleshConfig, MiniLulesh, Simulation};
use ibis::insitu::{
    auto_allocate, run_cluster, run_pipeline, ClusterConfig, ClusterIo, ClusterReduction,
    CoreAllocation, LocalDisk, MachineModel, PipelineConfig, Reduction, RobustnessConfig,
    ScalingModel,
};

fn heat() -> Heat3DConfig {
    Heat3DConfig {
        nx: 16,
        ny: 16,
        nz: 16,
        ..Heat3DConfig::tiny()
    }
}

fn heat_pipeline(reduction: Reduction, allocation: CoreAllocation) -> PipelineConfig {
    PipelineConfig {
        machine: MachineModel::xeon32(),
        cores: 8,
        allocation,
        reduction,
        steps: 17,
        select_k: 5,
        metric: Metric::ConditionalEntropy,
        binners: vec![Binner::precision(-1.0, 101.0, 0)],
        per_step_precision: None,
        row_order: RowOrder::Identity,
        queue_capacity: 2,
        sim_scaling: ScalingModel::heat3d(),
        robustness: RobustnessConfig::default(),
    }
}

#[test]
fn heat3d_selection_identical_across_methods_and_strategies() {
    let disk = LocalDisk::new(1e9);
    let runs = [
        run_pipeline(
            Heat3D::new(heat()),
            &heat_pipeline(Reduction::Bitmaps, CoreAllocation::Shared),
            &disk,
        )
        .unwrap(),
        run_pipeline(
            Heat3D::new(heat()),
            &heat_pipeline(Reduction::FullData, CoreAllocation::Shared),
            &disk,
        )
        .unwrap(),
        run_pipeline(
            Heat3D::new(heat()),
            &heat_pipeline(
                Reduction::Bitmaps,
                CoreAllocation::Separate {
                    sim_cores: 4,
                    bitmap_cores: 4,
                },
            ),
            &disk,
        )
        .unwrap(),
    ];
    assert_eq!(runs[0].selected, runs[1].selected, "bitmaps vs full data");
    assert_eq!(runs[0].selected, runs[2].selected, "shared vs separate");
    assert_eq!(runs[0].selected.len(), 5);
}

#[test]
fn lulesh_pipeline_with_twelve_variables() {
    let lcfg = LuleshConfig::tiny();
    // shared per-variable binners, fitted on a probe run
    let mut probe = MiniLulesh::new(lcfg.clone());
    let probe_steps = probe.run(4);
    let binners: Vec<Binner> = (0..12)
        .map(|f| {
            let all: Vec<f64> = probe_steps
                .iter()
                .flat_map(|s| s.fields[f].data.iter().copied())
                .collect();
            Binner::fit(&all, 24)
        })
        .collect();
    let cfg = PipelineConfig {
        machine: MachineModel::xeon32(),
        cores: 8,
        allocation: CoreAllocation::Shared,
        reduction: Reduction::Bitmaps,
        steps: 7,
        select_k: 3,
        metric: Metric::EmdSpatial, // the paper's LULESH metric
        binners: binners.clone(),
        per_step_precision: None,
        row_order: RowOrder::Identity,
        queue_capacity: 2,
        sim_scaling: ScalingModel::lulesh(),
        robustness: RobustnessConfig::default(),
    };
    let disk = LocalDisk::new(1e9);
    let rb = run_pipeline(MiniLulesh::new(lcfg.clone()), &cfg, &disk).unwrap();
    let mut cfg_full = cfg.clone();
    cfg_full.reduction = Reduction::FullData;
    let rf = run_pipeline(MiniLulesh::new(lcfg), &cfg_full, &disk).unwrap();
    assert_eq!(
        rb.selected, rf.selected,
        "12-array EMD selection must agree"
    );
    assert!(rb.bytes_written < rf.bytes_written);
}

#[test]
fn sampling_changes_metrics_bitmaps_do_not() {
    let disk = LocalDisk::new(1e9);
    let full = run_pipeline(
        Heat3D::new(heat()),
        &heat_pipeline(Reduction::FullData, CoreAllocation::Shared),
        &disk,
    )
    .unwrap();
    let bitmaps = run_pipeline(
        Heat3D::new(heat()),
        &heat_pipeline(Reduction::Bitmaps, CoreAllocation::Shared),
        &disk,
    )
    .unwrap();
    assert_eq!(bitmaps.selected, full.selected, "bitmaps: zero loss");
    // sampling at 5% writes very little but is *allowed* to disagree — and
    // its summaries are lossy by construction
    let sampled = run_pipeline(
        Heat3D::new(heat()),
        &heat_pipeline(
            Reduction::Sampling {
                percent: 5.0,
                method: SamplingMethod::Stride,
            },
            CoreAllocation::Shared,
        ),
        &disk,
    )
    .unwrap();
    assert!(sampled.summary_bytes_total * 10 < full.summary_bytes_total);
}

#[test]
fn auto_allocation_runs_and_balances() {
    let machine = MachineModel::xeon32();
    let binners = vec![Binner::precision(-1.0, 101.0, 0)];
    let mut probe = Heat3D::new(heat());
    let alloc = auto_allocate(&mut probe, &binners, &machine, 8, 2);
    let CoreAllocation::Separate {
        sim_cores,
        bitmap_cores,
    } = alloc
    else {
        panic!("auto allocation must split");
    };
    assert_eq!(sim_cores + bitmap_cores, 8);
    let cfg = heat_pipeline(Reduction::Bitmaps, alloc);
    let disk = LocalDisk::new(1e9);
    let r = run_pipeline(Heat3D::new(heat()), &cfg, &disk).unwrap();
    assert_eq!(r.selected.len(), 5);
}

#[test]
fn cluster_selection_matches_single_node_pipeline() {
    let hc = Heat3DConfig {
        nx: 12,
        ny: 12,
        nz: 12,
        ..Heat3DConfig::tiny()
    };
    let base = ClusterConfig {
        nodes: 3,
        cores_per_node: 2,
        machine: MachineModel::oakley_node(),
        heat: hc.clone(),
        sweeps_per_step: hc.sweeps_per_step,
        steps: 9,
        select_k: 3,
        binner: Binner::precision(-1.0, 101.0, 0),
        reduction: ClusterReduction::Bitmaps,
        io: ClusterIo::Local,
        remote_bw: MachineModel::remote_link_bw(),
        sim_scaling: ScalingModel::heat3d(),
        robustness: RobustnessConfig::default(),
        coordinator_timeout: std::time::Duration::from_secs(30),
    };
    let cluster = run_cluster(&base).unwrap();
    let single = run_cluster(&ClusterConfig { nodes: 1, ..base }).unwrap();
    assert_eq!(
        cluster.selected, single.selected,
        "distribution must not change results"
    );
}

#[test]
fn per_step_precision_binning_end_to_end() {
    // The paper's actual Heat3D configuration: each step is binned over its
    // own value range on a shared decimal lattice (their runs: 64-206
    // bitvectors per step). Selection must still be exact vs full data.
    let mk = |reduction: Reduction, metric: Metric| {
        let mut cfg = heat_pipeline(reduction, CoreAllocation::Shared);
        cfg.binners = Vec::new();
        cfg.per_step_precision = Some(0);
        cfg.metric = metric;
        cfg
    };
    let disk = LocalDisk::new(1e9);
    for metric in [Metric::ConditionalEntropy, Metric::Emd, Metric::EmdSpatial] {
        let rb = run_pipeline(Heat3D::new(heat()), &mk(Reduction::Bitmaps, metric), &disk).unwrap();
        let rf =
            run_pipeline(Heat3D::new(heat()), &mk(Reduction::FullData, metric), &disk).unwrap();
        assert_eq!(rb.selected, rf.selected, "{metric:?}");
        assert_eq!(rb.selected.len(), 5);
    }
}

#[test]
fn queue_capacity_bounds_memory() {
    // a larger data queue lets more raw steps pile up: peak memory grows
    let mk = |cap: usize| {
        let mut cfg = heat_pipeline(
            Reduction::Bitmaps,
            CoreAllocation::Separate {
                sim_cores: 4,
                bitmap_cores: 4,
            },
        );
        cfg.queue_capacity = cap;
        cfg
    };
    let disk = LocalDisk::new(1e9);
    let small = run_pipeline(Heat3D::new(heat()), &mk(1), &disk).unwrap();
    let large = run_pipeline(Heat3D::new(heat()), &mk(16), &disk).unwrap();
    assert!(
        small.peak_memory_bytes <= large.peak_memory_bytes,
        "capacity 1 peak {} must not exceed capacity 16 peak {}",
        small.peak_memory_bytes,
        large.peak_memory_bytes
    );
}
