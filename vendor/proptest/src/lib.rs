//! Minimal `proptest` shim: a deterministic property-testing harness.
//!
//! Covers the subset this workspace uses — the `proptest!` macro with
//! optional `#![proptest_config(...)]`, `prop_assert!`/`prop_assert_eq!`/
//! `prop_assume!`, `prop_oneof!`, `any::<T>()`, `Just`, numeric-range and
//! tuple strategies, `prop_map`/`prop_flat_map`, and `collection::vec`.
//!
//! Differences from upstream: no shrinking (failures report the failing
//! values, not a minimized case) and a fixed per-test deterministic seed
//! (derived from the test name), so runs are reproducible without
//! `proptest-regressions` files. Case count defaults to 64 and honours the
//! `PROPTEST_CASES` environment variable.

/// Test-loop plumbing: RNG, config, and case-level error type.
pub mod test_runner {
    /// Per-test configuration (subset of upstream's `Config`).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of accepted cases to run per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(64);
            Config { cases }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` filtered the case out; it is retried, not failed.
        Reject(String),
        /// A `prop_assert*!` failed; the whole property fails.
        Fail(String),
    }

    /// Deterministic RNG (SplitMix64) seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from `name` via FNV-1a so every property gets a distinct,
        /// stable stream.
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng {
                state: h ^ 0x9e37_79b9_7f4a_7c15,
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; `n` must be positive.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { base: self, f }
        }

        /// Builds a second strategy from each generated value.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { base: self, f }
        }

        /// Type-erases the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    trait DynStrategy {
        type Value;
        fn generate_dyn(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy> DynStrategy for S {
        type Value = S::Value;
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A heap-allocated, type-erased strategy.
    pub struct BoxedStrategy<V>(Box<dyn DynStrategy<Value = V>>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.generate_dyn(rng)
        }
    }

    /// Uniform choice among same-valued strategies (`prop_oneof!`).
    pub struct Union<V>(Vec<BoxedStrategy<V>>);

    impl<V> Union<V> {
        /// A union over `arms`; must be non-empty.
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union(arms)
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.0.len() as u64) as usize;
            self.0[i].generate(rng)
        }
    }

    /// Always yields a clone of a fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.base.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.base.generate(rng)).generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    let off = rng.below(span);
                    (self.start as i128 + off as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(usize, u64, u32, u8, i64, i32);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident.$idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    /// Full-range strategy for `any::<T>()`.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Generates an unconstrained value of `Self`.
        fn any_value(rng: &mut TestRng) -> Self;
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::any_value(rng)
        }
    }

    /// The strategy of all values of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    impl Arbitrary for bool {
        fn any_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn any_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Length distribution for [`vec`]: `[lo, hi)` (exact size means
    /// `[n, n+1)`).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Generates `Vec`s whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A strategy for vectors with `size`-distributed lengths.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Glob-import surface mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::{TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines deterministic property tests. See module docs for differences
/// from upstream.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(
            @cfg (<$crate::test_runner::Config as ::std::default::Default>::default())
            $($rest)*
        );
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            let mut __accepted: u32 = 0;
            let mut __attempts: u32 = 0;
            let __max_attempts = __config.cases.saturating_mul(20).max(20);
            while __accepted < __config.cases && __attempts < __max_attempts {
                __attempts += 1;
                let __outcome = (|__rng: &mut $crate::test_runner::TestRng|
                    -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), __rng);)*
                    $body
                    ::std::result::Result::Ok(())
                })(&mut __rng);
                match __outcome {
                    ::std::result::Result::Ok(()) => __accepted += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "property `{}` failed at accepted case {}: {}",
                            stringify!($name), __accepted, msg
                        );
                    }
                }
            }
            assert!(
                __accepted >= __config.cases.min(1),
                "property `{}` rejected every generated case",
                stringify!($name)
            );
        }
        $crate::__proptest_impl!(@cfg ($cfg) $($rest)*);
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n{}",
                stringify!($left), stringify!($right), __l, __r, format!($($fmt)+),
            )));
        }
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            __l
        );
    }};
}

/// Rejects (retries) the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3usize..10, f in -2.0f64..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn vec_sizes(v in crate::collection::vec(any::<bool>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn tuple_patterns((a, b) in (0u32..4, 4u32..8)) {
            prop_assert!(a < b, "a={} b={}", a, b);
        }

        #[test]
        fn assume_rejects(x in 0usize..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        #[test]
        fn config_is_honoured(x in 0u64..100) {
            prop_assert!(x < 100);
        }
    }

    #[test]
    fn oneof_and_flat_map_cover_arms() {
        let strat = prop_oneof![
            (0usize..1).prop_map(|_| 111usize),
            Just(222usize),
            (0usize..3).prop_flat_map(|_| Just(333usize)),
        ];
        let mut rng = TestRng::for_test("oneof");
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(strat.generate(&mut rng));
        }
        assert_eq!(seen, [111usize, 222, 333].into_iter().collect());
    }
}
