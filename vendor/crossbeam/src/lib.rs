//! Minimal `crossbeam` shim: MPMC channels backed by `std::sync::mpsc`
//! behind a mutex-shared receiver (crossbeam receivers are cloneable;
//! std's are not, so the receiving end is wrapped in `Arc<Mutex<..>>`).
//! `bounded(0)` is a rendezvous channel, matching crossbeam semantics.

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::fmt;
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};

    /// Creates a channel holding at most `cap` in-flight messages
    /// (`cap == 0` is a rendezvous channel: every send blocks for a recv).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (
            Sender(Inner::Bounded(tx)),
            Receiver(Arc::new(Mutex::new(rx))),
        )
    }

    /// Creates a channel with unbounded capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender(Inner::Unbounded(tx)),
            Receiver(Arc::new(Mutex::new(rx))),
        )
    }

    enum Inner<T> {
        Bounded(mpsc::SyncSender<T>),
        Unbounded(mpsc::Sender<T>),
    }

    impl<T> Clone for Inner<T> {
        fn clone(&self) -> Self {
            match self {
                Inner::Bounded(tx) => Inner::Bounded(tx.clone()),
                Inner::Unbounded(tx) => Inner::Unbounded(tx.clone()),
            }
        }
    }

    /// The sending half of a channel. Cloneable for multiple producers.
    pub struct Sender<T>(Inner<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Sends `value`, blocking while a bounded channel is full. Errors
        /// only when every receiver has disconnected.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.0 {
                Inner::Bounded(tx) => tx.send(value).map_err(|e| SendError(e.0)),
                Inner::Unbounded(tx) => tx.send(value).map_err(|e| SendError(e.0)),
            }
        }

        /// Sends `value` only if it can be done without blocking. An
        /// unbounded channel never blocks, so this only fails there when
        /// every receiver has disconnected.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            match &self.0 {
                Inner::Bounded(tx) => tx.try_send(value).map_err(|e| match e {
                    mpsc::TrySendError::Full(v) => TrySendError::Full(v),
                    mpsc::TrySendError::Disconnected(v) => TrySendError::Disconnected(v),
                }),
                Inner::Unbounded(tx) => tx.send(value).map_err(|e| TrySendError::Disconnected(e.0)),
            }
        }
    }

    /// The receiving half of a channel. Cloneable for multiple consumers;
    /// each message is delivered to exactly one receiver.
    pub struct Receiver<T>(Arc<Mutex<mpsc::Receiver<T>>>);

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Receiver<T> {
        fn with_rx<R>(&self, f: impl FnOnce(&mpsc::Receiver<T>) -> R) -> R {
            let guard = self.0.lock().unwrap_or_else(|e| e.into_inner());
            f(&guard)
        }

        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.with_rx(|rx| rx.recv()).map_err(|_| RecvError)
        }

        /// Attempts to receive without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.with_rx(|rx| rx.try_recv()).map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Blocks until a message arrives, all senders disconnect, or
        /// `timeout` elapses.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            self.with_rx(|rx| rx.recv_timeout(timeout))
                .map_err(|e| match e {
                    mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                    mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
                })
        }

        /// Blocking iterator that ends when all senders disconnect.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    /// Blocking receive iterator; see [`Receiver::iter`].
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;
        fn into_iter(self) -> IntoIter<T> {
            IntoIter { rx: self }
        }
    }

    /// Owning receive iterator.
    pub struct IntoIter<T> {
        rx: Receiver<T>,
    }

    impl<T> Iterator for IntoIter<T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// carries the unsent value.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..): receiver disconnected")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("channel disconnected")
        }
    }

    /// Error returned by [`Sender::try_send`]; carries the unsent value.
    pub enum TrySendError<T> {
        /// The bounded channel is full right now.
        Full(T),
        /// All receivers disconnected.
        Disconnected(T),
    }

    impl<T> fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("TrySendError::Full(..)"),
                TrySendError::Disconnected(_) => f.write_str("TrySendError::Disconnected(..)"),
            }
        }
    }

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("channel disconnected")
        }
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with no message available.
        Timeout,
        /// All senders disconnected.
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("receive timed out"),
                RecvTimeoutError::Disconnected => f.write_str("channel disconnected"),
            }
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message available right now.
        Empty,
        /// All senders disconnected.
        Disconnected,
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn bounded_rendezvous_and_fifo() {
            let (tx, rx) = bounded::<u32>(1);
            tx.send(1).unwrap();
            std::thread::scope(|s| {
                s.spawn(|| tx.send(2).unwrap());
                assert_eq!(rx.recv(), Ok(1));
                assert_eq!(rx.recv(), Ok(2));
            });
        }

        #[test]
        fn try_send_reports_full_without_blocking() {
            let (tx, rx) = bounded::<u32>(1);
            assert!(tx.try_send(1).is_ok());
            assert!(matches!(tx.try_send(2), Err(TrySendError::Full(2))));
            assert_eq!(rx.recv(), Ok(1));
            assert!(tx.try_send(3).is_ok());
            drop(rx);
            assert!(matches!(tx.try_send(4), Err(TrySendError::Disconnected(4))));
        }

        #[test]
        fn iter_drains_until_disconnect() {
            let (tx, rx) = unbounded::<u32>();
            for i in 0..5 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let got: Vec<u32> = rx.iter().collect();
            assert_eq!(got, vec![0, 1, 2, 3, 4]);
        }

        #[test]
        fn receivers_share_the_stream() {
            let (tx, rx1) = unbounded::<u32>();
            let rx2 = rx1.clone();
            tx.send(7).unwrap();
            drop(tx);
            let a = rx1.try_recv();
            let b = rx2.try_recv();
            assert!(
                a.is_ok() != b.is_ok(),
                "exactly one receiver gets the message"
            );
        }
    }
}
