//! In-situ time-steps selection on the Heat3D simulation: the paper's
//! Figures 7/8 scenario at laptop scale — simulate N steps, build bitmaps
//! in-situ, select K representative steps, and write only their bitmaps.
//! Runs both the bitmaps and the full-data method and compares.
//!
//! ```text
//! cargo run --release --example heat3d_insitu
//! ```

use ibis::analysis::Metric;
use ibis::core::{Binner, RowOrder};
use ibis::datagen::{Heat3D, Heat3DConfig};
use ibis::insitu::{
    run_pipeline, CoreAllocation, LocalDisk, MachineModel, PipelineConfig, Reduction,
    RobustnessConfig, ScalingModel,
};

fn main() {
    let heat = Heat3DConfig {
        nx: 64,
        ny: 64,
        nz: 64,
        ..Default::default()
    };
    let steps = 40;
    let select_k = 10;
    let machine = MachineModel::xeon32();
    let cores = 16;

    let cfg = |reduction: Reduction| PipelineConfig {
        machine: machine.clone(),
        cores,
        allocation: CoreAllocation::Shared,
        reduction,
        steps,
        select_k,
        metric: Metric::ConditionalEntropy,
        binners: vec![Binner::precision(-1.0, 101.0, 0)],
        per_step_precision: None,
        row_order: RowOrder::Identity,
        queue_capacity: 4,
        sim_scaling: ScalingModel::heat3d(),
        robustness: RobustnessConfig::default(),
    };

    println!(
        "Heat3D {}x{}x{}: selecting {select_k} of {steps} steps on a modeled {} ({} cores)",
        heat.nx, heat.ny, heat.nz, machine.name, cores
    );

    let disk = LocalDisk::new(machine.disk_bw);
    let bitmaps =
        run_pipeline(Heat3D::new(heat.clone()), &cfg(Reduction::Bitmaps), &disk).expect("run");
    let disk2 = LocalDisk::new(machine.disk_bw);
    let full = run_pipeline(Heat3D::new(heat), &cfg(Reduction::FullData), &disk2).expect("run");

    println!("\n{:<22} {:>12} {:>12}", "", "bitmaps", "full data");
    let row = |name: &str, b: f64, f: f64| {
        println!("{name:<22} {b:>11.3}s {f:>11.3}s");
    };
    row("simulate", bitmaps.phases.simulate, full.phases.simulate);
    row(
        "bitmap generation",
        bitmaps.phases.reduce,
        full.phases.reduce,
    );
    row(
        "time-step selection",
        bitmaps.phases.select,
        full.phases.select,
    );
    row("output", bitmaps.phases.output, full.phases.output);
    row("TOTAL (modeled)", bitmaps.total_modeled, full.total_modeled);
    println!(
        "\nspeedup: {:.2}x   bytes written: {:.1} MB vs {:.1} MB   peak memory: {:.1} MB vs {:.1} MB",
        full.total_modeled / bitmaps.total_modeled,
        bitmaps.bytes_written as f64 / 1e6,
        full.bytes_written as f64 / 1e6,
        bitmaps.peak_memory_bytes as f64 / 1e6,
        full.peak_memory_bytes as f64 / 1e6,
    );
    println!("selected steps (bitmaps):   {:?}", bitmaps.selected);
    println!("selected steps (full data): {:?}", full.selected);
    assert_eq!(
        bitmaps.selected, full.selected,
        "bitmap selection must equal full-data selection"
    );
    println!("→ identical selections: the reduction lost no information for this task");
}
