//! An on-disk store for the in-situ phase's output: one directory holding
//! the selected time-steps' indices (one `.ibis` file per step per
//! variable) plus a manifest — the artifact a post-analysis session opens
//! instead of the raw simulation output.
//!
//! Layout:
//!
//! ```text
//! run-dir/
//!   MANIFEST            # one line per entry: step <TAB> variable <TAB> file
//!   s0000_temperature.ibis
//!   s0005_temperature.ibis
//!   …
//! ```

use crate::io::codec;
use ibis_core::BitmapIndex;
use std::collections::BTreeMap;
use std::io::Write;
use std::path::{Path, PathBuf};

/// A writer that accumulates selected-step indices into a run directory.
#[derive(Debug)]
pub struct StoreWriter {
    dir: PathBuf,
    entries: Vec<(usize, String, String)>,
}

impl StoreWriter {
    /// Creates (if needed) the run directory.
    pub fn create(dir: impl AsRef<Path>) -> std::io::Result<Self> {
        std::fs::create_dir_all(dir.as_ref())?;
        Ok(StoreWriter {
            dir: dir.as_ref().to_path_buf(),
            entries: Vec::new(),
        })
    }

    /// Persists one step's index for one variable.
    pub fn put(&mut self, step: usize, variable: &str, index: &BitmapIndex) -> std::io::Result<()> {
        assert!(
            variable
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_'),
            "variable names must be [A-Za-z0-9_] for safe file names"
        );
        let file = format!("s{step:06}_{variable}.ibis");
        std::fs::write(self.dir.join(&file), codec::encode_index(index))?;
        self.entries.push((step, variable.to_string(), file));
        Ok(())
    }

    /// Writes the manifest and finishes the run. Until this is called the
    /// directory has no manifest and [`Store::open`] will refuse it.
    pub fn finish(mut self) -> std::io::Result<PathBuf> {
        self.entries.sort();
        let mut f = std::fs::File::create(self.dir.join("MANIFEST"))?;
        for (step, var, file) in &self.entries {
            writeln!(f, "{step}\t{var}\t{file}")?;
        }
        Ok(self.dir)
    }
}

/// A read-only view of a finished run directory.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    /// `(step, variable) -> file name`, ordered by step then variable.
    entries: BTreeMap<(usize, String), String>,
}

impl Store {
    /// Opens a run directory; fails without a valid manifest.
    pub fn open(dir: impl AsRef<Path>) -> std::io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        let manifest = std::fs::read_to_string(dir.join("MANIFEST"))?;
        let mut entries = BTreeMap::new();
        for (lineno, line) in manifest.lines().enumerate() {
            let mut parts = line.split('\t');
            let (Some(step), Some(var), Some(file), None) =
                (parts.next(), parts.next(), parts.next(), parts.next())
            else {
                return Err(bad_manifest(lineno, "expected 3 tab-separated fields"));
            };
            let step: usize = step
                .parse()
                .map_err(|_| bad_manifest(lineno, "bad step number"))?;
            if file.contains('/') || file.contains("..") {
                return Err(bad_manifest(lineno, "file escapes the run directory"));
            }
            entries.insert((step, var.to_string()), file.to_string());
        }
        Ok(Store { dir, entries })
    }

    /// Steps present in the store, ascending.
    pub fn steps(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.entries.keys().map(|(s, _)| *s).collect();
        v.dedup();
        v
    }

    /// Variables present for `step`.
    pub fn variables(&self, step: usize) -> Vec<&str> {
        self.entries
            .iter()
            .filter(|((s, _), _)| *s == step)
            .map(|((_, v), _)| v.as_str())
            .collect()
    }

    /// Loads one index.
    pub fn get(&self, step: usize, variable: &str) -> std::io::Result<BitmapIndex> {
        let file = self
            .entries
            .get(&(step, variable.to_string()))
            .ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::NotFound,
                    format!("no entry for step {step} variable {variable:?}"),
                )
            })?;
        let bytes = std::fs::read(self.dir.join(file))?;
        codec::decode_index(&bytes).ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("{file}: corrupt index blob"),
            )
        })
    }

    /// Loads every step of one variable, in step order.
    pub fn load_series(&self, variable: &str) -> std::io::Result<Vec<(usize, BitmapIndex)>> {
        self.steps()
            .into_iter()
            .filter(|&s| self.entries.contains_key(&(s, variable.to_string())))
            .map(|s| Ok((s, self.get(s, variable)?)))
            .collect()
    }
}

fn bad_manifest(lineno: usize, why: &str) -> std::io::Error {
    std::io::Error::new(
        std::io::ErrorKind::InvalidData,
        format!("MANIFEST line {}: {why}", lineno + 1),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibis_core::Binner;

    fn sample_index(seed: usize) -> BitmapIndex {
        let data: Vec<f64> = (0..500).map(|i| ((i * (seed + 3)) % 40) as f64).collect();
        BitmapIndex::build(&data, Binner::distinct_ints(0, 39))
    }

    fn tmp(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("ibis-store-{name}"));
        std::fs::remove_dir_all(&d).ok();
        d
    }

    #[test]
    fn round_trip_store() {
        let dir = tmp("roundtrip");
        let mut w = StoreWriter::create(&dir).unwrap();
        for step in [0usize, 5, 9] {
            w.put(step, "temperature", &sample_index(step)).unwrap();
            w.put(step, "salinity", &sample_index(step + 100)).unwrap();
        }
        w.finish().unwrap();

        let store = Store::open(&dir).unwrap();
        assert_eq!(store.steps(), vec![0, 5, 9]);
        assert_eq!(store.variables(5), vec!["salinity", "temperature"]);
        let idx = store.get(5, "temperature").unwrap();
        assert_eq!(idx.counts(), sample_index(5).counts());
        let series = store.load_series("salinity").unwrap();
        assert_eq!(series.len(), 3);
        assert_eq!(series[2].0, 9);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_without_manifest_fails() {
        let dir = tmp("nomanifest");
        std::fs::create_dir_all(&dir).unwrap();
        assert!(Store::open(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_entry_is_not_found() {
        let dir = tmp("missing");
        let mut w = StoreWriter::create(&dir).unwrap();
        w.put(1, "temperature", &sample_index(1)).unwrap();
        w.finish().unwrap();
        let store = Store::open(&dir).unwrap();
        let err = store.get(1, "salinity").unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::NotFound);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_blob_is_invalid_data() {
        let dir = tmp("corrupt");
        let mut w = StoreWriter::create(&dir).unwrap();
        w.put(2, "temperature", &sample_index(2)).unwrap();
        let finished = w.finish().unwrap();
        // truncate the blob
        let f = finished.join("s000002_temperature.ibis");
        let bytes = std::fs::read(&f).unwrap();
        std::fs::write(&f, &bytes[..bytes.len() / 2]).unwrap();
        let store = Store::open(&dir).unwrap();
        let err = store.get(2, "temperature").unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn hostile_manifest_rejected() {
        let dir = tmp("hostile");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("MANIFEST"), "0\ttemp\t../../etc/passwd\n").unwrap();
        assert!(Store::open(&dir).is_err());
        std::fs::write(dir.join("MANIFEST"), "zero\ttemp\tx.ibis\n").unwrap();
        assert!(Store::open(&dir).is_err());
        std::fs::write(dir.join("MANIFEST"), "0\ttemp\n").unwrap();
        assert!(Store::open(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    #[should_panic(expected = "safe file names")]
    fn hostile_variable_name_rejected() {
        let dir = tmp("hostilevar");
        let mut w = StoreWriter::create(&dir).unwrap();
        let _ = w.put(0, "../evil", &sample_index(0));
    }
}
