//! Correlation mining between two variables (Section 4, Algorithm 2).
//!
//! Finds value subsets (bin pairs) and spatial subsets (Z-order units) where
//! two variables are strongly related, using mutual information as the
//! indicator:
//!
//! 1. **Joint step** — AND every bitvector of `A` with every bitvector of
//!    `B`, counting 1-bits.
//! 2. **Value pruning** — score each joint pair; pairs below threshold `T`
//!    are uncorrelated and never touched again.
//! 3. **Spatial step** — partition each surviving joint bitvector into basic
//!    spatial units (contiguous Z-order ranges) and keep units scoring at
//!    least `T'`.
//!
//! The per-pair score is the mutual information between the two *indicator*
//! variables "value of A falls in bin j" / "value of B falls in bin k" —
//! always non-negative, computable from four counts, and identical whether
//! the counts come from bitmaps or a raw scan (tested bit-for-bit).
//!
//! The multi-level variant ([`mine_multilevel`]) evaluates coarse bin pairs
//! first and descends only into the children of pairs whose coarse score
//! passes `T` — the paper's efficiency optimization. It is a heuristic
//! filter (coarsening can mask a fine-grained correlation); the stats report
//! how much work it pruned.

use ibis_core::{Binner, BitmapIndex, MultiLevelIndex};
use rayon::prelude::*;

/// Thresholds and spatial granularity for a mining run.
#[derive(Debug, Clone, Copy)]
pub struct MiningConfig {
    /// `T`: minimum indicator-MI (bits) for a value pair to survive pruning.
    pub value_threshold: f64,
    /// `T'`: minimum indicator-MI (bits) for a spatial unit to be reported.
    pub spatial_threshold: f64,
    /// Basic spatial unit size in elements (a Z-order block when the data
    /// was laid out with [`ibis_core::ZOrderLayout`]).
    pub unit_size: u64,
}

impl Default for MiningConfig {
    fn default() -> Self {
        MiningConfig {
            value_threshold: 0.01,
            spatial_threshold: 0.05,
            unit_size: 256,
        }
    }
}

/// One mined high-correlation subset: a value pair restricted to a spatial
/// unit.
#[derive(Debug, Clone, PartialEq)]
pub struct MinedSubset {
    /// Bin of variable A (value subset of A).
    pub bin_a: usize,
    /// Bin of variable B.
    pub bin_b: usize,
    /// Spatial unit index (covers elements `[unit*unit_size, …)`).
    pub unit: usize,
    /// Indicator MI of the value pair over the whole domain.
    pub value_mi: f64,
    /// Indicator MI within the unit.
    pub spatial_mi: f64,
}

/// Result of a mining run, with work counters for the efficiency benches.
#[derive(Debug, Clone, Default)]
pub struct MiningResult {
    /// Surviving subsets, sorted by `spatial_mi` descending.
    pub subsets: Vec<MinedSubset>,
    /// Value pairs whose joint distribution was evaluated.
    pub pairs_evaluated: usize,
    /// Value pairs dropped by the `T` pruning step.
    pub pairs_pruned: usize,
    /// Spatial units scored in step 3.
    pub units_evaluated: usize,
}

/// Mutual information (bits) between the indicator variables "in bin j of A"
/// and "in bin k of B", from the four counts: total `n`, marginals `c_a`,
/// `c_b`, and joint `c_ab`. Always ≥ 0.
pub fn indicator_mi(n: u64, c_a: u64, c_b: u64, c_ab: u64) -> f64 {
    debug_assert!(c_ab <= c_a && c_ab <= c_b && c_a <= n && c_b <= n);
    if n == 0 {
        return 0.0;
    }
    // MI is symmetric; canonicalize the argument order so the float
    // summation order — and therefore the result — is bit-exactly
    // symmetric too.
    let (c_a, c_b) = (c_a.min(c_b), c_a.max(c_b));
    let nf = n as f64;
    let p = |c: u64| c as f64 / nf;
    let p11 = p(c_ab);
    let p10 = p(c_a - c_ab);
    let p01 = p(c_b - c_ab);
    let p00 = p(n + c_ab - c_a - c_b);
    let pa1 = p(c_a);
    let pb1 = p(c_b);
    let term = |pxy: f64, px: f64, py: f64| {
        if pxy > 0.0 && px > 0.0 && py > 0.0 {
            pxy * (pxy / (px * py)).log2()
        } else {
            0.0
        }
    };
    (term(p11, pa1, pb1)
        + term(p10, pa1, 1.0 - pb1)
        + term(p01, 1.0 - pa1, pb1)
        + term(p00, 1.0 - pa1, 1.0 - pb1))
    .max(0.0)
}

/// Score of a joint value pair: zero when the pair never co-occurs (the
/// paper prunes on the joint bitvector's 1-bits — a pair with no shared
/// positions is uncorrelated by definition), otherwise the indicator MI.
pub fn joint_pair_score(n: u64, c_a: u64, c_b: u64, c_ab: u64) -> f64 {
    if c_ab == 0 {
        0.0
    } else {
        indicator_mi(n, c_a, c_b, c_ab)
    }
}

/// Length of spatial unit `u` given `unit_size` and total elements `n`.
fn unit_len(u: usize, unit_size: u64, n: u64) -> u64 {
    let start = u as u64 * unit_size;
    unit_size.min(n - start)
}

/// Algorithm 2 on bitmap indices, with the spatial stage fanned out over
/// the rayon pool. Rows of the pair table are scored independently; each
/// row [`prepare`](ibis_core::WahVec::prepare)s its bitvector once so a
/// dense row pays the decode a single time across all its ANDs. Per-row
/// outputs are concatenated in row order, so the result — subsets, ordering
/// and work counters — is byte-identical to [`mine_index_serial`] (tested).
pub fn mine_index(a: &BitmapIndex, b: &BitmapIndex, cfg: &MiningConfig) -> MiningResult {
    assert_eq!(a.len(), b.len(), "variables must cover the same elements");
    assert!(cfg.unit_size > 0, "unit_size must be positive");
    let n = a.len();
    let mut result = MiningResult::default();
    if n == 0 {
        return result;
    }
    // Step 1: the whole joint table via compressed ANDs, with the exact
    // row-completion early exit (a row stops once its counts reach the
    // bin's total — every further pair has an empty joint bitvector).
    let joint = crate::histogram::joint_counts_adaptive(a, b);
    let nb_bins = b.nbins();
    // Step 2: value pruning — pure float scoring of the joint table, cheap
    // and serial. Survivors are grouped by row for the spatial fan-out.
    let mut rows: Vec<(usize, Vec<(usize, f64)>)> = Vec::new();
    for j in 0..a.nbins() {
        let ca = a.counts()[j];
        if ca == 0 {
            continue;
        }
        let mut survivors = Vec::new();
        for k in 0..nb_bins {
            let cb = b.counts()[k];
            if cb == 0 {
                continue;
            }
            result.pairs_evaluated += 1;
            let value_mi = joint_pair_score(n, ca, cb, joint[j * nb_bins + k]);
            if value_mi < cfg.value_threshold {
                result.pairs_pruned += 1;
                continue;
            }
            survivors.push((k, value_mi));
        }
        if !survivors.is_empty() {
            rows.push((j, survivors));
        }
    }
    // Per-unit marginals of every B bin that appears in a surviving pair,
    // computed once up front (in parallel) and shared across rows.
    let mut needed_b: Vec<usize> = rows
        .iter()
        .flat_map(|(_, s)| s.iter().map(|&(k, _)| k))
        .collect();
    needed_b.sort_unstable();
    needed_b.dedup();
    let computed: Vec<Vec<u64>> = needed_b
        .par_iter()
        .map(|&k| b.bin(k).count_ones_per_unit(cfg.unit_size))
        .collect();
    let mut units_b: Vec<Option<Vec<u64>>> = vec![None; nb_bins];
    for (k, v) in needed_b.into_iter().zip(computed) {
        units_b[k] = Some(v);
    }
    // Step 3: spatial stage, one task per surviving row (fused AND +
    // per-unit popcount; the intersection is never materialized).
    let row_results: Vec<(usize, Vec<MinedSubset>)> = rows
        .into_par_iter()
        .map(|(j, survivors)| {
            let row = a.bin(j).prepare();
            let per_unit_a = a.bin(j).count_ones_per_unit(cfg.unit_size);
            let mut units_evaluated = 0usize;
            let mut subsets = Vec::new();
            for (k, value_mi) in survivors {
                let per_unit_ab = row.and_count_per_unit(b.bin(k), cfg.unit_size);
                let per_unit_b = units_b[k].as_ref().expect("marginal precomputed");
                for (u, &c_ab_u) in per_unit_ab.iter().enumerate() {
                    units_evaluated += 1;
                    let nu = unit_len(u, cfg.unit_size, n);
                    let spatial_mi = indicator_mi(nu, per_unit_a[u], per_unit_b[u], c_ab_u);
                    if spatial_mi >= cfg.spatial_threshold {
                        subsets.push(MinedSubset {
                            bin_a: j,
                            bin_b: k,
                            unit: u,
                            value_mi,
                            spatial_mi,
                        });
                    }
                }
            }
            (units_evaluated, subsets)
        })
        .collect();
    for (units_evaluated, subsets) in row_results {
        result.units_evaluated += units_evaluated;
        result.subsets.extend(subsets);
    }
    sort_subsets(&mut result.subsets);
    result
}

/// Algorithm 2 on bitmap indices, strictly serial — the regression baseline
/// for [`mine_index`]'s fan-out and the shape closest to the paper's
/// pseudocode.
pub fn mine_index_serial(a: &BitmapIndex, b: &BitmapIndex, cfg: &MiningConfig) -> MiningResult {
    assert_eq!(a.len(), b.len(), "variables must cover the same elements");
    assert!(cfg.unit_size > 0, "unit_size must be positive");
    let n = a.len();
    let mut result = MiningResult::default();
    if n == 0 {
        return result;
    }
    let joint = crate::histogram::joint_counts_adaptive(a, b);
    // Per-unit marginal counts, computed lazily per bin (cached).
    let mut units_a: Vec<Option<Vec<u64>>> = vec![None; a.nbins()];
    let mut units_b: Vec<Option<Vec<u64>>> = vec![None; b.nbins()];
    let nb_bins = b.nbins();
    for j in 0..a.nbins() {
        let ca = a.counts()[j];
        if ca == 0 {
            continue;
        }
        // Decoded (if dense) once per row, shared by all its ANDs.
        let mut row = None;
        for k in 0..nb_bins {
            let cb = b.counts()[k];
            if cb == 0 {
                continue;
            }
            result.pairs_evaluated += 1;
            let c_ab = joint[j * nb_bins + k];
            let value_mi = joint_pair_score(n, ca, cb, c_ab);
            if value_mi < cfg.value_threshold {
                result.pairs_pruned += 1;
                continue;
            }
            // Step 3: spatial units of the joint bitvector (fused AND +
            // per-unit popcount; the intersection is never materialized).
            let row = row.get_or_insert_with(|| a.bin(j).prepare());
            let per_unit_ab = row.and_count_per_unit(b.bin(k), cfg.unit_size);
            let per_unit_a =
                units_a[j].get_or_insert_with(|| a.bin(j).count_ones_per_unit(cfg.unit_size));
            let per_unit_b =
                units_b[k].get_or_insert_with(|| b.bin(k).count_ones_per_unit(cfg.unit_size));
            for (u, &c_ab_u) in per_unit_ab.iter().enumerate() {
                result.units_evaluated += 1;
                let nu = unit_len(u, cfg.unit_size, n);
                let spatial_mi = indicator_mi(nu, per_unit_a[u], per_unit_b[u], c_ab_u);
                if spatial_mi >= cfg.spatial_threshold {
                    result.subsets.push(MinedSubset {
                        bin_a: j,
                        bin_b: k,
                        unit: u,
                        value_mi,
                        spatial_mi,
                    });
                }
            }
        }
    }
    sort_subsets(&mut result.subsets);
    result
}

/// The full-data comparator: identical semantics via raw scans — bin the
/// data, tally joint counts per pair and per unit, score with the same
/// kernel. Used as the baseline in Figure 14 and as the exactness oracle.
pub fn mine_full(
    a: &[f64],
    b: &[f64],
    binner_a: &Binner,
    binner_b: &Binner,
    cfg: &MiningConfig,
) -> MiningResult {
    assert_eq!(a.len(), b.len(), "variables must cover the same elements");
    assert!(cfg.unit_size > 0, "unit_size must be positive");
    let n = a.len() as u64;
    let mut result = MiningResult::default();
    if n == 0 {
        return result;
    }
    thread_local! {
        // mine_full runs once per step pair in the comparison benches;
        // binning scratch persists across calls on each thread.
        static ID_SCRATCH: std::cell::RefCell<(Vec<u32>, Vec<u32>)> = const {
            std::cell::RefCell::new((Vec::new(), Vec::new()))
        };
    }
    ID_SCRATCH.with(|cell| {
        let mut scratch = cell.borrow_mut();
        let (ids_a, ids_b) = &mut *scratch;
        binner_a.bin_into(a, ids_a);
        binner_b.bin_into(b, ids_b);
        let (na, nb) = (binner_a.nbins(), binner_b.nbins());
        let nunits = (n as usize).div_ceil(cfg.unit_size as usize);
        // whole-domain joint + marginals
        let mut joint = vec![0u64; na * nb];
        let mut ca = vec![0u64; na];
        let mut cb = vec![0u64; nb];
        // per-unit marginals
        let mut unit_a = vec![0u64; nunits * na];
        let mut unit_b = vec![0u64; nunits * nb];
        for (i, (&ja, &kb)) in ids_a.iter().zip(ids_b.iter()).enumerate() {
            joint[ja as usize * nb + kb as usize] += 1;
            ca[ja as usize] += 1;
            cb[kb as usize] += 1;
            let u = i / cfg.unit_size as usize;
            unit_a[u * na + ja as usize] += 1;
            unit_b[u * nb + kb as usize] += 1;
        }
        for j in 0..na {
            if ca[j] == 0 {
                continue;
            }
            for k in 0..nb {
                if cb[k] == 0 {
                    continue;
                }
                result.pairs_evaluated += 1;
                let c_ab = joint[j * nb + k];
                let value_mi = joint_pair_score(n, ca[j], cb[k], c_ab);
                if value_mi < cfg.value_threshold {
                    result.pairs_pruned += 1;
                    continue;
                }
                // per-unit joint counts for this surviving pair
                let mut per_unit_ab = vec![0u64; nunits];
                for (i, (&ja, &kb)) in ids_a.iter().zip(ids_b.iter()).enumerate() {
                    if ja as usize == j && kb as usize == k {
                        per_unit_ab[i / cfg.unit_size as usize] += 1;
                    }
                }
                for (u, &c_ab_u) in per_unit_ab.iter().enumerate() {
                    result.units_evaluated += 1;
                    let nu = unit_len(u, cfg.unit_size, n);
                    let spatial_mi =
                        indicator_mi(nu, unit_a[u * na + j], unit_b[u * nb + k], c_ab_u);
                    if spatial_mi >= cfg.spatial_threshold {
                        result.subsets.push(MinedSubset {
                            bin_a: j,
                            bin_b: k,
                            unit: u,
                            value_mi,
                            spatial_mi,
                        });
                    }
                }
            }
        }
        sort_subsets(&mut result.subsets);
        result
    })
}

/// Multi-level statistics.
#[derive(Debug, Clone, Default)]
pub struct MultiLevelStats {
    /// Coarse pairs evaluated at the high level.
    pub high_pairs_evaluated: usize,
    /// Coarse pairs pruned (their children were never visited).
    pub high_pairs_pruned: usize,
    /// Fine pairs evaluated after descending.
    pub low_pairs_evaluated: usize,
}

/// Multi-level mining: score high-level pairs first, descend only into the
/// children of pairs passing `T` (Section 4.2, optimization 2).
pub fn mine_multilevel(
    a: &MultiLevelIndex,
    b: &MultiLevelIndex,
    cfg: &MiningConfig,
) -> (MiningResult, MultiLevelStats) {
    assert_eq!(
        a.low().len(),
        b.low().len(),
        "variables must cover the same elements"
    );
    let n = a.low().len();
    let mut result = MiningResult::default();
    let mut stats = MultiLevelStats::default();
    if n == 0 {
        return (result, stats);
    }
    let mut units_a: Vec<Option<Vec<u64>>> = vec![None; a.low().nbins()];
    let mut units_b: Vec<Option<Vec<u64>>> = vec![None; b.low().nbins()];
    for hj in 0..a.high().nbins() {
        if a.high().counts()[hj] == 0 {
            continue;
        }
        // Coarse row decoded (if dense) once, shared across all hk ANDs.
        let high_row = a.high().bin(hj).prepare();
        for hk in 0..b.high().nbins() {
            if b.high().counts()[hk] == 0 {
                continue;
            }
            stats.high_pairs_evaluated += 1;
            let c_hjk = high_row.and_count(b.high().bin(hk));
            let high_mi = joint_pair_score(n, a.high().counts()[hj], b.high().counts()[hk], c_hjk);
            if high_mi < cfg.value_threshold {
                stats.high_pairs_pruned += 1;
                continue;
            }
            for j in a.children(hj) {
                let ca = a.low().counts()[j];
                if ca == 0 {
                    continue;
                }
                // Decoded (if dense) once per row, shared by all its ANDs.
                let row = a.low().bin(j).prepare();
                for k in b.children(hk) {
                    let cb = b.low().counts()[k];
                    if cb == 0 {
                        continue;
                    }
                    stats.low_pairs_evaluated += 1;
                    result.pairs_evaluated += 1;
                    let c_ab = row.and_count(b.low().bin(k));
                    let value_mi = joint_pair_score(n, ca, cb, c_ab);
                    if value_mi < cfg.value_threshold {
                        result.pairs_pruned += 1;
                        continue;
                    }
                    let per_unit_ab = row.and_count_per_unit(b.low().bin(k), cfg.unit_size);
                    let per_unit_a = units_a[j]
                        .get_or_insert_with(|| a.low().bin(j).count_ones_per_unit(cfg.unit_size));
                    let per_unit_b = units_b[k]
                        .get_or_insert_with(|| b.low().bin(k).count_ones_per_unit(cfg.unit_size));
                    for (u, &c_ab_u) in per_unit_ab.iter().enumerate() {
                        result.units_evaluated += 1;
                        let nu = unit_len(u, cfg.unit_size, n);
                        let spatial_mi = indicator_mi(nu, per_unit_a[u], per_unit_b[u], c_ab_u);
                        if spatial_mi >= cfg.spatial_threshold {
                            result.subsets.push(MinedSubset {
                                bin_a: j,
                                bin_b: k,
                                unit: u,
                                value_mi,
                                spatial_mi,
                            });
                        }
                    }
                }
            }
        }
    }
    sort_subsets(&mut result.subsets);
    (result, stats)
}

fn sort_subsets(subsets: &mut [MinedSubset]) {
    subsets.sort_by(|x, y| {
        y.spatial_mi
            .partial_cmp(&x.spatial_mi)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(x.bin_a.cmp(&y.bin_a))
            .then(x.bin_b.cmp(&y.bin_b))
            .then(x.unit.cmp(&y.unit))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indicator_mi_basics() {
        // perfectly dependent indicators: I = H(indicator) = 1 bit at p=1/2
        let mi = indicator_mi(100, 50, 50, 50);
        assert!((mi - 1.0).abs() < 1e-12, "{mi}");
        // independent: joint = product
        let mi = indicator_mi(100, 50, 40, 20);
        assert!(mi.abs() < 1e-12, "{mi}");
        // empty
        assert_eq!(indicator_mi(0, 0, 0, 0), 0.0);
        // anti-correlated is still informative
        assert!(indicator_mi(100, 50, 50, 0) > 0.9);
    }

    #[test]
    fn indicator_mi_nonnegative_everywhere() {
        for n in [1u64, 7, 100] {
            for ca in 0..=n {
                for cb in 0..=n {
                    for cab in (ca + cb).saturating_sub(n)..=ca.min(cb) {
                        let mi = indicator_mi(n, ca, cb, cab);
                        assert!(
                            mi >= 0.0 && mi.is_finite(),
                            "n={n} ca={ca} cb={cb} cab={cab}: {mi}"
                        );
                    }
                }
            }
        }
    }

    /// Data with correlation planted in the first half of the domain:
    /// there b = a; in the second half b is a shuffled pattern.
    fn planted(n: usize) -> (Vec<f64>, Vec<f64>) {
        let a: Vec<f64> = (0..n).map(|i| ((i * 7) % 8) as f64).collect();
        let b: Vec<f64> = (0..n)
            .map(|i| {
                if i < n / 2 {
                    ((i * 7) % 8) as f64 // identical to a: maximal correlation
                } else {
                    // hashed: statistically independent of a's 8-cycle
                    ((i.wrapping_mul(2654435761) >> 13) % 8) as f64
                }
            })
            .collect();
        (a, b)
    }

    fn binner() -> Binner {
        Binner::distinct_ints(0, 7)
    }

    fn cfg() -> MiningConfig {
        MiningConfig {
            value_threshold: 0.005,
            spatial_threshold: 0.2,
            unit_size: 128,
        }
    }

    #[test]
    fn parallel_and_serial_miners_identical() {
        let (a, b) = planted(4096);
        let ia = BitmapIndex::build(&a, binner());
        let ib = BitmapIndex::build(&b, binner());
        let par = mine_index(&ia, &ib, &cfg());
        let ser = mine_index_serial(&ia, &ib, &cfg());
        assert_eq!(par.subsets, ser.subsets, "fan-out must not change results");
        assert_eq!(par.pairs_evaluated, ser.pairs_evaluated);
        assert_eq!(par.pairs_pruned, ser.pairs_pruned);
        assert_eq!(par.units_evaluated, ser.units_evaluated);
    }

    #[test]
    fn bitmap_and_full_miners_agree_exactly() {
        let (a, b) = planted(4096);
        let ia = BitmapIndex::build(&a, binner());
        let ib = BitmapIndex::build(&b, binner());
        let rb = mine_index(&ia, &ib, &cfg());
        let rf = mine_full(&a, &b, &binner(), &binner(), &cfg());
        assert_eq!(rb.subsets, rf.subsets, "miners must agree bit-for-bit");
        assert_eq!(rb.pairs_evaluated, rf.pairs_evaluated);
        assert_eq!(rb.pairs_pruned, rf.pairs_pruned);
        assert!(!rb.subsets.is_empty(), "planted correlation must be found");
    }

    #[test]
    fn finds_correlation_only_in_planted_half() {
        let (a, b) = planted(4096);
        let ia = BitmapIndex::build(&a, binner());
        let ib = BitmapIndex::build(&b, binner());
        let r = mine_index(&ia, &ib, &cfg());
        let half_units = 4096 / 128 / 2;
        assert!(!r.subsets.is_empty());
        for s in &r.subsets {
            assert!(
                s.unit < half_units,
                "unit {} is outside the planted half (mi {})",
                s.unit,
                s.spatial_mi
            );
        }
        // the diagonal (b == a) pairs should dominate
        let diagonal = r.subsets.iter().filter(|s| s.bin_a == s.bin_b).count();
        assert!(
            diagonal * 2 > r.subsets.len(),
            "diagonal pairs should dominate"
        );
    }

    #[test]
    fn pruning_reduces_spatial_work() {
        let (a, b) = planted(4096);
        let ia = BitmapIndex::build(&a, binner());
        let ib = BitmapIndex::build(&b, binner());
        let strict = mine_index(
            &ia,
            &ib,
            &MiningConfig {
                value_threshold: 0.05,
                ..cfg()
            },
        );
        let loose = mine_index(
            &ia,
            &ib,
            &MiningConfig {
                value_threshold: 0.0,
                ..cfg()
            },
        );
        assert!(strict.pairs_pruned > 0);
        assert_eq!(loose.pairs_pruned, 0);
        assert!(strict.units_evaluated < loose.units_evaluated);
    }

    #[test]
    fn multilevel_finds_planted_subsets_with_less_work() {
        let (a, b) = planted(8192);
        let mla = MultiLevelIndex::build(&a, binner(), 2);
        let mlb = MultiLevelIndex::build(&b, binner(), 2);
        let (ml_result, stats) = mine_multilevel(&mla, &mlb, &cfg());
        let flat = mine_index(mla.low(), mlb.low(), &cfg());
        // the planted strong subsets must survive the coarse pruning
        let strong: Vec<&MinedSubset> =
            flat.subsets.iter().filter(|s| s.spatial_mi > 0.5).collect();
        for s in &strong {
            assert!(
                ml_result.subsets.iter().any(|m| m == *s),
                "multilevel lost a strong subset: {s:?}"
            );
        }
        // and it must do less fine-grained work when anything was pruned
        assert!(stats.high_pairs_evaluated > 0);
        if stats.high_pairs_pruned > 0 {
            assert!(stats.low_pairs_evaluated < flat.pairs_evaluated);
        }
    }

    #[test]
    fn results_sorted_by_spatial_mi() {
        let (a, b) = planted(4096);
        let ia = BitmapIndex::build(&a, binner());
        let ib = BitmapIndex::build(&b, binner());
        let r = mine_index(&ia, &ib, &cfg());
        for w in r.subsets.windows(2) {
            assert!(w[0].spatial_mi >= w[1].spatial_mi);
        }
    }

    #[test]
    fn empty_input() {
        let ia = BitmapIndex::build(&[], binner());
        let ib = BitmapIndex::build(&[], binner());
        let r = mine_index(&ia, &ib, &cfg());
        assert!(r.subsets.is_empty());
        assert_eq!(r.pairs_evaluated, 0);
        let r = mine_full(&[], &[], &binner(), &binner(), &cfg());
        assert!(r.subsets.is_empty());
    }

    #[test]
    fn no_correlation_no_results() {
        // independent uniform patterns over coprime periods
        let a: Vec<f64> = (0..4095).map(|i| (i % 5) as f64).collect();
        let b: Vec<f64> = (0..4095).map(|i| ((i / 5) % 7) as f64).collect();
        let ba = Binner::distinct_ints(0, 4);
        let bb = Binner::distinct_ints(0, 6);
        let ia = BitmapIndex::build(&a, ba);
        let ib = BitmapIndex::build(&b, bb);
        let r = mine_index(
            &ia,
            &ib,
            &MiningConfig {
                value_threshold: 0.02,
                spatial_threshold: 0.3,
                unit_size: 256,
            },
        );
        assert!(
            r.subsets.is_empty(),
            "found {} spurious subsets",
            r.subsets.len()
        );
        assert_eq!(r.pairs_pruned, r.pairs_evaluated);
    }
}
