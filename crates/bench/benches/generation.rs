//! Ingest-throughput sweep for the batched generation fast path:
//! pattern × nbins × {scalar, batched, parallel} build modes, reported as
//! elements/s with speedups over the scalar push-loop baseline, written to
//! `BENCH_generation.json` at the repository root.
//!
//! The pattern set brackets the fast path's regimes: `constant` and
//! `smooth` are the spatially coherent simulation fields the paper's
//! in-situ generation targets (constant-segment path + cross-segment run
//! detection), `step_runs` alternates medium runs with seams, and
//! `uniform_random` is the adversarial all-mixed-segments case that must
//! not regress.
//!
//!     cargo bench -p ibis-bench --bench generation
//!
//! `IBIS_GEN_SMOKE=1` shrinks the element count and writes to
//! `target/BENCH_generation.smoke.json` instead, so CI can schema-check the
//! report without clobbering the committed full-size numbers.

use ibis_core::{build_index_parallel, Binner, BitmapIndex};
use std::hint::black_box;
use std::time::Instant;

/// Mean seconds per iteration (same calibration scheme as micro_kernels).
fn measure<O>(mut f: impl FnMut() -> O) -> f64 {
    let t0 = Instant::now();
    black_box(f());
    let one = t0.elapsed().as_secs_f64().max(1e-9);
    let iters = ((0.06 / one).round() as u64).clamp(1, 1_000_000_000);
    let samples = 3;
    let mut total = 0.0;
    for _ in 0..samples {
        let t0 = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        total += t0.elapsed().as_secs_f64() / iters as f64;
    }
    total / samples as f64
}

fn pattern(name: &str, n: usize) -> Vec<f64> {
    match name {
        // One value for the whole step: a single cross-segment run.
        "constant" => vec![42.0; n],
        // Spatially smooth field: long same-bin runs with slow drift.
        "smooth" => (0..n)
            .map(|i| (i as f64 * 6.0 / n as f64).sin() * 50.0)
            .collect(),
        // Plateaus of ~8 segments with occasional mixed seams.
        "step_runs" => (0..n)
            .map(|i| ((i / 248) % 37) as f64 * 2.7 - 40.0)
            .collect(),
        // LCG noise over the full range: every segment is mixed.
        "uniform_random" => {
            let mut state = 0x9e3779b97f4a7c15u64;
            (0..n)
                .map(|_| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    (state >> 11) as f64 / (1u64 << 53) as f64 * 100.0 - 50.0
                })
                .collect()
        }
        _ => unreachable!("unknown pattern {name}"),
    }
}

fn main() {
    let smoke = std::env::var("IBIS_GEN_SMOKE").is_ok_and(|v| v == "1");
    let n: usize = if smoke { 1 << 16 } else { 1 << 20 };
    let patterns = ["constant", "smooth", "step_runs", "uniform_random"];
    let bin_counts = [32usize, 256];

    let mut samples = String::new();
    let mut speedups: Vec<(String, f64, f64)> = Vec::new();
    let total = patterns.len() * bin_counts.len();
    let mut k = 0;
    for pat in patterns {
        let data = pattern(pat, n);
        for nbins in bin_counts {
            let binner = Binner::fixed_width(-55.0, 55.0, nbins);

            // Sanity: the timed fast path must match the scalar oracle.
            let fast = BitmapIndex::build(&data, binner.clone());
            let slow = BitmapIndex::build_scalar(&data, binner.clone());
            for b in 0..nbins {
                assert_eq!(fast.bin(b), slow.bin(b), "{pat}/{nbins}: bin {b} diverged");
            }

            let scalar_s = measure(|| BitmapIndex::build_scalar(black_box(&data), binner.clone()));
            let batched_s = measure(|| BitmapIndex::build(black_box(&data), binner.clone()));
            let parallel_s = measure(|| build_index_parallel(black_box(&data), binner.clone()));

            let meps = |s: f64| n as f64 / s / 1e6;
            let b_speed = scalar_s / batched_s;
            let p_speed = scalar_s / parallel_s;
            println!(
                "generation: {pat:<15} nbins={nbins:<4} scalar {:.1} Me/s  batched {:.1} Me/s ({b_speed:.2}x)  parallel {:.1} Me/s ({p_speed:.2}x)",
                meps(scalar_s),
                meps(batched_s),
                meps(parallel_s),
            );
            k += 1;
            samples.push_str(&format!(
                "    {{\"pattern\": \"{pat}\", \"nbins\": {nbins}, \
                 \"scalar_s\": {scalar_s:e}, \"batched_s\": {batched_s:e}, \"parallel_s\": {parallel_s:e}, \
                 \"scalar_melems_per_s\": {:.2}, \"batched_melems_per_s\": {:.2}, \"parallel_melems_per_s\": {:.2}, \
                 \"batched_over_scalar_speedup\": {b_speed:.3}, \"parallel_over_scalar_speedup\": {p_speed:.3}}}{}\n",
                meps(scalar_s),
                meps(batched_s),
                meps(parallel_s),
                if k == total { "" } else { "," }
            ));
            speedups.push((format!("{pat}/{nbins}"), b_speed, p_speed));
        }
    }

    // Acceptance summary: ≥2x batched on the coherent patterns, no
    // >5% regression on uniform_random. Asserted in the report, not the
    // process — a loaded CI host can blow any wall-clock ratio.
    let min_coherent = speedups
        .iter()
        .filter(|(k, ..)| k.starts_with("constant") || k.starts_with("smooth"))
        .map(|&(_, b, _)| b)
        .fold(f64::INFINITY, f64::min);
    let min_random = speedups
        .iter()
        .filter(|(k, ..)| k.starts_with("uniform_random"))
        .map(|&(_, b, _)| b)
        .fold(f64::INFINITY, f64::min);
    let coherent_ok = min_coherent >= 2.0;
    let random_ok = min_random >= 0.95;
    println!(
        "generation: min coherent speedup {min_coherent:.2}x (>=2x: {coherent_ok}); \
         min uniform_random {min_random:.2}x (>=0.95x: {random_ok})"
    );

    let threads = rayon::current_num_threads();
    let out = format!(
        "{{\n  \"workload\": \"index build, {n} elements, pattern x nbins x build mode\",\n  \
         \"n\": {n},\n  \"rayon_threads\": {threads},\n  \"samples\": [\n{samples}  ],\n  \
         \"min_coherent_batched_speedup\": {min_coherent:.3},\n  \
         \"coherent_over_2x_target\": {coherent_ok},\n  \
         \"min_uniform_random_batched_speedup\": {min_random:.3},\n  \
         \"uniform_random_within_5pct_target\": {random_ok}\n}}\n"
    );
    let path = if smoke {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../target/BENCH_generation.smoke.json"
        )
    } else {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_generation.json")
    };
    std::fs::write(path, out).expect("write BENCH_generation report");
    println!("generation: wrote {path}");
}
