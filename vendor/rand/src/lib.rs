//! Minimal `rand` 0.8 shim.
//!
//! Provides `rngs::StdRng`, `SeedableRng::seed_from_u64`, and
//! `Rng::gen_range` over numeric ranges — the full surface this workspace
//! uses. The generator is SplitMix64: deterministic per seed, statistically
//! solid for simulation seeding, and dependency-free. The stream differs
//! from upstream `StdRng` (ChaCha12), which is fine here: all consumers
//! only require per-seed reproducibility, never a specific stream.

use std::ops::Range;

/// Low-level entropy source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, matching the subset of `rand::SeedableRng` used.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open). Panics on empty ranges.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Range types that [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform sample.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift bounded sampling (Lemire); bias is
                // negligible for the span sizes used here.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, i64, i32);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn reproducible_by_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f = rng.gen_range(0.2..0.8);
            assert!((0.2..0.8).contains(&f));
            let i = rng.gen_range(3usize..9);
            assert!((3..9).contains(&i));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<usize> = (0..16).map(|_| a.gen_range(0usize..1_000_000)).collect();
        let vb: Vec<usize> = (0..16).map(|_| b.gen_range(0usize..1_000_000)).collect();
        assert_ne!(va, vb);
    }
}
