//! A byte-aligned run-length bitmap code in the style of BBC
//! (Antoshenkov '95), the other compression family the paper cites
//! alongside WAH: byte granularity compresses better (no 31-bit rounding,
//! 1-byte headers), while word-aligned WAH trades space for faster bitwise
//! operations. The codec-comparison bench quantifies the tradeoff on our
//! workloads.
//!
//! Encoding: a stream of 1-byte headers.
//!
//! * `1 f nnnnnn` — a fill of `nnnnnn` (1–63) bytes of `f`-bits.
//! * `0 nnnnnnn` — `nnnnnnn` (1–127) literal bytes follow verbatim.
//!
//! A trailing partial byte is stored as a literal (its bit count comes from
//! the vector's stored length). This is a faithful simplification of BBC —
//! full BBC additionally packs "odd bit" positions into headers, which
//! improves sparse cases further but does not change the comparison's
//! shape.

/// A byte-aligned compressed bitvector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BbcVec {
    bytes: Vec<u8>,
    len_bits: u64,
}

const FILL_FLAG: u8 = 0x80;
const FILL_BIT: u8 = 0x40;
const FILL_MAX: usize = 0x3F; // 63 bytes per fill header
const LIT_MAX: usize = 0x7F; // 127 bytes per literal header

impl BbcVec {
    /// Builds from an iterator of bits.
    pub fn from_bits<I: IntoIterator<Item = bool>>(bits: I) -> Self {
        // gather into bytes first (LSB-first within a byte, as in WAH)
        let mut raw = Vec::new();
        let mut cur = 0u8;
        let mut n = 0u64;
        for bit in bits {
            if bit {
                cur |= 1 << (n % 8);
            }
            n += 1;
            if n.is_multiple_of(8) {
                raw.push(cur);
                cur = 0;
            }
        }
        let tail_bits = (n % 8) as usize;
        if tail_bits > 0 {
            raw.push(cur);
        }
        // encode whole bytes (a partial tail byte is always literal)
        let whole = if tail_bits > 0 {
            raw.len() - 1
        } else {
            raw.len()
        };
        let mut bytes = Vec::new();
        let mut i = 0;
        while i < whole {
            let b = raw[i];
            if b == 0x00 || b == 0xFF {
                let mut run = 1;
                while i + run < whole && raw[i + run] == b && run < FILL_MAX {
                    run += 1;
                }
                let mut header = FILL_FLAG | run as u8;
                if b == 0xFF {
                    header |= FILL_BIT;
                }
                bytes.push(header);
                i += run;
            } else {
                let start = i;
                while i < whole && raw[i] != 0x00 && raw[i] != 0xFF && i - start < LIT_MAX {
                    i += 1;
                }
                bytes.push((i - start) as u8);
                bytes.extend_from_slice(&raw[start..i]);
            }
        }
        if tail_bits > 0 {
            bytes.push(1u8); // literal header for the tail byte
            bytes.push(raw[whole]);
        }
        BbcVec { bytes, len_bits: n }
    }

    /// Number of bits.
    pub fn len(&self) -> u64 {
        self.len_bits
    }

    /// `true` when the vector holds zero bits.
    pub fn is_empty(&self) -> bool {
        self.len_bits == 0
    }

    /// Compressed size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.bytes.len() + std::mem::size_of::<BbcVec>()
    }

    /// Iterates the decoded bytes (the final byte may be partial; the
    /// caller masks by `len`).
    fn iter_bytes(&self) -> BbcBytes<'_> {
        BbcBytes {
            bytes: &self.bytes,
            pos: 0,
            pending: Pending::None,
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u64 {
        let mut total = 0u64;
        let mut bit = 0u64;
        let mut it = self.iter_bytes();
        while let Some(b) = it.next_byte() {
            let width = (self.len_bits - bit).min(8);
            let mask = if width == 8 { 0xFF } else { (1u8 << width) - 1 };
            total += (b & mask).count_ones() as u64;
            bit += width;
        }
        total
    }

    /// Decompresses into bools.
    pub fn to_bools(&self) -> Vec<bool> {
        let mut out = Vec::with_capacity(self.len_bits as usize);
        let mut it = self.iter_bytes();
        while let Some(b) = it.next_byte() {
            for j in 0..8 {
                if (out.len() as u64) < self.len_bits {
                    out.push(b & (1 << j) != 0);
                }
            }
        }
        out
    }

    /// `popcount(self AND other)` via a byte-wise decode merge.
    pub fn and_count(&self, other: &BbcVec) -> u64 {
        assert_eq!(self.len_bits, other.len_bits, "length mismatch");
        let mut total = 0u64;
        let mut bit = 0u64;
        let mut ia = self.iter_bytes();
        let mut ib = other.iter_bytes();
        while let (Some(a), Some(b)) = (ia.next_byte(), ib.next_byte()) {
            let width = (self.len_bits - bit).min(8);
            let mask = if width == 8 { 0xFF } else { (1u8 << width) - 1 };
            total += (a & b & mask).count_ones() as u64;
            bit += width;
        }
        total
    }
}

enum Pending {
    None,
    Fill { byte: u8, left: usize },
    Literal { left: usize },
}

struct BbcBytes<'a> {
    bytes: &'a [u8],
    pos: usize,
    pending: Pending,
}

impl BbcBytes<'_> {
    fn next_byte(&mut self) -> Option<u8> {
        loop {
            match &mut self.pending {
                Pending::Fill { byte, left } => {
                    if *left > 0 {
                        *left -= 1;
                        return Some(*byte);
                    }
                    self.pending = Pending::None;
                }
                Pending::Literal { left } => {
                    if *left > 0 {
                        *left -= 1;
                        let b = self.bytes[self.pos];
                        self.pos += 1;
                        return Some(b);
                    }
                    self.pending = Pending::None;
                }
                Pending::None => {
                    let header = *self.bytes.get(self.pos)?;
                    self.pos += 1;
                    self.pending = if header & FILL_FLAG != 0 {
                        let byte = if header & FILL_BIT != 0 { 0xFF } else { 0x00 };
                        Pending::Fill {
                            byte,
                            left: (header & 0x3F) as usize,
                        }
                    } else {
                        Pending::Literal {
                            left: header as usize,
                        }
                    };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WahVec;

    fn patterns() -> Vec<Vec<bool>> {
        vec![
            vec![],
            vec![true],
            vec![false; 7],
            vec![true; 8],
            vec![true; 1000],
            (0..100).map(|i| i % 3 == 0).collect(),
            (0..511).map(|i| i > 200 && i < 300).collect(),
            (0..4096).map(|i| (i * 31) % 97 < 5).collect(),
        ]
    }

    #[test]
    fn roundtrip() {
        for bits in patterns() {
            let v = BbcVec::from_bits(bits.iter().copied());
            assert_eq!(v.len(), bits.len() as u64);
            assert_eq!(v.to_bools(), bits, "len {}", bits.len());
        }
    }

    #[test]
    fn count_matches_naive() {
        for bits in patterns() {
            let v = BbcVec::from_bits(bits.iter().copied());
            let want = bits.iter().filter(|&&b| b).count() as u64;
            assert_eq!(v.count_ones(), want);
        }
    }

    #[test]
    fn and_count_matches_wah() {
        let a_bits: Vec<bool> = (0..3000).map(|i| (i / 100) % 3 == 0).collect();
        let b_bits: Vec<bool> = (0..3000).map(|i| (i / 70) % 4 == 0).collect();
        let ba = BbcVec::from_bits(a_bits.iter().copied());
        let bb = BbcVec::from_bits(b_bits.iter().copied());
        let wa = WahVec::from_bits(a_bits.iter().copied());
        let wb = WahVec::from_bits(b_bits.iter().copied());
        assert_eq!(ba.and_count(&bb), wa.and_count(&wb));
    }

    #[test]
    fn long_fills_are_tiny() {
        let v = BbcVec::from_bits((0..1_000_000).map(|_| false));
        // 125000 zero bytes / 63 per header ≈ 1985 headers
        assert!(v.size_bytes() < 2100, "{}", v.size_bytes());
    }

    #[test]
    fn byte_alignment_beats_wah_on_short_runs() {
        // runs of ~40 bits: too short for 31-bit fills to win, fine for
        // byte fills — the regime where BBC-style coding is denser
        let bits: Vec<bool> = (0..100_000).map(|i| (i / 40) % 2 == 0).collect();
        let bbc = BbcVec::from_bits(bits.iter().copied());
        let wah = WahVec::from_bits(bits.iter().copied());
        assert!(
            bbc.size_bytes() < wah.size_bytes(),
            "bbc {} vs wah {}",
            bbc.size_bytes(),
            wah.size_bytes()
        );
    }

    #[test]
    fn long_literal_stretch_crosses_header_limit() {
        // >127 consecutive non-fill bytes force multiple literal headers
        let bits: Vec<bool> = (0..8 * 300).map(|i| i % 7 < 3).collect();
        let v = BbcVec::from_bits(bits.iter().copied());
        assert_eq!(v.to_bools(), bits);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn and_count_length_mismatch() {
        let a = BbcVec::from_bits((0..8).map(|_| true));
        let b = BbcVec::from_bits((0..9).map(|_| true));
        let _ = a.and_count(&b);
    }
}
