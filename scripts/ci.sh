#!/usr/bin/env bash
# Local CI gate: formatting, lints (warnings are errors), and the full
# workspace test suite — in both kernel configurations.
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, all targets, -D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo clippy (ibis-insitu non-test code: no unwrap/expect)"
# Lints only the plain lib target: #[cfg(test)] modules are not compiled,
# so the crate-level deny(clippy::unwrap_used, clippy::expect_used) in
# crates/insitu/src/lib.rs gates exactly the non-test code.
cargo clippy -p ibis-insitu --lib -- -D warnings

echo "==> cargo test (workspace)"
cargo test -q --workspace

echo "==> cargo test (fault-injection + crash/resume suites, default kernels)"
cargo test -q -p ibis-insitu --test fault_injection --test crash_resume

echo "==> cargo test (ibis-core with legacy-kernels, for the A/B sweep)"
cargo test -q -p ibis-core --features legacy-kernels

echo "==> cargo test (fault suite against legacy kernels)"
cargo test -q -p ibis-insitu --features ibis-core/legacy-kernels \
    --test fault_injection --test crash_resume

echo "CI OK"
