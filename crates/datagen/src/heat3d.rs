//! Heat3D: 3-D heat diffusion on a regular mesh — the paper's first
//! evaluation workload ("developed to estimate the effect of different
//! geologic structures on heat flow"; the variable generated is
//! temperature).
//!
//! A Jacobi stencil advances the temperature field; a time-varying heat
//! source at the bottom plate keeps the value distribution evolving so that
//! time-steps genuinely differ in information content (which is what the
//! time-step selector must detect). The sweep is rayon-parallel over z-slabs
//! and the problem can also be block-partitioned along z for the cluster
//! experiment, with explicit halo planes exchanged between partitions.

use crate::field::{Field, StepOutput};
use crate::Simulation;
use rayon::prelude::*;

/// Configuration for a [`Heat3D`] run.
#[derive(Debug, Clone)]
pub struct Heat3DConfig {
    /// Mesh extent in x (fastest-varying), y, z.
    pub nx: usize,
    /// Mesh extent in y.
    pub ny: usize,
    /// Mesh extent in z (slowest-varying; the cluster partition axis).
    pub nz: usize,
    /// Diffusion coefficient (stability requires `alpha <= 1/6`).
    pub alpha: f64,
    /// Jacobi sweeps per output time-step.
    pub sweeps_per_step: usize,
    /// Peak temperature of the bottom-plate source.
    pub source_peak: f64,
    /// Source modulation period, in output steps.
    pub source_period: f64,
}

impl Default for Heat3DConfig {
    fn default() -> Self {
        Heat3DConfig {
            nx: 48,
            ny: 48,
            nz: 48,
            alpha: 0.12,
            sweeps_per_step: 2,
            source_peak: 100.0,
            source_period: 40.0,
        }
    }
}

impl Heat3DConfig {
    /// A small configuration for tests.
    pub fn tiny() -> Self {
        Heat3DConfig {
            nx: 12,
            ny: 12,
            nz: 12,
            ..Default::default()
        }
    }

    /// Elements per time-step.
    pub fn num_elements(&self) -> usize {
        self.nx * self.ny * self.nz
    }
}

/// The Heat3D simulation over the whole mesh (single node).
#[derive(Debug, Clone)]
pub struct Heat3D {
    cfg: Heat3DConfig,
    t: Vec<f64>,
    t_next: Vec<f64>,
    step: usize,
}

impl Heat3D {
    /// Initializes the field at ambient temperature with the source applied.
    pub fn new(cfg: Heat3DConfig) -> Self {
        let n = cfg.num_elements();
        let mut sim = Heat3D {
            cfg,
            t: vec![0.0; n],
            t_next: vec![0.0; n],
            step: 0,
        };
        sim.apply_source();
        sim
    }

    /// The configuration.
    pub fn config(&self) -> &Heat3DConfig {
        &self.cfg
    }

    /// Current temperature field (row-major, x fastest).
    pub fn temperature(&self) -> &[f64] {
        &self.t
    }

    fn source_temp(&self) -> f64 {
        // Slow modulation: early steps heat up, later steps cool — gives the
        // greedy selector distinct phases to pick from.
        let phase = self.step as f64 / self.cfg.source_period * std::f64::consts::TAU;
        self.cfg.source_peak * (0.6 + 0.4 * phase.sin())
    }

    fn apply_source(&mut self) {
        let (nx, ny) = (self.cfg.nx, self.cfg.ny);
        let s = self.source_temp();
        // Heated plate: a disc on the z=0 plane.
        let (cx, cy) = (nx as f64 / 2.0, ny as f64 / 2.0);
        let r2 = (nx.min(ny) as f64 / 3.0).powi(2);
        for j in 0..ny {
            for i in 0..nx {
                let d2 = (i as f64 - cx).powi(2) + (j as f64 - cy).powi(2);
                if d2 <= r2 {
                    self.t[j * nx + i] = s;
                }
            }
        }
    }

    fn sweep(&mut self) {
        let (nx, ny, nz) = (self.cfg.nx, self.cfg.ny, self.cfg.nz);
        let alpha = self.cfg.alpha;
        let plane = nx * ny;
        let t = &self.t;
        self.t_next
            .par_chunks_mut(plane)
            .enumerate()
            .for_each(|(k, out_plane)| {
                for j in 0..ny {
                    for i in 0..nx {
                        let idx = k * plane + j * nx + i;
                        let c = t[idx];
                        let xm = if i > 0 { t[idx - 1] } else { c };
                        let xp = if i + 1 < nx { t[idx + 1] } else { c };
                        let ym = if j > 0 { t[idx - nx] } else { c };
                        let yp = if j + 1 < ny { t[idx + nx] } else { c };
                        let zm = if k > 0 { t[idx - plane] } else { c };
                        let zp = if k + 1 < nz { t[idx + plane] } else { c };
                        out_plane[j * nx + i] = c + alpha * (xm + xp + ym + yp + zm + zp - 6.0 * c);
                    }
                }
            });
        std::mem::swap(&mut self.t, &mut self.t_next);
    }
}

impl Simulation for Heat3D {
    fn step(&mut self) -> StepOutput {
        for _ in 0..self.cfg.sweeps_per_step {
            self.apply_source();
            self.sweep();
        }
        let out = StepOutput {
            step: self.step,
            fields: vec![Field::new("temperature", self.t.clone())],
        };
        self.step += 1;
        out
    }

    fn num_elements(&self) -> usize {
        self.cfg.num_elements()
    }

    fn name(&self) -> &'static str {
        "heat3d"
    }

    fn resident_bytes(&self) -> usize {
        // double-buffered temperature field (the paper's "1 intermediate
        // time-step" plus the current one)
        (self.t.len() + self.t_next.len()) * 8
    }

    fn grid_dims(&self) -> Option<[usize; 3]> {
        // index = (k * ny + j) * nx + i — x fastest
        Some([self.cfg.nz, self.cfg.ny, self.cfg.nx])
    }
}

/// One z-slab of a Heat3D mesh distributed across cluster nodes.
///
/// The owning driver exchanges the boundary planes: before each sweep the
/// partition needs its neighbours' adjacent planes (`set_halo_*`), and it
/// exposes its own boundary planes (`boundary_*`) for them — the MPI
/// communication pattern of the paper's Figure 13 experiment, carried over
/// channels.
#[derive(Debug, Clone)]
pub struct Heat3DPartition {
    cfg: Heat3DConfig,
    /// Global z-range `[z0, z1)` owned by this partition.
    z0: usize,
    z1: usize,
    /// Owned planes plus one halo plane on each interior side.
    t: Vec<f64>,
    t_next: Vec<f64>,
    has_lo_halo: bool,
    has_hi_halo: bool,
    /// Sweeps executed; the source phase advances every
    /// `cfg.sweeps_per_step` sweeps, matching the monolithic simulation's
    /// output-step clock.
    sweeps: usize,
}

impl Heat3DPartition {
    /// Creates the partition owning global planes `[z0, z1)` of `nodes`
    /// total partitions over `cfg.nz`.
    pub fn new(cfg: Heat3DConfig, z0: usize, z1: usize) -> Self {
        assert!(z0 < z1 && z1 <= cfg.nz, "bad z-range {z0}..{z1}");
        let has_lo_halo = z0 > 0;
        let has_hi_halo = z1 < cfg.nz;
        let planes = (z1 - z0) + has_lo_halo as usize + has_hi_halo as usize;
        let n = planes * cfg.nx * cfg.ny;
        let mut p = Heat3DPartition {
            cfg,
            z0,
            z1,
            t: vec![0.0; n],
            t_next: vec![0.0; n],
            has_lo_halo,
            has_hi_halo,
            sweeps: 0,
        };
        p.apply_source();
        p
    }

    /// Splits a mesh into `nodes` contiguous z-slabs.
    pub fn split(cfg: &Heat3DConfig, nodes: usize) -> Vec<Heat3DPartition> {
        assert!(
            nodes >= 1 && nodes <= cfg.nz,
            "cannot split {} planes {nodes} ways",
            cfg.nz
        );
        let base = cfg.nz / nodes;
        let extra = cfg.nz % nodes;
        let mut out = Vec::with_capacity(nodes);
        let mut z = 0;
        for r in 0..nodes {
            let take = base + usize::from(r < extra);
            out.push(Heat3DPartition::new(cfg.clone(), z, z + take));
            z += take;
        }
        out
    }

    fn plane(&self) -> usize {
        self.cfg.nx * self.cfg.ny
    }

    /// Number of owned elements (halos excluded).
    pub fn num_owned(&self) -> usize {
        (self.z1 - self.z0) * self.plane()
    }

    /// The owned z-range.
    pub fn z_range(&self) -> (usize, usize) {
        (self.z0, self.z1)
    }

    fn local_offset(&self, owned_plane: usize) -> usize {
        (owned_plane + self.has_lo_halo as usize) * self.plane()
    }

    /// Lowest owned plane (to send to the lower neighbour).
    pub fn boundary_low(&self) -> Vec<f64> {
        let o = self.local_offset(0);
        self.t[o..o + self.plane()].to_vec()
    }

    /// Highest owned plane (to send to the upper neighbour).
    pub fn boundary_high(&self) -> Vec<f64> {
        let o = self.local_offset(self.z1 - self.z0 - 1);
        self.t[o..o + self.plane()].to_vec()
    }

    /// Installs the lower neighbour's boundary plane as our low halo.
    pub fn set_halo_low(&mut self, plane: &[f64]) {
        assert!(self.has_lo_halo, "partition has no low halo");
        assert_eq!(plane.len(), self.plane());
        self.t[..plane.len()].copy_from_slice(plane);
    }

    /// Installs the upper neighbour's boundary plane as our high halo.
    pub fn set_halo_high(&mut self, plane: &[f64]) {
        assert!(self.has_hi_halo, "partition has no high halo");
        assert_eq!(plane.len(), self.plane());
        let o = self.t.len() - plane.len();
        self.t[o..].copy_from_slice(plane);
    }

    fn apply_source(&mut self) {
        if self.z0 != 0 {
            return; // source lives on the global z=0 plane
        }
        let (nx, ny) = (self.cfg.nx, self.cfg.ny);
        let step = self.sweeps / self.cfg.sweeps_per_step.max(1);
        let phase = step as f64 / self.cfg.source_period * std::f64::consts::TAU;
        let s = self.cfg.source_peak * (0.6 + 0.4 * phase.sin());
        let (cx, cy) = (nx as f64 / 2.0, ny as f64 / 2.0);
        let r2 = (nx.min(ny) as f64 / 3.0).powi(2);
        let o = self.local_offset(0);
        for j in 0..ny {
            for i in 0..nx {
                let d2 = (i as f64 - cx).powi(2) + (j as f64 - cy).powi(2);
                if d2 <= r2 {
                    self.t[o + j * nx + i] = s;
                }
            }
        }
    }

    /// One Jacobi sweep over the owned planes (halos must be current).
    pub fn sweep(&mut self) {
        self.apply_source();
        let (nx, ny) = (self.cfg.nx, self.cfg.ny);
        let plane = self.plane();
        let alpha = self.cfg.alpha;
        let owned = self.z1 - self.z0;
        let lo = self.has_lo_halo as usize;
        let t = &self.t;
        let total_planes = owned + lo + self.has_hi_halo as usize;
        self.t_next[lo * plane..(lo + owned) * plane]
            .par_chunks_mut(plane)
            .enumerate()
            .for_each(|(pk, out_plane)| {
                let k = pk + lo; // local plane index
                for j in 0..ny {
                    for i in 0..nx {
                        let idx = k * plane + j * nx + i;
                        let c = t[idx];
                        let xm = if i > 0 { t[idx - 1] } else { c };
                        let xp = if i + 1 < nx { t[idx + 1] } else { c };
                        let ym = if j > 0 { t[idx - nx] } else { c };
                        let yp = if j + 1 < ny { t[idx + nx] } else { c };
                        let zm = if k > 0 { t[idx - plane] } else { c };
                        let zp = if k + 1 < total_planes {
                            t[idx + plane]
                        } else {
                            c
                        };
                        out_plane[j * nx + i] = c + alpha * (xm + xp + ym + yp + zm + zp - 6.0 * c);
                    }
                }
            });
        // Copy halos across so the next swap keeps them (they will be
        // overwritten by the next exchange anyway).
        if lo == 1 {
            let (head, _) = self.t_next.split_at_mut(plane);
            head.copy_from_slice(&t[..plane]);
        }
        if self.has_hi_halo {
            let o = self.t.len() - plane;
            self.t_next[o..].copy_from_slice(&t[o..]);
        }
        std::mem::swap(&mut self.t, &mut self.t_next);
        self.sweeps += 1;
    }

    /// The owned portion of the temperature field.
    pub fn owned_data(&self) -> Vec<f64> {
        let o = self.local_offset(0);
        self.t[o..o + self.num_owned()].to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_steps_with_expected_shape() {
        let mut sim = Heat3D::new(Heat3DConfig::tiny());
        let s0 = sim.step();
        assert_eq!(s0.step, 0);
        assert_eq!(s0.fields.len(), 1);
        assert_eq!(s0.fields[0].data.len(), 12 * 12 * 12);
        let s1 = sim.step();
        assert_eq!(s1.step, 1);
    }

    #[test]
    fn heat_diffuses_upward() {
        let mut sim = Heat3D::new(Heat3DConfig::tiny());
        for _ in 0..30 {
            sim.step();
        }
        let nx = 12;
        let plane = nx * nx;
        let center = |k: usize| sim.temperature()[k * plane + 6 * nx + 6];
        assert!(center(0) > center(5), "bottom should be hotter than middle");
        assert!(center(5) > 0.0, "heat should have reached the middle");
        assert!(center(0) > center(11), "top coolest");
    }

    #[test]
    fn field_evolves_between_steps() {
        let mut sim = Heat3D::new(Heat3DConfig::tiny());
        let a = sim.step().fields[0].data.clone();
        let b = sim.step().fields[0].data.clone();
        assert_ne!(a, b, "consecutive steps must differ");
    }

    #[test]
    fn values_stay_finite_and_bounded() {
        let cfg = Heat3DConfig::tiny();
        let peak = cfg.source_peak;
        let mut sim = Heat3D::new(cfg);
        for _ in 0..50 {
            let out = sim.step();
            for &v in &out.fields[0].data {
                assert!(v.is_finite());
                assert!((-1.0..=peak * 1.01).contains(&v), "value {v} out of range");
            }
        }
    }

    #[test]
    fn split_covers_mesh() {
        let cfg = Heat3DConfig::tiny();
        for nodes in [1usize, 2, 3, 5] {
            let parts = Heat3DPartition::split(&cfg, nodes);
            assert_eq!(parts.len(), nodes);
            let total: usize = parts.iter().map(Heat3DPartition::num_owned).sum();
            assert_eq!(total, cfg.num_elements());
            assert_eq!(parts[0].z_range().0, 0);
            assert_eq!(parts.last().unwrap().z_range().1, cfg.nz);
        }
    }

    #[test]
    fn partitioned_sweep_matches_monolithic() {
        let cfg = Heat3DConfig {
            nx: 8,
            ny: 8,
            nz: 12,
            sweeps_per_step: 1,
            ..Heat3DConfig::tiny()
        };
        let mut mono = Heat3D::new(cfg.clone());
        let mut parts = Heat3DPartition::split(&cfg, 3);
        for _ in 0..10 {
            // halo exchange then one sweep everywhere
            for p in 0..parts.len() {
                if p > 0 {
                    let b = parts[p - 1].boundary_high();
                    parts[p].set_halo_low(&b);
                }
                if p + 1 < parts.len() {
                    let b = parts[p + 1].boundary_low();
                    parts[p].set_halo_high(&b);
                }
            }
            for p in parts.iter_mut() {
                p.sweep();
            }
            mono.apply_source();
            mono.sweep();
            mono.step += 1;
        }
        let distributed: Vec<f64> = parts.iter().flat_map(|p| p.owned_data()).collect();
        for (i, (a, b)) in mono.temperature().iter().zip(&distributed).enumerate() {
            assert!((a - b).abs() < 1e-12, "element {i}: {a} vs {b}");
        }
    }

    #[test]
    #[should_panic(expected = "no low halo")]
    fn bottom_partition_rejects_low_halo() {
        let cfg = Heat3DConfig::tiny();
        let mut parts = Heat3DPartition::split(&cfg, 2);
        let plane = vec![0.0; cfg.nx * cfg.ny];
        parts[0].set_halo_low(&plane);
    }
}
