//! Ablation bench — run with `cargo bench -p ibis-bench --bench ablation_build`.

fn main() {
    ibis_bench::ablations::ablation_streaming_build();
}
