//! Multivariate bitmap-only analysis on the ocean dataset: the Section 2.2
//! capabilities — correlation queries, subgroup discovery, approximate
//! aggregation, and incomplete-data imputation — all computed from indices
//! after the raw fields are gone.
//!
//! ```text
//! cargo run --release --example multivariate_analysis
//! ```

use ibis::analysis::{
    aggregate, correlation_query, discover_subgroups, impute_from, ImputeStrategy, MaskedIndex,
    SubgroupConfig, SubsetQuery,
};
use ibis::core::{Binner, BitmapIndex};
use ibis::datagen::{OceanConfig, OceanModel};

fn main() {
    let cfg = OceanConfig {
        nlon: 128,
        nlat: 96,
        ndepth: 4,
        ..Default::default()
    };
    let ocean = OceanModel::new(cfg.clone());
    println!(
        "ocean {}x{}x{} — indexing 4 variables, then discarding the data\n",
        cfg.nlon, cfg.nlat, cfg.ndepth
    );

    let vars = ["temperature", "salinity", "oxygen", "nitrate"];
    let raw: Vec<Vec<f64>> = vars.iter().map(|v| ocean.variable(v)).collect();
    let indices: Vec<BitmapIndex> = raw
        .iter()
        .map(|d| BitmapIndex::build(d, Binner::fit(d, 48)))
        .collect();
    let raw_mb: f64 = raw.iter().map(|d| d.len() * 8).sum::<usize>() as f64 / 1e6;
    let idx_mb: f64 = indices.iter().map(|i| i.size_bytes()).sum::<usize>() as f64 / 1e6;
    println!("raw fields {raw_mb:.1} MB  →  indices {idx_mb:.2} MB\n");

    // --- correlation queries (Section 4.1) ---
    println!("correlation queries:");
    for (a, b) in [(0usize, 1usize), (0, 2), (0, 3)] {
        let ans = correlation_query(
            &indices[a],
            &indices[b],
            &SubsetQuery::all(),
            &SubsetQuery::all(),
        )
        .expect("well-formed query");
        println!(
            "  {:<12} x {:<10} MI {:>6.3} bits   r ≈ {:+.3}",
            vars[a],
            vars[b],
            ans.mutual_information,
            ans.pearson.unwrap_or(f64::NAN)
        );
    }
    // restricted to the warm surface waters only
    let warm = correlation_query(
        &indices[0],
        &indices[1],
        &SubsetQuery::value(18.0, 30.0),
        &SubsetQuery::all(),
    )
    .expect("well-formed query");
    println!(
        "  temp∈[18,30) x salinity   MI {:>6.3} bits over {} cells\n",
        warm.mutual_information, warm.selected
    );

    // --- subgroup discovery: where is oxygen anomalously low? ---
    let sg = discover_subgroups(
        &[&indices[0], &indices[3]], // descriptors: temperature, nitrate
        &indices[2],                 // target: oxygen
        &SubgroupConfig {
            bins_per_condition: 6,
            top_k: 3,
            ..Default::default()
        },
    );
    let pop_o2 = aggregate::mean(&indices[2]).unwrap();
    println!(
        "subgroups with anomalous oxygen (population mean {:.2}):",
        pop_o2.value
    );
    for s in &sg {
        let desc: Vec<String> = s
            .conditions
            .iter()
            .map(|c| {
                let d = &indices[[0, 3][c.var.min(1)]];
                let name = [vars[0], vars[3]][c.var.min(1)];
                let (lo, _) = d.binner().bin_range(c.bin_lo);
                let (_, hi) = d.binner().bin_range(c.bin_hi);
                format!("{name}∈[{lo:.1},{hi:.1})")
            })
            .collect();
        println!(
            "  {:<46} coverage {:>6}  mean O2 {:>5.2}  quality {:.3}",
            desc.join(" ∧ "),
            s.coverage,
            s.target_mean,
            s.quality
        );
    }

    // --- incomplete data: drop 25% of salinity, rebuild it from temperature ---
    let n = raw[1].len();
    let present: Vec<bool> = (0..n)
        .map(|i| (i.wrapping_mul(2654435761) >> 11) % 4 != 0)
        .collect();
    let masked = MaskedIndex::build(&raw[1], &present, Binner::fit(&raw[1], 48));
    let imputed = impute_from(&masked, &indices[0], ImputeStrategy::ConditionalMean);
    let mut err = 0.0;
    for im in &imputed {
        err += (im.value - raw[1][im.position as usize]).powi(2);
    }
    let rmse = (err / imputed.len() as f64).sqrt();
    let spread = {
        let mean = raw[1].iter().sum::<f64>() / n as f64;
        (raw[1].iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64).sqrt()
    };
    println!(
        "\nimputed {} missing salinity cells from temperature: RMSE {:.3} psu (field σ = {:.3})",
        imputed.len(),
        rmse,
        spread
    );
    assert!(rmse < spread, "imputation must beat the field's own spread");
}
