//! Crash/resume regression for the durable pipeline, on the Ocean model:
//! a run killed mid-flight and resumed must leave a store byte-identical
//! to an uninterrupted run's, and corruption on disk must be detected,
//! quarantined, and excluded from analysis.

use ibis_analysis::Metric;
use ibis_core::RowOrder;
use ibis_datagen::{OceanConfig, OceanModel};
use ibis_insitu::{
    pipeline::pending_checkpoint, resume_durable, run_durable, CoreAllocation, FaultPlan,
    IbisError, MachineModel, PipelineConfig, Reduction, RobustnessConfig, ScalingModel, Store,
};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

fn ocean() -> OceanConfig {
    OceanConfig::tiny()
}

fn cfg() -> PipelineConfig {
    PipelineConfig {
        machine: MachineModel::xeon32(),
        cores: 4,
        allocation: CoreAllocation::Shared,
        reduction: Reduction::Bitmaps,
        steps: 11,
        select_k: 4,
        metric: Metric::ConditionalEntropy,
        binners: Vec::new(),
        per_step_precision: Some(0),
        row_order: RowOrder::Identity,
        queue_capacity: 2,
        sim_scaling: ScalingModel::heat3d(),
        robustness: RobustnessConfig::default(),
    }
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ibis-crash-resume-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Every durable artifact in the directory, name → bytes. A finished run
/// leaves only blobs and the manifest; anything else (checkpoint, journal,
/// temp files) would be a cleanup bug and makes the comparison fail.
fn dir_contents(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    for entry in std::fs::read_dir(dir).expect("read store dir") {
        let entry = entry.expect("dir entry");
        let name = entry.file_name().to_string_lossy().into_owned();
        out.insert(name, std::fs::read(entry.path()).expect("read file"));
    }
    out
}

#[test]
fn killed_run_resumes_to_byte_identical_store() {
    let clean_dir = tmp("clean");
    let crash_dir = tmp("crash");

    // the uninterrupted reference run
    let clean = run_durable(OceanModel::new(ocean()), &cfg(), &clean_dir).unwrap();
    assert_eq!(clean.selected.len(), 4);
    assert!(pending_checkpoint(&clean_dir).is_none());

    // the same run, killed mid-flight by the fault plan
    let mut killed_cfg = cfg();
    killed_cfg.robustness.faults = FaultPlan::none().with_kill_at_step(6);
    let err = run_durable(OceanModel::new(ocean()), &killed_cfg, &crash_dir).unwrap_err();
    assert_eq!(err, IbisError::Killed { step: 6 });
    assert!(
        pending_checkpoint(&crash_dir).is_some(),
        "a killed run must leave its checkpoint behind"
    );

    // resume with the kill removed from the plan
    let resumed = resume_durable(OceanModel::new(ocean()), &cfg(), &crash_dir).unwrap();
    assert_eq!(
        resumed.selected, clean.selected,
        "selection must survive the crash"
    );
    assert_eq!(resumed.bytes_written, clean.bytes_written);
    assert!(
        pending_checkpoint(&crash_dir).is_none(),
        "checkpoint must be retired"
    );

    // the store itself — every file, every byte
    assert_eq!(
        dir_contents(&clean_dir),
        dir_contents(&crash_dir),
        "resumed store must be byte-identical to the uninterrupted one"
    );

    // both stores load and agree
    let a = Store::open(&clean_dir).unwrap();
    let b = Store::open(&crash_dir).unwrap();
    assert_eq!(a.steps(), b.steps());
    assert_eq!(a.steps(), clean.selected);

    std::fs::remove_dir_all(&clean_dir).ok();
    std::fs::remove_dir_all(&crash_dir).ok();
}

#[test]
fn resume_on_fresh_directory_is_a_fresh_run() {
    let a = tmp("fresh-a");
    let b = tmp("fresh-b");
    let r1 = run_durable(OceanModel::new(ocean()), &cfg(), &a).unwrap();
    // no checkpoint in `b`, so resume falls back to a clean start
    let r2 = resume_durable(OceanModel::new(ocean()), &cfg(), &b).unwrap();
    assert_eq!(r1.selected, r2.selected);
    assert_eq!(dir_contents(&a), dir_contents(&b));
    std::fs::remove_dir_all(&a).ok();
    std::fs::remove_dir_all(&b).ok();
}

#[test]
fn flipped_byte_is_quarantined_and_excluded_from_series() {
    let dir = tmp("fsck");
    let report = run_durable(OceanModel::new(ocean()), &cfg(), &dir).unwrap();
    let victim = report.selected[1];

    // corrupt one payload byte of one temperature blob
    let file = dir.join(format!("s{victim:06}_temperature.ibis"));
    let mut bytes = std::fs::read(&file).expect("blob exists");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&file, &bytes).unwrap();

    let mut store = Store::open(&dir).unwrap();
    let fsck = store.fsck();
    assert_eq!(fsck.quarantined.len(), 1, "exactly the flipped blob");
    assert_eq!(fsck.quarantined[0].step, victim);
    assert_eq!(fsck.quarantined[0].variable, "temperature");
    assert!(dir
        .join(format!("s{victim:06}_temperature.ibis.quarantined"))
        .exists());

    // reads now see only intact data
    let series = store.load_series("temperature").unwrap();
    let steps: Vec<usize> = series.iter().map(|(s, _)| *s).collect();
    let expected: Vec<usize> = report
        .selected
        .iter()
        .copied()
        .filter(|&s| s != victim)
        .collect();
    assert_eq!(steps, expected, "corrupt step must drop out of the series");
    assert!(matches!(
        store.get(victim, "temperature"),
        Err(IbisError::NotFound { .. })
    ));
    // untouched variables are unaffected
    assert_eq!(store.load_series("salinity").unwrap().len(), 4);

    std::fs::remove_dir_all(&dir).ok();
}
