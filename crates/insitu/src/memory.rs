//! Memory accounting for the in-situ pipeline (the Figure 11 measurement).
//!
//! Tracks the bytes the analysis holds resident — raw step arrays, bitmap
//! summaries, queue contents — as they are allocated and freed. Thread-safe
//! so the Separate-Cores pipeline's producer and consumer can both charge
//! it.

use std::sync::atomic::{AtomicU64, Ordering};

/// A live/peak byte counter.
#[derive(Debug, Default)]
pub struct MemoryTracker {
    current: AtomicU64,
    peak: AtomicU64,
}

impl MemoryTracker {
    /// A fresh tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges `bytes` of newly resident data.
    pub fn alloc(&self, bytes: u64) {
        let now = self.current.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.peak.fetch_max(now, Ordering::Relaxed);
    }

    /// Releases `bytes`.
    ///
    /// # Panics
    /// Panics if more is freed than was allocated (an accounting bug).
    pub fn free(&self, bytes: u64) {
        let prev = self.current.fetch_sub(bytes, Ordering::Relaxed);
        assert!(
            prev >= bytes,
            "memory tracker underflow: freeing {bytes} of {prev}"
        );
    }

    /// Bytes currently resident.
    pub fn current(&self) -> u64 {
        self.current.load(Ordering::Relaxed)
    }

    /// High-water mark.
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_current_and_peak() {
        let m = MemoryTracker::new();
        m.alloc(100);
        m.alloc(50);
        assert_eq!(m.current(), 150);
        m.free(100);
        assert_eq!(m.current(), 50);
        m.alloc(10);
        assert_eq!(m.peak(), 150, "peak keeps the high-water mark");
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_is_a_bug() {
        let m = MemoryTracker::new();
        m.alloc(10);
        m.free(11);
    }

    #[test]
    fn concurrent_charging() {
        let m = std::sync::Arc::new(MemoryTracker::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        m.alloc(3);
                        m.free(3);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.current(), 0);
        assert!(m.peak() >= 3);
    }
}
