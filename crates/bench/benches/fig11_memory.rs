//! Regenerates the paper's Figure 11 — run with
//! `cargo bench -p ibis-bench --bench fig11_memory`.

fn main() {
    ibis_bench::figures::fig11();
}
