//! A minimal, total JSON reader/writer for the query batch protocol.
//!
//! The engine's wire format is JSON but the workspace deliberately carries
//! no external dependencies, so this module implements the subset the
//! protocol needs by hand — the same philosophy as `ibis-obs`'s hand-rolled
//! snapshot writer. Parsing is **total**: any byte sequence yields either a
//! [`Json`] value or a positioned [`JsonError`], never a panic, and nesting
//! depth is capped so an adversarial `[[[[…` cannot overflow the stack.
//!
//! Numbers are `f64` (ample for steps, positions, and value bounds).
//! Strict JSON cannot express NaN/Infinity and neither can this parser;
//! non-finite query bounds are only reachable through the typed engine API,
//! where they flow into [`ibis_analysis::QueryError::NanBound`].

use std::fmt;

/// Maximum nesting depth accepted by [`parse`].
const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (escapes resolved).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (duplicate keys keep the last value).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (last occurrence wins, like serde).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Where and why parsing stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the offending input.
    pub at: usize,
    /// What was wrong there.
    pub reason: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.reason)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document (trailing whitespace allowed, nothing else).
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after the document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, reason: impl Into<String>) -> JsonError {
        JsonError {
            at: self.pos,
            reason: reason.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected {word:?}")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH}")));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogates are rejected rather than paired —
                            // the protocol's strings are ASCII identifiers.
                            let c = char::from_u32(hex)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // consume one UTF-8 scalar (input is &str, so slicing
                    // on char boundaries is safe)
                    let rest = &self.bytes[self.pos..];
                    let step = match rest[0] {
                        b if b < 0x80 => 1,
                        b if b >= 0xF0 => 4,
                        b if b >= 0xE0 => 3,
                        _ => 2,
                    }
                    .min(rest.len());
                    match std::str::from_utf8(&rest[..step]) {
                        Ok(s) => out.push_str(s),
                        Err(_) => return Err(self.err("invalid UTF-8 in string")),
                    }
                    self.pos += step;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        let n: f64 = text.parse().map_err(|_| self.err("invalid number"))?;
        if !n.is_finite() {
            return Err(self.err("number overflows f64"));
        }
        Ok(Json::Num(n))
    }
}

/// Escapes a string for embedding in JSON output.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders an `f64` as a JSON number token (`null` for non-finite values,
/// which strict JSON cannot express).
pub fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_protocol_shapes() {
        let doc = parse(
            r#"{"queries": [
                {"kind": "subset", "step": 3, "variable": "temp_a",
                 "value_range": [2.5, 5.0], "region": [0, 1000]},
                {"kind": "correlation", "var_a": "x", "var_b": "y"}
            ]}"#,
        )
        .unwrap();
        let queries = doc.get("queries").unwrap().as_arr().unwrap();
        assert_eq!(queries.len(), 2);
        assert_eq!(queries[0].get("step").unwrap().as_num(), Some(3.0));
        assert_eq!(queries[0].get("kind").unwrap().as_str(), Some("subset"));
        let vr = queries[0].get("value_range").unwrap().as_arr().unwrap();
        assert_eq!(vr[0].as_num(), Some(2.5));
        assert!(queries[1].get("missing").is_none());
    }

    #[test]
    fn scalars_and_escapes() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("-1.5e3").unwrap(), Json::Num(-1500.0));
        assert_eq!(
            parse(r#""a\"b\n\u0041""#).unwrap(),
            Json::Str("a\"b\nA".into())
        );
        assert_eq!(parse(r#""héllo""#).unwrap(), Json::Str("héllo".into()));
        assert_eq!(escape("a\"b\nc"), "a\\\"b\\nc");
        assert_eq!(num(1.5), "1.5");
        assert_eq!(num(f64::NAN), "null");
    }

    #[test]
    fn duplicate_keys_keep_the_last() {
        let doc = parse(r#"{"a": 1, "a": 2}"#).unwrap();
        assert_eq!(doc.get("a").unwrap().as_num(), Some(2.0));
    }

    #[test]
    fn adversarial_inputs_error_cleanly() {
        for bad in [
            "",
            "{",
            "[1,",
            "[1 2]",
            r#"{"a" 1}"#,
            r#"{"a": }"#,
            "nul",
            "truex",
            "1e999",       // overflows f64
            "\"\\u12\"",   // short unicode escape
            "\"\\uD800\"", // lone surrogate
            "\"unterminated",
            "\"ctrl \u{1} char\"",
            "01x",
            "- 1",
            "[]extra",
            "NaN",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} must not parse");
        }
        // a 1000-deep array must be rejected, not overflow the stack
        let deep = "[".repeat(1000) + &"]".repeat(1000);
        let err = parse(&deep).unwrap_err();
        assert!(err.reason.contains("nesting"), "{err}");
    }

    #[test]
    fn deeply_nested_but_legal_documents_parse() {
        let depth = 40;
        let doc = "[".repeat(depth) + "7" + &"]".repeat(depth);
        let mut v = parse(&doc).unwrap();
        for _ in 0..depth {
            v = v.as_arr().unwrap()[0].clone();
        }
        assert_eq!(v, Json::Num(7.0));
    }
}
