//! Regenerates the paper's Figure 12 — run with
//! `cargo bench -p ibis-bench --bench fig12_core_allocation`.

fn main() {
    ibis_bench::figures::fig12();
}
