//! Criterion micro-benchmarks for the compute kernels — WAH construction,
//! logical operations, metric kernels, the mining inner loop — plus the
//! **adaptive-kernel sweep**: density × codec × kernel, adaptive vs the
//! legacy closure-generic path (`legacy-kernels` feature), persisted to
//! `BENCH_kernels.json` at the repository root.
//!
//! Run with `IBIS_SWEEP_ONLY=1` to emit the JSON without the (slower)
//! criterion groups.

use criterion::{criterion_group, BenchmarkId, Criterion};
use ibis_analysis::emd::{emd_spatial_full, emd_spatial_index};
use ibis_analysis::entropy::{conditional_entropy_full, conditional_entropy_index};
use ibis_analysis::{
    aggregate, correlation_query, mine_full, mine_index, MiningConfig, SubsetQuery,
};
use ibis_core::{BbcVec, Binner, BitmapIndex, Bitset, MultiWahBuilder, WahVec};
use ibis_datagen::{OceanConfig, OceanModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::time::{Duration, Instant};

const N: usize = 1 << 20; // 1M elements

fn smooth_field(phase: f64) -> Vec<f64> {
    (0..N)
        .map(|i| (i as f64 * 1e-4 + phase).sin() * 50.0)
        .collect()
}

// ---------------------------------------------------------------------------
// Adaptive-kernel sweep: density × codec × kernel, new vs legacy.
// ---------------------------------------------------------------------------

/// Mean seconds per iteration: calibrates an iteration count to ~60 ms per
/// sample, then averages a handful of samples (same scheme as the criterion
/// shim, but returning the number so it can be persisted).
fn measure<O>(mut f: impl FnMut() -> O) -> f64 {
    let t0 = Instant::now();
    black_box(f());
    let one = t0.elapsed().as_secs_f64().max(1e-9);
    let iters = ((0.06 / one).round() as u64).clamp(1, 1_000_000_000);
    let samples = 3;
    let mut total = 0.0;
    for _ in 0..samples {
        let t0 = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        total += t0.elapsed().as_secs_f64() / iters as f64;
    }
    total / samples as f64
}

/// One timed point of the sweep.
struct Sample {
    pattern: &'static str,
    density: f64,
    wah_dense: bool,
    codec: &'static str,
    kernel: &'static str,
    mean_s: f64,
}

/// A pair of bit patterns at a target density. `sparse_runs` is the
/// fill-heavy regime WAH was designed for; the `*_random` patterns are
/// incompressible noise at increasing density, crossing the α=1 cutover.
fn pattern_bits(name: &str, density: f64, seed: u64) -> Vec<bool> {
    match name {
        "sparse_runs" => {
            // 310-bit runs of ones, one run per ~93k bits (density ≈ 0.33%),
            // offset by seed so the two operands interleave.
            let offset = seed as usize * 155;
            (0..N)
                .map(|i| ((i + offset) / 310).is_multiple_of(300))
                .collect()
        }
        _ => {
            let mut rng = StdRng::seed_from_u64(0xB17_5EED ^ seed);
            (0..N).map(|_| rng.gen_range(0.0..1.0) < density).collect()
        }
    }
}

fn kernel_sweep() {
    let patterns: [(&'static str, f64); 5] = [
        ("sparse_runs", 0.0033),
        ("sparse_random", 0.01),
        ("mid_random", 0.10),
        ("dense30_random", 0.30),
        ("dense50_random", 0.50),
    ];
    let mut samples: Vec<Sample> = Vec::new();
    for (pattern, density) in patterns {
        let bits_a = pattern_bits(pattern, density, 1);
        let bits_b = pattern_bits(pattern, density, 2);
        let wa = WahVec::from_bits(bits_a.iter().copied());
        let wb = WahVec::from_bits(bits_b.iter().copied());
        let ba = BbcVec::from_bits(bits_a.iter().copied());
        let bb = BbcVec::from_bits(bits_b.iter().copied());
        let va = Bitset::from_bits(bits_a.iter().copied());
        let vb = Bitset::from_bits(bits_b.iter().copied());
        let wah_dense = wa.is_dense() || wb.is_dense();
        let mut push = |codec, kernel, mean_s| {
            println!(
                "bench: sweep/{pattern}/{codec}/{kernel:<12} mean {:>10.3} us",
                mean_s * 1e6
            );
            samples.push(Sample {
                pattern,
                density,
                wah_dense,
                codec,
                kernel,
                mean_s,
            });
        };
        // WAH, adaptive dense-path kernels (this PR's default path).
        push("wah_adaptive", "and_count", measure(|| wa.and_count(&wb)));
        push("wah_adaptive", "xor_count", measure(|| wa.xor_count(&wb)));
        push("wah_adaptive", "and", measure(|| wa.and(&wb)));
        push("wah_adaptive", "xor", measure(|| wa.xor(&wb)));
        push("wah_adaptive", "or", measure(|| wa.or(&wb)));
        // WAH, pre-adaptive closure-generic kernels (A/B baseline).
        push(
            "wah_legacy",
            "and_count",
            measure(|| wa.and_count_legacy(&wb)),
        );
        push(
            "wah_legacy",
            "xor_count",
            measure(|| wa.xor_count_legacy(&wb)),
        );
        push("wah_legacy", "and", measure(|| wa.and_legacy(&wb)));
        push("wah_legacy", "xor", measure(|| wa.xor_legacy(&wb)));
        push("wah_legacy", "or", measure(|| wa.or_legacy(&wb)));
        // BBC codec (byte-aligned runs) — fused AND-popcount only.
        push("bbc", "and_count", measure(|| ba.and_count(&bb)));
        // Uncompressed baseline (clone + in-place AND + popcount).
        push(
            "verbatim",
            "and_count",
            measure(|| {
                let mut x = va.clone();
                x.and_assign(&vb);
                x.count_ones()
            }),
        );
    }
    write_json(&samples);
}

/// Speedup of the adaptive path over the legacy path for `kernel` on
/// `pattern` (values > 1 mean the adaptive path is faster).
fn speedup(samples: &[Sample], pattern: &str, kernel: &str) -> f64 {
    let time_of = |codec: &str| {
        samples
            .iter()
            .find(|s| s.pattern == pattern && s.codec == codec && s.kernel == kernel)
            .expect("sample present")
            .mean_s
    };
    time_of("wah_legacy") / time_of("wah_adaptive")
}

fn write_json(samples: &[Sample]) {
    let mut out = String::from("{\n  \"bits\": 1048576,\n  \"samples\": [\n");
    for (i, s) in samples.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"pattern\": \"{}\", \"density\": {}, \"wah_dense\": {}, \
             \"codec\": \"{}\", \"kernel\": \"{}\", \"mean_s\": {:e}}}{}\n",
            s.pattern,
            s.density,
            s.wah_dense,
            s.codec,
            s.kernel,
            s.mean_s,
            if i + 1 == samples.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n  \"adaptive_over_legacy_speedup\": {\n");
    let patterns: Vec<&str> = {
        let mut seen = Vec::new();
        for s in samples {
            if !seen.contains(&s.pattern) {
                seen.push(s.pattern);
            }
        }
        seen
    };
    for (pi, p) in patterns.iter().enumerate() {
        out.push_str(&format!("    \"{p}\": {{"));
        for (ki, k) in ["and_count", "xor_count", "and", "xor", "or"]
            .iter()
            .enumerate()
        {
            let sp = speedup(samples, p, k);
            println!("sweep: {p:<16} {k:<10} adaptive/legacy speedup {sp:.2}x");
            out.push_str(&format!(
                "\"{k}\": {sp:.3}{}",
                if ki == 4 { "" } else { ", " }
            ));
        }
        out.push_str(&format!(
            "}}{}\n",
            if pi + 1 == patterns.len() { "" } else { "," }
        ));
    }
    out.push_str("  }\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    std::fs::write(path, out).expect("write BENCH_kernels.json");
    println!("sweep: wrote {path}");
}

// ---------------------------------------------------------------------------
// Criterion groups (construction, ops, metrics, mining, queries).
// ---------------------------------------------------------------------------

fn bench_build(c: &mut Criterion) {
    let data = smooth_field(0.0);
    let binner = Binner::fixed_width(-51.0, 51.0, 100);
    let mut ids = Vec::new();
    binner.bin_into(&data, &mut ids); // scratch-reuse binning API
    let mut g = c.benchmark_group("build");
    g.sample_size(10).measurement_time(Duration::from_secs(2));
    g.bench_function("algorithm1_streaming_1M", |b| {
        b.iter(|| {
            let mut mb = MultiWahBuilder::new(binner.nbins());
            mb.extend_from(black_box(&ids));
            black_box(mb.finish())
        })
    });
    g.bench_function("index_build_with_binning_1M", |b| {
        b.iter(|| black_box(BitmapIndex::build(black_box(&data), binner.clone())))
    });
    g.bench_function("uncompressed_bitsets_1M", |b| {
        b.iter(|| {
            let mut sets: Vec<Bitset> =
                (0..binner.nbins()).map(|_| Bitset::new(N as u64)).collect();
            for (i, &id) in ids.iter().enumerate() {
                sets[id as usize].set(i as u64, true);
            }
            black_box(sets)
        })
    });
    g.finish();
}

fn bench_ops(c: &mut Criterion) {
    // runs-heavy vectors (the smooth-field regime WAH targets)
    let a = WahVec::from_bits((0..N as u64).map(|i| (i / 1000) % 3 == 0));
    let b = WahVec::from_bits((0..N as u64).map(|i| (i / 700) % 4 == 0));
    let mut g = c.benchmark_group("wah_ops");
    g.sample_size(20).measurement_time(Duration::from_secs(2));
    g.bench_function("and_1M", |bch| bch.iter(|| black_box(a.and(&b))));
    g.bench_function("xor_1M", |bch| bch.iter(|| black_box(a.xor(&b))));
    g.bench_function("and_count_1M", |bch| {
        bch.iter(|| black_box(a.and_count(&b)))
    });
    g.bench_function("xor_count_1M", |bch| {
        bch.iter(|| black_box(a.xor_count(&b)))
    });
    g.bench_function("count_ones_1M", |bch| {
        bch.iter(|| black_box(a.count_ones()))
    });
    g.bench_function("count_per_unit_1M", |bch| {
        bch.iter(|| black_box(a.count_ones_per_unit(4096)))
    });
    g.finish();
}

fn bench_metrics(c: &mut Criterion) {
    let a = smooth_field(0.0);
    let b = smooth_field(0.9);
    let binner = Binner::fixed_width(-51.0, 51.0, 100);
    let ia = BitmapIndex::build(&a, binner.clone());
    let ib = BitmapIndex::build(&b, binner.clone());
    let mut g = c.benchmark_group("metrics");
    g.sample_size(10).measurement_time(Duration::from_secs(2));
    g.bench_function("cond_entropy_fulldata_1M", |bch| {
        bch.iter(|| black_box(conditional_entropy_full(&a, &b, &binner, &binner)))
    });
    g.bench_function("cond_entropy_bitmaps_1M", |bch| {
        bch.iter(|| black_box(conditional_entropy_index(&ia, &ib)))
    });
    g.bench_function("emd_spatial_fulldata_1M", |bch| {
        bch.iter(|| black_box(emd_spatial_full(&a, &b, &binner)))
    });
    g.bench_function("emd_spatial_bitmaps_1M", |bch| {
        bch.iter(|| black_box(emd_spatial_index(&ia, &ib)))
    });
    g.finish();
}

fn bench_mining(c: &mut Criterion) {
    let cfg = OceanConfig {
        nlon: 128,
        nlat: 96,
        ndepth: 2,
        ..Default::default()
    };
    let ocean = OceanModel::new(cfg);
    let t = ocean.variable("temperature");
    let s = ocean.variable("salinity");
    let bt = Binner::fit(&t, 24);
    let bs = Binner::fit(&s, 24);
    let it = BitmapIndex::build(&t, bt.clone());
    let is = BitmapIndex::build(&s, bs.clone());
    let mc = MiningConfig {
        value_threshold: 0.002,
        spatial_threshold: 0.08,
        unit_size: 512,
    };
    let mut g = c.benchmark_group("mining");
    g.sample_size(10).measurement_time(Duration::from_secs(2));
    for (label, bitmaps) in [("bitmaps", true), ("fulldata", false)] {
        g.bench_with_input(
            BenchmarkId::new("ocean_24k", label),
            &bitmaps,
            |bch, &bm| {
                bch.iter(|| {
                    if bm {
                        black_box(mine_index(&it, &is, &mc))
                    } else {
                        black_box(mine_full(&t, &s, &bt, &bs, &mc))
                    }
                })
            },
        );
    }
    g.finish();
}

fn bench_queries(c: &mut Criterion) {
    let a = smooth_field(0.0);
    let b = smooth_field(1.3);
    let binner = Binner::fixed_width(-51.0, 51.0, 100);
    let ia = BitmapIndex::build(&a, binner.clone());
    let ib = BitmapIndex::build(&b, binner.clone());
    let mut g = c.benchmark_group("queries");
    g.sample_size(10).measurement_time(Duration::from_secs(2));
    g.bench_function("range_query_1M", |bch| {
        bch.iter(|| black_box(ia.query_range(black_box(-10.0), black_box(10.0))))
    });
    g.bench_function("approx_mean_1M", |bch| {
        bch.iter(|| black_box(aggregate::mean(&ia)))
    });
    g.bench_function("approx_pearson_1M", |bch| {
        bch.iter(|| black_box(aggregate::pearson(&ia, &ib)))
    });
    let region = SubsetQuery::region(100_000..500_000);
    g.bench_function("correlation_query_region_1M", |bch| {
        bch.iter(|| black_box(correlation_query(&ia, &ib, &region, &SubsetQuery::all())))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_build,
    bench_ops,
    bench_metrics,
    bench_mining,
    bench_queries
);

fn main() {
    kernel_sweep();
    if std::env::var("IBIS_SWEEP_ONLY").is_err() {
        benches();
    }
}
