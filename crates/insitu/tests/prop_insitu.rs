//! Property-based tests for the in-situ substrate: storage models,
//! scaling/calibration math, codec robustness, memory accounting.

use ibis_insitu::{
    codec, CachedStore, Calibration, CoreAllocation, LocalDisk, MemoryTracker, RemoteLink,
    ScalingModel, Storage, Store, StoreWriter,
};
use proptest::prelude::*;

proptest! {
    #[test]
    fn local_disk_time_is_exact(bw in 1.0f64..1e9, writes in proptest::collection::vec(1u64..1_000_000, 1..20)) {
        let d = LocalDisk::new(bw);
        let mut total = 0.0;
        for &w in &writes {
            total += d.write(0.0, w).unwrap();
        }
        let want: f64 = writes.iter().map(|&w| w as f64 / bw).sum();
        prop_assert!((total - want).abs() < 1e-9 * want.max(1.0));
        prop_assert_eq!(d.bytes_written(), writes.iter().sum::<u64>());
    }

    #[test]
    fn remote_link_conserves_bandwidth(
        bw in 1.0f64..1e6,
        writes in proptest::collection::vec((0.0f64..100.0, 1u64..100_000), 1..20),
    ) {
        // No matter the arrival pattern, the link transfers at most bw
        // bytes/second: the last completion is at least total_bytes/bw after
        // the first arrival.
        let link = RemoteLink::new(bw);
        let mut completions = Vec::new();
        let mut first_arrival = f64::INFINITY;
        let mut total_bytes = 0u64;
        for &(now, bytes) in &writes {
            let wait = link.write(now, bytes).unwrap();
            completions.push(now + wait);
            first_arrival = first_arrival.min(now);
            total_bytes += bytes;
        }
        let last = completions.iter().cloned().fold(0.0, f64::max);
        prop_assert!(
            last + 1e-9 >= first_arrival + total_bytes as f64 / bw,
            "link moved {total_bytes} bytes faster than its bandwidth"
        );
        // each write takes at least its own transfer time
        for (&(_, bytes), (&(now, _), &done)) in
            writes.iter().zip(writes.iter().zip(&completions))
        {
            prop_assert!(done + 1e-9 >= now + bytes as f64 / bw);
        }
    }

    #[test]
    fn scaling_speedup_monotone(s in 0.0f64..1.0, a in 1usize..128, b in 1usize..128) {
        let m = ScalingModel::new(s);
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assert!(m.speedup(hi) + 1e-12 >= m.speedup(lo));
        if s > 0.0 {
            prop_assert!(m.speedup(hi) <= 1.0 / s + 1e-9);
        }
    }

    #[test]
    fn calibration_split_properties(ts in 1e-6f64..100.0, tb in 1e-6f64..100.0, total in 2usize..128) {
        let cal = Calibration { time_simulate: ts, time_bitmap: tb };
        let CoreAllocation::Separate { sim_cores, bitmap_cores } = cal.allocate(total) else {
            prop_assert!(false, "allocate must split");
            unreachable!()
        };
        prop_assert_eq!(sim_cores + bitmap_cores, total);
        prop_assert!(sim_cores >= 1 && bitmap_cores >= 1);
        // heavier simulation never gets fewer cores than a lighter one would
        let cal2 = Calibration { time_simulate: ts * 2.0, time_bitmap: tb };
        let CoreAllocation::Separate { sim_cores: s2, .. } = cal2.allocate(total) else {
            unreachable!()
        };
        prop_assert!(s2 >= sim_cores);
    }

    #[test]
    fn index_codec_roundtrip(data in proptest::collection::vec(-10.0f64..10.0, 0..400), nbins in 1usize..20) {
        let binner = ibis_core::Binner::fixed_width(-10.0, 10.0, nbins);
        let idx = ibis_core::BitmapIndex::build(&data, binner);
        let blob = codec::encode_index(&idx);
        let back = codec::decode_index(&blob).expect("own encoding must decode");
        prop_assert_eq!(back.binner(), idx.binner());
        prop_assert_eq!(back.counts(), idx.counts());
    }

    #[test]
    fn index_codec_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let _ = codec::decode_index(&bytes); // must not panic
    }

    #[test]
    fn index_codec_never_panics_on_mutated_blobs(
        data in proptest::collection::vec(-5.0f64..5.0, 1..200),
        pos in 0usize..10_000,
        xor in 1u8..255,
    ) {
        // adversarial bytes that are *almost* a valid blob: a single-byte
        // corruption anywhere must decode to Ok or Err, never a panic
        let binner = ibis_core::Binner::fixed_width(-5.0, 5.0, 8);
        let idx = ibis_core::BitmapIndex::build(&data, binner);
        let mut blob = codec::encode_index(&idx);
        let i = pos % blob.len();
        blob[i] ^= xor;
        let _ = codec::decode_index(&blob);
    }

    #[test]
    fn index_codec_rejects_any_truncation(data in proptest::collection::vec(0.0f64..5.0, 1..100)) {
        let binner = ibis_core::Binner::fixed_width(0.0, 5.0, 5);
        let idx = ibis_core::BitmapIndex::build(&data, binner);
        let blob = codec::encode_index(&idx);
        for cut in [1usize, blob.len() / 2, blob.len() - 1] {
            prop_assert!(codec::decode_index(&blob[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn lossy_companion_survives_store_fsck_and_cache(
        data in proptest::collection::vec((-8.0f64..8.0, 1usize..30), 1..40),
        nbins in 2usize..16,
        fpr in prop_oneof![Just(1e-4), Just(1e-2), Just(1e-1), 1e-4f64..1e-1],
        case in 0u64..1_000_000,
    ) {
        // Round trip: put + put_lossy → finish → reopen → fsck (clean) →
        // CachedStore::get_lossy — the companion comes back with its FPR
        // and drop accounting intact and still a per-bin superset of the
        // exact index.
        let data: Vec<f64> = data
            .into_iter()
            .flat_map(|(v, n)| std::iter::repeat_n(v, n))
            .collect();
        let binner = ibis_core::Binner::fixed_width(-8.0, 8.0, nbins);
        let idx = ibis_core::BitmapIndex::build(&data, binner);
        let (lossy, stats) = idx.lossy(fpr);

        let dir = std::env::temp_dir().join(format!(
            "ibis-prop-lossy-{}-{case}", std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let mut w = StoreWriter::create(&dir).expect("create store");
        w.put(3, "field", &idx).expect("put exact");
        w.put_lossy(3, "field", &lossy, fpr, &stats).expect("put lossy");
        let dir = w.finish().expect("finish");

        let mut store = Store::open(&dir).expect("reopen");
        let report = store.fsck();
        prop_assert!(report.quarantined.is_empty(), "fsck quarantined a healthy companion");
        prop_assert!(report.checked >= 2, "fsck skipped the companion");

        let cache = CachedStore::new(store, 1 << 20);
        let companion = cache
            .get_lossy("field", 3)
            .expect("load companion")
            .expect("companion must exist");
        prop_assert_eq!(companion.fpr, fpr);
        prop_assert_eq!(companion.bits_dropped, stats.bits_dropped);
        prop_assert_eq!(companion.zeros, stats.zeros);
        prop_assert_eq!(companion.index.nbins(), idx.nbins());
        for b in 0..idx.nbins() {
            let (e, l) = (idx.bin(b), companion.index.bin(b));
            prop_assert_eq!(&e.and(l), e, "bin {} lost a set bit in the round trip", b);
        }
        // memoized path returns the same companion
        let again = cache.get_lossy("field", 3).unwrap().unwrap();
        prop_assert!(std::sync::Arc::ptr_eq(&companion, &again));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn memory_tracker_invariants(ops in proptest::collection::vec(1u64..1000, 1..50)) {
        // alloc everything, then free everything: current returns to zero
        // and peak equals the running maximum
        let m = MemoryTracker::new();
        let mut live = Vec::new();
        let mut running = 0u64;
        let mut max_seen = 0u64;
        for &sz in &ops {
            m.alloc(sz);
            live.push(sz);
            running += sz;
            max_seen = max_seen.max(running);
            prop_assert_eq!(m.current(), running);
        }
        prop_assert_eq!(m.peak(), max_seen);
        for sz in live {
            m.free(sz);
        }
        prop_assert_eq!(m.current(), 0);
        prop_assert_eq!(m.peak(), max_seen, "peak survives frees");
    }
}
