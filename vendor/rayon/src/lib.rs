//! Minimal `rayon` shim with *real* parallelism.
//!
//! Parallel iterators materialize their base items (references, chunks, or
//! indices — always cheap relative to the per-item work), compose the
//! map/zip/enumerate pipeline as plain closures, and drive terminal
//! operations (`for_each`, `reduce`, `collect`) on `std::thread::scope`
//! workers over contiguous chunks. Order-sensitive consumers (`collect`)
//! preserve input order; `reduce` combines per-chunk partials left-to-right,
//! so associative operators give the same grouping guarantees as upstream
//! rayon (deterministic only for associative+commutative-safe ops).
//!
//! Pool semantics: `ThreadPool::install` sets a thread-local width that
//! parallel drives consult, so `num_threads(1)` pools genuinely serialize —
//! the in-situ timing model depends on that.

use std::cell::Cell;
use std::ops::Range;

thread_local! {
    /// 0 = unset (use host parallelism); otherwise the installed pool width.
    static WIDTH: Cell<usize> = const { Cell::new(0) };
}

fn host_width() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// The number of threads parallel drives would use right now.
pub fn current_num_threads() -> usize {
    let w = WIDTH.get();
    if w == 0 {
        host_width()
    } else {
        w
    }
}

/// Restores the previous thread-local width on drop (panic-safe).
struct WidthGuard(usize);

impl Drop for WidthGuard {
    fn drop(&mut self) {
        WIDTH.set(self.0);
    }
}

/// A fixed-width pool handle. Threads are not retained between drives; the
/// handle carries the width that scoped drives honour inside `install`.
#[derive(Debug, Clone)]
pub struct ThreadPool {
    width: usize,
}

impl ThreadPool {
    /// The pool's configured width.
    pub fn current_num_threads(&self) -> usize {
        self.width
    }

    /// Runs `op` with this pool's width governing nested parallel drives.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        let _guard = WidthGuard(WIDTH.replace(self.width));
        op()
    }
}

/// Builder matching `rayon::ThreadPoolBuilder`'s subset used here.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// A builder with default (host) width.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the pool width; 0 means host parallelism.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool. Never fails in this shim; the `Result` mirrors the
    /// upstream signature.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let width = if self.num_threads == 0 {
            host_width()
        } else {
            self.num_threads
        };
        Ok(ThreadPool { width })
    }
}

/// Upstream-compatible error type (never produced by this shim).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Splits `items` into at most `parts` contiguous runs, preserving order.
fn split_vec<T>(mut items: Vec<T>, parts: usize) -> Vec<Vec<T>> {
    let n = items.len();
    let parts = parts.clamp(1, n.max(1));
    let chunk = n.div_ceil(parts);
    let mut out = Vec::with_capacity(parts);
    while items.len() > chunk {
        let rest = items.split_off(chunk);
        out.push(std::mem::replace(&mut items, rest));
    }
    out.push(items);
    out
}

/// Runs `work` over contiguous chunks of `items` on scoped threads and
/// returns the per-chunk results in order. Panics propagate to the caller.
fn drive_chunks<B, R>(items: Vec<B>, work: &(impl Fn(Vec<B>) -> R + Sync)) -> Vec<R>
where
    B: Send,
    R: Send,
{
    let width = current_num_threads();
    if items.is_empty() {
        return Vec::new();
    }
    if width <= 1 || items.len() <= 1 {
        return vec![work(items)];
    }
    let chunks = split_vec(items, width);
    std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                s.spawn(move || {
                    // Nested drives inside a worker run serially; the outer
                    // drive already owns the width budget.
                    let _guard = WidthGuard(WIDTH.replace(1));
                    work(chunk)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect()
    })
}

fn ident<T>(t: T) -> T {
    t
}

/// A parallel pipeline: materialized base items plus a composed per-item
/// transform applied on worker threads at drive time.
pub struct ParPipe<B, T, F> {
    base: Vec<B>,
    f: F,
    _out: std::marker::PhantomData<fn() -> T>,
}

fn pipe<B, T, F: Fn(B) -> T>(base: Vec<B>, f: F) -> ParPipe<B, T, F> {
    ParPipe {
        base,
        f,
        _out: std::marker::PhantomData,
    }
}

impl<B: Send> ParPipe<B, B, fn(B) -> B> {
    fn identity(base: Vec<B>) -> Self {
        pipe(base, ident::<B>)
    }
}

impl<B, T, F> ParPipe<B, T, F>
where
    B: Send,
    T: Send,
    F: Fn(B) -> T + Sync,
{
    /// Maps each item through `g` (applied on worker threads).
    pub fn map<U, G>(self, g: G) -> ParPipe<B, U, impl Fn(B) -> U + Sync>
    where
        U: Send,
        G: Fn(T) -> U + Sync,
    {
        let ParPipe { base, f, .. } = self;
        pipe(base, move |b| g(f(b)))
    }

    /// Pairs items with their input position.
    pub fn enumerate(
        self,
    ) -> ParPipe<(usize, B), (usize, T), impl Fn((usize, B)) -> (usize, T) + Sync> {
        let ParPipe { base, f, .. } = self;
        let base: Vec<(usize, B)> = base.into_iter().enumerate().collect();
        pipe(base, move |(i, b)| (i, f(b)))
    }

    /// Zips with another pipeline, truncating to the shorter side.
    pub fn zip<B2, T2, F2>(
        self,
        other: ParPipe<B2, T2, F2>,
    ) -> ParPipe<(B, B2), (T, T2), impl Fn((B, B2)) -> (T, T2) + Sync>
    where
        B2: Send,
        T2: Send,
        F2: Fn(B2) -> T2 + Sync,
    {
        let base: Vec<(B, B2)> = self.base.into_iter().zip(other.base).collect();
        let (f1, f2) = (self.f, other.f);
        pipe(base, move |(a, b)| (f1(a), f2(b)))
    }

    /// Applies `g` to every item in parallel.
    pub fn for_each<G>(self, g: G)
    where
        G: Fn(T) + Sync,
    {
        let f = self.f;
        drive_chunks(self.base, &|chunk: Vec<B>| {
            for b in chunk {
                g(f(b));
            }
        });
    }

    /// Parallel fold: each chunk folds from `identity()`, partials combine
    /// left-to-right. `op` must be associative, as with upstream rayon.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> T
    where
        ID: Fn() -> T + Sync,
        OP: Fn(T, T) -> T + Sync,
    {
        let f = self.f;
        let partials = drive_chunks(self.base, &|chunk: Vec<B>| {
            let mut acc = identity();
            for b in chunk {
                acc = op(acc, f(b));
            }
            acc
        });
        partials.into_iter().fold(identity(), &op)
    }

    /// Collects into `C`, preserving input order.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        let f = self.f;
        let parts = drive_chunks(self.base, &|chunk: Vec<B>| {
            chunk.into_iter().map(&f).collect::<Vec<T>>()
        });
        parts.into_iter().flatten().collect()
    }

    /// Sums the items in parallel (associative reduction).
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<T> + std::iter::Sum<S> + Send,
    {
        let f = self.f;
        let parts = drive_chunks(self.base, &|chunk: Vec<B>| {
            chunk.into_iter().map(&f).sum::<S>()
        });
        parts.into_iter().sum()
    }
}

/// Conversion into a parallel pipeline (subset of upstream trait).
pub trait IntoParallelIterator {
    /// Item type yielded by the pipeline.
    type Item: Send;
    /// Concrete pipeline type.
    type Iter;
    /// Builds the pipeline.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = ParPipe<T, T, fn(T) -> T>;
    fn into_par_iter(self) -> Self::Iter {
        ParPipe::identity(self)
    }
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    type Iter = ParPipe<usize, usize, fn(usize) -> usize>;
    fn into_par_iter(self) -> Self::Iter {
        ParPipe::identity(self.collect())
    }
}

impl<'a, T: Sync + 'a> IntoParallelIterator for &'a [T] {
    type Item = &'a T;
    type Iter = ParPipe<&'a T, &'a T, fn(&'a T) -> &'a T>;
    fn into_par_iter(self) -> Self::Iter {
        ParPipe::identity(self.iter().collect())
    }
}

impl<'a, T: Send + 'a> IntoParallelIterator for &'a mut [T] {
    type Item = &'a mut T;
    type Iter = ParPipe<&'a mut T, &'a mut T, fn(&'a mut T) -> &'a mut T>;
    fn into_par_iter(self) -> Self::Iter {
        ParPipe::identity(self.iter_mut().collect())
    }
}

/// Multi-zip over three mutable vectors (rayon's tuple `IntoParallelIterator`).
impl<'a, A: Send, B: Send, C: Send> IntoParallelIterator
    for (&'a mut Vec<A>, &'a mut Vec<B>, &'a mut Vec<C>)
{
    type Item = (&'a mut A, &'a mut B, &'a mut C);
    type Iter = ParPipe<Self::Item, Self::Item, fn(Self::Item) -> Self::Item>;
    fn into_par_iter(self) -> Self::Iter {
        let base: Vec<Self::Item> = self
            .0
            .iter_mut()
            .zip(self.1.iter_mut().zip(self.2.iter_mut()))
            .map(|(a, (b, c))| (a, b, c))
            .collect();
        ParPipe::identity(base)
    }
}

/// `par_iter` / `par_chunks` over shared slices.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over `&T`.
    fn par_iter<'a>(&'a self) -> ParPipe<&'a T, &'a T, fn(&'a T) -> &'a T>;
    /// Parallel iterator over `size`-sized chunks (last may be shorter).
    fn par_chunks<'a>(&'a self, size: usize) -> ParPipe<&'a [T], &'a [T], fn(&'a [T]) -> &'a [T]>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter<'a>(&'a self) -> ParPipe<&'a T, &'a T, fn(&'a T) -> &'a T> {
        ParPipe::identity(self.iter().collect())
    }
    fn par_chunks<'a>(&'a self, size: usize) -> ParPipe<&'a [T], &'a [T], fn(&'a [T]) -> &'a [T]> {
        assert!(size > 0, "chunk size must be positive");
        ParPipe::identity(self.chunks(size).collect())
    }
}

/// `par_iter_mut` / `par_chunks_mut` over exclusive slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over `&mut T`.
    fn par_iter_mut<'a>(&'a mut self) -> ParPipe<&'a mut T, &'a mut T, fn(&'a mut T) -> &'a mut T>;
    /// Parallel iterator over exclusive `size`-sized chunks.
    fn par_chunks_mut<'a>(
        &'a mut self,
        size: usize,
    ) -> ParPipe<&'a mut [T], &'a mut [T], fn(&'a mut [T]) -> &'a mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut<'a>(&'a mut self) -> ParPipe<&'a mut T, &'a mut T, fn(&'a mut T) -> &'a mut T> {
        ParPipe::identity(self.iter_mut().collect())
    }
    fn par_chunks_mut<'a>(
        &'a mut self,
        size: usize,
    ) -> ParPipe<&'a mut [T], &'a mut [T], fn(&'a mut [T]) -> &'a mut [T]> {
        assert!(size > 0, "chunk size must be positive");
        ParPipe::identity(self.chunks_mut(size).collect())
    }
}

/// Glob-import surface mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn collect_preserves_order() {
        let v: Vec<usize> = (0..10_000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v, (0..10_000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn reduce_sums_correctly() {
        let data: Vec<u64> = (0..100_000).collect();
        let total = data
            .par_chunks(1024)
            .map(|c| c.iter().sum::<u64>())
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(total, 100_000u64 * 99_999 / 2);
    }

    #[test]
    fn for_each_mut_touches_every_item() {
        let mut data = vec![0u32; 5000];
        data.par_iter_mut()
            .enumerate()
            .for_each(|(i, x)| *x = i as u32);
        assert!(data.iter().enumerate().all(|(i, &x)| x == i as u32));
    }

    #[test]
    fn zip_pairs_in_lockstep() {
        let a = vec![1u32, 2, 3, 4];
        let b = vec![10u32, 20, 30, 40];
        let s: Vec<u32> = a
            .par_chunks(2)
            .zip(b.par_chunks(2))
            .map(|(x, y)| x[0] + y[0])
            .collect();
        assert_eq!(s, vec![11, 33]);
    }

    #[test]
    fn one_thread_pool_runs_serially() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        assert_eq!(pool.current_num_threads(), 1);
        let main_id = std::thread::current().id();
        pool.install(|| {
            assert_eq!(current_num_threads(), 1);
            (0..64).into_par_iter().for_each(|_| {
                assert_eq!(std::thread::current().id(), main_id);
            });
        });
    }

    #[test]
    fn wide_pool_actually_spawns() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let distinct = AtomicUsize::new(0);
        let main_id = std::thread::current().id();
        pool.install(|| {
            (0..1024).into_par_iter().for_each(|_| {
                if std::thread::current().id() != main_id {
                    distinct.fetch_add(1, Ordering::Relaxed);
                }
            });
        });
        if host_width() > 1 {
            assert!(
                distinct.load(Ordering::Relaxed) > 0,
                "no parallel execution happened"
            );
        }
    }

    #[test]
    fn tuple_multizip() {
        let mut a = vec![1.0f64; 8];
        let mut b = vec![2.0f64; 8];
        let mut c = vec![3.0f64; 8];
        (&mut a, &mut b, &mut c)
            .into_par_iter()
            .enumerate()
            .for_each(|(i, (x, y, z))| {
                *x = i as f64;
                *y = *x + 1.0;
                *z = *y + 1.0;
            });
        assert_eq!(a[7], 7.0);
        assert_eq!(b[7], 8.0);
        assert_eq!(c[7], 9.0);
    }
}
