//! Cross-crate exactness tests: the paper's central no-accuracy-loss claim,
//! checked end-to-end on real simulation output — every bitmap-only
//! analysis must equal its full-data counterpart bit-for-bit under the same
//! binning, and persisted bitmaps must survive a disk round-trip.

use ibis::analysis::emd::{emd_counts_full, emd_counts_index, emd_spatial_full, emd_spatial_index};
use ibis::analysis::entropy::{
    conditional_entropy_full, conditional_entropy_index, mutual_information_full,
    mutual_information_index, shannon_entropy_full, shannon_entropy_index,
};
use ibis::analysis::{mine_full, mine_index, MiningConfig};
use ibis::core::{Binner, BitmapIndex, ZOrderLayout};
use ibis::datagen::{
    Heat3D, Heat3DConfig, LuleshConfig, MiniLulesh, OceanConfig, OceanModel, Simulation,
};
use ibis::insitu::{codec, FileSink};

#[test]
fn heat3d_metrics_exact() {
    let mut sim = Heat3D::new(Heat3DConfig::tiny());
    let steps = sim.run(6);
    let binner = Binner::precision(-1.0, 101.0, 1);
    let arrays: Vec<&[f64]> = steps.iter().map(|s| s.fields[0].data.as_slice()).collect();
    let indexes: Vec<BitmapIndex> = arrays
        .iter()
        .map(|a| BitmapIndex::build(a, binner.clone()))
        .collect();
    for i in 0..arrays.len() {
        assert_eq!(
            shannon_entropy_index(&indexes[i]),
            shannon_entropy_full(arrays[i], &binner),
            "entropy step {i}"
        );
        for j in 0..arrays.len() {
            assert_eq!(
                mutual_information_index(&indexes[i], &indexes[j]),
                mutual_information_full(arrays[i], arrays[j], &binner, &binner),
                "MI {i}-{j}"
            );
            assert_eq!(
                conditional_entropy_index(&indexes[i], &indexes[j]),
                conditional_entropy_full(arrays[i], arrays[j], &binner, &binner),
                "CE {i}-{j}"
            );
            assert_eq!(
                emd_counts_index(&indexes[i], &indexes[j]),
                emd_counts_full(arrays[i], arrays[j], &binner),
                "EMD {i}-{j}"
            );
            assert_eq!(
                emd_spatial_index(&indexes[i], &indexes[j]),
                emd_spatial_full(arrays[i], arrays[j], &binner),
                "spatial EMD {i}-{j}"
            );
        }
    }
}

#[test]
fn lulesh_all_twelve_arrays_exact() {
    let mut sim = MiniLulesh::new(LuleshConfig::tiny());
    let steps = sim.run(3);
    // one fitted binner per variable, shared across steps as the pipeline does
    for f in 0..12 {
        let all: Vec<f64> = steps
            .iter()
            .flat_map(|s| s.fields[f].data.iter().copied())
            .collect();
        let binner = Binner::fit(&all, 32);
        let a = &steps[0].fields[f].data;
        let b = &steps[2].fields[f].data;
        let ia = BitmapIndex::build(a, binner.clone());
        let ib = BitmapIndex::build(b, binner.clone());
        assert_eq!(
            emd_spatial_index(&ia, &ib),
            emd_spatial_full(a, b, &binner),
            "field {} ({})",
            f,
            steps[0].fields[f].name
        );
        assert_eq!(
            conditional_entropy_index(&ia, &ib),
            conditional_entropy_full(a, b, &binner, &binner)
        );
    }
}

#[test]
fn ocean_mining_exact_in_zorder() {
    let cfg = OceanConfig::tiny();
    let ocean = OceanModel::new(cfg.clone());
    let z = ZOrderLayout::new(&[cfg.nlon, cfg.nlat, cfg.ndepth]);
    let t = z.reorder(&ocean.variable("temperature"));
    let s = z.reorder(&ocean.variable("salinity"));
    let bt = Binner::fit(&t, 16);
    let bs = Binner::fit(&s, 16);
    let mc = MiningConfig {
        value_threshold: 0.002,
        spatial_threshold: 0.05,
        unit_size: 64,
    };
    let from_bitmaps = mine_index(
        &BitmapIndex::build(&t, bt.clone()),
        &BitmapIndex::build(&s, bs.clone()),
        &mc,
    );
    let from_full = mine_full(&t, &s, &bt, &bs, &mc);
    assert_eq!(from_bitmaps.subsets, from_full.subsets);
    assert_eq!(from_bitmaps.pairs_pruned, from_full.pairs_pruned);
    assert!(
        !from_bitmaps.subsets.is_empty(),
        "planted correlation must surface"
    );
}

#[test]
fn persisted_bitmaps_round_trip_and_stay_exact() {
    let mut sim = Heat3D::new(Heat3DConfig::tiny());
    let steps = sim.run(2);
    let binner = Binner::precision(-1.0, 101.0, 1);
    let a = &steps[0].fields[0].data;
    let b = &steps[1].fields[0].data;
    let ia = BitmapIndex::build(a, binner.clone());
    let ib = BitmapIndex::build(b, binner.clone());

    // write every bitvector of step 1's index, then reload the index
    let dir = std::env::temp_dir().join("ibis-integration-sink");
    let sink = FileSink::new(&dir).unwrap();
    let mut paths = Vec::new();
    for (bin, vec) in ib.bins().iter().enumerate() {
        paths.push(
            sink.write_blob(&format!("step1_bin{bin}.wah"), &codec::encode(vec))
                .unwrap(),
        );
    }
    let reloaded: Vec<_> = paths
        .iter()
        .map(|p| codec::decode(&std::fs::read(p).unwrap()).expect("valid blob"))
        .collect();
    let ib2 = BitmapIndex::from_bins(binner.clone(), reloaded);

    // post-analysis on reloaded bitmaps equals the in-memory result
    assert_eq!(
        conditional_entropy_index(&ib2, &ia),
        conditional_entropy_full(b, a, &binner, &binner)
    );
    std::fs::remove_dir_all(&dir).ok();
}
