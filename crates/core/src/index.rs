//! The bitmap index: one WAH bitvector per bin over a single variable's
//! values for one time-step.
//!
//! The index doubles as the paper's data summary: its cached per-bin 1-bit
//! counts *are* the value histogram, so Shannon entropy and count-based EMD
//! come for free, while joint distributions (conditional entropy, mutual
//! information) and spatial differences (spatial EMD) are bitwise AND / XOR
//! away. After the index is built the original data can be discarded.

use crate::binning::Binner;
use crate::builder::MultiWahBuilder;
use crate::codec::{select_codec, CodecId, CodecVec};
use crate::wah::WahVec;
use std::fmt;

/// A malformed value-range query ([`BitmapIndex::try_query_range`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RangeQueryError {
    /// A bound is NaN — the query is meaningless, not empty.
    NanBound {
        /// The lower bound as given.
        lo: f64,
        /// The upper bound as given.
        hi: f64,
    },
}

impl fmt::Display for RangeQueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RangeQueryError::NanBound { lo, hi } => {
                write!(f, "value range [{lo}, {hi}) has a NaN bound")
            }
        }
    }
}

impl std::error::Error for RangeQueryError {}

/// A (single-level) bitmap index over one array of values.
///
/// ```
/// use ibis_core::{Binner, BitmapIndex};
///
/// let data = [4.0, 1.0, 2.0, 2.0, 3.0, 4.0, 3.0, 1.0]; // Figure 1
/// let index = BitmapIndex::build(&data, Binner::distinct_ints(1, 4));
/// assert_eq!(index.counts(), &[2, 2, 2, 2]);
/// assert_eq!(index.bin(0).iter_ones().collect::<Vec<_>>(), vec![1, 7]);
/// ```
#[derive(Debug, Clone)]
pub struct BitmapIndex {
    binner: Binner,
    bins: Vec<WahVec>,
    counts: Vec<u64>,
    len: u64,
}

impl BitmapIndex {
    /// Builds the index with the paper's Algorithm 1: one pass over the
    /// data, compressing as it goes. Runs the fused bin+compress fast path
    /// ([`MultiWahBuilder::extend_binned`]) on a per-thread reusable
    /// builder; output is byte-identical to [`BitmapIndex::build_scalar`].
    pub fn build(data: &[f64], binner: Binner) -> Self {
        let bins = crate::builder::build_bins_reusing_scratch(&binner, data);
        Self::from_bins(binner, bins)
    }

    /// [`BitmapIndex::build`] over the reordered stream `data[perm[i]]` —
    /// the compression-aware reorder pass fused into ingestion
    /// ([`MultiWahBuilder::extend_binned_gather`]): the permuted array is
    /// never materialized, and the result is byte-identical to
    /// `build(&perm.reorder(data), binner)`.
    ///
    /// # Panics
    /// When `perm.len() != data.len()`.
    pub fn build_permuted(
        data: &[f64],
        binner: Binner,
        perm: &crate::roworder::RowPermutation,
    ) -> Self {
        assert_eq!(perm.len(), data.len(), "permutation length mismatch");
        let bins = crate::builder::build_bins_reusing_scratch_permuted(&binner, data, perm.perm());
        Self::from_bins(binner, bins)
    }

    /// The index re-expressed in original row order: the exact inverse of
    /// [`BitmapIndex::build_permuted`], byte-identical to building the
    /// identity-order index from the same data. O(n) — the stored bins are
    /// decoded into a per-row bin-id array (scattered through `perm`, so it
    /// lands already in original order) and re-compressed in one pass.
    /// Cross-step metrics use this: two steps reordered by *different*
    /// permutations have no common row space until both are restored.
    ///
    /// # Panics
    /// When `perm.len() != self.len()`.
    pub fn unpermute(&self, perm: &crate::roworder::RowPermutation) -> Self {
        assert_eq!(perm.len() as u64, self.len, "permutation length mismatch");
        let mut ids = vec![0u32; perm.len()];
        let gather = perm.perm();
        for (b, bits) in self.bins.iter().enumerate() {
            for s in bits.iter_ones() {
                ids[gather[s as usize] as usize] = b as u32;
            }
        }
        Self::build_from_ids(&ids, self.binner.clone())
    }

    /// The element-at-a-time reference build (one `bin_of` + one `push` per
    /// element). Kept as the property-test oracle for the batched fast path
    /// — mirroring how `legacy-kernels` anchors the query kernels.
    pub fn build_scalar(data: &[f64], binner: Binner) -> Self {
        let mut mb = MultiWahBuilder::new(binner.nbins());
        for &v in data {
            mb.push(binner.bin_of(v));
        }
        Self::from_bins(binner, mb.finish())
    }

    /// Builds from pre-computed bin ids (ids must be `< binner.nbins()`).
    pub fn build_from_ids(ids: &[u32], binner: Binner) -> Self {
        let mut mb = MultiWahBuilder::new(binner.nbins());
        mb.extend_from(ids);
        Self::from_bins(binner, mb.finish())
    }

    /// Assembles an index from existing bitvectors (e.g. concatenated
    /// sub-block results of parallel generation).
    ///
    /// # Panics
    /// Panics if bin count mismatches the binner or lengths differ.
    pub fn from_bins(binner: Binner, bins: Vec<WahVec>) -> Self {
        assert_eq!(bins.len(), binner.nbins(), "bin count mismatch");
        let len = bins.first().map_or(0, WahVec::len);
        assert!(
            bins.iter().all(|b| b.len() == len),
            "bins must share a length"
        );
        let counts = bins.iter().map(WahVec::count_ones).collect();
        BitmapIndex {
            binner,
            bins,
            counts,
            len,
        }
    }

    /// The binning scale the index was built with.
    pub fn binner(&self) -> &Binner {
        &self.binner
    }

    /// Number of bins (bitvectors).
    pub fn nbins(&self) -> usize {
        self.bins.len()
    }

    /// Number of indexed elements.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// `true` if no elements are indexed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The bitvector of bin `b`.
    pub fn bin(&self, b: usize) -> &WahVec {
        &self.bins[b]
    }

    /// All bitvectors.
    pub fn bins(&self) -> &[WahVec] {
        &self.bins
    }

    /// Per-bin 1-bit counts — the exact value histogram of the indexed data.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Compressed size in bytes of all bitvectors — what the in-situ pipeline
    /// charges to memory and writes to storage instead of the raw data.
    pub fn size_bytes(&self) -> usize {
        self.bins.iter().map(WahVec::size_bytes).sum()
    }

    /// The codec [`select_codec`] picks for bin `b` from its cached
    /// [`WahStats`](crate::WahStats) — low-occupancy outer bins become
    /// Roaring arrays, dense middle bins Roaring bitsets, coherent bins
    /// stay WAH. Free after the first call per bin (stats are cached).
    pub fn bin_codec(&self, b: usize) -> CodecId {
        select_codec(self.bins[b].stats(), self.len)
    }

    /// The full per-bin codec plan, in bin order — what the store writes
    /// (per-blob codec tags) and the planner costs.
    pub fn codec_plan(&self) -> Vec<CodecId> {
        (0..self.bins.len()).map(|b| self.bin_codec(b)).collect()
    }

    /// Estimated at-rest cost in bytes of bin `b` under its selected codec
    /// — the query planner's per-bin cost unit. WAH bins cost their word
    /// payload; Roaring bins are estimated from the cached stats (container
    /// overhead plus the cheapest of array / bitset / run forms) without
    /// materializing the conversion.
    pub fn bin_cost_bytes(&self, b: usize) -> u64 {
        let v = &self.bins[b];
        match self.bin_codec(b) {
            CodecId::Wah => 4 * v.words().len() as u64,
            CodecId::Roaring => {
                let nchunks = self.len.div_ceil(crate::roaring::CONTAINER_BITS).max(1);
                let s = v.stats();
                // roughly half of a WAH run count are 1-runs, at 4 bytes
                // per run container interval
                let one_runs = (s.runs as u64).div_ceil(2);
                8 * nchunks + (2 * s.ones).min(8192 * nchunks).min(4 * one_runs)
            }
            // never auto-selected; charge the byte-aligned analogue of WAH
            CodecId::Bbc => 4 * v.words().len() as u64,
        }
    }

    /// Converts every bin into its auto-selected codec (exact; all-WAH
    /// plans just clone). This is what `CachedStore` serves and the store
    /// persists under per-blob codec tags.
    pub fn to_codec_bins(&self) -> Vec<CodecVec> {
        self.bins.iter().map(CodecVec::from_wah_auto).collect()
    }

    /// The inclusive range of bins a `[lo, hi)` value query touches, or
    /// `None` when the interval selects nothing (inverted, empty, or a NaN
    /// bound — every comparison with NaN is false, so the span is empty).
    /// This is the planner's unit of work: which bins a range query touches
    /// determines the cost of every evaluation strategy.
    pub fn bin_span(&self, lo: f64, hi: f64) -> Option<(usize, usize)> {
        // NaN must land in the None arm: only a definite `hi > lo` proceeds.
        if self.bins.is_empty() || hi.partial_cmp(&lo) != Some(std::cmp::Ordering::Greater) {
            return None;
        }
        let b0 = self.binner.bin_of(lo) as usize;
        let b1 = self.binner.bin_of(hi) as usize;
        // hi is exclusive: drop the last bin when hi is exactly its low edge.
        let b1 = if b1 > b0 && self.binner.bin_range(b1).0 >= hi {
            b1 - 1
        } else {
            b1
        };
        Some((b0, b1))
    }

    /// Positions whose value falls in `[lo, hi)`: OR of the overlapping
    /// bins. Values are matched at bin granularity (the usual bitmap-index
    /// semantics — a bin is included if its range intersects `[lo, hi)`).
    ///
    /// Total on any input: an inverted (`lo > hi`), empty (`lo == hi`), or
    /// NaN-bounded interval yields the all-zeros selection. Callers that
    /// must *reject* NaN bounds instead of silently matching nothing use
    /// [`BitmapIndex::try_query_range`].
    pub fn query_range(&self, lo: f64, hi: f64) -> WahVec {
        match self.bin_span(lo, hi) {
            Some((b0, b1)) => self.query_bins(b0..=b1),
            None => WahVec::zeros(self.len),
        }
    }

    /// [`BitmapIndex::query_range`] with strict bound validation: a NaN
    /// bound is a malformed query, not an empty one, and is reported as a
    /// typed error. Inverted and empty intervals remain empty selections.
    pub fn try_query_range(&self, lo: f64, hi: f64) -> Result<WahVec, RangeQueryError> {
        if lo.is_nan() || hi.is_nan() {
            return Err(RangeQueryError::NanBound { lo, hi });
        }
        Ok(self.query_range(lo, hi))
    }

    /// OR of an inclusive range of bins.
    pub fn query_bins(&self, bins: std::ops::RangeInclusive<usize>) -> WahVec {
        let slice = &self.bins[*bins.start()..=*bins.end()];
        let mut result = WahVec::or_many(slice.iter());
        if result.is_empty() {
            result = WahVec::zeros(self.len);
        }
        result
    }

    /// The index restricted to the half-open row range `[start, end)`: every
    /// bin sliced with [`WahVec::slice`], counts recomputed for the range.
    /// This is the spatial-shard splitter — because value predicates are
    /// per-bin ORs and set operations distribute over row slices,
    /// evaluating any query on `slice_rows(lo..hi)` yields exactly the
    /// `lo..hi` slice of the same query's global selection, which is what
    /// lets sharded scatter-gather answers concatenate byte-identically.
    ///
    /// # Panics
    /// Panics when the range is inverted or exceeds the row count.
    pub fn slice_rows(&self, range: std::ops::Range<u64>) -> Self {
        let bins = self
            .bins
            .iter()
            .map(|b| b.slice(range.clone()))
            .collect::<Vec<_>>();
        Self::from_bins(self.binner.clone(), bins)
    }

    /// Verifies structural invariants (tests / debugging): per-bin lengths,
    /// cached counts, each position set in exactly one bin.
    pub fn check_consistent(&self) -> Result<(), String> {
        for (i, b) in self.bins.iter().enumerate() {
            if b.len() != self.len {
                return Err(format!("bin {i} has length {} != {}", b.len(), self.len));
            }
            b.check_canonical().map_err(|e| format!("bin {i}: {e}"))?;
            if b.count_ones() != self.counts[i] {
                return Err(format!("bin {i}: stale cached count"));
            }
        }
        let total: u64 = self.counts.iter().sum();
        if total != self.len {
            return Err(format!("counts sum to {total}, expected {}", self.len));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure1_index() -> BitmapIndex {
        BitmapIndex::build(
            &[4.0, 1.0, 2.0, 2.0, 3.0, 4.0, 3.0, 1.0],
            Binner::distinct_ints(1, 4),
        )
    }

    #[test]
    fn figure1_low_level_bitvectors() {
        let idx = figure1_index();
        // Matches the paper's Figure 1 low-level indices exactly.
        assert_eq!(idx.bin(0).to_bools(), bits("01000001"));
        assert_eq!(idx.bin(1).to_bools(), bits("00110000"));
        assert_eq!(idx.bin(2).to_bools(), bits("00001010"));
        assert_eq!(idx.bin(3).to_bools(), bits("10000100"));
        idx.check_consistent().unwrap();
    }

    fn bits(s: &str) -> Vec<bool> {
        s.chars().map(|c| c == '1').collect()
    }

    #[test]
    fn counts_are_exact_histogram() {
        let data: Vec<f64> = (0..10_000).map(|i| ((i * 37) % 100) as f64).collect();
        let binner = Binner::fixed_width(0.0, 100.0, 10);
        let idx = BitmapIndex::build(&data, binner.clone());
        let mut hist = vec![0u64; 10];
        for &v in &data {
            hist[binner.bin_of(v) as usize] += 1;
        }
        assert_eq!(idx.counts(), hist.as_slice());
        idx.check_consistent().unwrap();
    }

    #[test]
    fn build_from_ids_equals_build() {
        let data: Vec<f64> = (0..500).map(|i| (i as f64 * 0.7).sin()).collect();
        let binner = Binner::fixed_width(-1.0, 1.0, 8);
        let a = BitmapIndex::build(&data, binner.clone());
        let ids = binner.bin_all(&data);
        let b = BitmapIndex::build_from_ids(&ids, binner);
        for k in 0..8 {
            assert_eq!(a.bin(k), b.bin(k));
        }
    }

    #[test]
    fn empty_data() {
        let idx = BitmapIndex::build(&[], Binner::fixed_width(0.0, 1.0, 4));
        assert!(idx.is_empty());
        assert_eq!(idx.counts(), &[0, 0, 0, 0]);
        idx.check_consistent().unwrap();
    }

    #[test]
    fn query_range_matches_scan() {
        let data: Vec<f64> = (0..1000).map(|i| (i % 50) as f64).collect();
        let idx = BitmapIndex::build(&data, Binner::fixed_width(0.0, 50.0, 50));
        let hits = idx.query_range(10.0, 20.0);
        let want: Vec<u64> = data
            .iter()
            .enumerate()
            .filter_map(|(i, &v)| (10.0..20.0).contains(&v).then_some(i as u64))
            .collect();
        assert_eq!(hits.iter_ones().collect::<Vec<_>>(), want);
    }

    #[test]
    fn query_range_empty_interval() {
        let data = [1.0, 2.0, 3.0];
        let idx = BitmapIndex::build(&data, Binner::fixed_width(0.0, 4.0, 4));
        assert_eq!(idx.query_range(2.0, 2.0).count_ones(), 0);
        assert_eq!(idx.query_range(3.0, 1.0).count_ones(), 0);
        assert_eq!(idx.bin_span(2.0, 2.0), None);
        assert_eq!(idx.bin_span(3.0, 1.0), None);
    }

    #[test]
    fn query_range_nan_bounds() {
        let data = [1.0, 2.0, 3.0];
        let idx = BitmapIndex::build(&data, Binner::fixed_width(0.0, 4.0, 4));
        // the total form: NaN selects nothing, never panics
        assert_eq!(idx.query_range(f64::NAN, 2.0).count_ones(), 0);
        assert_eq!(idx.query_range(1.0, f64::NAN).count_ones(), 0);
        assert_eq!(idx.bin_span(f64::NAN, f64::NAN), None);
        // the strict form: NaN is a typed error, valid bounds pass through
        assert!(matches!(
            idx.try_query_range(f64::NAN, 2.0),
            Err(RangeQueryError::NanBound { .. })
        ));
        assert!(matches!(
            idx.try_query_range(1.0, f64::NAN),
            Err(RangeQueryError::NanBound { .. })
        ));
        let ok = idx.try_query_range(1.0, 3.0).unwrap();
        assert_eq!(ok, idx.query_range(1.0, 3.0));
    }

    #[test]
    fn size_much_smaller_than_data_for_smooth_fields() {
        // Smooth data (long runs of equal bins) compresses well — the paper's
        // "<30% of the original data" observation.
        let data: Vec<f64> = (0..100_000)
            .map(|i| (i as f64 / 10_000.0).floor())
            .collect();
        let idx = BitmapIndex::build(&data, Binner::fixed_width(0.0, 10.0, 10));
        assert!(
            idx.size_bytes() < data.len() * 8 / 10,
            "index {} bytes vs data {} bytes",
            idx.size_bytes(),
            data.len() * 8
        );
    }

    #[test]
    fn codec_plan_tracks_bin_population() {
        // Smooth data: every bin is one long coherent run → all WAH.
        let smooth: Vec<f64> = (0..200_000)
            .map(|i| (i as f64 / 20_000.0).floor())
            .collect();
        let idx = BitmapIndex::build(&smooth, Binner::fixed_width(0.0, 10.0, 10));
        assert!(idx.codec_plan().iter().all(|&c| c == CodecId::Wah));

        // Scattered data: every bin is a sparse scatter → all Roaring.
        let scattered: Vec<f64> = (0..200_000u32)
            .map(|i| (i.wrapping_mul(2_654_435_761) % 10) as f64)
            .collect();
        let idx = BitmapIndex::build(&scattered, Binner::fixed_width(0.0, 10.0, 10));
        assert!(idx.codec_plan().iter().all(|&c| c == CodecId::Roaring));

        // The conversion is exact and the costs are per selected codec.
        for (b, cv) in idx.to_codec_bins().into_iter().enumerate() {
            assert_eq!(cv.id(), idx.bin_codec(b));
            assert_eq!(cv.to_wah(), *idx.bin(b));
            assert!(idx.bin_cost_bytes(b) > 0);
        }
    }

    #[test]
    fn slice_rows_splits_exactly() {
        let data: Vec<f64> = (0..1000).map(|i| ((i * 37) % 100) as f64).collect();
        let idx = BitmapIndex::build(&data, Binner::fixed_width(0.0, 100.0, 10));
        for cuts in [
            vec![0u64, 1000],
            vec![0, 250, 600, 1000],
            vec![0, 1, 999, 1000],
        ] {
            for w in cuts.windows(2) {
                let (lo, hi) = (w[0], w[1]);
                let part = idx.slice_rows(lo..hi);
                part.check_consistent().unwrap();
                assert_eq!(part.len(), hi - lo);
                let sub = BitmapIndex::build(
                    &data[lo as usize..hi as usize],
                    Binner::fixed_width(0.0, 100.0, 10),
                );
                for b in 0..10 {
                    assert_eq!(part.bin(b), sub.bin(b), "rows {lo}..{hi} bin {b}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "bin count mismatch")]
    fn from_bins_validates_count() {
        let _ = BitmapIndex::from_bins(Binner::fixed_width(0.0, 1.0, 3), vec![WahVec::zeros(10)]);
    }

    #[test]
    #[should_panic(expected = "share a length")]
    fn from_bins_validates_lengths() {
        let _ = BitmapIndex::from_bins(
            Binner::fixed_width(0.0, 1.0, 2),
            vec![WahVec::zeros(10), WahVec::zeros(11)],
        );
    }
}
