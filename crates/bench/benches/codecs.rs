//! Cross-codec shootout (CBitmapCompetition-style): pattern × density ×
//! codec × kernel, persisted to `BENCH_codecs.json` at the repository
//! root. Compares WAH (adaptive kernels), the Roaring-style container
//! codec, BBC (header-merge vs bytewise A/B), the per-bin auto-selected
//! [`CodecVec`], and the uncompressed verbatim baseline — with
//! bytes-per-bitmap for the compression side of the trade and every
//! timed operation asserted identical to the verbatim oracle before it
//! is measured.
//!
//! `IBIS_CODEC_SMOKE=1` shrinks the element count and writes to
//! `target/BENCH_codecs.smoke.json` instead, so CI can schema-check the
//! report without paying for the full sweep.

use ibis_core::{BbcVec, Bitset, CodecVec, RoaringVec, WahVec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::time::Instant;

/// Mean seconds per iteration (same calibration scheme as the kernel
/// sweep in `micro_kernels.rs`).
fn measure<O>(mut f: impl FnMut() -> O) -> f64 {
    let t0 = Instant::now();
    black_box(f());
    let one = t0.elapsed().as_secs_f64().max(1e-9);
    let iters = ((0.06 / one).round() as u64).clamp(1, 1_000_000_000);
    let samples = 3;
    let mut total = 0.0;
    for _ in 0..samples {
        let t0 = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        total += t0.elapsed().as_secs_f64() / iters as f64;
    }
    total / samples as f64
}

/// One timed point of the shootout.
struct Sample {
    pattern: &'static str,
    density: f64,
    codec: &'static str,
    kernel: &'static str,
    mean_s: f64,
}

/// Same pattern family as the kernel sweep: `sparse_runs` is the
/// fill-heavy regime WAH was designed for; the `*_random` patterns are
/// incompressible noise at increasing density.
fn pattern_bits(name: &str, density: f64, seed: u64, n: usize) -> Vec<bool> {
    match name {
        "sparse_runs" => {
            let offset = seed as usize * 155;
            (0..n)
                .map(|i| ((i + offset) / 310).is_multiple_of(300))
                .collect()
        }
        _ => {
            let mut rng = StdRng::seed_from_u64(0xB17_5EED ^ seed);
            (0..n).map(|_| rng.gen_range(0.0..1.0) < density).collect()
        }
    }
}

const KERNELS: [&str; 6] = ["and_count", "xor_count", "and", "or", "xor", "andnot"];

/// Asserts one materialized result equals the oracle bits — canonical
/// form first, then word-for-word against the oracle's own encoding (so
/// equality is byte-level, not merely population-level).
fn assert_identity(got: &WahVec, want: &[bool], label: &str) {
    got.check_canonical().expect(label);
    let want = WahVec::from_bits(want.iter().copied());
    assert_eq!(got.len(), want.len(), "{label}: length");
    assert_eq!(got.words(), want.words(), "{label}: words");
}

#[allow(clippy::too_many_lines)]
fn main() {
    let smoke = std::env::var("IBIS_CODEC_SMOKE").is_ok_and(|v| v == "1");
    let n: usize = if smoke { 1 << 16 } else { 1 << 20 };
    let patterns: [(&'static str, f64); 5] = [
        ("sparse_runs", 0.0033),
        ("sparse_random", 0.01),
        ("mid_random", 0.10),
        ("dense30_random", 0.30),
        ("dense50_random", 0.50),
    ];
    let mut samples: Vec<Sample> = Vec::new();
    let mut bytes_rows = String::new();
    let mut auto_rows = String::new();
    for (pi, (pattern, density)) in patterns.into_iter().enumerate() {
        let bits_a = pattern_bits(pattern, density, 1, n);
        let bits_b = pattern_bits(pattern, density, 2, n);
        let wa = WahVec::from_bits(bits_a.iter().copied());
        let wb = WahVec::from_bits(bits_b.iter().copied());
        let ra = RoaringVec::from_wah(&wa);
        let rb = RoaringVec::from_wah(&wb);
        let ba = BbcVec::from_bits(bits_a.iter().copied());
        let bb = BbcVec::from_bits(bits_b.iter().copied());
        let va = Bitset::from_bits(bits_a.iter().copied());
        let vb = Bitset::from_bits(bits_b.iter().copied());
        let aa = CodecVec::from_wah_auto(&wa);
        let ab = CodecVec::from_wah_auto(&wb);

        // -- identity gate: every codec must agree with the verbatim
        // oracle on every kernel before anything is timed --
        let want: Vec<(&str, Vec<bool>)> = vec![
            (
                "and",
                bits_a.iter().zip(&bits_b).map(|(&x, &y)| x && y).collect(),
            ),
            (
                "or",
                bits_a.iter().zip(&bits_b).map(|(&x, &y)| x || y).collect(),
            ),
            (
                "xor",
                bits_a.iter().zip(&bits_b).map(|(&x, &y)| x != y).collect(),
            ),
            (
                "andnot",
                bits_a.iter().zip(&bits_b).map(|(&x, &y)| x && !y).collect(),
            ),
        ];
        let count_of = |k: &str| {
            want.iter()
                .find(|(name, _)| *name == k)
                .map(|(_, bits)| bits.iter().filter(|&&x| x).count() as u64)
                .expect("kernel oracle")
        };
        for (k, bits) in &want {
            assert_identity(
                &match *k {
                    "and" => wa.and(&wb),
                    "or" => wa.or(&wb),
                    "xor" => wa.xor(&wb),
                    _ => wa.andnot(&wb),
                },
                bits,
                &format!("{pattern}/wah/{k}"),
            );
            assert_identity(
                &match *k {
                    "and" => ra.and(&rb).to_wah(),
                    "or" => ra.or(&rb).to_wah(),
                    "xor" => ra.xor(&rb).to_wah(),
                    _ => ra.andnot(&rb).to_wah(),
                },
                bits,
                &format!("{pattern}/roaring/{k}"),
            );
            assert_identity(
                &match *k {
                    "and" => aa.and(&ab).to_wah(),
                    "or" => aa.or(&ab).to_wah(),
                    "xor" => aa.xor(&ab).to_wah(),
                    _ => aa.andnot(&ab).to_wah(),
                },
                bits,
                &format!("{pattern}/auto/{k}"),
            );
        }
        for (codec, and_n, xor_n) in [
            ("wah", wa.and_count(&wb), wa.xor_count(&wb)),
            ("roaring", ra.and_count(&rb), ra.xor_count(&rb)),
            ("auto", aa.and_count(&ab), aa.xor_count(&ab)),
            ("bbc", ba.and_count(&bb), count_of("xor")),
            ("bbc_bytewise", ba.and_count_bytewise(&bb), count_of("xor")),
        ] {
            assert_eq!(and_n, count_of("and"), "{pattern}/{codec}/and_count");
            assert_eq!(xor_n, count_of("xor"), "{pattern}/{codec}/xor_count");
        }
        println!("codecs: {pattern} identity checks passed");

        let mut push = |codec, kernel, mean_s| {
            println!(
                "codecs: {pattern}/{codec}/{kernel:<10} mean {:>10.3} us",
                mean_s * 1e6
            );
            samples.push(Sample {
                pattern,
                density,
                codec,
                kernel,
                mean_s,
            });
        };
        push("wah_adaptive", "and_count", measure(|| wa.and_count(&wb)));
        push("wah_adaptive", "xor_count", measure(|| wa.xor_count(&wb)));
        push("wah_adaptive", "and", measure(|| wa.and(&wb)));
        push("wah_adaptive", "or", measure(|| wa.or(&wb)));
        push("wah_adaptive", "xor", measure(|| wa.xor(&wb)));
        push("wah_adaptive", "andnot", measure(|| wa.andnot(&wb)));

        push("roaring", "and_count", measure(|| ra.and_count(&rb)));
        push("roaring", "xor_count", measure(|| ra.xor_count(&rb)));
        push("roaring", "and", measure(|| ra.and(&rb)));
        push("roaring", "or", measure(|| ra.or(&rb)));
        push("roaring", "xor", measure(|| ra.xor(&rb)));
        push("roaring", "andnot", measure(|| ra.andnot(&rb)));

        push("auto", "and_count", measure(|| aa.and_count(&ab)));
        push("auto", "xor_count", measure(|| aa.xor_count(&ab)));
        push("auto", "and", measure(|| aa.and(&ab)));
        push("auto", "or", measure(|| aa.or(&ab)));
        push("auto", "xor", measure(|| aa.xor(&ab)));
        push("auto", "andnot", measure(|| aa.andnot(&ab)));

        push("bbc", "and_count", measure(|| ba.and_count(&bb)));
        push(
            "bbc_bytewise",
            "and_count",
            measure(|| ba.and_count_bytewise(&bb)),
        );
        push(
            "verbatim",
            "and_count",
            measure(|| {
                let mut x = va.clone();
                x.and_assign(&vb);
                x.count_ones()
            }),
        );

        let sep = if pi + 1 == patterns.len() { "" } else { "," };
        bytes_rows.push_str(&format!(
            "    \"{pattern}\": {{\"wah_adaptive\": {}, \"roaring\": {}, \"bbc\": {}, \
             \"auto\": {}, \"verbatim\": {}}}{sep}\n",
            wa.size_bytes(),
            ra.size_bytes(),
            ba.size_bytes(),
            aa.size_bytes(),
            va.size_bytes(),
        ));
        auto_rows.push_str(&format!("    \"{pattern}\": \"{}\"{sep}\n", aa.id().name()));
    }
    write_json(&samples, &bytes_rows, &auto_rows, n, smoke);
}

fn time_of(samples: &[Sample], pattern: &str, codec: &str, kernel: &str) -> f64 {
    samples
        .iter()
        .find(|s| s.pattern == pattern && s.codec == codec && s.kernel == kernel)
        .expect("sample present")
        .mean_s
}

fn write_json(samples: &[Sample], bytes_rows: &str, auto_rows: &str, n: usize, smoke: bool) {
    let patterns: Vec<&str> = {
        let mut seen = Vec::new();
        for s in samples {
            if !seen.contains(&s.pattern) {
                seen.push(s.pattern);
            }
        }
        seen
    };
    let mut out =
        format!("{{\n  \"bits\": {n},\n  \"identity_checked\": true,\n  \"samples\": [\n");
    for (i, s) in samples.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"pattern\": \"{}\", \"density\": {}, \"codec\": \"{}\", \
             \"kernel\": \"{}\", \"mean_s\": {:e}}}{}\n",
            s.pattern,
            s.density,
            s.codec,
            s.kernel,
            s.mean_s,
            if i + 1 == samples.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n  \"bytes_per_bitmap\": {\n");
    out.push_str(bytes_rows);
    out.push_str("  },\n  \"auto_selected\": {\n");
    out.push_str(auto_rows);

    out.push_str("  },\n  \"roaring_over_wah_speedup\": {\n");
    for (pi, p) in patterns.iter().enumerate() {
        out.push_str(&format!("    \"{p}\": {{"));
        for (ki, k) in KERNELS.iter().enumerate() {
            let sp = time_of(samples, p, "wah_adaptive", k) / time_of(samples, p, "roaring", k);
            println!("codecs: {p:<16} {k:<10} roaring/wah speedup {sp:.2}x");
            out.push_str(&format!(
                "\"{k}\": {sp:.3}{}",
                if ki + 1 == KERNELS.len() { "" } else { ", " }
            ));
        }
        out.push_str(&format!(
            "}}{}\n",
            if pi + 1 == patterns.len() { "" } else { "," }
        ));
    }

    out.push_str("  },\n  \"bbc_header_merge_over_bytewise_speedup\": {\n");
    for (pi, p) in patterns.iter().enumerate() {
        let sp = time_of(samples, p, "bbc_bytewise", "and_count")
            / time_of(samples, p, "bbc", "and_count");
        println!("codecs: {p:<16} bbc header-merge/bytewise speedup {sp:.2}x");
        out.push_str(&format!(
            "    \"{p}\": {sp:.3}{}\n",
            if pi + 1 == patterns.len() { "" } else { "," }
        ));
    }

    // Per-kernel ratio of auto over the faster fixed codec (values near
    // 1.0 mean selection rides the winner; a single kernel can exceed it
    // when the other codec specializes in just that kernel).
    out.push_str("  },\n  \"auto_over_best_ratio\": {\n");
    for (pi, p) in patterns.iter().enumerate() {
        out.push_str(&format!("    \"{p}\": {{"));
        for (ki, k) in KERNELS.iter().enumerate() {
            let best =
                time_of(samples, p, "wah_adaptive", k).min(time_of(samples, p, "roaring", k));
            let ratio = time_of(samples, p, "auto", k) / best;
            out.push_str(&format!(
                "\"{k}\": {ratio:.3}{}",
                if ki + 1 == KERNELS.len() { "" } else { ", " }
            ));
        }
        out.push_str(&format!(
            "}}{}\n",
            if pi + 1 == patterns.len() { "" } else { "," }
        ));
    }

    // Per-bin auto-selection must ride the best fixed codec: a selection
    // is fixed before any particular kernel runs, so it is scored on the
    // pattern's total time across all six kernels — flag any pattern
    // where auto is >10% slower than the better of WAH and Roaring.
    out.push_str("  },\n  \"auto_within_10pct_of_best\": {\n");
    for (pi, p) in patterns.iter().enumerate() {
        let total =
            |codec: &str| -> f64 { KERNELS.iter().map(|k| time_of(samples, p, codec, k)).sum() };
        let best = total("wah_adaptive").min(total("roaring"));
        let ok = total("auto") <= best * 1.10;
        println!(
            "codecs: {p:<16} auto/best total ratio {:.3} (within 10%: {ok})",
            total("auto") / best
        );
        out.push_str(&format!(
            "    \"{p}\": {ok}{}\n",
            if pi + 1 == patterns.len() { "" } else { "," }
        ));
    }
    out.push_str("  }\n}\n");

    let path = if smoke {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../target/BENCH_codecs.smoke.json"
        )
    } else {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_codecs.json")
    };
    std::fs::write(path, out).expect("write BENCH_codecs report");
    println!("codecs: wrote {path}");
}
