#![warn(missing_docs)]
//! # ibis-datagen — simulation substrates for in-situ analysis
//!
//! The three workloads the paper evaluates on, implemented from scratch:
//!
//! * [`Heat3D`](heat3d::Heat3D) — 3-D heat diffusion (one variable,
//!   `temperature`); cheap steps, so bitmap generation and I/O dominate.
//!   [`Heat3DPartition`](heat3d::Heat3DPartition) is its z-slab-distributed
//!   form with explicit halo exchange for the cluster experiment.
//! * [`MiniLulesh`](lulesh::MiniLulesh) — a Lagrangian shock-hydro proxy
//!   producing the same 12 node arrays as LULESH (coordinates / force /
//!   velocity / acceleration × X/Y/Z); expensive steps, so simulation
//!   dominates.
//! * [`OceanModel`](ocean::OceanModel) — a synthetic stand-in for the POP
//!   ocean dataset with *planted* temperature–salinity correlation inside a
//!   known latitude band, so correlation-mining results can be verified
//!   against ground truth.
//!
//! Every simulation implements [`Simulation`], yielding a [`StepOutput`]
//! (named `f64` arrays) per time-step — the unit the in-situ pipeline
//! consumes.

pub mod field;
pub mod heat3d;
pub mod lulesh;
pub mod ocean;

pub use field::{Field, StepOutput};
pub use heat3d::{Heat3D, Heat3DConfig, Heat3DPartition};
pub use lulesh::{LuleshConfig, MiniLulesh, LULESH_FIELDS};
pub use ocean::{OceanConfig, OceanModel, OCEAN_FIELDS};

/// A time-stepped simulation producing named output arrays.
pub trait Simulation: Send {
    /// Advances one time-step and returns its complete output.
    fn step(&mut self) -> StepOutput;

    /// Elements per output array.
    fn num_elements(&self) -> usize;

    /// Human-readable workload name.
    fn name(&self) -> &'static str;

    /// Bytes of internal state the simulation itself keeps resident (mesh
    /// buffers, double-buffered fields, connectivity). Charged to the
    /// memory tracker for the paper's Figure 11 accounting; defaults to 0
    /// for analytic generators.
    fn resident_bytes(&self) -> usize {
        0
    }

    /// The structured-grid shape of each output array as `[d0, d1, d2]`
    /// with the last axis fastest (row-major), or `None` for unstructured
    /// or mesh-based outputs. Spatial row orders (Z-order, Hilbert) need
    /// this to interleave coordinates; data-ordered and identity layouts
    /// don't.
    fn grid_dims(&self) -> Option<[usize; 3]> {
        None
    }

    /// Runs `n` steps, collecting all outputs (convenience for tests and
    /// offline analysis; in-situ pipelines consume steps one at a time).
    fn run(&mut self, n: usize) -> Vec<StepOutput> {
        (0..n).map(|_| self.step()).collect()
    }
}

impl Simulation for Box<dyn Simulation> {
    fn step(&mut self) -> StepOutput {
        (**self).step()
    }

    fn num_elements(&self) -> usize {
        (**self).num_elements()
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn resident_bytes(&self) -> usize {
        (**self).resident_bytes()
    }

    fn grid_dims(&self) -> Option<[usize; 3]> {
        (**self).grid_dims()
    }
}
