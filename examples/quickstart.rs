//! Quickstart: build a WAH bitmap index over one array, query it, and
//! compute analyses from the bitmaps alone.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ibis::analysis::entropy::{
    conditional_entropy_full, conditional_entropy_index, shannon_entropy_index,
};
use ibis::core::{Binner, BitmapIndex};

fn main() {
    // A smooth synthetic field, as a simulation time-step would produce.
    let n = 1_000_000;
    let step_a: Vec<f64> = (0..n).map(|i| field(i, 0.0)).collect();
    let step_b: Vec<f64> = (0..n).map(|i| field(i, 0.8)).collect();

    // One binning scale shared by every time-step — 1 decimal digit, the
    // paper's Heat3D configuration.
    let binner = Binner::precision(-2.0, 2.0, 1);
    println!("binning: {} bins of width 0.1 over [-2, 2]", binner.nbins());

    // Build the index with the streaming Algorithm 1 (one pass, compressed
    // in place; the raw data could now be discarded).
    let index_a = BitmapIndex::build(&step_a, binner.clone());
    let index_b = BitmapIndex::build(&step_b, binner.clone());

    let raw_bytes = n * 8;
    println!(
        "raw step: {:.1} MB   bitmap index: {:.2} MB   ({:.1}% of raw)",
        raw_bytes as f64 / 1e6,
        index_a.size_bytes() as f64 / 1e6,
        100.0 * index_a.size_bytes() as f64 / raw_bytes as f64
    );

    // The index is an exact histogram…
    let total: u64 = index_a.counts().iter().sum();
    assert_eq!(total, n as u64);

    // …answers range queries with compressed ORs…
    let hits = index_a.query_range(0.5, 1.0);
    println!(
        "elements with value in [0.5, 1.0): {} of {}",
        hits.count_ones(),
        n
    );

    // …and supports the paper's analyses without the data.
    let h = shannon_entropy_index(&index_a);
    let ce_bitmaps = conditional_entropy_index(&index_b, &index_a);
    let ce_full = conditional_entropy_full(&step_b, &step_a, &binner, &binner);
    println!("Shannon entropy of step A: {h:.4} bits");
    println!("H(B|A) from bitmaps:   {ce_bitmaps:.6} bits");
    println!("H(B|A) from full data: {ce_full:.6} bits");
    assert_eq!(ce_bitmaps, ce_full, "bitmap analytics are exact");
    println!("bitmap and full-data results are identical — no accuracy loss");
}

fn field(i: usize, phase: f64) -> f64 {
    let x = i as f64 * 1e-4;
    (x + phase).sin() + 0.5 * (3.0 * x - phase).cos() * (0.2 * x).sin()
}
