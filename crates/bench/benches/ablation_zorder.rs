//! Ablation bench — run with `cargo bench -p ibis-bench --bench ablation_zorder`.

fn main() {
    ibis_bench::ablations::ablation_zorder();
}
