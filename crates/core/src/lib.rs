#![warn(missing_docs)]
//! # ibis-core — WAH bitmaps and bitmap indices for in-situ analysis
//!
//! The summary structure at the heart of the HPDC'15 paper *"In-Situ Bitmaps
//! Generation and Efficient Data Analysis based on Bitmaps"*:
//!
//! * [`WahVec`] — a WAH-compressed bitvector (31-bit segments, bit-counted
//!   fills) supporting AND/OR/XOR and popcounts directly on the compressed
//!   words.
//! * [`WahBuilder`] / [`MultiWahBuilder`] — the paper's Algorithm 1:
//!   streaming, in-place compression with O(bins) working state, suitable
//!   for memory-constrained in-situ generation. Ingestion runs a fused
//!   bin+compress fast path ([`MultiWahBuilder::extend_binned`]): 31-element
//!   segments are binned branchlessly, constant segments collapse into O(1)
//!   fill extensions, and concatenation splices literals word-at-a-time.
//! * [`Binner`] — value-to-bin mapping (distinct integers, fixed width,
//!   decimal precision, explicit edges) plus [`Binner::coarsen`] for
//!   multi-level indices.
//! * [`BitmapIndex`] / [`MultiLevelIndex`] — per-variable per-time-step
//!   indices; cached bin popcounts double as exact histograms.
//! * [`parallel`] — sub-block-parallel generation with 31-aligned seams
//!   (Figure 2's distributed bitmaps generation).
//! * [`ZOrderLayout`] — Morton-order traversal so contiguous bit ranges are
//!   compact spatial blocks (the miner's spatial units).
//! * [`Bitset`] — uncompressed oracle/baseline.
//! * [`RoaringVec`] and the sealed [`Codec`] roof — Roaring-style container
//!   bitmaps plus per-bin codec auto-selection ([`select_codec`]), for the
//!   scattered-bit patterns where WAH degenerates to literal words.

pub mod bbc;
mod binning;
mod builder;
pub mod codec;
mod index;
mod kernels;
pub mod lossy;
mod multilevel;
mod ops;
pub mod parallel;
pub mod roaring;
pub mod roworder;
mod runs;
mod verbatim;
pub mod wah;
pub mod zorder;

pub use bbc::BbcVec;
pub use binning::{Binner, BinnerSpec};
pub use builder::{MultiWahBuilder, WahBuilder};
pub use codec::{select_codec, Codec, CodecId, CodecVec};
pub use index::{BitmapIndex, RangeQueryError};
pub use kernels::{DenseBits, PreparedOperand, WahStats};
pub use lossy::{build_lossy_index, valid_fpr, LossyStats, FPR_MAX, FPR_MIN};
pub use multilevel::MultiLevelIndex;
pub use parallel::{aligned_partition, build_index_parallel, build_index_parallel_permuted};
pub use roaring::{ContainerForm, RoaringVec, ARRAY_MAX, CONTAINER_BITS};
pub use roworder::{RowOrder, RowPermutation};
pub use verbatim::{build_index_two_phase, Bitset};
pub use wah::{RawWahError, WahVec};
pub use zorder::ZOrderLayout;
