//! Property tests for the batched generation fast path: the fused
//! bin+compress loop (`MultiWahBuilder::extend_binned`), the word-level
//! `append_wah` splice, builder reuse, and the scratch binning API — each
//! checked byte-identical against its element-at-a-time oracle.

use ibis_core::{
    Binner, BitmapIndex, MultiWahBuilder, RowOrder, RowPermutation, WahBuilder, WahVec,
};
use proptest::prelude::*;

/// Values laced with NaN and out-of-range extremes (the clamp paths).
fn value() -> impl Strategy<Value = f64> {
    prop_oneof![
        -120.0f64..120.0,
        -120.0f64..120.0,
        -120.0f64..120.0,
        Just(f64::NAN),
        prop_oneof![
            Just(-1e30f64),
            Just(1e30),
            Just(f64::INFINITY),
            Just(f64::NEG_INFINITY)
        ],
    ]
}

/// Field shapes spanning the fast path's regimes: pure noise (mixed
/// segments), constants (one long run), run-heavy piecewise-constant data
/// (the smooth-simulation-field regime), and smooth ramps.
fn field() -> impl Strategy<Value = Vec<f64>> {
    prop_oneof![
        proptest::collection::vec(value(), 0..700),
        (value(), 0usize..700).prop_map(|(v, n)| vec![v; n]),
        proptest::collection::vec((value(), 1usize..200), 0..10).prop_map(|runs| {
            runs.into_iter()
                .flat_map(|(v, n)| std::iter::repeat_n(v, n))
                .collect()
        }),
        (0usize..700, -50.0f64..50.0, 0.0f64..0.5)
            .prop_map(|(n, base, slope)| (0..n).map(|i| base + slope * i as f64).collect()),
    ]
}

/// All binner kinds: fixed-width, decimal precision, distinct ints, and
/// explicit edges (the non-branchless fallback arm).
fn binner() -> impl Strategy<Value = Binner> {
    prop_oneof![
        (1usize..40).prop_map(|n| Binner::fixed_width(-100.0, 100.0, n)),
        Just(Binner::precision(-100.0, 100.0, 0)),
        Just(Binner::distinct_ints(-100, 100)),
        (2usize..12).prop_map(|n| {
            Binner::from_edges(
                (0..=n)
                    .map(|i| -100.0 + 200.0 * i as f64 / n as f64)
                    .collect(),
            )
        }),
    ]
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// The element-at-a-time reference: one `bin_of` + one `push` per value.
fn scalar_oracle(binner: &Binner, data: &[f64]) -> Vec<WahVec> {
    let mut mb = MultiWahBuilder::new(binner.nbins());
    for &v in data {
        mb.push(binner.bin_of(v));
    }
    mb.finish()
}

proptest! {
    #[test]
    fn extend_binned_matches_scalar_push(data in field(), binner in binner()) {
        let mut mb = MultiWahBuilder::new(binner.nbins());
        mb.extend_binned(&binner, &data);
        let fast = mb.finish();
        let slow = scalar_oracle(&binner, &data);
        prop_assert_eq!(fast.len(), slow.len());
        for (f, s) in fast.iter().zip(&slow) {
            prop_assert_eq!(f, s, "fast path diverged from the push oracle");
            f.check_canonical().unwrap();
        }
    }

    #[test]
    fn extend_binned_split_calls_match(data in field(), binner in binner(), cut in 0.0f64..1.0) {
        // Two batched calls with an arbitrary (usually unaligned) seam must
        // equal one call — the seam exercises the scalar head path.
        let cut = (cut * data.len() as f64) as usize;
        let mut mb = MultiWahBuilder::new(binner.nbins());
        mb.extend_binned(&binner, &data[..cut]);
        mb.extend_binned(&binner, &data[cut..]);
        let split = mb.finish();
        let slow = scalar_oracle(&binner, &data);
        for (f, s) in split.iter().zip(&slow) {
            prop_assert_eq!(f, s);
        }
    }

    #[test]
    fn interleaved_push_and_batch_match(data in field(), binner in binner()) {
        // Scalar pushes before and after a batched call (arbitrary alignment
        // on both sides).
        let third = data.len() / 3;
        let mut mb = MultiWahBuilder::new(binner.nbins());
        for &v in &data[..third] {
            mb.push(binner.bin_of(v));
        }
        mb.extend_binned(&binner, &data[third..2 * third]);
        for &v in &data[2 * third..] {
            mb.push(binner.bin_of(v));
        }
        let mixed = mb.finish();
        let slow = scalar_oracle(&binner, &data);
        for (f, s) in mixed.iter().zip(&slow) {
            prop_assert_eq!(f, s);
        }
    }

    #[test]
    fn index_build_matches_build_scalar(data in field(), binner in binner()) {
        let fast = BitmapIndex::build(&data, binner.clone());
        let slow = BitmapIndex::build_scalar(&data, binner);
        for b in 0..fast.nbins() {
            prop_assert_eq!(fast.bin(b), slow.bin(b), "bin {} differs", b);
        }
        fast.check_consistent().unwrap();
    }

    #[test]
    fn permuted_build_matches_scalar_on_reordered_stream(data in field(), binner in binner()) {
        // The reorder pass feeds `extend_binned` a *gathered* stream whose
        // run structure differs from the input's; the fused constant-segment
        // detection must stay byte-identical to the scalar oracle over the
        // explicitly reordered data.
        for order in [RowOrder::GrayBin, RowOrder::HistogramSorted] {
            let Some(p) = order.permutation(&[], &binner, &data) else {
                continue;
            };
            let fused = BitmapIndex::build_permuted(&data, binner.clone(), &p);
            let reordered = p.reorder(&data);
            let slow = BitmapIndex::build_scalar(&reordered, binner.clone());
            for b in 0..fused.nbins() {
                prop_assert_eq!(fused.bin(b), slow.bin(b), "bin {} differs", b);
                fused.bin(b).check_canonical().unwrap();
            }
        }
    }

    #[test]
    fn permuted_build_matches_scalar_under_coherence_breaking_gather(
        data in field(), stride in 1usize..64
    ) {
        // Adversarial direction: a coprime-stride gather *scatters* the
        // run-heavy inputs, so constant input segments land fragmented and
        // the fast path's segment detection must re-derive runs from the
        // gathered stream, not the source layout.
        let n = data.len();
        if n > 1 {
            let stride = (stride..).find(|s| gcd(*s, n) == 1).unwrap();
            let perm: Vec<u32> = (0..n).map(|i| ((i * stride) % n) as u32).collect();
            let p = RowPermutation::from_gather(perm);
            let binner = Binner::precision(-100.0, 100.0, 0);
            let fused = BitmapIndex::build_permuted(&data, binner.clone(), &p);
            let slow = BitmapIndex::build_scalar(&p.reorder(&data), binner);
            for b in 0..fused.nbins() {
                prop_assert_eq!(fused.bin(b), slow.bin(b), "bin {} differs", b);
            }
        }
    }

    #[test]
    fn parallel_build_identical_on_runs(data in field(), binner in binner()) {
        // Run-heavy fields drive the cross-segment run detection inside each
        // sub-block; the 31-aligned seams must still concatenate exactly.
        let seq = BitmapIndex::build(&data, binner.clone());
        let par = ibis_core::build_index_parallel(&data, binner);
        for b in 0..seq.nbins() {
            prop_assert_eq!(seq.bin(b), par.bin(b), "bin {} differs", b);
        }
    }

    #[test]
    fn append_wah_unaligned_matches_bit_oracle(
        head in proptest::collection::vec(any::<bool>(), 0..40),
        tails in proptest::collection::vec(
            proptest::collection::vec(any::<bool>(), 0..200), 0..4),
    ) {
        // Word-splice concat at every alignment vs pushing each bit.
        let mut fast = WahBuilder::new();
        let mut slow = WahBuilder::new();
        for &b in &head {
            fast.push_bit(b);
            slow.push_bit(b);
        }
        for tail in &tails {
            fast.append_wah(&WahVec::from_bits(tail.iter().copied()));
            for &b in tail {
                slow.push_bit(b);
            }
        }
        let (f, s) = (fast.finish(), slow.finish());
        prop_assert_eq!(&f, &s);
        f.check_canonical().unwrap();
    }

    #[test]
    fn append_bits_matches_push_bits(
        chunks in proptest::collection::vec((any::<u32>(), 0u8..32), 0..30)
    ) {
        let mut fast = WahBuilder::new();
        let mut slow = WahBuilder::new();
        for &(raw, nbits) in &chunks {
            let payload = if nbits == 0 { 0 } else { raw & ((1u32 << nbits) - 1) };
            fast.append_bits(payload, nbits);
            for j in 0..nbits {
                slow.push_bit(payload & (1 << j) != 0);
            }
        }
        let (f, s) = (fast.finish(), slow.finish());
        prop_assert_eq!(&f, &s);
        f.check_canonical().unwrap();
    }

    #[test]
    fn finish_reset_reuse_is_clean(a in field(), b in field(), binner in binner()) {
        // A builder reused via finish_reset must not leak state between
        // streams — the second stream's output equals a fresh build.
        let mut mb = MultiWahBuilder::new(binner.nbins());
        mb.extend_binned(&binner, &a);
        let first = mb.finish_reset();
        prop_assert_eq!(first.len(), binner.nbins());
        mb.extend_binned(&binner, &b);
        let second = mb.finish_reset();
        let fresh = scalar_oracle(&binner, &b);
        for (f, s) in second.iter().zip(&fresh) {
            prop_assert_eq!(f, s, "reused builder leaked state");
        }
    }

    #[test]
    fn bin_into_matches_bin_of(data in field(), binner in binner()) {
        let mut ids = vec![7u32; 3]; // junk that must be overwritten
        binner.bin_into(&data, &mut ids);
        prop_assert_eq!(ids.len(), data.len());
        for (&id, &v) in ids.iter().zip(&data) {
            prop_assert_eq!(id, binner.bin_of(v));
        }
    }
}

/// Deterministic stress: very long constant stretches cross the fill-word
/// capacity (MAX_FILL splitting) and many segments of deficit.
#[test]
fn long_runs_cross_fill_capacity() {
    let binner = Binner::distinct_ints(0, 3);
    let mut data = Vec::new();
    for (bin, len) in [(0u32, 31 * 4000), (2, 17), (1, 31 * 2500), (3, 1)] {
        data.extend(std::iter::repeat_n(bin as f64, len));
    }
    let mut mb = MultiWahBuilder::new(binner.nbins());
    mb.extend_binned(&binner, &data);
    let fast = mb.finish();
    let slow = scalar_oracle(&binner, &data);
    assert_eq!(fast, slow);
    for f in &fast {
        f.check_canonical().unwrap();
    }
}

/// The generation counters actually tick in instrumented builds (and this
/// test simply doesn't run in `--no-default-features` twins, where the
/// registry const-folds away).
#[cfg(feature = "obs")]
#[test]
fn generation_counters_tick() {
    let before = ibis_obs::global()
        .counter("generation.segments.fast")
        .value();
    let data = vec![1.0f64; 31 * 64];
    let binner = Binner::distinct_ints(0, 4);
    let mut mb = MultiWahBuilder::new(binner.nbins());
    mb.extend_binned(&binner, &data);
    let _ = mb.finish();
    let after = ibis_obs::global()
        .counter("generation.segments.fast")
        .value();
    assert!(
        after >= before + 64,
        "expected ≥64 fast segments recorded, got {before} -> {after}"
    );
}
