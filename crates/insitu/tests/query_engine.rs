//! Integration tests for the query-serving layer against real run
//! directories: the adversarial query corpus (no input may panic the
//! engine — everything surfaces as a structured [`IbisError`], in both obs
//! configurations since this file runs under each), the out-of-range
//! region regression the panic-free rewrite exists for, and a
//! multi-threaded stress test of the sharded cache.

use ibis_analysis::{Metric, QueryError, SubsetQuery};
use ibis_core::{Binner, BitmapIndex, RowOrder};
use ibis_datagen::{OceanConfig, OceanModel};
use ibis_insitu::engine::parse_batch;
use ibis_insitu::{
    pipeline::pending_checkpoint, resume_durable, run_durable, CachedStore, CoreAllocation,
    FaultPlan, IbisError, MachineModel, PipelineConfig, QueryAnswer, QueryEngine, QueryRequest,
    Reduction, RobustnessConfig, ScalingModel, Store, StoreWriter, ORDER_VARIABLE,
};
use std::path::PathBuf;
use std::sync::Arc;

const N: usize = 4096;

fn field(step: usize, phase: usize) -> Vec<f64> {
    (0..N)
        .map(|i| ((i * 7 + step * 13 + phase * 101) % 640) as f64 / 16.0)
        .collect()
}

/// Builds a real durable store: 3 steps × 2 variables.
fn build_store(name: &str) -> (PathBuf, Store) {
    let dir = std::env::temp_dir().join(format!("ibis-qe-{name}"));
    std::fs::remove_dir_all(&dir).ok();
    let mut w = StoreWriter::create(&dir).unwrap();
    for step in [0usize, 4, 9] {
        for (phase, var) in ["temperature", "salinity"].iter().enumerate() {
            let idx = BitmapIndex::build(&field(step, phase), Binner::fixed_width(0.0, 40.0, 64));
            w.put(step, var, &idx).unwrap();
        }
    }
    w.finish().unwrap();
    let store = Store::open(&dir).unwrap();
    (dir, store)
}

#[test]
fn out_of_range_region_on_live_store_is_err_not_panic() {
    let (dir, store) = build_store("oob-region");
    let engine = QueryEngine::new(CachedStore::new(store, 64 << 20));
    let err = engine
        .run(&QueryRequest::Subset {
            step: 0,
            variable: "temperature".into(),
            query: SubsetQuery::region(0..(N as u64) * 10),
        })
        .unwrap_err();
    match err {
        IbisError::Query(QueryError::RegionOutOfRange { start, end, len }) => {
            assert_eq!((start, end, len), (0, N as u64 * 10, N as u64));
        }
        other => panic!("expected RegionOutOfRange, got {other}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn adversarial_corpus_returns_structured_errors() {
    let (dir, store) = build_store("adversarial");
    let engine = QueryEngine::new(CachedStore::new(store, 64 << 20));

    // --- typed API corpus: NaN bounds (inexpressible in strict JSON) ---
    for (lo, hi) in [(f64::NAN, 5.0), (5.0, f64::NAN), (f64::NAN, f64::NAN)] {
        let err = engine
            .run(&QueryRequest::Subset {
                step: 0,
                variable: "temperature".into(),
                query: SubsetQuery::value(lo, hi),
            })
            .unwrap_err();
        assert!(matches!(err, IbisError::Query(QueryError::NanBound { .. })));
    }
    // inverted / empty value intervals are NOT errors: empty selections
    for (lo, hi) in [(9.0, 3.0), (7.0, 7.0)] {
        let ans = engine
            .run(&QueryRequest::Subset {
                step: 0,
                variable: "temperature".into(),
                query: SubsetQuery::value(lo, hi),
            })
            .unwrap();
        assert_eq!(
            ans,
            QueryAnswer::Subset {
                selected: 0,
                of: N as u64
            }
        );
    }
    // unknown variable / step
    for (step, var) in [(0usize, "vorticity"), (3, "temperature")] {
        let err = engine
            .run(&QueryRequest::Subset {
                step,
                variable: var.into(),
                query: SubsetQuery::all(),
            })
            .unwrap_err();
        assert!(matches!(err, IbisError::NotFound { .. }), "{err}");
    }

    // --- JSON batch corpus: every document either parses or errors ---
    let corpus: &[&str] = &[
        "",
        "\u{0}\u{1}\u{2}",
        "{\"queries\": [",
        "{\"queries\": {}}",
        "[1,2,3]",
        r#"{"queries": [{"kind": "subset", "variable": 7}]}"#,
        r#"{"queries": [{"kind": "subset", "variable": "temperature", "value_range": [1e400, 2]}]}"#,
        r#"{"queries": [{"kind": "subset", "variable": "temperature", "region": [2, 1e300]}]}"#,
        r#"{"queries": [{"kind": "correlation", "var_a": "temperature", "var_b": "salinity", "step": 99999999}]}"#,
        r#"{"queries": [{"kind": "subset", "variable": "temperature", "region": [4096, 0]}]}"#,
    ];
    for doc in corpus {
        // must never panic; a top-level Err must be BadRequest
        match engine.run_batch_json(doc) {
            Ok(answers) => assert!(answers.starts_with("{\"answers\""), "{doc:?}"),
            Err(IbisError::BadRequest { .. }) => {}
            Err(other) => panic!("{doc:?} → unexpected error class {other}"),
        }
    }
    // deep nesting is bounded, not a stack overflow
    let deep = format!("{{\"queries\": {}1{}}}", "[".repeat(500), "]".repeat(500));
    assert!(matches!(
        parse_batch(&deep),
        Err(IbisError::BadRequest { .. })
    ));

    // an inverted region *through the JSON protocol* is a per-query error,
    // inline, and the rest of the batch still answers
    let out = engine
        .run_batch_json(
            r#"{"queries": [
                {"kind": "subset", "variable": "temperature", "region": [4000, 100]},
                {"kind": "subset", "variable": "temperature"}
            ]}"#,
        )
        .unwrap();
    assert!(out.contains("\"error\""), "{out}");
    assert!(out.contains(&format!("\"selected\": {N}")), "{out}");
    std::fs::remove_dir_all(&dir).ok();
}

/// Same data as [`build_store`], stored under a non-identity row order
/// with the inverse permutation persisted per step.
fn build_reordered_store(name: &str, order: RowOrder) -> (PathBuf, Store) {
    let dir = std::env::temp_dir().join(format!("ibis-qe-{name}"));
    std::fs::remove_dir_all(&dir).ok();
    let mut w = StoreWriter::create(&dir).unwrap();
    let binner = Binner::fixed_width(0.0, 40.0, 64);
    for step in [0usize, 4, 9] {
        // one permutation per step, derived from the first variable
        let p = order
            .permutation(&[], &binner, &field(step, 0))
            .expect("non-trivial data must yield a real permutation");
        for (phase, var) in ["temperature", "salinity"].iter().enumerate() {
            let idx = BitmapIndex::build_permuted(&field(step, phase), binner.clone(), &p);
            w.put(step, var, &idx).unwrap();
        }
        w.put_order(step, order, &p).unwrap();
    }
    w.finish().unwrap();
    let store = Store::open(&dir).unwrap();
    (dir, store)
}

#[test]
fn reordered_store_matches_identity_store_through_engine() {
    let (dir_i, store_i) = build_store("order-identity");
    let (dir_r, store_r) = build_reordered_store("order-histsorted", RowOrder::HistogramSorted);
    let identity = QueryEngine::new(CachedStore::new(store_i, 64 << 20));
    let reordered = QueryEngine::new(CachedStore::new(store_r, 64 << 20));

    for step in [0usize, 4, 9] {
        // engine answers — value, region, and combined predicates, plus a
        // correlation — must be indistinguishable from the identity store
        let queries = [
            SubsetQuery::value(3.0, 17.0),
            SubsetQuery::region(100..2000),
            SubsetQuery::value(5.0, 30.0).with_region(7..3001),
        ];
        for (phase, var) in ["temperature", "salinity"].iter().enumerate() {
            let _ = phase;
            for q in &queries {
                let req = QueryRequest::Subset {
                    step,
                    variable: (*var).into(),
                    query: q.clone(),
                };
                assert_eq!(
                    reordered.run(&req).unwrap(),
                    identity.run(&req).unwrap(),
                    "step {step} {var} diverged"
                );
            }
        }
        let corr = QueryRequest::Correlation {
            step,
            var_a: "temperature".into(),
            var_b: "salinity".into(),
            query_a: SubsetQuery::value(2.0, 25.0),
            query_b: SubsetQuery::region(0..(N as u64 / 2)),
        };
        assert_eq!(reordered.run(&corr).unwrap(), identity.run(&corr).unwrap());

        // raw selections: the reordered store's selection, mapped through
        // the persisted inverse permutation, is *byte-identical* to the
        // identity store's (same WAH words, not just the same count)
        let loaded = reordered
            .cache()
            .get_order(step)
            .unwrap()
            .expect("order blob");
        let (stored_order, perm) = loaded.as_ref();
        assert_eq!(*stored_order, RowOrder::HistogramSorted);
        for var in ["temperature", "salinity"] {
            let ml_r = reordered.cache().get(var, step).unwrap();
            let ml_i = identity.cache().get(var, step).unwrap();
            let q = SubsetQuery::value(5.0, 30.0).with_region(7..3001);
            let sel_r = q.evaluate_ml_mapped(&ml_r, perm).unwrap();
            let sel_i = q.evaluate_ml(&ml_i).unwrap();
            assert_eq!(perm.map_selection_to_original(&sel_r), sel_i);
        }
    }
    std::fs::remove_dir_all(&dir_i).ok();
    std::fs::remove_dir_all(&dir_r).ok();
}

/// Builds a durable store like [`build_store`] plus a lossy superset
/// companion for every `(step, variable)`.
fn build_lossy_store(name: &str, fpr: f64) -> (PathBuf, Store) {
    let dir = std::env::temp_dir().join(format!("ibis-qe-{name}"));
    std::fs::remove_dir_all(&dir).ok();
    let mut w = StoreWriter::create(&dir).unwrap();
    for step in [0usize, 4, 9] {
        for (phase, var) in ["temperature", "salinity"].iter().enumerate() {
            let idx = BitmapIndex::build(&field(step, phase), Binner::fixed_width(0.0, 40.0, 64));
            let (lossy, stats) = idx.lossy(fpr);
            w.put(step, var, &idx).unwrap();
            w.put_lossy(step, var, &lossy, fpr, &stats).unwrap();
        }
    }
    w.finish().unwrap();
    let store = Store::open(&dir).unwrap();
    (dir, store)
}

#[test]
fn lossy_filtered_engine_is_byte_identical_to_exact_engine() {
    let (dir_l, store_l) = build_lossy_store("lossy-oracle", 1e-2);
    let (dir_e, store_e) = build_store("lossy-oracle-exact");
    let lossy = QueryEngine::new(CachedStore::new(store_l, 64 << 20)).with_lossy_fpr(1e-2);
    assert_eq!(lossy.lossy_fpr(), Some(1e-2));
    let exact = QueryEngine::new(CachedStore::new(store_e, 64 << 20));

    let queries = [
        SubsetQuery::value(3.0, 17.0),
        SubsetQuery::value(0.0, 40.0),
        SubsetQuery::value(39.9, 40.0),
        SubsetQuery::value(17.0, 3.0), // inverted → empty
        SubsetQuery::region(100..2000),
        SubsetQuery::value(5.0, 30.0).with_region(7..3001),
        SubsetQuery::value(12.25, 12.5).with_region(0..64),
    ];
    for step in [0usize, 4, 9] {
        for var in ["temperature", "salinity"] {
            for q in &queries {
                let req = QueryRequest::Subset {
                    step,
                    variable: var.into(),
                    query: q.clone(),
                };
                assert_eq!(
                    lossy.run(&req).unwrap(),
                    exact.run(&req).unwrap(),
                    "step {step} {var} {q:?} diverged"
                );
            }
        }
    }
    std::fs::remove_dir_all(&dir_l).ok();
    std::fs::remove_dir_all(&dir_e).ok();
}

#[test]
fn empty_lossy_filter_skips_the_exact_load() {
    let (dir, store) = build_lossy_store("lossy-shortcircuit", 1e-2);
    let engine = QueryEngine::new(CachedStore::new(store, 64 << 20)).with_lossy_fpr(1e-2);
    // a predicate no row can match: the companion proves the answer empty
    let answer = engine
        .run(&QueryRequest::Subset {
            step: 0,
            variable: "temperature".into(),
            query: SubsetQuery::value(17.0, 3.0), // inverted → empty
        })
        .unwrap();
    assert_eq!(
        answer,
        QueryAnswer::Subset {
            selected: 0,
            of: N as u64
        }
    );
    let stats = engine.cache_stats();
    assert_eq!(
        (stats.hits, stats.misses),
        (0, 0),
        "exact index must never be loaded for a provably-empty answer"
    );
    // a matching predicate then loads the exact index exactly once
    engine
        .run(&QueryRequest::Subset {
            step: 0,
            variable: "temperature".into(),
            query: SubsetQuery::value(3.0, 17.0),
        })
        .unwrap();
    assert_eq!(engine.cache_stats().misses, 1);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn lossy_engine_ignores_companions_above_its_fpr_ceiling() {
    let (dir, store) = build_lossy_store("lossy-ceiling", 1e-1);
    // engine ceiling 1e-3 < stored 1e-1: the companion must be ignored,
    // every answer comes from the exact path
    let engine = QueryEngine::new(CachedStore::new(store, 64 << 20)).with_lossy_fpr(1e-3);
    engine
        .run(&QueryRequest::Subset {
            step: 0,
            variable: "temperature".into(),
            query: SubsetQuery::value(-10.0, -5.0),
        })
        .unwrap();
    assert_eq!(
        engine.cache_stats().misses,
        1,
        "an over-ceiling companion must not filter"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn reordered_durable_run_resumes_byte_identical_and_answers_like_identity() {
    let cfg = |row_order: RowOrder| PipelineConfig {
        machine: MachineModel::xeon32(),
        cores: 4,
        allocation: CoreAllocation::Shared,
        reduction: Reduction::Bitmaps,
        steps: 11,
        select_k: 4,
        metric: Metric::ConditionalEntropy,
        binners: Vec::new(),
        per_step_precision: Some(0),
        row_order,
        queue_capacity: 2,
        sim_scaling: ScalingModel::heat3d(),
        robustness: RobustnessConfig::default(),
    };
    let tmp = |name: &str| {
        let dir = std::env::temp_dir().join(format!("ibis-qe-{}-{name}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    };
    let contents = |dir: &PathBuf| {
        let mut out = std::collections::BTreeMap::new();
        for entry in std::fs::read_dir(dir).unwrap() {
            let entry = entry.unwrap();
            out.insert(
                entry.file_name().to_string_lossy().into_owned(),
                std::fs::read(entry.path()).unwrap(),
            );
        }
        out
    };

    let clean_dir = tmp("ord-clean");
    let crash_dir = tmp("ord-crash");
    let ident_dir = tmp("ord-ident");
    let order = RowOrder::HistogramSorted;

    let clean = run_durable(
        OceanModel::new(OceanConfig::tiny()),
        &cfg(order),
        &clean_dir,
    )
    .unwrap();
    assert_eq!(clean.selected.len(), 4);
    // the reorder pass actually persisted inverse permutations
    assert!(
        contents(&clean_dir)
            .keys()
            .any(|f| f.contains(ORDER_VARIABLE)),
        "a data-dependent order must leave permutation blobs behind"
    );

    // killed mid-run, then resumed: byte-identical, order blobs included —
    // this crosses the checkpoint, which must carry buffered permutations
    let mut killed = cfg(order);
    killed.robustness.faults = FaultPlan::none().with_kill_at_step(6);
    let err = run_durable(OceanModel::new(OceanConfig::tiny()), &killed, &crash_dir).unwrap_err();
    assert_eq!(err, IbisError::Killed { step: 6 });
    assert!(pending_checkpoint(&crash_dir).is_some());
    let resumed = resume_durable(
        OceanModel::new(OceanConfig::tiny()),
        &cfg(order),
        &crash_dir,
    )
    .unwrap();
    assert_eq!(resumed.selected, clean.selected);
    assert_eq!(contents(&clean_dir), contents(&crash_dir));

    // and the reordered store answers exactly like an identity-order run
    let ident = run_durable(
        OceanModel::new(OceanConfig::tiny()),
        &cfg(RowOrder::Identity),
        &ident_dir,
    )
    .unwrap();
    assert_eq!(ident.selected, clean.selected);
    let reordered = QueryEngine::new(CachedStore::new(Store::open(&crash_dir).unwrap(), 64 << 20));
    let identity = QueryEngine::new(CachedStore::new(Store::open(&ident_dir).unwrap(), 64 << 20));
    for &step in &clean.selected {
        let vars: Vec<String> = identity
            .cache()
            .store()
            .variables(step)
            .iter()
            .map(|v| v.to_string())
            .collect();
        for var in &vars {
            let n = identity.cache().get(var, step).unwrap().low().len();
            for q in [
                SubsetQuery::value(1.0, 20.0),
                SubsetQuery::region(0..n / 2),
                SubsetQuery::value(3.0, 40.0).with_region(n / 4..n - 1),
            ] {
                let req = QueryRequest::Subset {
                    step,
                    variable: var.clone(),
                    query: q,
                };
                assert_eq!(
                    reordered.run(&req).unwrap(),
                    identity.run(&req).unwrap(),
                    "step {step} {var}"
                );
            }
        }
    }

    for d in [&clean_dir, &crash_dir, &ident_dir] {
        std::fs::remove_dir_all(d).ok();
    }
}

#[test]
fn empty_store_rejects_queries_cleanly() {
    let dir = std::env::temp_dir().join("ibis-qe-empty");
    std::fs::remove_dir_all(&dir).ok();
    let w = StoreWriter::create(&dir).unwrap();
    w.finish().unwrap();
    let store = Store::open(&dir).unwrap();
    assert!(store.steps().is_empty());
    let engine = QueryEngine::new(CachedStore::new(store, 1 << 20));
    let err = engine
        .run(&QueryRequest::Subset {
            step: 0,
            variable: "temperature".into(),
            query: SubsetQuery::all(),
        })
        .unwrap_err();
    assert!(matches!(err, IbisError::NotFound { .. }));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn concurrent_readers_share_one_cache_safely() {
    let (dir, store) = build_store("stress");
    // tiny budget on few shards so eviction churns *while* readers race
    let one = CachedStore::new(Store::open(&dir).unwrap(), u64::MAX)
        .get("temperature", 0)
        .unwrap()
        .size_bytes() as u64;
    let engine = Arc::new(QueryEngine::new(CachedStore::with_shards(
        store,
        3 * one,
        2,
    )));

    let nthreads = 8;
    let rounds = 40;
    let handles: Vec<_> = (0..nthreads)
        .map(|t| {
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || {
                for r in 0..rounds {
                    let step = [0usize, 4, 9][(t + r) % 3];
                    let (lo, hi) = (1.0 + (r % 7) as f64, 30.0 + (t % 5) as f64);
                    let ans = engine
                        .run(&QueryRequest::Correlation {
                            step,
                            var_a: "temperature".into(),
                            var_b: "salinity".into(),
                            query_a: SubsetQuery::value(lo, hi),
                            query_b: SubsetQuery::region(0..(N as u64 / 2)),
                        })
                        .unwrap();
                    let QueryAnswer::Correlation(c) = ans else {
                        panic!("wrong answer kind")
                    };
                    assert!(c.mutual_information.is_finite());
                    // malformed queries from racing threads stay contained
                    let inverted = std::ops::Range {
                        start: 1u64,
                        end: 0u64,
                    };
                    let err = engine
                        .run(&QueryRequest::Subset {
                            step,
                            variable: "temperature".into(),
                            query: SubsetQuery::region(inverted),
                        })
                        .unwrap_err();
                    assert!(matches!(err, IbisError::Query(_)));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("no reader thread may panic");
    }

    // every thread's answers agree with a cold, uncached engine
    let cold = QueryEngine::new(CachedStore::new(Store::open(&dir).unwrap(), u64::MAX));
    let probe = QueryRequest::Correlation {
        step: 4,
        var_a: "temperature".into(),
        var_b: "salinity".into(),
        query_a: SubsetQuery::value(1.0, 30.0),
        query_b: SubsetQuery::region(0..(N as u64 / 2)),
    };
    assert_eq!(engine.run(&probe).unwrap(), cold.run(&probe).unwrap());

    let st = engine.cache_stats();
    let total = st.hits + st.misses;
    // 3 cache reads per round (2 for the correlation, 1 for the subset,
    // whose region check runs after the fetch) plus 2 for the final probe
    assert_eq!(
        total,
        (nthreads * rounds * 3 + 2) as u64,
        "every cache access accounted for: {st:?}"
    );
    assert!(st.evictions > 0, "tiny budget must churn: {st:?}");
    std::fs::remove_dir_all(&dir).ok();
}
