//! Overload-safe query serving: the robustness shell around
//! [`QueryEngine`](crate::engine::QueryEngine) that lets one finished run directory answer thousands
//! of concurrent queries without queueing collapse.
//!
//! The engine itself is correct under concurrency (sharded cache, `&self`
//! everywhere) but has no opinion about *load*: an unbounded caller swarm
//! would queue without limit, duplicate hot decodes, and drag every
//! request's latency down together. [`QueryServer`] adds the missing
//! overload-control layer (DESIGN.md §6i):
//!
//! * **bounded admission** — requests enter a fixed-capacity queue via
//!   try-then-timed-block (the pipeline's backpressure idiom); when the
//!   queue stays full past the admission window the request is *shed*
//!   with a typed [`ServeError::Shed`] carrying a `retry_after_ms` hint,
//!   so excess load turns into fast typed refusals instead of collapse;
//! * **per-request deadlines** — checked at admission, again at dequeue,
//!   and between bitmap loads (via [`QueryEngine::run_with_deadline`](crate::engine::QueryEngine::run_with_deadline));
//!   a request that can no longer meet its budget is dropped early with
//!   [`ServeError::Deadline`] rather than wasting decode work;
//! * **duplicate coalescing** — identical in-flight requests share one
//!   execution: the first becomes the *leader* and runs, the rest attach
//!   to its result slot, so a thundering herd on one cold bitmap decodes
//!   exactly once and the answer fans out;
//! * **contained faults** — a panicking worker poisons only its in-flight
//!   request (`catch_unwind` + [`ServeError::WorkerPanic`]) and the pool
//!   respawns the thread; [`crate::fault::FaultPlan`]'s serving events
//!   (slow worker, worker death, stalled client) exercise every path
//!   deterministically;
//! * **socket front end** — [`SocketServer`] speaks line-delimited frames
//!   of the existing JSON batch protocol over a `TcpListener`, tolerant
//!   of split frames, trailing garbage, oversized lines, and mid-request
//!   disconnects; stalled clients are reaped by a read timeout and a
//!   connection cap sheds accept-time overload.
//!
//! Counters/gauges/histograms live in the `serving.*` family; the
//! admission queue's occupancy gauge (`serving.queue.depth`, bound
//! published as `serving.queue.bound`) is the "no queueing collapse"
//! witness the serving bench asserts on. Per-instance [`ServeStats`]
//! mirror the counters so tests stay independent of global obs state.

use crate::engine::{self, QueryAnswer, QueryRequest};
use crate::error::{panic_message, IbisError};
use crate::fault::{FaultInjector, FaultPlan};
use crate::json;
use crate::shard::EngineBackend;
use ibis_obs::{LazyCounter, LazyGauge, LazyHistogram};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

static OBS_ADMITTED: LazyCounter = LazyCounter::new("serving.admitted");
static OBS_SHED: LazyCounter = LazyCounter::new("serving.shed");
static OBS_QUEUE_STALLS: LazyCounter = LazyCounter::new("serving.queue.stalls");
static OBS_DEADLINE_ADMISSION: LazyCounter = LazyCounter::new("serving.deadline.admission");
static OBS_DEADLINE_DEQUEUE: LazyCounter = LazyCounter::new("serving.deadline.dequeue");
static OBS_DEADLINE_EXECUTION: LazyCounter = LazyCounter::new("serving.deadline.execution");
static OBS_COALESCE_LEAD: LazyCounter = LazyCounter::new("serving.coalesce.lead");
static OBS_COALESCE_HIT: LazyCounter = LazyCounter::new("serving.coalesce.hit");
static OBS_OK: LazyCounter = LazyCounter::new("serving.ok");
static OBS_FAILED: LazyCounter = LazyCounter::new("serving.failed");
static OBS_WORKER_PANICS: LazyCounter = LazyCounter::new("serving.worker.panics");
static OBS_WORKER_RESPAWNS: LazyCounter = LazyCounter::new("serving.worker.respawns");
static OBS_FRAMES_BAD: LazyCounter = LazyCounter::new("serving.frames.bad");
static OBS_CONNS_REJECTED: LazyCounter = LazyCounter::new("serving.conns.rejected");
static OBS_QUEUE_DEPTH: LazyGauge = LazyGauge::new("serving.queue.depth");
static OBS_QUEUE_BOUND: LazyGauge = LazyGauge::new("serving.queue.bound");
static OBS_WORKERS_ALIVE: LazyGauge = LazyGauge::new("serving.workers.alive");
static OBS_CONNS_OPEN: LazyGauge = LazyGauge::new("serving.conns.open");
static OBS_LATENCY_NS: LazyHistogram =
    LazyHistogram::new("serving.latency_ns", ibis_obs::TIME_NS_BOUNDS);
static OBS_QUEUE_WAIT_NS: LazyHistogram =
    LazyHistogram::new("serving.queue.wait_ns", ibis_obs::TIME_NS_BOUNDS);

/// Locks ignoring poisoning: a worker panic is already contained and
/// reported per-request, so the shared state stays usable (matching the
/// parking_lot semantics used elsewhere in the crate).
fn lock<T: ?Sized>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Where a request's deadline was found expired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeadlineStage {
    /// The budget was already spent when the request arrived.
    Admission,
    /// It expired while queued; the worker dropped it at dequeue instead
    /// of executing it.
    Dequeue,
    /// It expired during execution, between bitmap loads.
    Execution,
    /// The *caller* stopped waiting at its deadline; the shared result
    /// may still complete for coalesced peers.
    Wait,
}

impl DeadlineStage {
    /// Stable lowercase name (wire protocol + reports).
    pub fn name(self) -> &'static str {
        match self {
            DeadlineStage::Admission => "admission",
            DeadlineStage::Dequeue => "dequeue",
            DeadlineStage::Execution => "execution",
            DeadlineStage::Wait => "wait",
        }
    }
}

/// Why the server refused or failed a request. Every variant is typed and
/// `Clone + PartialEq`, so overload behavior is comparable across runs —
/// the serving determinism tests assert on it.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The admission queue stayed full past the admission window; retry
    /// after the hinted backoff.
    Shed {
        /// Suggested client backoff, derived from queue depth × recent
        /// mean service time.
        retry_after_ms: u64,
    },
    /// The request's deadline expired before an answer was produced.
    Deadline {
        /// Where the expiry was detected.
        stage: DeadlineStage,
    },
    /// The worker executing this request panicked; the panic was
    /// contained and poisoned only this request.
    WorkerPanic {
        /// The panic payload, stringified.
        message: String,
    },
    /// The server is shutting down.
    Closed,
    /// The query itself failed (unknown variable, malformed predicate,
    /// corrupt blob, ...).
    Query(IbisError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Shed { retry_after_ms } => {
                write!(f, "overloaded: shed, retry after {retry_after_ms}ms")
            }
            ServeError::Deadline { stage } => {
                write!(f, "deadline exceeded at {}", stage.name())
            }
            ServeError::WorkerPanic { message } => {
                write!(f, "worker panicked (contained): {message}")
            }
            ServeError::Closed => f.write_str("server is shutting down"),
            ServeError::Query(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// A request's final disposition.
pub type ServeResult = std::result::Result<QueryAnswer, ServeError>;

/// Configuration of a [`QueryServer`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads executing queries.
    pub workers: usize,
    /// Admission queue capacity — the hard bound on queued requests.
    pub queue_capacity: usize,
    /// How long admission may block on a full queue before shedding (the
    /// timed-block half of the try-then-block idiom). Zero sheds
    /// immediately on a full queue.
    pub admission_timeout: Duration,
    /// Deadline budget applied to requests that don't carry their own.
    /// `None` means no default deadline.
    pub default_deadline: Option<Duration>,
    /// Longest accepted socket frame (one protocol line) in bytes;
    /// longer lines get an error response and the connection is closed.
    pub max_frame_bytes: usize,
    /// Socket read timeout: a connection idle (or stalled mid-frame) this
    /// long is closed, reaping stalled clients.
    pub read_timeout: Duration,
    /// Open-connection cap; further accepts are shed with a typed
    /// response before a handler thread is spawned.
    pub max_connections: usize,
    /// Record per-request completion latencies (nanoseconds) for
    /// benches/tests via [`QueryServer::take_latencies`].
    pub record_latencies: bool,
    /// Fault schedule for the serving path (slow workers, worker deaths).
    pub faults: FaultPlan,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            queue_capacity: 64,
            admission_timeout: Duration::from_millis(5),
            default_deadline: None,
            max_frame_bytes: 1 << 20,
            read_timeout: Duration::from_secs(10),
            max_connections: 256,
            record_latencies: false,
            faults: FaultPlan::none(),
        }
    }
}

impl ServeConfig {
    fn validate(&self) -> crate::error::Result<()> {
        if self.workers == 0 {
            return Err(IbisError::Config("serving: workers must be >= 1".into()));
        }
        if self.queue_capacity == 0 {
            return Err(IbisError::Config(
                "serving: queue_capacity must be >= 1".into(),
            ));
        }
        if self.max_frame_bytes < 2 {
            return Err(IbisError::Config(
                "serving: max_frame_bytes must be >= 2".into(),
            ));
        }
        if self.max_connections == 0 {
            return Err(IbisError::Config(
                "serving: max_connections must be >= 1".into(),
            ));
        }
        if self.read_timeout.is_zero() {
            return Err(IbisError::Config(
                "serving: read_timeout must be non-zero".into(),
            ));
        }
        Ok(())
    }
}

/// Point-in-time counters of one [`QueryServer`] instance — the
/// per-instance mirror of the `serving.*` obs family, so tests and the
/// determinism regression compare exact values without global state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeStats {
    /// Requests accepted into the queue (leaders only; coalesced
    /// followers don't occupy a slot).
    pub admitted: u64,
    /// Requests refused with [`ServeError::Shed`].
    pub shed: u64,
    /// Admissions that had to block on a full queue at least once.
    pub queue_stalls: u64,
    /// Deadlines expired on arrival.
    pub deadline_admission: u64,
    /// Deadlines expired in the queue (dropped at dequeue).
    pub deadline_dequeue: u64,
    /// Deadlines expired during execution (between bitmap loads).
    pub deadline_execution: u64,
    /// Requests that became coalescing leaders (executed).
    pub coalesce_leads: u64,
    /// Requests that attached to an identical in-flight leader.
    pub coalesce_hits: u64,
    /// Requests answered successfully.
    pub ok: u64,
    /// Requests that failed with a query error.
    pub failed: u64,
    /// Worker panics contained (each poisoned exactly one request).
    pub worker_panics: u64,
    /// Worker threads respawned after an injected death.
    pub worker_respawns: u64,
    /// Highest queue occupancy observed — never exceeds
    /// [`ServeConfig::queue_capacity`] by construction.
    pub queue_peak: u64,
    /// Current queue occupancy.
    pub queue_depth: u64,
}

/// Atomic counter block behind [`ServeStats`].
#[derive(Debug, Default)]
struct Counters {
    admitted: AtomicU64,
    shed: AtomicU64,
    queue_stalls: AtomicU64,
    deadline_admission: AtomicU64,
    deadline_dequeue: AtomicU64,
    deadline_execution: AtomicU64,
    coalesce_leads: AtomicU64,
    coalesce_hits: AtomicU64,
    ok: AtomicU64,
    failed: AtomicU64,
    worker_panics: AtomicU64,
    worker_respawns: AtomicU64,
}

/// One-shot result slot shared by a leader and its coalesced followers.
struct Slot {
    result: Mutex<Option<ServeResult>>,
    ready: Condvar,
}

impl Slot {
    fn new() -> Self {
        Slot {
            result: Mutex::new(None),
            ready: Condvar::new(),
        }
    }

    fn resolve(&self, outcome: ServeResult) {
        *lock(&self.result) = Some(outcome);
        self.ready.notify_all();
    }

    /// Waits for the result, up to `deadline`. `None` = the caller's
    /// deadline passed first (the slot may still resolve for others).
    fn wait(&self, deadline: Option<Instant>) -> Option<ServeResult> {
        let mut g = lock(&self.result);
        loop {
            if let Some(r) = g.as_ref() {
                return Some(r.clone());
            }
            match deadline {
                None => {
                    g = self.ready.wait(g).unwrap_or_else(PoisonError::into_inner);
                }
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        return None;
                    }
                    let (g2, _) = self
                        .ready
                        .wait_timeout(g, d - now)
                        .unwrap_or_else(PoisonError::into_inner);
                    g = g2;
                }
            }
        }
    }
}

/// A queued unit of work: the leader's request plus its shared slot.
struct Job {
    request: QueryRequest,
    deadline: Option<Instant>,
    enqueued: Instant,
    op: u64,
    key: String,
    slot: Arc<Slot>,
}

enum PushRejected {
    Full,
    Closed,
}

/// The bounded admission queue: a `VecDeque` behind a mutex with two
/// condvars, giving real timed blocking (no polling) and an exact
/// occupancy gauge — `serving.queue.depth` can never exceed
/// `serving.queue.bound` because the capacity check and the push happen
/// under one lock.
struct BoundedQueue {
    state: Mutex<QueueState>,
    cap: usize,
    not_empty: Condvar,
    not_full: Condvar,
    peak: AtomicU64,
}

struct QueueState {
    items: VecDeque<Job>,
    closed: bool,
}

impl BoundedQueue {
    fn new(cap: usize) -> Self {
        BoundedQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::with_capacity(cap),
                closed: false,
            }),
            cap,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            peak: AtomicU64::new(0),
        }
    }

    fn push_in(&self, g: &mut MutexGuard<'_, QueueState>, job: Job) {
        g.items.push_back(job);
        let depth = g.items.len() as u64;
        self.peak.fetch_max(depth, Ordering::Relaxed);
        OBS_QUEUE_DEPTH.inc();
        self.not_empty.notify_one();
    }

    // Rejections hand the job back boxed: the error path is cold, and
    // boxing keeps the hot `Ok` return small (clippy::result_large_err).
    fn try_push(&self, job: Job) -> std::result::Result<(), (PushRejected, Box<Job>)> {
        let mut g = lock(&self.state);
        if g.closed {
            return Err((PushRejected::Closed, Box::new(job)));
        }
        if g.items.len() >= self.cap {
            return Err((PushRejected::Full, Box::new(job)));
        }
        self.push_in(&mut g, job);
        Ok(())
    }

    /// Blocks until space frees up, `until` passes, or the queue closes.
    fn push_until(
        &self,
        job: Job,
        until: Instant,
    ) -> std::result::Result<(), (PushRejected, Box<Job>)> {
        let mut g = lock(&self.state);
        loop {
            if g.closed {
                return Err((PushRejected::Closed, Box::new(job)));
            }
            if g.items.len() < self.cap {
                self.push_in(&mut g, job);
                return Ok(());
            }
            let now = Instant::now();
            if now >= until {
                return Err((PushRejected::Full, Box::new(job)));
            }
            let (g2, _) = self
                .not_full
                .wait_timeout(g, until - now)
                .unwrap_or_else(PoisonError::into_inner);
            g = g2;
        }
    }

    /// Blocks for the next job; `None` once the queue is closed *and*
    /// drained (graceful shutdown answers everything already admitted).
    fn pop(&self) -> Option<Job> {
        let mut g = lock(&self.state);
        loop {
            if let Some(job) = g.items.pop_front() {
                OBS_QUEUE_DEPTH.dec();
                self.not_full.notify_one();
                return Some(job);
            }
            if g.closed {
                return None;
            }
            g = self
                .not_empty
                .wait(g)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn close(&self) {
        lock(&self.state).closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    fn len(&self) -> usize {
        lock(&self.state).items.len()
    }
}

/// Stable coalescing key: two requests coalesce iff they are equal, and
/// `QueryRequest`'s derived `Debug` is a total, deterministic rendering
/// of that equality (the store is fixed per server, so it needs no key).
fn coalesce_key(request: &QueryRequest) -> String {
    format!("{request:?}")
}

struct Core {
    engine: EngineBackend,
    cfg: ServeConfig,
    queue: BoundedQueue,
    inflight: Mutex<HashMap<String, Arc<Slot>>>,
    injector: FaultInjector,
    request_ops: AtomicU64,
    counters: Counters,
    handles: Mutex<Vec<JoinHandle<()>>>,
    closing: AtomicBool,
    /// EWMA of successful service time (ns), for the shed backoff hint.
    service_ns: AtomicU64,
    latencies: Option<Mutex<Vec<u64>>>,
}

impl Core {
    /// Removes the request from the coalescing map *then* resolves its
    /// slot, so a later identical request starts a fresh leader while
    /// every already-attached follower still sees this outcome.
    fn finish(&self, key: &str, slot: &Arc<Slot>, outcome: ServeResult) {
        lock(&self.inflight).remove(key);
        slot.resolve(outcome);
    }

    /// Folds one successful service time into the EWMA. The word packs a
    /// wrapping sample count (high 32 bits) next to the EWMA in ns (low
    /// 32 bits, saturated at ~4.3s — far past the 10s retry clamp): a
    /// plain load→compute→store here loses concurrent workers' samples,
    /// letting the shed hint drift under exactly the load it describes.
    fn note_service(&self, ns: u64) {
        let ns = ns.min(u32::MAX as u64);
        let _ = self
            .service_ns
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |packed| {
                let (count, old) = (packed >> 32, packed & u32::MAX as u64);
                let new = if count == 0 { ns } else { (3 * old + ns) / 4 };
                Some((count.wrapping_add(1) & u32::MAX as u64) << 32 | new)
            });
    }

    /// Samples folded into the service-time EWMA so far (wraps at 2^32).
    #[cfg(test)]
    fn service_samples(&self) -> u64 {
        self.service_ns.load(Ordering::Relaxed) >> 32
    }

    /// Backoff hint for a shed response: roughly how long the current
    /// backlog needs to drain at the recent mean service time.
    fn retry_after_ms(&self) -> u64 {
        let svc_ns = (self.service_ns.load(Ordering::Relaxed) & u32::MAX as u64).max(1_000_000);
        let depth = self.queue.len() as u64 + 1;
        let per_worker = depth.div_ceil(self.cfg.workers.max(1) as u64);
        (per_worker * svc_ns / 1_000_000).clamp(1, 10_000)
    }
}

fn spawn_worker(core: &Arc<Core>, id: usize) {
    let c = Arc::clone(core);
    let handle = std::thread::spawn(move || worker_loop(c, id));
    lock(&core.handles).push(handle);
}

fn worker_loop(core: Arc<Core>, id: usize) {
    OBS_WORKERS_ALIVE.inc();
    while let Some(job) = core.queue.pop() {
        let now = Instant::now();
        OBS_QUEUE_WAIT_NS.record(now.duration_since(job.enqueued).as_nanos() as u64);
        if job.deadline.is_some_and(|d| now >= d) {
            core.counters
                .deadline_dequeue
                .fetch_add(1, Ordering::Relaxed);
            OBS_DEADLINE_DEQUEUE.inc();
            core.finish(
                &job.key,
                &job.slot,
                Err(ServeError::Deadline {
                    stage: DeadlineStage::Dequeue,
                }),
            );
            continue;
        }
        let dies = core.injector.worker_death_at(job.op);
        let t0 = Instant::now();
        let executed = catch_unwind(AssertUnwindSafe(|| {
            if let Some(delay) = core.injector.serve_delay_for(job.op) {
                std::thread::sleep(delay);
            }
            if dies {
                core.injector.worker_death_panic(job.op);
            }
            core.engine.run_with_deadline(&job.request, job.deadline)
        }));
        let outcome = match executed {
            Ok(Ok(answer)) => {
                core.counters.ok.fetch_add(1, Ordering::Relaxed);
                OBS_OK.inc();
                core.note_service(t0.elapsed().as_nanos() as u64);
                let latency_ns = job.enqueued.elapsed().as_nanos() as u64;
                OBS_LATENCY_NS.record(latency_ns);
                if let Some(lat) = &core.latencies {
                    lock(lat).push(latency_ns);
                }
                Ok(answer)
            }
            Ok(Err(IbisError::DeadlineExceeded { .. })) => {
                core.counters
                    .deadline_execution
                    .fetch_add(1, Ordering::Relaxed);
                OBS_DEADLINE_EXECUTION.inc();
                Err(ServeError::Deadline {
                    stage: DeadlineStage::Execution,
                })
            }
            Ok(Err(e)) => {
                core.counters.failed.fetch_add(1, Ordering::Relaxed);
                OBS_FAILED.inc();
                Err(ServeError::Query(e))
            }
            Err(payload) => {
                core.counters.worker_panics.fetch_add(1, Ordering::Relaxed);
                OBS_WORKER_PANICS.inc();
                let message = panic_message(payload.as_ref());
                core.injector
                    .record(format!("request op {}: worker panic contained", job.op));
                Err(ServeError::WorkerPanic { message })
            }
        };
        core.finish(&job.key, &job.slot, outcome);
        if dies {
            // The thread "died": hand its identity to a fresh worker and
            // exit. Only the poisoned request above was lost.
            core.counters
                .worker_respawns
                .fetch_add(1, Ordering::Relaxed);
            OBS_WORKER_RESPAWNS.inc();
            if !core.closing.load(Ordering::Relaxed) {
                spawn_worker(&core, id);
            }
            OBS_WORKERS_ALIVE.dec();
            return;
        }
    }
    OBS_WORKERS_ALIVE.dec();
}

/// An admitted (or coalesced) request's pending answer. Dropping the
/// ticket abandons the wait; the request still executes and resolves for
/// any coalesced peers.
pub struct Ticket {
    slot: Arc<Slot>,
    deadline: Option<Instant>,
}

impl fmt::Debug for Ticket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Ticket")
            .field("resolved", &lock(&self.slot.result).is_some())
            .field("deadline", &self.deadline)
            .finish()
    }
}

impl Ticket {
    /// Blocks until the answer is ready or this caller's deadline passes
    /// (then [`ServeError::Deadline`] at [`DeadlineStage::Wait`]).
    pub fn wait(self) -> ServeResult {
        match self.slot.wait(self.deadline) {
            Some(outcome) => outcome,
            None => Err(ServeError::Deadline {
                stage: DeadlineStage::Wait,
            }),
        }
    }
}

/// A long-running query server over one [`QueryEngine`](crate::engine::QueryEngine): bounded
/// admission, deadlines, coalescing, and a respawning worker pool.
/// Dropping the server shuts it down gracefully (admitted requests are
/// still answered).
pub struct QueryServer {
    core: Arc<Core>,
}

impl fmt::Debug for QueryServer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("QueryServer")
            .field("workers", &self.core.cfg.workers)
            .field("queue_capacity", &self.core.cfg.queue_capacity)
            .field("stats", &self.stats())
            .finish()
    }
}

impl QueryServer {
    /// Starts the worker pool over `engine` — a plain [`QueryEngine`](crate::engine::QueryEngine), a
    /// [`crate::shard::ShardedEngine`], or an [`EngineBackend`] directly.
    pub fn start(
        engine: impl Into<EngineBackend>,
        cfg: ServeConfig,
    ) -> crate::error::Result<QueryServer> {
        cfg.validate()?;
        OBS_QUEUE_BOUND.set(cfg.queue_capacity as i64);
        let latencies = cfg.record_latencies.then(|| Mutex::new(Vec::new()));
        let core = Arc::new(Core {
            engine: engine.into(),
            queue: BoundedQueue::new(cfg.queue_capacity),
            inflight: Mutex::new(HashMap::new()),
            injector: FaultInjector::new(cfg.faults.clone()),
            request_ops: AtomicU64::new(0),
            counters: Counters::default(),
            handles: Mutex::new(Vec::new()),
            closing: AtomicBool::new(false),
            service_ns: AtomicU64::new(0),
            latencies,
            cfg,
        });
        for id in 0..core.cfg.workers {
            spawn_worker(&core, id);
        }
        Ok(QueryServer { core })
    }

    /// The engine backend this server answers from (cache stats,
    /// catalog, maintenance).
    pub fn engine(&self) -> &EngineBackend {
        &self.core.engine
    }

    /// This server's configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.core.cfg
    }

    /// Per-instance counters (see [`ServeStats`]).
    pub fn stats(&self) -> ServeStats {
        let c = &self.core.counters;
        ServeStats {
            admitted: c.admitted.load(Ordering::Relaxed),
            shed: c.shed.load(Ordering::Relaxed),
            queue_stalls: c.queue_stalls.load(Ordering::Relaxed),
            deadline_admission: c.deadline_admission.load(Ordering::Relaxed),
            deadline_dequeue: c.deadline_dequeue.load(Ordering::Relaxed),
            deadline_execution: c.deadline_execution.load(Ordering::Relaxed),
            coalesce_leads: c.coalesce_leads.load(Ordering::Relaxed),
            coalesce_hits: c.coalesce_hits.load(Ordering::Relaxed),
            ok: c.ok.load(Ordering::Relaxed),
            failed: c.failed.load(Ordering::Relaxed),
            worker_panics: c.worker_panics.load(Ordering::Relaxed),
            worker_respawns: c.worker_respawns.load(Ordering::Relaxed),
            queue_peak: self.core.queue.peak.load(Ordering::Relaxed),
            queue_depth: self.core.queue.len() as u64,
        }
    }

    /// Every fault event fired on the serving path so far (sorted; equal
    /// across runs of the same plan — the determinism guarantee).
    pub fn fault_events(&self) -> Vec<String> {
        self.core.injector.events()
    }

    /// Drains the recorded per-request latencies (ns); empty unless
    /// [`ServeConfig::record_latencies`] is set.
    pub fn take_latencies(&self) -> Vec<u64> {
        match &self.core.latencies {
            Some(lat) => std::mem::take(&mut *lock(lat)),
            None => Vec::new(),
        }
    }

    /// Submits one request and blocks for its outcome. `budget` bounds
    /// the request's wall-clock (falling back to the configured default).
    pub fn submit(&self, request: &QueryRequest, budget: Option<Duration>) -> ServeResult {
        let deadline = effective_deadline(budget.or(self.core.cfg.default_deadline));
        match self.submit_async_until(request, deadline) {
            Ok(ticket) => ticket.wait(),
            Err(e) => Err(e),
        }
    }

    /// [`QueryServer::submit`] against an absolute deadline — the socket
    /// front end stamps one deadline per frame and applies it to every
    /// query in the batch.
    pub fn submit_until(&self, request: &QueryRequest, deadline: Option<Instant>) -> ServeResult {
        match self.submit_async_until(request, deadline) {
            Ok(ticket) => ticket.wait(),
            Err(e) => Err(e),
        }
    }

    /// Admits (or coalesces) a request and returns a [`Ticket`] without
    /// waiting for execution — open-loop load generators submit at their
    /// arrival schedule regardless of completion. Admission itself may
    /// block up to [`ServeConfig::admission_timeout`].
    pub fn submit_async(
        &self,
        request: &QueryRequest,
        budget: Option<Duration>,
    ) -> std::result::Result<Ticket, ServeError> {
        let deadline = effective_deadline(budget.or(self.core.cfg.default_deadline));
        self.submit_async_until(request, deadline)
    }

    fn submit_async_until(
        &self,
        request: &QueryRequest,
        deadline: Option<Instant>,
    ) -> std::result::Result<Ticket, ServeError> {
        let core = &self.core;
        if core.closing.load(Ordering::Relaxed) {
            return Err(ServeError::Closed);
        }
        let now = Instant::now();
        if deadline.is_some_and(|d| now >= d) {
            core.counters
                .deadline_admission
                .fetch_add(1, Ordering::Relaxed);
            OBS_DEADLINE_ADMISSION.inc();
            return Err(ServeError::Deadline {
                stage: DeadlineStage::Admission,
            });
        }
        let key = coalesce_key(request);
        let slot = {
            let mut m = lock(&core.inflight);
            if let Some(existing) = m.get(&key) {
                core.counters.coalesce_hits.fetch_add(1, Ordering::Relaxed);
                OBS_COALESCE_HIT.inc();
                return Ok(Ticket {
                    slot: Arc::clone(existing),
                    deadline,
                });
            }
            let slot = Arc::new(Slot::new());
            m.insert(key.clone(), Arc::clone(&slot));
            core.counters.coalesce_leads.fetch_add(1, Ordering::Relaxed);
            OBS_COALESCE_LEAD.inc();
            slot
        };
        let op = core.request_ops.fetch_add(1, Ordering::Relaxed);
        let job = Job {
            request: request.clone(),
            deadline,
            enqueued: now,
            op,
            key: key.clone(),
            slot: Arc::clone(&slot),
        };
        // Admission: try, then block for a bounded window (the pipeline's
        // backpressure idiom — except past the window we shed instead of
        // waiting forever).
        let job = match core.queue.try_push(job) {
            Ok(()) => {
                core.counters.admitted.fetch_add(1, Ordering::Relaxed);
                OBS_ADMITTED.inc();
                return Ok(Ticket { slot, deadline });
            }
            Err((PushRejected::Closed, _)) => {
                core.finish(&key, &slot, Err(ServeError::Closed));
                return Err(ServeError::Closed);
            }
            Err((PushRejected::Full, job)) => *job,
        };
        core.counters.queue_stalls.fetch_add(1, Ordering::Relaxed);
        OBS_QUEUE_STALLS.inc();
        let mut until = now + core.cfg.admission_timeout;
        if let Some(d) = deadline {
            until = until.min(d);
        }
        match core.queue.push_until(job, until) {
            Ok(()) => {
                core.counters.admitted.fetch_add(1, Ordering::Relaxed);
                OBS_ADMITTED.inc();
                Ok(Ticket { slot, deadline })
            }
            Err((PushRejected::Closed, _)) => {
                core.finish(&key, &slot, Err(ServeError::Closed));
                Err(ServeError::Closed)
            }
            Err((PushRejected::Full, _)) => {
                let outcome = if deadline.is_some_and(|d| Instant::now() >= d) {
                    core.counters
                        .deadline_admission
                        .fetch_add(1, Ordering::Relaxed);
                    OBS_DEADLINE_ADMISSION.inc();
                    ServeError::Deadline {
                        stage: DeadlineStage::Admission,
                    }
                } else {
                    core.counters.shed.fetch_add(1, Ordering::Relaxed);
                    OBS_SHED.inc();
                    ServeError::Shed {
                        retry_after_ms: core.retry_after_ms(),
                    }
                };
                core.finish(&key, &slot, Err(outcome.clone()));
                Err(outcome)
            }
        }
    }

    /// Handles one protocol frame (a line of the socket protocol) and
    /// returns the response line: `{"answers": [...]}` with per-query
    /// outcomes, or a frame-level `{"error": ..., "kind": "bad_request"}`.
    ///
    /// The frame is a batch document (`{"queries": [...]}`) with an
    /// optional `deadline_ms` applied to every query in the batch.
    pub fn handle_frame(&self, line: &str) -> String {
        let (requests, budget) = match parse_frame(line) {
            Ok(parsed) => parsed,
            Err(e) => {
                OBS_FRAMES_BAD.inc();
                return format!(
                    "{{\"error\": \"{}\", \"kind\": \"bad_request\"}}",
                    json::escape(&e.to_string())
                );
            }
        };
        let deadline = effective_deadline(budget.or(self.core.cfg.default_deadline));
        let mut out = String::from("{\"answers\": [");
        for (i, request) in requests.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&render_outcome(&self.submit_until(request, deadline)));
        }
        out.push_str("]}");
        out
    }

    /// Shuts the pool down: new submissions get [`ServeError::Closed`],
    /// already-admitted requests are drained and answered, workers join.
    pub fn shutdown(&self) {
        if self.core.closing.swap(true, Ordering::SeqCst) {
            return;
        }
        self.core.queue.close();
        // Respawns can push new handles while we join; drain until quiet.
        loop {
            let handles: Vec<JoinHandle<()>> = lock(&self.core.handles).drain(..).collect();
            if handles.is_empty() {
                break;
            }
            for h in handles {
                let _ = h.join();
            }
        }
    }
}

impl Drop for QueryServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn effective_deadline(budget: Option<Duration>) -> Option<Instant> {
    budget.map(|b| Instant::now() + b)
}

/// Parses one protocol frame into its requests and optional deadline.
fn parse_frame(line: &str) -> crate::error::Result<(Vec<QueryRequest>, Option<Duration>)> {
    let bad = |reason: String| IbisError::BadRequest {
        index: None,
        reason,
    };
    let doc = json::parse(line).map_err(|e| bad(e.to_string()))?;
    let budget = match doc.get("deadline_ms") {
        None => None,
        Some(v) => {
            let ms = v
                .as_num()
                .ok_or_else(|| bad("\"deadline_ms\" must be a number".into()))?;
            if !ms.is_finite() || ms < 0.0 {
                return Err(bad(format!(
                    "\"deadline_ms\" must be a non-negative number, got {ms}"
                )));
            }
            Some(Duration::from_millis(ms as u64))
        }
    };
    let requests = engine::parse_batch_doc(&doc)?;
    Ok((requests, budget))
}

/// Renders one request's disposition as a JSON answer element. Typed
/// refusals carry a `kind` (and `retry_after_ms` for sheds) so clients
/// can distinguish backpressure from query errors.
fn render_outcome(outcome: &ServeResult) -> String {
    match outcome {
        Ok(answer) => engine::render_ok(answer),
        Err(ServeError::Query(e)) => format!(
            "{{\"error\": \"{}\", \"kind\": \"query\"}}",
            json::escape(&e.to_string())
        ),
        Err(ServeError::Shed { retry_after_ms }) => format!(
            "{{\"error\": \"overloaded\", \"kind\": \"shed\", \"retry_after_ms\": {retry_after_ms}}}"
        ),
        Err(ServeError::Deadline { stage }) => format!(
            "{{\"error\": \"deadline exceeded at {0}\", \"kind\": \"deadline\", \"stage\": \"{0}\"}}",
            stage.name()
        ),
        Err(ServeError::WorkerPanic { message }) => format!(
            "{{\"error\": \"{}\", \"kind\": \"panic\"}}",
            json::escape(message)
        ),
        Err(ServeError::Closed) => {
            "{\"error\": \"server is shutting down\", \"kind\": \"closed\"}".to_string()
        }
    }
}

/// The TCP front end: accepts connections and speaks newline-delimited
/// frames of the JSON batch protocol against a shared [`QueryServer`].
///
/// Robustness properties (held by the adversarial socket suite):
/// frames may arrive split across arbitrarily many reads or packed many
/// per read; a malformed line gets an error response and the connection
/// keeps serving; a line longer than [`ServeConfig::max_frame_bytes`]
/// gets an error response and the connection closes; a mid-frame
/// disconnect or stall never wedges a worker (parsing happens on the
/// per-connection thread, which the read timeout reaps).
pub struct SocketServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    completed: Arc<AtomicU64>,
}

impl SocketServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts the accept loop over `server`.
    pub fn bind(server: Arc<QueryServer>, addr: &str) -> crate::error::Result<SocketServer> {
        let listener =
            TcpListener::bind(addr).map_err(|e| IbisError::io(format!("bind {addr}"), &e))?;
        let local = listener
            .local_addr()
            .map_err(|e| IbisError::io("local_addr", &e))?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let completed = Arc::new(AtomicU64::new(0));
        let open = Arc::new(AtomicUsize::new(0));
        let accept = {
            let shutdown = Arc::clone(&shutdown);
            let completed = Arc::clone(&completed);
            std::thread::spawn(move || {
                accept_loop(listener, server, shutdown, completed, open);
            })
        };
        Ok(SocketServer {
            addr: local,
            shutdown,
            accept: Some(accept),
            completed,
        })
    }

    /// The bound address (with the resolved port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections fully handled so far (including shed accepts) — lets
    /// `ibis serve --conns N` terminate deterministically.
    pub fn connections_completed(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }

    /// Stops accepting and joins the accept loop. Already-open
    /// connections finish on their own threads (bounded by the read
    /// timeout).
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        let Some(handle) = self.accept.take() else {
            return;
        };
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(500));
        let _ = handle.join();
    }
}

impl Drop for SocketServer {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

fn accept_loop(
    listener: TcpListener,
    server: Arc<QueryServer>,
    shutdown: Arc<AtomicBool>,
    completed: Arc<AtomicU64>,
    open: Arc<AtomicUsize>,
) {
    let mut conn_id: u64 = 0;
    for stream in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        if open.load(Ordering::Relaxed) >= server.core.cfg.max_connections {
            OBS_CONNS_REJECTED.inc();
            let retry = server.core.retry_after_ms();
            let mut s = &stream;
            let _ = writeln!(
                s,
                "{{\"error\": \"connection limit reached\", \"kind\": \"shed\", \
                 \"retry_after_ms\": {retry}}}"
            );
            completed.fetch_add(1, Ordering::Relaxed);
            continue;
        }
        open.fetch_add(1, Ordering::Relaxed);
        OBS_CONNS_OPEN.inc();
        // Injected stalled client: this connection goes silent mid-
        // exchange (no reads are serviced) until the read timeout reaps
        // it — other connections must keep being served throughout.
        let stalled = server.core.injector.client_stall_at(conn_id);
        conn_id += 1;
        let server = Arc::clone(&server);
        let completed = Arc::clone(&completed);
        let open = Arc::clone(&open);
        std::thread::spawn(move || {
            if stalled {
                std::thread::sleep(server.core.cfg.read_timeout);
            } else {
                handle_connection(&server, stream);
            }
            open.fetch_sub(1, Ordering::Relaxed);
            OBS_CONNS_OPEN.dec();
            completed.fetch_add(1, Ordering::Relaxed);
        });
    }
}

/// Serves one connection: buffers bytes, answers each complete line.
/// Returns (closing the connection) on EOF, error, read timeout, an
/// oversized frame, or a failed write.
fn handle_connection(server: &QueryServer, stream: TcpStream) {
    let cfg = &server.core.cfg;
    let _ = stream.set_read_timeout(Some(cfg.read_timeout));
    let _ = stream.set_nodelay(true);
    let mut reader = match stream.try_clone() {
        Ok(r) => r,
        Err(_) => return,
    };
    let mut writer = stream;
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        // Serve every complete line currently buffered (frames may be
        // split across reads or packed several per read).
        let mut start = 0usize;
        while let Some(nl) = buf[start..].iter().position(|&b| b == b'\n') {
            let end = start + nl;
            let line = &buf[start..end];
            start = end + 1;
            let line = std::str::from_utf8(line)
                .map(|s| s.trim_matches(['\r', ' ', '\t']))
                .unwrap_or("\u{fffd}");
            if line.is_empty() {
                continue; // blank keep-alive lines get no response
            }
            let response = server.handle_frame(line);
            if writer
                .write_all(response.as_bytes())
                .and_then(|()| writer.write_all(b"\n"))
                .is_err()
            {
                return;
            }
        }
        buf.drain(..start);
        if buf.len() > cfg.max_frame_bytes {
            OBS_FRAMES_BAD.inc();
            let _ = writer.write_all(
                format!(
                    "{{\"error\": \"frame exceeds {} bytes\", \"kind\": \"bad_request\"}}\n",
                    cfg.max_frame_bytes
                )
                .as_bytes(),
            );
            return;
        }
        match reader.read(&mut chunk) {
            Ok(0) => return, // EOF — possibly mid-frame; just drop it
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            // Timeout (stalled or idle client) or any hard error: reap.
            Err(_) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CachedStore;
    use crate::engine::QueryEngine;
    use crate::store::{Store, StoreWriter};
    use ibis_analysis::SubsetQuery;
    use ibis_core::{Binner, BitmapIndex};
    use std::path::PathBuf;

    fn test_store(name: &str) -> (PathBuf, Store) {
        let dir = std::env::temp_dir().join(format!("ibis-serving-unit-{name}"));
        std::fs::remove_dir_all(&dir).ok();
        let mut w = StoreWriter::create(&dir).unwrap();
        let temp: Vec<f64> = (0..2000).map(|i| ((i * 7) % 300) as f64 / 10.0).collect();
        w.put(
            0,
            "temperature",
            &BitmapIndex::build(&temp, Binner::fixed_width(0.0, 30.0, 64)),
        )
        .unwrap();
        w.finish().unwrap();
        let store = Store::open(&dir).unwrap();
        (dir, store)
    }

    fn server(store: Store, cfg: ServeConfig) -> QueryServer {
        QueryServer::start(QueryEngine::new(CachedStore::new(store, 64 << 20)), cfg).unwrap()
    }

    fn subset_req() -> QueryRequest {
        QueryRequest::Subset {
            step: 0,
            variable: "temperature".into(),
            query: SubsetQuery::value(0.0, 15.0),
        }
    }

    #[test]
    fn submit_answers_and_counts() {
        let (dir, store) = test_store("basic");
        let s = server(store, ServeConfig::default());
        let ans = s.submit(&subset_req(), None).unwrap();
        assert!(matches!(ans, QueryAnswer::Subset { of: 2000, .. }));
        let st = s.stats();
        assert_eq!((st.admitted, st.ok, st.shed), (1, 1, 0));
        s.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn zero_budget_deadlines_at_admission() {
        let (dir, store) = test_store("admission");
        let s = server(store, ServeConfig::default());
        let err = s.submit(&subset_req(), Some(Duration::ZERO)).unwrap_err();
        assert_eq!(
            err,
            ServeError::Deadline {
                stage: DeadlineStage::Admission
            }
        );
        assert_eq!(s.stats().deadline_admission, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn closed_server_rejects_submissions() {
        let (dir, store) = test_store("closed");
        let s = server(store, ServeConfig::default());
        s.shutdown();
        assert_eq!(s.submit(&subset_req(), None), Err(ServeError::Closed));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bad_frames_are_typed_responses_not_panics() {
        let (dir, store) = test_store("frames");
        let s = server(store, ServeConfig::default());
        for bad in [
            "not json",
            "{}",
            r#"{"queries": 7}"#,
            r#"{"queries": [], "deadline_ms": "soon"}"#,
            r#"{"queries": [], "deadline_ms": -4}"#,
            r#"{"queries": [{"kind": "nope"}]}"#,
        ] {
            let resp = s.handle_frame(bad);
            assert!(
                resp.contains("\"error\"") && resp.contains("bad_request"),
                "{bad:?} → {resp}"
            );
            json::parse(&resp).unwrap();
        }
        // a well-formed frame with a per-query failure answers inline
        let resp =
            s.handle_frame(r#"{"queries": [{"kind": "subset", "variable": "no_such_var"}]}"#);
        assert!(resp.contains("\"answers\"") && resp.contains("\"kind\": \"query\""));
        json::parse(&resp).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn retry_after_scales_with_backlog() {
        let (dir, store) = test_store("retry");
        let s = server(store, ServeConfig::default());
        let hint = s.core.retry_after_ms();
        assert!((1..=10_000).contains(&hint));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn note_service_loses_no_update_under_contention() {
        // Regression: the EWMA was a load→compute→store, so concurrent
        // workers silently dropped each other's samples. The packed
        // sample counter is carried through the same atomic word, so a
        // lost EWMA update is a lost count: exact count == no loss.
        let (dir, store) = test_store("ewma_race");
        let s = server(store, ServeConfig::default());
        let core = Arc::clone(&s.core);
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 5_000;
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let core = Arc::clone(&core);
                scope.spawn(move || {
                    for i in 0..PER_THREAD {
                        core.note_service(1_000_000 + (t * PER_THREAD + i) % 997);
                    }
                });
            }
        });
        assert_eq!(core.service_samples(), THREADS * PER_THREAD);
        // the EWMA itself stays in the band of the fed samples
        let ewma = core.service_ns.load(Ordering::Relaxed) & u32::MAX as u64;
        assert!((1_000_000..1_001_000).contains(&ewma), "ewma {ewma}");
        drop(s);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_errors_display_and_compare() {
        let a = ServeError::Shed { retry_after_ms: 7 };
        assert_eq!(a, a.clone());
        assert!(a.to_string().contains("7ms"));
        let d = ServeError::Deadline {
            stage: DeadlineStage::Dequeue,
        };
        assert!(d.to_string().contains("dequeue"));
    }
}
