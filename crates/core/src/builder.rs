//! Streaming WAH construction — the paper's Algorithm 1.
//!
//! [`WahBuilder`] appends bits / 31-bit segments / runs to a single
//! compressed vector in O(1) working state, merging fills on the fly, so a
//! bitvector is never held uncompressed. [`MultiWahBuilder`] runs one builder
//! per bin and consumes a stream of bin ids (one per data element), which is
//! exactly the in-place in-situ compression of Algorithm 1: data is scanned
//! once, segment by segment, and each segment is merged into the existing
//! compressed bitvectors.

use crate::binning::Binner;
use crate::wah::{
    fill_bits, is_fill, is_one_fill, make_fill, WahVec, FLAG_MASK, LITERAL_MASK, MAX_FILL_BITS,
    ONE_FILL, SEG_BITS, ZERO_FILL,
};
use ibis_obs::{LazyCounter, LazyHistogram};

// Generation-path metrics (family `generation`, see DESIGN.md §6f). The
// fast/mixed split shows how much of the ingest ran the batched
// constant-segment path vs the per-element scatter fallback; run hits count
// segments absorbed into an already-open cross-segment constant run, and the
// histogram records the lengths of the 1-fills those runs became. All
// no-ops when ibis-obs is built without its `obs` feature; the hot loop
// tallies locally and flushes once per `extend_binned` call.
static OBS_FAST_SEGS: LazyCounter = LazyCounter::new("generation.segments.fast");
static OBS_MIXED_SEGS: LazyCounter = LazyCounter::new("generation.segments.mixed");
static OBS_RUN_HITS: LazyCounter = LazyCounter::new("generation.run.hits");
static OBS_RUN_BITS: LazyHistogram =
    LazyHistogram::new("generation.run.bits", ibis_obs::RUN_BITS_BOUNDS);
// Reorder-path metric (family `reorder`, see DESIGN.md §6j): gather chunks
// fed through the fused reorder+bin+compress ingest.
static OBS_GATHER_CHUNKS: LazyCounter = LazyCounter::new("reorder.gather.chunks");

/// Incremental builder for a single [`WahVec`].
///
/// ```
/// use ibis_core::WahBuilder;
///
/// let mut b = WahBuilder::new();
/// b.append_run(false, 1000);
/// b.push_bit(true);
/// b.append_run(false, 1000);
/// let v = b.finish();
/// assert_eq!(v.len(), 2001);
/// assert_eq!(v.count_ones(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct WahBuilder {
    words: Vec<u32>,
    /// Bits committed into `words`; always a multiple of 31.
    committed: u64,
    /// Partial segment not yet committed (LSB-first).
    pending: u32,
    pending_bits: u8,
}

impl WahBuilder {
    /// A builder for an empty vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resumes building from an existing vector (its bits are kept).
    pub fn from_vec(v: WahVec) -> Self {
        let mut words = v.words;
        let len = v.len_bits;
        let tail = len % SEG_BITS;
        let (pending, pending_bits) = if tail != 0 {
            let w = words.pop().expect("non-empty tail requires a word");
            debug_assert!(!is_fill(w), "partial tail must be a literal");
            (w, tail as u8)
        } else {
            (0, 0)
        };
        WahBuilder {
            words,
            committed: len - tail,
            pending,
            pending_bits,
        }
    }

    /// Total bits appended so far.
    #[inline]
    pub fn len(&self) -> u64 {
        self.committed + self.pending_bits as u64
    }

    /// `true` if no bits have been appended.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends a single bit.
    #[inline]
    pub fn push_bit(&mut self, bit: bool) {
        if bit {
            self.pending |= 1 << self.pending_bits;
        }
        self.pending_bits += 1;
        if self.pending_bits as u64 == SEG_BITS {
            let seg = self.pending;
            self.pending = 0;
            self.pending_bits = 0;
            self.append_seg31(seg);
        }
    }

    /// Appends a full 31-bit segment (LSB-first payload). This is the merge
    /// step of Algorithm 1, lines 10–27: an all-ones segment extends or
    /// starts a 1-fill, an all-zeros segment a 0-fill, anything else is
    /// pushed as a literal word.
    ///
    /// # Panics (debug)
    /// The builder must be on a segment boundary.
    #[inline]
    pub fn append_seg31(&mut self, payload: u32) {
        debug_assert_eq!(self.pending_bits, 0, "append_seg31 off segment boundary");
        debug_assert_eq!(payload & !LITERAL_MASK, 0, "payload has flag bits set");
        match payload {
            0 => self.append_fill_aligned(false, SEG_BITS),
            LITERAL_MASK => self.append_fill_aligned(true, SEG_BITS),
            _ => {
                self.words.push(payload);
                self.committed += SEG_BITS;
            }
        }
    }

    /// Appends the low `nbits` bits of `payload` (LSB-first, `nbits` ≤ 31)
    /// in at most two word operations: the low part completes the pending
    /// partial segment, the high part becomes the new pending remainder.
    /// Equivalent to `nbits` [`WahBuilder::push_bit`] calls, but O(1).
    ///
    /// # Panics (debug)
    /// `payload` must have no bits set at or above `nbits`.
    #[inline]
    pub fn append_bits(&mut self, payload: u32, nbits: u8) {
        debug_assert!(nbits as u64 <= SEG_BITS, "append_bits of {nbits} > 31");
        debug_assert!(
            nbits as u64 == SEG_BITS || payload & !((1u32 << nbits) - 1) == 0,
            "payload has bits beyond nbits"
        );
        if nbits == 0 {
            return;
        }
        let total = self.pending_bits + nbits;
        if (total as u64) < SEG_BITS {
            self.pending |= payload << self.pending_bits;
            self.pending_bits = total;
        } else {
            // `pending_bits` < 31 and `nbits` <= 31, so both shifts below
            // stay under 32 and the high bits lost by `<<` are exactly the
            // bits recovered by `>>` into the new pending remainder.
            let seg = (self.pending | (payload << self.pending_bits)) & LITERAL_MASK;
            let consumed = SEG_BITS as u8 - self.pending_bits;
            self.pending = 0;
            self.pending_bits = 0;
            self.append_seg31(seg);
            self.pending = payload >> consumed;
            self.pending_bits = total - SEG_BITS as u8;
        }
    }

    /// Appends `nbits` copies of `bit`, handling any alignment.
    pub fn append_run(&mut self, bit: bool, mut nbits: u64) {
        if self.pending_bits != 0 && nbits > 0 {
            // Head: top the pending segment up word-wise (≤ 30 bits).
            let head = (SEG_BITS - self.pending_bits as u64).min(nbits) as u8;
            self.append_bits(if bit { (1u32 << head) - 1 } else { 0 }, head);
            nbits -= head as u64;
        }
        let whole = nbits - nbits % SEG_BITS;
        if whole > 0 {
            self.append_fill_aligned(bit, whole);
        }
        let tail = (nbits % SEG_BITS) as u8;
        if tail > 0 {
            self.append_bits(if bit { (1u32 << tail) - 1 } else { 0 }, tail);
        }
    }

    /// Appends an aligned fill; `nbits` must be a positive multiple of 31 and
    /// the builder must sit on a segment boundary.
    fn append_fill_aligned(&mut self, bit: bool, mut nbits: u64) {
        debug_assert_eq!(self.pending_bits, 0);
        debug_assert!(nbits > 0 && nbits.is_multiple_of(SEG_BITS));
        self.committed += nbits;
        let flag = if bit { ONE_FILL } else { ZERO_FILL };
        if let Some(last) = self.words.last_mut() {
            if is_fill(*last) && *last & FLAG_MASK == flag {
                let have = fill_bits(*last);
                let take = nbits.min(MAX_FILL_BITS - have);
                debug_assert!(take.is_multiple_of(SEG_BITS));
                if take > 0 {
                    *last += take as u32; // the paper's `LastSeg += 31`, batched
                    nbits -= take;
                }
            }
        }
        while nbits > 0 {
            let take = nbits.min(MAX_FILL_BITS);
            self.words.push(make_fill(bit, take));
            nbits -= take;
        }
    }

    /// The last *committed* bit (ignoring any pending partial segment),
    /// or `None` when no whole segment has been committed. Callers on a
    /// segment boundary (`pending_bits == 0`) get the true last bit; the
    /// fused lossy pass uses this to check a zero-gap is flanked by a 1.
    pub(crate) fn last_committed_bit(&self) -> Option<bool> {
        let &w = self.words.last()?;
        Some(if is_fill(w) {
            is_one_fill(w)
        } else {
            w >> (SEG_BITS - 1) & 1 == 1
        })
    }

    /// Appends the contents of a compressed vector (used to concatenate the
    /// per-sub-block results of parallel generation). O(words of `other`)
    /// even when the receiver sits off a segment boundary: unaligned
    /// literals are spliced with [`WahBuilder::append_bits`] shifts instead
    /// of per-bit pushes, which is what makes the phase-2 concat of
    /// [`crate::build_index_parallel`] linear in compressed words rather
    /// than bits.
    pub fn append_wah(&mut self, other: &WahVec) {
        for run in other.runs() {
            match run {
                crate::runs::Run::Fill(bit, n) => self.append_run(bit, n),
                crate::runs::Run::Literal(payload, nbits) => {
                    if nbits as u64 == SEG_BITS && self.pending_bits == 0 {
                        self.append_seg31(payload);
                    } else {
                        self.append_bits(payload, nbits);
                    }
                }
            }
        }
    }

    /// Clears the builder for a fresh vector, keeping the word allocation.
    pub fn reset(&mut self) {
        self.words.clear();
        self.committed = 0;
        self.pending = 0;
        self.pending_bits = 0;
    }

    /// Finalizes the vector and resets the builder in place, so a caller
    /// holding a long-lived builder (the in-situ pipelines build one index
    /// per field per time-step) can reuse it without reallocating. The
    /// produced vector takes ownership of the accumulated words.
    pub fn finish_reset(&mut self) -> WahVec {
        let len = self.len();
        if self.pending_bits > 0 {
            self.words.push(self.pending & LITERAL_MASK);
        }
        let words = std::mem::take(&mut self.words);
        self.reset();
        WahVec {
            words,
            len_bits: len,
            stats: std::sync::OnceLock::new(),
        }
    }

    /// Finalizes the vector; a partial segment becomes the tail literal.
    pub fn finish(mut self) -> WahVec {
        self.finish_reset()
    }
}

/// Algorithm 1 over all bins at once: one [`WahBuilder`] per bin consuming a
/// stream of bin ids.
///
/// Memory never exceeds the compressed output plus one 31-bit segment per
/// *touched* bin — the property that makes in-situ generation viable on
/// memory-constrained nodes. Bins untouched by a segment are extended with
/// 0-fills lazily (a per-bin segment deficit), so each segment costs
/// O(bins touched), not O(total bins).
///
/// ```
/// use ibis_core::MultiWahBuilder;
///
/// let mut mb = MultiWahBuilder::new(4);
/// for id in [0u32, 1, 1, 2, 3, 3, 2, 0] {
///     mb.push(id);
/// }
/// let bins = mb.finish();
/// assert_eq!(bins.len(), 4);
/// assert_eq!(bins[1].iter_ones().collect::<Vec<_>>(), vec![1, 2]);
/// ```
#[derive(Debug)]
pub struct MultiWahBuilder {
    builders: Vec<WahBuilder>,
    /// Per-bin count of 31-bit segments already appended to its builder.
    appended_segs: Vec<u64>,
    /// Current segment payload per bin (valid only for touched bins).
    segbuf: Vec<u32>,
    /// Bins touched by the current segment.
    touched: Vec<u32>,
    pos_in_seg: u8,
    /// Completed segments so far.
    global_segs: u64,
    /// Total elements consumed.
    total_bits: u64,
    /// Fused lossy-superset state (see [`MultiWahBuilder::set_lossy_fpr`]).
    lossy: Option<LossyFused>,
}

/// Streaming state of the fused lossy pass: per-bin exact-one and
/// flipped-bit tallies, so each absorption decision can be budget-checked
/// against the zeros seen *so far* (the running budget only grows, which
/// is what makes the final measured FPR provably ≤ the target).
#[derive(Debug)]
struct LossyFused {
    fpr: f64,
    /// Exact (pre-flip) 1-bits appended per bin.
    ones_exact: Vec<u64>,
    /// Zero bits flipped to 1 per bin.
    dropped: Vec<u64>,
}

impl MultiWahBuilder {
    /// A builder producing `nbins` parallel bitvectors.
    pub fn new(nbins: usize) -> Self {
        MultiWahBuilder {
            builders: vec![WahBuilder::new(); nbins],
            appended_segs: vec![0; nbins],
            segbuf: vec![0; nbins],
            touched: Vec::with_capacity(SEG_BITS as usize),
            pos_in_seg: 0,
            global_segs: 0,
            total_bits: 0,
            lossy: None,
        }
    }

    /// Arms the *fused* lossy-superset pass (DESIGN.md §6l): while
    /// ingesting, a bin's lazy zero-deficit that (a) is flanked by a 1 on
    /// both sides — the builder's last committed bit is 1 and the incoming
    /// run is a 1-fill — and (b) fits the running FPR budget
    /// (`dropped + gap ≤ fpr × zeros_seen_so_far`) is absorbed into the
    /// surrounding 1-fill instead of settling as a 0-fill. Only `0 → 1`
    /// flips happen, so every produced bin is a superset of the exact bin
    /// with measured FPR ≤ `fpr` — same guarantees as the offline
    /// [`WahVec::lossy_superset`] pass, though not byte-identical to it
    /// (the streaming pass cannot see the final run-length histogram, so
    /// its threshold is implicit in the running budget).
    ///
    /// # Panics
    /// Panics when data was already consumed, or `fpr` is not 0 or within
    /// [`crate::lossy::FPR_MIN`]`..=`[`crate::lossy::FPR_MAX`].
    pub fn set_lossy_fpr(&mut self, fpr: f64) {
        assert!(self.is_empty(), "set_lossy_fpr after data was consumed");
        assert!(
            crate::lossy::valid_fpr(fpr),
            "lossy fpr {fpr} outside the supported range"
        );
        let nbins = self.nbins();
        self.lossy = (fpr > 0.0).then(|| LossyFused {
            fpr,
            ones_exact: vec![0; nbins],
            dropped: vec![0; nbins],
        });
    }

    /// Total zero bits the fused lossy pass has flipped so far, across
    /// all bins (0 when the pass is not armed).
    pub fn lossy_bits_dropped(&self) -> u64 {
        self.lossy.as_ref().map_or(0, |l| l.dropped.iter().sum())
    }

    /// Number of bins.
    #[inline]
    pub fn nbins(&self) -> usize {
        self.builders.len()
    }

    /// Elements consumed so far.
    #[inline]
    pub fn len(&self) -> u64 {
        self.total_bits
    }

    /// `true` if no elements have been consumed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.total_bits == 0
    }

    /// Consumes one element mapped to `bin_id` (Algorithm 1 lines 6–9).
    #[inline]
    pub fn push(&mut self, bin_id: u32) {
        let b = bin_id as usize;
        debug_assert!(b < self.builders.len(), "bin id {b} out of range");
        if self.segbuf[b] == 0 {
            self.touched.push(bin_id);
        }
        self.segbuf[b] |= 1 << self.pos_in_seg;
        self.pos_in_seg += 1;
        self.total_bits += 1;
        if self.pos_in_seg as u64 == SEG_BITS {
            self.flush_seg();
        }
    }

    /// Consumes a slice of bin ids.
    pub fn extend_from(&mut self, ids: &[u32]) {
        for &id in ids {
            self.push(id);
        }
    }

    /// Fused bin+compress fast path: consumes raw values in 31-element
    /// segments and merges each with one of two paths:
    ///
    /// * **constant segment** (all 31 values bin equally — the common case
    ///   on spatially smooth simulation fields), detected from the chunk's
    ///   min/max without binning every element: no per-element `segbuf`
    ///   writes at all; consecutive constant segments of the same bin
    ///   accumulate into a single run that lands as one O(1) 1-fill
    ///   extension on that bin's builder (other bins just grow their lazy
    ///   zero-deficit).
    /// * **mixed segment**: bin into a stack buffer with the binner's
    ///   branchless bulk loop, scatter the 31 ids into `segbuf`, and merge
    ///   via the ordinary segment flush.
    ///
    /// Output is byte-identical to `for &v in data { self.push(binner.bin_of(v)) }`
    /// (property-tested against that oracle); `binner.nbins()` must equal
    /// [`MultiWahBuilder::nbins`].
    pub fn extend_binned(&mut self, binner: &Binner, data: &[f64]) {
        debug_assert_eq!(binner.nbins(), self.nbins(), "binner/builder bin mismatch");
        let mut data = data;
        // Head: scalar-push until the builder sits on a segment boundary.
        if self.pos_in_seg != 0 {
            let head = ((SEG_BITS - self.pos_in_seg as u64) as usize).min(data.len());
            for &v in &data[..head] {
                self.push(binner.bin_of(v));
            }
            data = &data[head..];
        }
        let seg = SEG_BITS as usize;
        let mut ids = [0u32; SEG_BITS as usize];
        // Open cross-segment constant run: (bin, completed segments).
        let mut run: Option<(u32, u64)> = None;
        // Local obs tallies, flushed once (hot-loop hygiene, §6e).
        let mut fast_segs = 0u64;
        let mut mixed_segs = 0u64;
        let mut run_hits = 0u64;
        let mut run_buckets = [0u64; ibis_obs::RUN_BITS_BOUNDS.len() + 1];
        let mut run_bits_sum = 0u64;
        let mut note_run = |segs: u64| {
            if ibis_obs::ENABLED {
                let bits = segs * SEG_BITS;
                run_buckets[ibis_obs::bucket_index(ibis_obs::RUN_BITS_BOUNDS, bits)] += 1;
                run_bits_sum = run_bits_sum.wrapping_add(bits);
            }
        };
        let mut chunks = data.chunks_exact(seg);
        for chunk in &mut chunks {
            // Branchless min/max + NaN sweep (auto-vectorizes). bin_of is
            // monotone in v, so a NaN-free chunk whose extremes share a bin
            // is entirely that bin — two bin_of calls instead of 31.
            let mut mn = chunk[0];
            let mut mx = chunk[0];
            let mut nan = false;
            for &v in chunk {
                mn = if v < mn { v } else { mn };
                mx = if v > mx { v } else { mx };
                nan |= v.is_nan();
            }
            let const_bin = if nan {
                None
            } else {
                let b = binner.bin_of(mn);
                (b == binner.bin_of(mx)).then_some(b)
            };
            if let Some(first) = const_bin {
                fast_segs += 1;
                run = match run {
                    Some((b, k)) if b == first => {
                        run_hits += 1;
                        Some((b, k + 1))
                    }
                    Some((b, k)) => {
                        note_run(k);
                        self.flush_const_run(b, k);
                        Some((first, 1))
                    }
                    None => Some((first, 1)),
                };
            } else {
                if let Some((b, k)) = run.take() {
                    note_run(k);
                    self.flush_const_run(b, k);
                }
                mixed_segs += 1;
                // Scatter the segment; identical to 31 scalar pushes.
                binner.bin_slice_into(chunk, &mut ids);
                for (j, &id) in ids.iter().enumerate() {
                    let b = id as usize;
                    if self.segbuf[b] == 0 {
                        self.touched.push(id);
                    }
                    self.segbuf[b] |= 1 << j;
                }
                self.total_bits += SEG_BITS;
                self.flush_seg();
            }
        }
        if let Some((b, k)) = run.take() {
            note_run(k);
            self.flush_const_run(b, k);
        }
        // Tail: fewer than 31 elements left.
        for &v in chunks.remainder() {
            self.push(binner.bin_of(v));
        }
        if ibis_obs::ENABLED {
            OBS_FAST_SEGS.add(fast_segs);
            OBS_MIXED_SEGS.add(mixed_segs);
            OBS_RUN_HITS.add(run_hits);
            OBS_RUN_BITS.merge_counts(&run_buckets, run_bits_sum);
        }
    }

    /// The fused reorder+bin+compress ingest: consumes the permuted stream
    /// `perm.iter().map(|&o| data[o])` without materializing a permuted
    /// copy of `data`, gathering 31-segment-aligned chunks into a small
    /// scratch buffer and handing each to
    /// [`MultiWahBuilder::extend_binned`]. Byte-identical to
    /// `extend_binned` over the fully permuted array because the batched
    /// path is call-split invariant (property-proven in
    /// `prop_generation.rs`), so the constant-segment and cross-segment
    /// run detection see exactly the same element stream.
    pub fn extend_binned_gather(&mut self, binner: &Binner, data: &[f64], perm: &[u32]) {
        // 64 segments per gather: big enough to amortize the chunk loop,
        // small enough to stay in L1 (16 KiB of f64).
        const GATHER_CHUNK: usize = SEG_BITS as usize * 64;
        let mut scratch: Vec<f64> = Vec::with_capacity(GATHER_CHUNK.min(perm.len()));
        let mut chunks = 0u64;
        for block in perm.chunks(GATHER_CHUNK) {
            scratch.clear();
            scratch.extend(block.iter().map(|&o| data[o as usize]));
            self.extend_binned(binner, &scratch);
            chunks += 1;
        }
        if ibis_obs::ENABLED {
            OBS_GATHER_CHUNKS.add(chunks);
        }
    }

    /// Merges `segs` consecutive all-`bin` segments in O(1): one deficit
    /// settle plus one (possibly merging) 1-fill extension on that bin's
    /// builder; every other bin's zero-deficit grows lazily. Byte-identical
    /// to `segs` scalar segment flushes with only `bin` touched — except
    /// when the fused lossy pass is armed and absorbs the deficit (see
    /// [`MultiWahBuilder::set_lossy_fpr`]).
    fn flush_const_run(&mut self, bin: u32, segs: u64) {
        debug_assert_eq!(self.pos_in_seg, 0);
        debug_assert!(segs > 0);
        let b = bin as usize;
        let deficit = self.global_segs - self.appended_segs[b];
        if deficit > 0 {
            // The gap is interior (last committed bit 1, incoming a
            // 1-fill): absorb it when the running FPR budget allows.
            let absorb = self.lossy.as_mut().is_some_and(|l| {
                let gap = deficit * SEG_BITS;
                let zeros = self.global_segs * SEG_BITS - l.ones_exact[b];
                let fits = (l.dropped[b] + gap) as f64 <= l.fpr * zeros as f64;
                let flanked = self.builders[b].last_committed_bit() == Some(true);
                if fits && flanked {
                    l.dropped[b] += gap;
                    true
                } else {
                    false
                }
            });
            self.builders[b].append_fill_aligned(absorb, deficit * SEG_BITS);
        }
        self.builders[b].append_fill_aligned(true, segs * SEG_BITS);
        if let Some(l) = self.lossy.as_mut() {
            l.ones_exact[b] += segs * SEG_BITS;
        }
        self.global_segs += segs;
        self.appended_segs[b] = self.global_segs;
        self.total_bits += segs * SEG_BITS;
    }

    /// Consumes `count` elements all mapped to `bin_id` — byte-identical
    /// to `count` [`MultiWahBuilder::push`] calls, but O(1) per whole
    /// segment: the run lands as fill extensions (split across words past
    /// the 30-bit fill-counter capacity), never as per-element pushes, so
    /// constant regions of ≥ 2³⁰ bits are cheap to ingest. This is also
    /// the batched entry the fill-overflow regression tests drive.
    pub fn extend_repeat(&mut self, bin_id: u32, mut count: u64) {
        debug_assert!((bin_id as usize) < self.builders.len());
        while self.pos_in_seg != 0 && count > 0 {
            self.push(bin_id);
            count -= 1;
        }
        let segs = count / SEG_BITS;
        if segs > 0 {
            self.flush_const_run(bin_id, segs);
            count -= segs * SEG_BITS;
        }
        for _ in 0..count {
            self.push(bin_id);
        }
    }

    /// Merges the completed segment into every touched builder
    /// (Algorithm 1 lines 10–27).
    fn flush_seg(&mut self) {
        for &b in &self.touched {
            let b = b as usize;
            let deficit = self.global_segs - self.appended_segs[b];
            if deficit > 0 {
                // Mixed segments settle deficits exactly: the incoming
                // literal may start with a 0, so the gap is not known to
                // be flanked — the fused lossy pass only absorbs gaps
                // ahead of constant 1-fill runs (`flush_const_run`).
                self.builders[b].append_fill_aligned(false, deficit * SEG_BITS);
            }
            self.builders[b].append_seg31(self.segbuf[b]);
            if let Some(l) = self.lossy.as_mut() {
                l.ones_exact[b] += self.segbuf[b].count_ones() as u64;
            }
            self.appended_segs[b] = self.global_segs + 1;
            self.segbuf[b] = 0;
        }
        self.touched.clear();
        self.global_segs += 1;
        self.pos_in_seg = 0;
    }

    /// Resets the builder for a fresh stream over `nbins` bins, keeping
    /// every allocation that can be kept (the per-bin bookkeeping vectors
    /// and the builder list), so pipelines building one index per time-step
    /// stop allocating working state per step.
    pub fn reset(&mut self, nbins: usize) {
        self.builders.truncate(nbins);
        for b in &mut self.builders {
            b.reset();
        }
        self.builders.resize_with(nbins, WahBuilder::new);
        self.appended_segs.clear();
        self.appended_segs.resize(nbins, 0);
        self.segbuf.clear();
        self.segbuf.resize(nbins, 0);
        self.touched.clear();
        self.pos_in_seg = 0;
        self.global_segs = 0;
        self.total_bits = 0;
        if let Some(l) = self.lossy.as_mut() {
            l.ones_exact.clear();
            l.ones_exact.resize(nbins, 0);
            l.dropped.clear();
            l.dropped.resize(nbins, 0);
        }
    }

    /// Finalizes all bins and resets the builder in place (see
    /// [`MultiWahBuilder::reset`]); every bitvector has length equal to the
    /// number of elements consumed.
    pub fn finish_reset(&mut self) -> Vec<WahVec> {
        // Partial tail segment: append deficits then the partial literals.
        let partial = self.pos_in_seg;
        let touched = std::mem::take(&mut self.touched);
        for &b in &touched {
            let b = b as usize;
            let deficit = self.global_segs - self.appended_segs[b];
            if deficit > 0 {
                self.builders[b].append_fill_aligned(false, deficit * SEG_BITS);
            }
            let seg = self.segbuf[b];
            for j in 0..partial {
                self.builders[b].push_bit(seg & (1 << j) != 0);
            }
            self.segbuf[b] = 0;
            self.appended_segs[b] = self.global_segs; // deficit now settled
        }
        let total = self.total_bits;
        let nbins = self.builders.len();
        let out = self
            .builders
            .iter_mut()
            .map(|bld| {
                let miss = total - bld.len();
                if miss > 0 {
                    bld.append_run(false, miss);
                }
                bld.finish_reset()
            })
            .collect();
        self.reset(nbins);
        out
    }

    /// Finalizes all bins; every bitvector has length equal to the number of
    /// elements consumed.
    pub fn finish(mut self) -> Vec<WahVec> {
        self.finish_reset()
    }

    /// [`MultiWahBuilder::finish_reset`], with each bin handed to its
    /// auto-selected codec ([`crate::select_codec`]) on the way out. The
    /// selection reads the stats the finalization already computes, so
    /// batched ingestion pays nothing extra to decide; bins that stay WAH
    /// are moved, not cloned.
    pub fn finish_codecs_reset(&mut self) -> Vec<crate::codec::CodecVec> {
        self.finish_reset()
            .into_iter()
            .map(crate::codec::CodecVec::from_wah_auto_owned)
            .collect()
    }
}

thread_local! {
    /// Per-thread builder scratch shared by [`crate::BitmapIndex::build`]
    /// and the per-block phase of [`crate::build_index_parallel`], so
    /// repeated index builds on one thread (the in-situ pipelines build one
    /// index per field per time-step) reuse the per-bin bookkeeping instead
    /// of allocating it each call.
    static BUILD_SCRATCH: std::cell::RefCell<MultiWahBuilder> =
        std::cell::RefCell::new(MultiWahBuilder::new(0));
}

/// Runs the fused bin+compress fast path over `data` on the thread's
/// reusable builder scratch and returns the finished bins.
pub(crate) fn build_bins_reusing_scratch(binner: &Binner, data: &[f64]) -> Vec<WahVec> {
    BUILD_SCRATCH.with(|cell| {
        let mut mb = cell.borrow_mut();
        mb.reset(binner.nbins());
        mb.extend_binned(binner, data);
        mb.finish_reset()
    })
}

/// [`build_bins_reusing_scratch`] over the permuted stream `data[perm[i]]`
/// (gathered chunk-wise, never materialized whole) — the reorder pass of
/// [`crate::BitmapIndex::build_permuted`].
pub(crate) fn build_bins_reusing_scratch_permuted(
    binner: &Binner,
    data: &[f64],
    perm: &[u32],
) -> Vec<WahVec> {
    BUILD_SCRATCH.with(|cell| {
        let mut mb = cell.borrow_mut();
        mb.reset(binner.nbins());
        mb.extend_binned_gather(binner, data, perm);
        mb.finish_reset()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wah::COUNT_MASK;

    #[test]
    fn push_bits_roundtrip() {
        let bits: Vec<bool> = (0..97).map(|i| i % 5 < 2).collect();
        let mut b = WahBuilder::new();
        for &bit in &bits {
            b.push_bit(bit);
        }
        let v = b.finish();
        assert_eq!(v.to_bools(), bits);
        v.check_canonical().unwrap();
    }

    #[test]
    fn append_run_merges_across_calls() {
        let mut b = WahBuilder::new();
        b.append_run(true, 62);
        b.append_run(true, 62);
        let v = b.finish();
        assert_eq!(v.words().len(), 1);
        assert_eq!(v.count_ones(), 124);
        v.check_canonical().unwrap();
    }

    #[test]
    fn append_run_zero_is_noop() {
        let mut b = WahBuilder::new();
        b.append_run(true, 0);
        b.push_bit(false);
        b.append_run(false, 0);
        let v = b.finish();
        assert_eq!(v.len(), 1);
        assert_eq!(v.count_ones(), 0);
    }

    #[test]
    fn unaligned_run_then_segment() {
        let mut b = WahBuilder::new();
        b.push_bit(true); // off-boundary
        b.append_run(false, 100);
        b.append_run(true, 100);
        let v = b.finish();
        assert_eq!(v.len(), 201);
        assert_eq!(v.count_ones(), 101);
        assert!(v.get(0));
        assert!(!v.get(1));
        assert!(!v.get(100));
        assert!(v.get(101));
        v.check_canonical().unwrap();
    }

    #[test]
    fn fill_overflow_splits() {
        let huge = MAX_FILL_BITS * 2 + SEG_BITS * 3;
        let mut b = WahBuilder::new();
        b.append_run(true, huge);
        let v = b.finish();
        assert_eq!(v.len(), huge);
        assert_eq!(v.count_ones(), huge);
        assert_eq!(v.words().len(), 3);
        v.check_canonical().unwrap();
    }

    #[test]
    fn from_vec_resumes_partial_tail() {
        let bits: Vec<bool> = (0..40).map(|i| i % 2 == 0).collect();
        let v = WahVec::from_bits(bits.iter().copied());
        let mut b = WahBuilder::from_vec(v);
        b.push_bit(true);
        let v2 = b.finish();
        let mut want = bits;
        want.push(true);
        assert_eq!(v2.to_bools(), want);
        v2.check_canonical().unwrap();
    }

    #[test]
    fn from_vec_resumes_aligned() {
        let v = WahVec::ones(62);
        let mut b = WahBuilder::from_vec(v);
        b.append_run(true, 31);
        let v2 = b.finish();
        assert_eq!(v2.len(), 93);
        assert_eq!(v2.words().len(), 1);
    }

    #[test]
    fn append_wah_equals_manual_concat() {
        let a_bits: Vec<bool> = (0..75).map(|i| i % 7 == 0).collect();
        let b_bits: Vec<bool> = (0..50).map(|i| i % 2 == 0).collect();
        let mut bld = WahBuilder::new();
        bld.append_wah(&WahVec::from_bits(a_bits.iter().copied()));
        bld.append_wah(&WahVec::from_bits(b_bits.iter().copied()));
        let v = bld.finish();
        let want: Vec<bool> = a_bits.into_iter().chain(b_bits).collect();
        assert_eq!(v.to_bools(), want);
        v.check_canonical().unwrap();
    }

    #[test]
    fn multi_builder_basic() {
        let ids = [0u32, 1, 1, 2, 3, 3, 2, 0]; // Figure 1's example dataset
        let mut mb = MultiWahBuilder::new(4);
        mb.extend_from(&ids);
        assert_eq!(mb.len(), 8);
        let bins = mb.finish();
        assert_eq!(bins[0].iter_ones().collect::<Vec<_>>(), vec![0, 7]);
        assert_eq!(bins[1].iter_ones().collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(bins[2].iter_ones().collect::<Vec<_>>(), vec![3, 6]);
        assert_eq!(bins[3].iter_ones().collect::<Vec<_>>(), vec![4, 5]);
        for b in &bins {
            assert_eq!(b.len(), 8);
            b.check_canonical().unwrap();
        }
    }

    #[test]
    fn multi_builder_exactly_one_bin_per_position() {
        let ids: Vec<u32> = (0..500).map(|i| (i * i) % 7).collect();
        let mut mb = MultiWahBuilder::new(7);
        mb.extend_from(&ids);
        let bins = mb.finish();
        for pos in 0..500u64 {
            let set: Vec<usize> = (0..7).filter(|&b| bins[b].get(pos)).collect();
            assert_eq!(set, vec![ids[pos as usize] as usize], "position {pos}");
        }
    }

    #[test]
    fn multi_builder_untouched_bin_is_all_zero_fill() {
        let ids = vec![0u32; 310];
        let mut mb = MultiWahBuilder::new(3);
        mb.extend_from(&ids);
        let bins = mb.finish();
        assert_eq!(bins[0].count_ones(), 310);
        assert_eq!(bins[1].count_ones(), 0);
        assert_eq!(
            bins[1].words().len(),
            1,
            "untouched bin should be a single fill"
        );
        assert_eq!(bins[2].words().len(), 1);
        for b in &bins {
            b.check_canonical().unwrap();
        }
    }

    #[test]
    fn multi_builder_partial_tail() {
        let ids = [2u32, 0, 1]; // 3 elements, well under a segment
        let mut mb = MultiWahBuilder::new(3);
        mb.extend_from(&ids);
        let bins = mb.finish();
        for (b, bin) in bins.iter().enumerate() {
            assert_eq!(bin.len(), 3);
            assert_eq!(bin.count_ones(), 1, "bin {b}");
            bin.check_canonical().unwrap();
        }
        assert!(bins[2].get(0));
        assert!(bins[0].get(1));
        assert!(bins[1].get(2));
    }

    #[test]
    fn multi_builder_deficit_spanning_many_segments() {
        // Bin 1 is touched only at the very start and very end; the long gap
        // must appear as one merged 0-fill.
        let mut ids = vec![0u32; 31 * 100];
        ids[0] = 1;
        let last = ids.len() - 1;
        ids[last] = 1;
        let mut mb = MultiWahBuilder::new(2);
        mb.extend_from(&ids);
        let bins = mb.finish();
        assert_eq!(bins[1].count_ones(), 2);
        assert_eq!(
            bins[1].iter_ones().collect::<Vec<_>>(),
            vec![0, last as u64]
        );
        assert!(
            bins[1].words().len() <= 4,
            "gap should compress to one fill"
        );
        bins[0].check_canonical().unwrap();
        bins[1].check_canonical().unwrap();
    }

    #[test]
    fn multi_builder_zero_bins_zero_elems() {
        let mb = MultiWahBuilder::new(0);
        assert!(mb.finish().is_empty());
        let mb = MultiWahBuilder::new(3);
        let bins = mb.finish();
        assert!(bins.iter().all(|b| b.is_empty()));
    }

    #[test]
    fn builder_len_tracks() {
        let mut b = WahBuilder::new();
        assert!(b.is_empty());
        b.push_bit(true);
        assert_eq!(b.len(), 1);
        b.append_run(false, 61);
        assert_eq!(b.len(), 62);
    }

    #[test]
    fn count_mask_capacity_sane() {
        assert!(MAX_FILL_BITS.is_multiple_of(SEG_BITS));
        assert!(MAX_FILL_BITS + SEG_BITS <= COUNT_MASK as u64);
    }

    #[test]
    fn fill_overflow_scalar_builder_splits_past_2_pow_30() {
        // A constant region longer than the 30-bit fill counter (2^30
        // bits > MAX_FILL_BITS) must split across fill words, never
        // truncate. O(1) memory: fills are run-level, not per-bit.
        let huge = (1u64 << 30).next_multiple_of(SEG_BITS); // ≥ 2^30, aligned
        let mut b = WahBuilder::new();
        b.append_run(false, 62);
        b.append_run(true, huge);
        b.append_run(false, 62);
        let v = b.finish();
        assert_eq!(v.len(), huge + 124);
        assert_eq!(v.count_ones(), huge);
        v.check_canonical().unwrap();
        // every word's fill counter is within capacity
        for &w in v.words() {
            if is_fill(w) {
                assert!(fill_bits(w) <= MAX_FILL_BITS);
            }
        }
        assert!(v.words().len() <= 4, "got {} words", v.words().len());
    }

    #[test]
    fn fill_overflow_batched_builder_splits_past_2_pow_30() {
        // Same region through the batched multi-bin builder: bin 1 holds
        // a ≥ 2^30-bit 1-fill, bin 0 the matching 0-fill deficit — both
        // must split at MAX_FILL_BITS.
        let huge = (1u64 << 30) + 7; // deliberately unaligned
        let mut mb = MultiWahBuilder::new(2);
        mb.extend_repeat(0, 40);
        mb.extend_repeat(1, huge);
        mb.extend_repeat(0, 40);
        let bins = mb.finish();
        assert_eq!(bins[0].len(), huge + 80);
        assert_eq!(bins[0].count_ones(), 80);
        assert_eq!(bins[1].count_ones(), huge);
        for bin in &bins {
            bin.check_canonical().unwrap();
            for &w in bin.words() {
                if is_fill(w) {
                    assert!(fill_bits(w) <= MAX_FILL_BITS);
                }
            }
        }
    }

    #[test]
    fn extend_repeat_equals_scalar_pushes() {
        let plan = [(0u32, 5u64), (1, 100), (0, 31), (2, 62), (1, 3), (1, 40)];
        let mut batched = MultiWahBuilder::new(3);
        let mut scalar = MultiWahBuilder::new(3);
        for &(bin, n) in &plan {
            batched.extend_repeat(bin, n);
            for _ in 0..n {
                scalar.push(bin);
            }
        }
        let vb = batched.finish();
        let vs = scalar.finish();
        for (b, (x, y)) in vb.iter().zip(&vs).enumerate() {
            assert_eq!(x.words(), y.words(), "bin {b}");
            assert_eq!(x.len(), y.len());
        }
    }

    #[test]
    #[should_panic(expected = "overflows the 30-bit counter")]
    fn make_fill_rejects_overflow_in_release_too() {
        let _ = make_fill(true, 1u64 << 30);
    }

    #[test]
    fn fused_lossy_produces_superset_within_budget() {
        use crate::binning::Binner;
        // Smooth field with whole-segment excursions: the hot bin's
        // absence gaps are deficits flanked by its own 1-fills — the
        // fused pass's absorption point.
        let data: Vec<f64> = (0..31 * 2000)
            .map(|i| if (i / 31) % 20 == 19 { 3.0 } else { 1.0 })
            .collect();
        let binner = Binner::fixed_width(0.0, 4.0, 4);
        let mut exact_b = MultiWahBuilder::new(4);
        exact_b.extend_binned(&binner, &data);
        let exact = exact_b.finish();
        for fpr in [1e-4, 1e-2, 1e-1] {
            let mut mb = MultiWahBuilder::new(4);
            mb.set_lossy_fpr(fpr);
            mb.extend_binned(&binner, &data);
            let dropped = mb.lossy_bits_dropped();
            let lossy = mb.finish();
            let mut total_zeros = 0u64;
            for (b, (e, l)) in exact.iter().zip(&lossy).enumerate() {
                l.check_canonical().unwrap();
                assert_eq!(e.and(l), *e, "fpr {fpr} bin {b} superset");
                let zeros = e.len() - e.count_ones();
                let bin_dropped = l.count_ones() - e.count_ones();
                assert!(
                    bin_dropped as f64 <= fpr * zeros as f64,
                    "fpr {fpr} bin {b}: dropped {bin_dropped} of {zeros} zeros"
                );
                total_zeros += zeros;
            }
            let total_dropped: u64 = exact
                .iter()
                .zip(&lossy)
                .map(|(e, l)| l.count_ones() - e.count_ones())
                .sum();
            assert_eq!(dropped, total_dropped, "fpr {fpr} stats agree");
            assert!(total_dropped as f64 <= fpr * total_zeros as f64);
        }
        // at the top FPR the hot bin actually absorbed something
        let mut mb = MultiWahBuilder::new(4);
        mb.set_lossy_fpr(0.1);
        mb.extend_binned(&binner, &data);
        assert!(mb.lossy_bits_dropped() > 0, "no gap was absorbed");
    }

    #[test]
    fn fused_lossy_zero_fpr_is_exact() {
        use crate::binning::Binner;
        let data: Vec<f64> = (0..3100).map(|i| ((i / 17) % 5) as f64).collect();
        let binner = Binner::fixed_width(0.0, 5.0, 5);
        let mut a = MultiWahBuilder::new(5);
        a.set_lossy_fpr(0.0);
        a.extend_binned(&binner, &data);
        let mut b = MultiWahBuilder::new(5);
        b.extend_binned(&binner, &data);
        let (va, vb) = (a.finish(), b.finish());
        for (x, y) in va.iter().zip(&vb) {
            assert_eq!(x.words(), y.words());
        }
    }

    #[test]
    fn fused_lossy_survives_reset() {
        use crate::binning::Binner;
        let data: Vec<f64> = (0..31 * 100)
            .map(|i| if (i / 31) % 4 == 3 { 1.0 } else { 0.0 })
            .collect();
        let binner = Binner::fixed_width(0.0, 2.0, 2);
        let mut mb = MultiWahBuilder::new(2);
        mb.set_lossy_fpr(0.1);
        mb.extend_binned(&binner, &data);
        let first = mb.lossy_bits_dropped();
        assert!(first > 0, "no gap was absorbed");
        let bins1 = mb.finish_reset();
        // tallies cleared, config kept: a second identical stream drops
        // the same bits and yields the same words
        assert_eq!(mb.lossy_bits_dropped(), 0);
        mb.reset(2);
        mb.extend_binned(&binner, &data);
        assert_eq!(mb.lossy_bits_dropped(), first);
        let bins2 = mb.finish_reset();
        for (x, y) in bins1.iter().zip(&bins2) {
            assert_eq!(x.words(), y.words());
        }
    }
}
