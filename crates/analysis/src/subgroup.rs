//! Subgroup discovery on bitmaps — the SciSD capability the paper lists
//! among the analyses bitmaps support without the original data
//! (Section 2.2, citing the authors' SciSD work [39]).
//!
//! A *subgroup* is a conjunction of value-range conditions over descriptor
//! variables (`temp ∈ [18, 22) ∧ depth ∈ [0, 100)`); its *quality* weighs
//! how strongly the target variable deviates from the population inside
//! the subgroup against the subgroup's coverage. Everything is computed
//! from bitmaps: a condition is an OR over a bin range, a conjunction is an
//! AND of selections, the target statistics come from midpoint aggregation
//! — the raw data is never touched.

use crate::aggregate;
use ibis_core::{BitmapIndex, WahVec};

/// One value-range condition: descriptor variable `var` restricted to bins
/// `bin_lo..=bin_hi`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Condition {
    /// Index into the descriptor list.
    pub var: usize,
    /// First bin of the range (inclusive).
    pub bin_lo: usize,
    /// Last bin of the range (inclusive).
    pub bin_hi: usize,
}

/// A discovered subgroup.
#[derive(Debug, Clone)]
pub struct Subgroup {
    /// The conjunction describing the subgroup (at most `max_depth` terms).
    pub conditions: Vec<Condition>,
    /// Elements covered.
    pub coverage: u64,
    /// Estimated target mean inside the subgroup.
    pub target_mean: f64,
    /// Quality: `sqrt(coverage/n) × |mean_subgroup − mean_population|`.
    pub quality: f64,
}

/// Search parameters.
#[derive(Debug, Clone, Copy)]
pub struct SubgroupConfig {
    /// Beam width (candidates kept per refinement level).
    pub beam_width: usize,
    /// Maximum conditions per subgroup.
    pub max_depth: usize,
    /// Bins grouped per seed condition (condition granularity).
    pub bins_per_condition: usize,
    /// Minimum elements a subgroup must cover.
    pub min_coverage: u64,
    /// Results returned.
    pub top_k: usize,
}

impl Default for SubgroupConfig {
    fn default() -> Self {
        SubgroupConfig {
            beam_width: 8,
            max_depth: 2,
            bins_per_condition: 4,
            min_coverage: 32,
            top_k: 5,
        }
    }
}

/// Beam-search subgroup discovery: `descriptors` are the candidate
/// condition variables, `target` the variable whose deviation defines
/// interestingness. All indices must cover the same positions.
pub fn discover_subgroups(
    descriptors: &[&BitmapIndex],
    target: &BitmapIndex,
    cfg: &SubgroupConfig,
) -> Vec<Subgroup> {
    assert!(!descriptors.is_empty(), "need at least one descriptor");
    assert!(
        cfg.beam_width >= 1 && cfg.max_depth >= 1 && cfg.top_k >= 1,
        "degenerate config"
    );
    assert!(
        cfg.bins_per_condition >= 1,
        "bins_per_condition must be positive"
    );
    let n = target.len();
    for d in descriptors {
        assert_eq!(
            d.len(),
            n,
            "descriptor covers different positions than target"
        );
    }
    if n == 0 {
        return Vec::new();
    }
    let pop_mean = match aggregate::mean(target) {
        Some(m) => m.value,
        None => return Vec::new(),
    };

    // Seed conditions: consecutive bin windows per descriptor.
    let mut seeds: Vec<(Condition, WahVec)> = Vec::new();
    for (v, d) in descriptors.iter().enumerate() {
        let mut bin = 0;
        while bin < d.nbins() {
            let hi = (bin + cfg.bins_per_condition - 1).min(d.nbins() - 1);
            let sel = d.query_bins(bin..=hi);
            if sel.count_ones() >= cfg.min_coverage {
                seeds.push((
                    Condition {
                        var: v,
                        bin_lo: bin,
                        bin_hi: hi,
                    },
                    sel,
                ));
            }
            bin = hi + 1;
        }
    }

    let score = |sel: &WahVec| -> Option<(u64, f64, f64)> {
        let coverage = sel.count_ones();
        if coverage < cfg.min_coverage {
            return None;
        }
        let mean = aggregate::mean_selected(target, sel)?.value;
        let quality = (coverage as f64 / n as f64).sqrt() * (mean - pop_mean).abs();
        Some((coverage, mean, quality))
    };

    // candidate = (conditions, selection, coverage, mean, quality)
    struct Cand {
        conditions: Vec<Condition>,
        sel: WahVec,
        coverage: u64,
        mean: f64,
        quality: f64,
    }
    fn sort_cands(v: &mut [Cand]) {
        v.sort_by(|a, b| b.quality.partial_cmp(&a.quality).unwrap());
    }
    fn to_subgroup(c: &Cand) -> Subgroup {
        Subgroup {
            conditions: c.conditions.clone(),
            coverage: c.coverage,
            target_mean: c.mean,
            quality: c.quality,
        }
    }
    let mut beam: Vec<Cand> = seeds
        .iter()
        .filter_map(|(c, sel)| {
            let (coverage, mean, quality) = score(sel)?;
            Some(Cand {
                conditions: vec![*c],
                sel: sel.clone(),
                coverage,
                mean,
                quality,
            })
        })
        .collect();
    sort_cands(&mut beam);
    beam.truncate(cfg.beam_width);
    let mut best: Vec<Subgroup> = beam.iter().map(to_subgroup).collect();

    for _depth in 1..cfg.max_depth {
        let mut next: Vec<Cand> = Vec::new();
        for cand in &beam {
            for (c, seed_sel) in &seeds {
                // one condition per variable, in variable order (canonical
                // form — avoids symmetric duplicates)
                if cand.conditions.iter().any(|e| e.var >= c.var) {
                    continue;
                }
                let sel = cand.sel.and(seed_sel);
                let Some((coverage, mean, quality)) = score(&sel) else {
                    continue;
                };
                let mut conditions = cand.conditions.clone();
                conditions.push(*c);
                next.push(Cand {
                    conditions,
                    sel,
                    coverage,
                    mean,
                    quality,
                });
            }
        }
        if next.is_empty() {
            break;
        }
        sort_cands(&mut next);
        next.truncate(cfg.beam_width);
        best.extend(next.iter().map(to_subgroup));
        beam = next;
    }

    best.sort_by(|a, b| b.quality.partial_cmp(&a.quality).unwrap());
    best.dedup_by(|a, b| a.conditions == b.conditions);
    best.truncate(cfg.top_k);
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibis_core::Binner;

    /// Target elevated exactly where `d1 ∈ [5,6) ∧ d2 ∈ [2,3)` — a planted
    /// two-condition subgroup.
    fn planted(n: usize) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let d1: Vec<f64> = (0..n).map(|i| ((i / 7) % 10) as f64).collect();
        let d2: Vec<f64> = (0..n).map(|i| ((i / 3) % 5) as f64).collect();
        let target: Vec<f64> = (0..n)
            .map(|i| {
                let base = ((i * 31) % 17) as f64 * 0.1;
                if d1[i] == 5.0 && d2[i] == 2.0 {
                    base + 10.0
                } else {
                    base
                }
            })
            .collect();
        (d1, d2, target)
    }

    fn indexes(n: usize) -> (BitmapIndex, BitmapIndex, BitmapIndex) {
        let (d1, d2, t) = planted(n);
        (
            BitmapIndex::build(&d1, Binner::distinct_ints(0, 9)),
            BitmapIndex::build(&d2, Binner::distinct_ints(0, 4)),
            BitmapIndex::build(&t, Binner::fit(&t, 64)),
        )
    }

    #[test]
    fn finds_the_planted_subgroup() {
        let (i1, i2, it) = indexes(4000);
        let cfg = SubgroupConfig {
            bins_per_condition: 1,
            max_depth: 2,
            beam_width: 12,
            min_coverage: 16,
            top_k: 3,
        };
        let found = discover_subgroups(&[&i1, &i2], &it, &cfg);
        assert!(!found.is_empty());
        let top = &found[0];
        assert_eq!(
            top.conditions.len(),
            2,
            "should refine to the conjunction: {top:?}"
        );
        let c1 = top
            .conditions
            .iter()
            .find(|c| c.var == 0)
            .expect("condition on d1");
        let c2 = top
            .conditions
            .iter()
            .find(|c| c.var == 1)
            .expect("condition on d2");
        assert!((c1.bin_lo..=c1.bin_hi).contains(&5), "d1 range {c1:?}");
        assert!((c2.bin_lo..=c2.bin_hi).contains(&2), "d2 range {c2:?}");
        assert!(
            top.target_mean > 5.0,
            "elevated target mean: {}",
            top.target_mean
        );
    }

    #[test]
    fn results_sorted_and_capped() {
        let (i1, i2, it) = indexes(2000);
        let cfg = SubgroupConfig {
            top_k: 4,
            bins_per_condition: 2,
            ..Default::default()
        };
        let found = discover_subgroups(&[&i1, &i2], &it, &cfg);
        assert!(found.len() <= 4);
        for w in found.windows(2) {
            assert!(w[0].quality >= w[1].quality);
        }
        for sg in &found {
            assert!(sg.coverage >= cfg.min_coverage);
        }
    }

    #[test]
    fn depth_one_only_single_conditions() {
        let (i1, i2, it) = indexes(2000);
        let cfg = SubgroupConfig {
            max_depth: 1,
            bins_per_condition: 1,
            ..Default::default()
        };
        let found = discover_subgroups(&[&i1, &i2], &it, &cfg);
        assert!(found.iter().all(|sg| sg.conditions.len() == 1));
    }

    #[test]
    fn min_coverage_is_respected() {
        let (i1, i2, it) = indexes(2000);
        let cfg = SubgroupConfig {
            min_coverage: 1900,
            ..Default::default()
        };
        let found = discover_subgroups(&[&i1, &i2], &it, &cfg);
        for sg in &found {
            assert!(sg.coverage >= 1900);
        }
    }

    #[test]
    fn empty_and_constant_inputs() {
        let e = BitmapIndex::build(&[], Binner::fixed_width(0.0, 1.0, 2));
        let found = discover_subgroups(&[&e], &e, &SubgroupConfig::default());
        assert!(found.is_empty());
        // constant target: no deviation, still well-defined
        let d: Vec<f64> = (0..200).map(|i| (i % 4) as f64).collect();
        let t = vec![1.0; 200];
        let id = BitmapIndex::build(&d, Binner::distinct_ints(0, 3));
        let it = BitmapIndex::build(&t, Binner::fixed_width(0.0, 2.0, 4));
        let found = discover_subgroups(
            &[&id],
            &it,
            &SubgroupConfig {
                bins_per_condition: 1,
                min_coverage: 10,
                ..Default::default()
            },
        );
        for sg in &found {
            assert!(
                sg.quality.abs() < 1e-9,
                "no subgroup can beat a constant target"
            );
        }
    }

    #[test]
    #[should_panic(expected = "different positions")]
    fn mismatched_lengths_panic() {
        let a = BitmapIndex::build(&[1.0, 2.0], Binner::fixed_width(0.0, 3.0, 3));
        let t = BitmapIndex::build(&[1.0], Binner::fixed_width(0.0, 3.0, 3));
        let _ = discover_subgroups(&[&a], &t, &SubgroupConfig::default());
    }
}
