//! Integration tests for the sharded distributed store: scatter-gather
//! answers must be indistinguishable from the single-store engine (the
//! oracle) across shard counts, bin widths, and persisted row orders;
//! a corrupted shard must quarantine locally — the *other* shards'
//! selections stay byte-identical — and repair through the normal
//! resume + re-put path; a writer killed mid-ingest must resume from
//! whatever each shard made durable.

use ibis_analysis::SubsetQuery;
use ibis_core::{Binner, BitmapIndex, RowOrder};
use ibis_insitu::{
    CachedStore, IbisError, MaintenanceConfig, QueryEngine, QueryRequest, ShardedEngine,
    ShardedStore, ShardedWriter, Store, StoreWriter,
};
use proptest::prelude::*;
use std::path::PathBuf;

const ROWS: usize = 2500;
const BUDGET: u64 = 256 << 20;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ibis-shard-it-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Spatially structured field: a slow drift along the row axis (so region
/// predicates correlate with values) plus a deterministic wiggle.
fn field(rows: usize, step: usize, phase: usize) -> Vec<f64> {
    (0..rows)
        .map(|i| {
            let drift = 8.0 * (i as f64 / rows as f64);
            let wiggle = ((i * 13 + step * 29 + phase * 101) % 160) as f64 / 80.0;
            drift + wiggle
        })
        .collect()
}

/// Builds the same 2-steps × 2-variables dataset twice: once flat, once
/// split over `k` shards, optionally stored under a row order whose
/// permutation is persisted.
fn twin_stores(
    name: &str,
    k: usize,
    binner: &Binner,
    order: RowOrder,
) -> (PathBuf, PathBuf, Store, ShardedStore) {
    let flat_dir = tmp(&format!("{name}-flat"));
    let shard_dir = tmp(&format!("{name}-k{k}"));
    let mut fw = StoreWriter::create(&flat_dir).unwrap();
    let mut sw = ShardedWriter::create(&shard_dir, k).unwrap();
    for step in [0usize, 1] {
        let perm = order.permutation(&[], binner, &field(ROWS, step, 0));
        for (phase, var) in ["temperature", "salinity"].iter().enumerate() {
            let data = field(ROWS, step, phase);
            let idx = match &perm {
                Some(p) => BitmapIndex::build_permuted(&data, binner.clone(), p),
                None => BitmapIndex::build(&data, binner.clone()),
            };
            fw.put(step, var, &idx).unwrap();
            sw.put(step, var, &idx).unwrap();
        }
        if let Some(p) = &perm {
            fw.put_order(step, order, p).unwrap();
            sw.put_order(step, order, p).unwrap();
        }
    }
    fw.finish().unwrap();
    sw.finish().unwrap();
    let flat = Store::open(&flat_dir).unwrap();
    let sharded = ShardedStore::open(&shard_dir).unwrap();
    (flat_dir, shard_dir, flat, sharded)
}

/// The query battery: every request shape the engine serves.
fn battery(rows: u64) -> Vec<QueryRequest> {
    vec![
        QueryRequest::Subset {
            step: 0,
            variable: "temperature".into(),
            query: SubsetQuery::value(2.0, 7.5),
        },
        QueryRequest::Subset {
            step: 1,
            variable: "salinity".into(),
            query: SubsetQuery::region(rows / 5..rows / 2),
        },
        QueryRequest::Subset {
            step: 0,
            variable: "salinity".into(),
            query: SubsetQuery::value(1.0, 6.0).with_region(7..rows - 3),
        },
        QueryRequest::Correlation {
            step: 1,
            var_a: "temperature".into(),
            var_b: "salinity".into(),
            query_a: SubsetQuery::value(0.5, 8.0),
            query_b: SubsetQuery::region(0..rows / 2),
        },
        QueryRequest::Correlation {
            step: 0,
            var_a: "temperature".into(),
            var_b: "salinity".into(),
            query_a: SubsetQuery::value(3.0, 9.0).with_region(11..rows / 3),
            query_b: SubsetQuery::value(0.0, 5.0).with_region(5..rows / 4),
        },
    ]
}

#[test]
fn sharded_equals_oracle_across_shards_bins_and_row_orders() {
    // Bin counts pick different container codecs downstream; row orders
    // exercise the permutation-aware (prune-disabled) path.
    for nbins in [16usize, 64] {
        let binner = Binner::fixed_width(0.0, 10.0, nbins);
        for order in [
            RowOrder::Identity,
            RowOrder::GrayBin,
            RowOrder::HistogramSorted,
        ] {
            for k in [1usize, 2, 3, 4] {
                let name = format!("oracle-b{nbins}-{order:?}-{k}");
                let (fd, sd, flat, sharded) = twin_stores(&name, k, &binner, order);
                let oracle = QueryEngine::new(CachedStore::new(flat, BUDGET));
                let engine = ShardedEngine::from_store(sharded, BUDGET).unwrap();
                // two passes: the second hits the warm (possibly pruned) path
                for pass in 0..2 {
                    for req in battery(ROWS as u64) {
                        assert_eq!(
                            engine.run(&req).unwrap(),
                            oracle.run(&req).unwrap(),
                            "nbins={nbins} order={order:?} k={k} pass={pass} {req:?}"
                        );
                    }
                }
                // raw selections are byte-identical, not just equinumerous
                if order == RowOrder::Identity {
                    let q = SubsetQuery::value(2.0, 7.5).with_region(100..ROWS as u64 - 50);
                    let sel_s = engine.selection(0, "temperature", &q).unwrap();
                    let ml = oracle.cache().get("temperature", 0).unwrap();
                    let sel_f = q.evaluate_ml(&ml).unwrap();
                    assert_eq!(sel_s, sel_f, "nbins={nbins} k={k}");
                }
                std::fs::remove_dir_all(&fd).ok();
                std::fs::remove_dir_all(&sd).ok();
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    /// Randomised oracle check: arbitrary data, shard count, value bounds
    /// and region — the scatter-gather answer always matches the flat
    /// engine, including when both return errors.
    #[test]
    fn random_queries_match_oracle(
        data in proptest::collection::vec(0.0f64..10.0, 64..400),
        k in 1usize..6,
        lo in -1.0f64..11.0,
        span in 0.0f64..12.0,
        r0 in 0u64..400,
        rlen in 0u64..400,
    ) {
        let dir = tmp(&format!("prop-{k}-{}", data.len()));
        let flat_dir = tmp(&format!("prop-flat-{k}-{}", data.len()));
        let binner = Binner::fixed_width(0.0, 10.0, 24);
        let idx = BitmapIndex::build(&data, binner);
        let mut sw = ShardedWriter::create(&dir, k).unwrap();
        sw.put(0, "v", &idx).unwrap();
        sw.finish().unwrap();
        let mut fw = StoreWriter::create(&flat_dir).unwrap();
        fw.put(0, "v", &idx).unwrap();
        fw.finish().unwrap();

        let engine = ShardedEngine::open(&dir, BUDGET).unwrap();
        let oracle = QueryEngine::new(CachedStore::new(Store::open(&flat_dir).unwrap(), BUDGET));
        let req = QueryRequest::Subset {
            step: 0,
            variable: "v".into(),
            query: SubsetQuery::value(lo, lo + span).with_region(r0..r0 + rlen),
        };
        for _pass in 0..2 {
            match (engine.run(&req), oracle.run(&req)) {
                (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
                (Err(a), Err(b)) => prop_assert_eq!(
                    std::mem::discriminant(&a),
                    std::mem::discriminant(&b)
                ),
                (a, b) => prop_assert!(false, "diverged: {a:?} vs {b:?}"),
            }
        }
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&flat_dir).ok();
    }
}

#[test]
fn corrupt_shard_quarantines_locally_and_repairs() {
    let binner = Binner::fixed_width(0.0, 10.0, 48);
    let (fd, sd, flat, _) = twin_stores("fsck", 3, &binner, RowOrder::Identity);
    let oracle = QueryEngine::new(CachedStore::new(flat, BUDGET));

    // flip bytes in the middle of shard-001's step-1 temperature blob
    let blob = sd.join("shard-001").join("s000001_temperature.ibis");
    let mut bytes = std::fs::read(&blob).unwrap();
    let mid = bytes.len() / 2;
    for b in &mut bytes[mid..mid + 4] {
        *b ^= 0xFF;
    }
    std::fs::write(&blob, &bytes).unwrap();

    // fsck quarantines the damaged blob in its shard — and only there
    let mut store = ShardedStore::open(&sd).unwrap();
    let reports = store.fsck();
    assert_eq!(reports.len(), 3);
    assert!(reports[0].is_clean() && reports[2].is_clean());
    assert_eq!(reports[1].quarantined.len(), 1);
    assert!(blob.with_extension("ibis.quarantined").exists());

    // the damaged pair is now a structured miss; every other pair's
    // selection is byte-identical to the oracle
    let engine = ShardedEngine::from_store(store, BUDGET).unwrap();
    let dead = QueryRequest::Subset {
        step: 1,
        variable: "temperature".into(),
        query: SubsetQuery::all(),
    };
    assert!(matches!(
        engine.run(&dead).unwrap_err(),
        IbisError::NotFound { .. }
    ));
    for (step, var) in [(0usize, "temperature"), (0, "salinity"), (1, "salinity")] {
        let q = SubsetQuery::value(1.5, 8.0).with_region(40..(ROWS as u64) - 9);
        let sel = engine.selection(step, var, &q).unwrap();
        let ml = oracle.cache().get(var, step).unwrap();
        assert_eq!(sel, q.evaluate_ml(&ml).unwrap(), "step {step} {var}");
    }
    drop(engine);

    // repair = the ordinary durable path: resume the writer, re-put the
    // lost step, finish; the sharded tier then matches the oracle again
    let mut w = ShardedWriter::resume(&sd).unwrap();
    assert!(!w.contains(1, "temperature"));
    let idx = BitmapIndex::build(&field(ROWS, 1, 0), binner.clone());
    w.put(1, "temperature", &idx).unwrap();
    w.finish().unwrap();
    // compaction sweeps the quarantined debris off disk
    let store = ShardedStore::open(&sd).unwrap();
    let compacted = store.compact().unwrap();
    assert!(compacted.files_removed >= 1);
    assert!(!blob.with_extension("ibis.quarantined").exists());
    let engine = ShardedEngine::from_store(store, BUDGET).unwrap();
    for req in battery(ROWS as u64) {
        assert_eq!(engine.run(&req).unwrap(), oracle.run(&req).unwrap());
    }
    std::fs::remove_dir_all(&fd).ok();
    std::fs::remove_dir_all(&sd).ok();
}

#[test]
fn killed_writer_resumes_from_each_shards_durable_state() {
    let dir = tmp("nodekill");
    let binner = Binner::fixed_width(0.0, 10.0, 48);
    let step_idx =
        |step: usize, phase: usize| BitmapIndex::build(&field(ROWS, step, phase), binner.clone());

    // the "node" dies after step 0 is fully durable and step 1 partially so
    {
        let mut w = ShardedWriter::create(&dir, 3).unwrap();
        for (phase, var) in ["temperature", "salinity"].iter().enumerate() {
            w.put(0, var, &step_idx(0, phase)).unwrap();
        }
        w.put(1, "temperature", &step_idx(1, 0)).unwrap();
        // no finish(): the process is gone
    }
    // …and shard-002 additionally tore its journal tail on the way down
    let journal = dir.join("shard-002").join("JOURNAL");
    let bytes = std::fs::read(&journal).unwrap();
    std::fs::write(&journal, &bytes[..bytes.len() - 3]).unwrap();

    // resume sees exactly what every shard can prove durable
    let mut w = ShardedWriter::resume(&dir).unwrap();
    assert_eq!(w.durable_steps(), vec![0]);
    assert!(!w.contains(1, "temperature"), "torn shard-002 lost step 1");

    // idempotent re-put repairs the stragglers, then the run completes
    for (phase, var) in ["temperature", "salinity"].iter().enumerate() {
        w.put(1, var, &step_idx(1, phase)).unwrap();
    }
    w.finish().unwrap();

    // the recovered store answers exactly like a never-killed flat run
    let flat_dir = tmp("nodekill-flat");
    let mut fw = StoreWriter::create(&flat_dir).unwrap();
    for step in [0usize, 1] {
        for (phase, var) in ["temperature", "salinity"].iter().enumerate() {
            fw.put(step, var, &step_idx(step, phase)).unwrap();
        }
    }
    fw.finish().unwrap();
    let engine = ShardedEngine::open(&dir, BUDGET).unwrap();
    let oracle = QueryEngine::new(CachedStore::new(Store::open(&flat_dir).unwrap(), BUDGET));
    for req in battery(ROWS as u64) {
        assert_eq!(engine.run(&req).unwrap(), oracle.run(&req).unwrap());
    }
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&flat_dir).ok();
}

#[test]
fn per_shard_cache_gauges_reach_the_registry() {
    if !ibis_obs::ENABLED {
        return; // metrics compiled out in this configuration
    }
    let binner = Binner::fixed_width(0.0, 10.0, 48);
    let (fd, sd, _flat, sharded) = twin_stores("obs", 2, &binner, RowOrder::Identity);
    let engine = ShardedEngine::from_store(sharded, BUDGET).unwrap();
    for req in battery(ROWS as u64) {
        engine.run(&req).unwrap();
    }
    engine.publish_obs();
    let snap = ibis_obs::global().snapshot();
    for shard in ["shard000", "shard001"] {
        match snap.get(&format!("query.cache.{shard}.resident_bytes")) {
            Some(ibis_obs::MetricValue::Gauge { value, .. }) => {
                assert!(*value > 0, "{shard} must hold decoded bytes");
            }
            other => panic!("missing per-shard gauge for {shard}: {other:?}"),
        }
        match snap.get(&format!("query.cache.{shard}.misses")) {
            Some(ibis_obs::MetricValue::Gauge { value, .. }) => assert!(*value > 0),
            other => panic!("missing per-shard miss gauge for {shard}: {other:?}"),
        }
    }
    // maintenance on a quiesced engine publishes its counters too
    let rep = engine
        .maintenance_once(&MaintenanceConfig {
            compact: true,
            hot_steps: None,
            cache_target_bytes: Some(0),
        })
        .unwrap();
    assert!(
        rep.evicted_bytes > 0,
        "cache_target 0 must evict everything"
    );
    std::fs::remove_dir_all(&fd).ok();
    std::fs::remove_dir_all(&sd).ok();
}
