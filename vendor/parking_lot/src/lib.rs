//! Minimal `parking_lot` shim over `std::sync::Mutex`.
//!
//! The only API this workspace uses is `Mutex::new` + infallible
//! `Mutex::lock`. Lock poisoning is deliberately ignored (parking_lot has no
//! poisoning either): a poisoned std mutex yields its inner guard.

use std::sync::MutexGuard;

/// A mutual-exclusion lock with parking_lot's infallible `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never panics on
    /// poisoning — matching parking_lot, which has no poison state.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}
