//! Sharded distributed store with scatter-gather query execution and
//! background maintenance (DESIGN.md §6k).
//!
//! One step's index is split into `K` spatial shards over contiguous
//! stored-row ranges. Each shard is a first-class durable [`Store`]: its
//! own journal, CRC'd blobs, fsck/repair, and crash-resume — a killed
//! node resumes from *its* shard directory alone. On top, a scatter-
//! gather [`ShardedEngine`] fans value-range and region queries out per
//! shard, evaluates them against per-shard [`CachedStore`]s, and merges
//! with a deterministic reduction order, so answers are **byte-identical**
//! to the unsharded [`QueryEngine`]:
//!
//! * a shard's canonical WAH selection is exactly
//!   `global_selection.slice(rows)` (canonical-form uniqueness), so
//!   selection *counts* sum and selections *concatenate* to the global
//!   vector word-for-word ([`ShardedEngine::selection`]);
//! * correlation metrics reduce over additive integer partials
//!   ([`ibis_analysis::CorrelationPartial`], merged in ascending shard
//!   order) and finish through the same pure float finishers — the merged
//!   counts equal the global counts exactly, so the floats match bit for
//!   bit;
//! * region predicates prune: with an identity row layout, a query whose
//!   region misses a shard's row range contributes an empty partial by
//!   construction, so that shard is neither loaded nor evaluated — on a
//!   spatially-local workload a `K`-shard store does ~`1/K` of the decode
//!   and popcount work per query.
//!
//! Row split: shard `i` of `K` covers stored rows
//! `[(i*n)/K, ((i+1)*n)/K)` — a pure function of `(n, K)`, so no per-step
//! cut manifest is needed; at query time the per-shard index lengths
//! prefix-sum back into the row ranges. The top-level `SHARDS` file
//! records `K` (with a CRC footer) so a silently-missing shard directory
//! is a hard open error rather than a plausible-but-wrong answer.
//!
//! Background maintenance ([`ShardedEngine::maintenance_once`]) compacts
//! durable debris (quarantined blobs, orphaned temp files, stale
//! journals) and applies tiered cache eviction — drop steps that fell out
//! of the hot set, then squeeze to an idle byte target — per shard.
//!
//! Counters (family `shard`): `shard.query.{ok,rejected,fanout,pruned}`,
//! `shard.compact.{files,bytes}`,
//! `shard.maintenance.{runs,evicted_bytes}`; each shard's cache also
//! publishes per-instance `query.cache.shard<i>.{…}` gauges.

use crate::cache::{CacheStats, CachedStore};
use crate::crc::crc32c;
use crate::engine::{
    deadline_check, parse_batch, render_answers, QueryAnswer, QueryEngine, QueryRequest,
};
use crate::error::{panic_message, IbisError, Result, WorkerRole};
use crate::io::write_atomic;
use crate::store::{FsckReport, Store, StoreWriter};
use ibis_analysis::{
    correlation_partial_ml_shard, evaluate_ml_shard, finish_correlation, CorrelationPartial,
    QueryError, SubsetQuery,
};
use ibis_core::{BitmapIndex, MultiLevelIndex, RowOrder, RowPermutation, WahBuilder, WahVec};
use ibis_obs::LazyCounter;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::ops::Range;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// Memoized prefix row cuts, keyed by `(step, variable)`: `cuts[i]` is
/// shard `i`'s first global row, `cuts[K]` the global length.
type CutsMemo = Mutex<HashMap<(usize, String), Arc<Vec<u64>>>>;

/// A full fan-out load: every shard's decoded index plus the prefix row
/// cuts derived from their lengths.
type LoadedShards = (Vec<Arc<MultiLevelIndex>>, Arc<Vec<u64>>);

static OBS_SHARD_OK: LazyCounter = LazyCounter::new("shard.query.ok");
static OBS_SHARD_REJECTED: LazyCounter = LazyCounter::new("shard.query.rejected");
static OBS_SHARD_FANOUT: LazyCounter = LazyCounter::new("shard.query.fanout");
static OBS_SHARD_PRUNED: LazyCounter = LazyCounter::new("shard.query.pruned");
static OBS_COMPACT_FILES: LazyCounter = LazyCounter::new("shard.compact.files");
static OBS_COMPACT_BYTES: LazyCounter = LazyCounter::new("shard.compact.bytes");
static OBS_MAINT_RUNS: LazyCounter = LazyCounter::new("shard.maintenance.runs");
static OBS_MAINT_EVICTED: LazyCounter = LazyCounter::new("shard.maintenance.evicted_bytes");

/// The top-level file naming the shard count.
pub const SHARDS_FILE: &str = "SHARDS";
const SHARDS_HEADER: &str = "#IBIS-SHARDS v1";
/// Hard ceiling on the shard count (file-name and sanity bound).
pub const MAX_SHARDS: usize = 256;

/// `shard-000`, `shard-001`, …
fn shard_dir_name(i: usize) -> String {
    format!("shard-{i:03}")
}

/// Whether `dir` holds a sharded store (has a `SHARDS` file).
pub fn is_sharded(dir: impl AsRef<Path>) -> bool {
    dir.as_ref().join(SHARDS_FILE).is_file()
}

/// The `nshards + 1` even-split cut points over `global_len` stored rows:
/// shard `i` covers `[cuts[i], cuts[i+1])`. A pure function of its
/// arguments — writer and readers derive identical ranges with no
/// per-step manifest.
pub fn shard_cuts(global_len: u64, nshards: usize) -> Vec<u64> {
    let k = nshards.max(1) as u128;
    (0..=nshards.max(1))
        .map(|i| ((global_len as u128 * i as u128) / k) as u64)
        .collect()
}

fn write_shards_file(dir: &Path, nshards: usize) -> Result<()> {
    let body = format!("{SHARDS_HEADER}\n{nshards}\n");
    let full = format!("{body}#END {:08x}\n", crc32c(body.as_bytes()));
    write_atomic(
        &dir.join(".SHARDS.tmp"),
        &dir.join(SHARDS_FILE),
        full.as_bytes(),
    )
    .map_err(|e| IbisError::io("write SHARDS", &e))
}

fn read_shards_file(dir: &Path) -> Result<usize> {
    let corrupt = |detail: String| IbisError::Corrupt {
        file: SHARDS_FILE.to_string(),
        detail,
    };
    let text = std::fs::read_to_string(dir.join(SHARDS_FILE))
        .map_err(|e| IbisError::io("read SHARDS", &e))?;
    let Some(footer_at) = text.rfind("#END ") else {
        return Err(corrupt("missing #END footer (truncated?)".into()));
    };
    let (body, footer) = text.split_at(footer_at);
    if !body.starts_with(SHARDS_HEADER) {
        return Err(corrupt("missing #IBIS-SHARDS header".into()));
    }
    let stored = footer
        .trim_end()
        .strip_prefix("#END ")
        .and_then(|f| u32::from_str_radix(f, 16).ok())
        .ok_or_else(|| corrupt("malformed #END footer".into()))?;
    let actual = crc32c(body.as_bytes());
    if stored != actual {
        return Err(corrupt(format!(
            "CRC mismatch: stored {stored:08x}, computed {actual:08x}"
        )));
    }
    let nshards: usize = body
        .lines()
        .nth(1)
        .and_then(|l| l.trim().parse().ok())
        .ok_or_else(|| corrupt("missing shard count".into()))?;
    if nshards == 0 || nshards > MAX_SHARDS {
        return Err(corrupt(format!(
            "shard count {nshards} outside 1..={MAX_SHARDS}"
        )));
    }
    Ok(nshards)
}

/// Debris removed by a compaction pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CompactReport {
    /// Files deleted.
    pub files_removed: usize,
    /// Their summed on-disk bytes.
    pub bytes_reclaimed: u64,
}

/// Removes one directory's durable debris: quarantined blobs
/// (`*.quarantined`), orphaned atomic-write temp files (`.*.tmp`), and a
/// stale `JOURNAL` shadowed by a finished `MANIFEST`. Only call on a
/// quiesced directory — a writer mid-append owns its journal.
fn compact_dir(dir: &Path, report: &mut CompactReport) -> Result<()> {
    let entries = std::fs::read_dir(dir)
        .map_err(|e| IbisError::io(format!("read dir {}", dir.display()), &e))?;
    let manifest_done = dir.join("MANIFEST").is_file();
    for entry in entries {
        let entry = entry.map_err(|e| IbisError::io("read dir entry", &e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let debris = name.ends_with(".quarantined")
            || (name.starts_with('.') && name.ends_with(".tmp"))
            || (name == "JOURNAL" && manifest_done);
        if !debris {
            continue;
        }
        let bytes = entry.metadata().map(|m| m.len()).unwrap_or(0);
        std::fs::remove_file(entry.path())
            .map_err(|e| IbisError::io(format!("remove debris {name}"), &e))?;
        report.files_removed += 1;
        report.bytes_reclaimed += bytes;
        OBS_COMPACT_FILES.inc();
        OBS_COMPACT_BYTES.add(bytes);
    }
    Ok(())
}

/// Writes one logical run as `K` spatial shards, each a fully durable
/// [`StoreWriter`] under `dir/shard-000..`: journaled blobs, atomic
/// writes, per-shard crash-resume. [`ShardedWriter::put`] slices the
/// step's index on the deterministic even-split row cuts; the global row
/// permutation (if any) is stored whole in every shard so each one can
/// answer region queries independently.
#[derive(Debug)]
pub struct ShardedWriter {
    dir: PathBuf,
    writers: Vec<StoreWriter>,
}

impl ShardedWriter {
    /// Creates the run directory, its `SHARDS` file, and `nshards` fresh
    /// shard writers.
    pub fn create(dir: impl AsRef<Path>, nshards: usize) -> Result<Self> {
        if nshards == 0 || nshards > MAX_SHARDS {
            return Err(IbisError::Config(format!(
                "shard count {nshards} outside 1..={MAX_SHARDS}"
            )));
        }
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)
            .map_err(|e| IbisError::io(format!("create run dir {}", dir.display()), &e))?;
        write_shards_file(&dir, nshards)?;
        let writers = (0..nshards)
            .map(|i| StoreWriter::create(dir.join(shard_dir_name(i))))
            .collect::<Result<Vec<_>>>()?;
        Ok(ShardedWriter { dir, writers })
    }

    /// Reopens an interrupted (or finished) sharded run: reads the shard
    /// count back from `SHARDS` and crash-resumes every shard from its
    /// own journal/manifest — the whole point of per-shard durability is
    /// that a killed node recovers from its shard directory alone.
    pub fn resume(dir: impl AsRef<Path>) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        let nshards = read_shards_file(&dir)?;
        let writers = (0..nshards)
            .map(|i| StoreWriter::resume(dir.join(shard_dir_name(i))))
            .collect::<Result<Vec<_>>>()?;
        Ok(ShardedWriter { dir, writers })
    }

    /// The run directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The shard count.
    pub fn nshards(&self) -> usize {
        self.writers.len()
    }

    /// One shard's writer — tests use this to kill or inspect a single
    /// node's durable state.
    pub fn shard_writer(&mut self, i: usize) -> &mut StoreWriter {
        &mut self.writers[i]
    }

    /// Whether `(step, variable)` is durable in **every** shard.
    pub fn contains(&self, step: usize, variable: &str) -> bool {
        self.writers.iter().all(|w| w.contains(step, variable))
    }

    /// Steps durable in every shard, ascending — a step some shard lost
    /// (torn journal, killed node) is not globally durable until re-put.
    pub fn durable_steps(&self) -> Vec<usize> {
        let Some((first, rest)) = self.writers.split_first() else {
            return Vec::new();
        };
        first
            .durable_steps()
            .into_iter()
            .filter(|&s| rest.iter().all(|w| w.durable_steps().contains(&s)))
            .collect()
    }

    /// Splits `index` on the even-split row cuts and puts each slice into
    /// its shard. Idempotent like [`StoreWriter::put`] — after a resume,
    /// re-putting a step repairs whichever shards lost it.
    pub fn put(&mut self, step: usize, variable: &str, index: &BitmapIndex) -> Result<()> {
        let cuts = shard_cuts(index.len(), self.writers.len());
        for (i, w) in self.writers.iter_mut().enumerate() {
            let slice = index.slice_rows(cuts[i]..cuts[i + 1]);
            w.put(step, variable, &slice)?;
        }
        Ok(())
    }

    /// Stores the step's **global** row permutation in every shard (each
    /// shard maps region predicates through the global inverse
    /// permutation, filtered to its own row range — see
    /// [`ibis_analysis::evaluate_ml_shard`]).
    pub fn put_order(&mut self, step: usize, order: RowOrder, perm: &RowPermutation) -> Result<()> {
        for w in &mut self.writers {
            w.put_order(step, order, perm)?;
        }
        Ok(())
    }

    /// Finishes every shard (checksummed manifest, journal retired) and
    /// returns the run directory.
    pub fn finish(self) -> Result<PathBuf> {
        for w in self.writers {
            w.finish()?;
        }
        Ok(self.dir)
    }
}

/// A read-only view of a finished sharded run: the `SHARDS` file names
/// `K`, and every `shard-…` directory must open as a valid [`Store`] — a
/// missing shard is a hard error, never a silently partial answer.
#[derive(Debug)]
pub struct ShardedStore {
    dir: PathBuf,
    shards: Vec<Store>,
}

impl ShardedStore {
    /// Opens a sharded run directory.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        let nshards = read_shards_file(&dir)?;
        let shards = (0..nshards)
            .map(|i| Store::open(dir.join(shard_dir_name(i))))
            .collect::<Result<Vec<_>>>()?;
        Ok(ShardedStore { dir, shards })
    }

    /// The run directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The shard count.
    pub fn nshards(&self) -> usize {
        self.shards.len()
    }

    /// The per-shard stores, in shard order.
    pub fn shards(&self) -> &[Store] {
        &self.shards
    }

    /// Steps present in **every** shard, ascending.
    pub fn steps(&self) -> Vec<usize> {
        let Some((first, rest)) = self.shards.split_first() else {
            return Vec::new();
        };
        first
            .steps()
            .into_iter()
            .filter(|&s| rest.iter().all(|sh| sh.steps().contains(&s)))
            .collect()
    }

    /// Variables present for `step` (from shard 0; [`ShardedWriter::put`]
    /// writes every shard symmetrically).
    pub fn variables(&self, step: usize) -> Vec<&str> {
        self.shards
            .first()
            .map(|s| s.variables(step))
            .unwrap_or_default()
    }

    /// Runs [`Store::fsck`] on every shard, in shard order. Corruption in
    /// one shard quarantines only that shard's blob; the other shards'
    /// entries (and their query results) are untouched.
    pub fn fsck(&mut self) -> Vec<FsckReport> {
        self.shards.iter_mut().map(|s| s.fsck()).collect()
    }

    /// Compacts durable debris (quarantined blobs, orphaned temp files,
    /// stale journals) in the run directory and every shard.
    pub fn compact(&self) -> Result<CompactReport> {
        let mut report = CompactReport::default();
        compact_dir(&self.dir, &mut report)?;
        for i in 0..self.shards.len() {
            compact_dir(&self.dir.join(shard_dir_name(i)), &mut report)?;
        }
        Ok(report)
    }

    /// Consumes the view into its per-shard stores (shard order) — the
    /// engine wraps each in its own cache.
    pub fn into_shards(self) -> Vec<Store> {
        self.shards
    }
}

/// What [`ShardedEngine::maintenance_once`] should do.
#[derive(Debug, Clone, Default)]
pub struct MaintenanceConfig {
    /// Remove durable debris (quarantined/temp/stale-journal files).
    /// Off by default: the serving loop opts in once it owns the
    /// directory exclusively.
    pub compact: bool,
    /// Evict cached entries of steps *not* in this set (tier 1: the hot
    /// set moved on). `None` keeps every step.
    pub hot_steps: Option<Vec<usize>>,
    /// Squeeze each shard's cache to `total/K` bytes (tier 2: idle
    /// target below the serving budget). `None` leaves residency alone.
    pub cache_target_bytes: Option<u64>,
}

/// What one maintenance pass did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MaintenanceReport {
    /// Debris files removed.
    pub debris_files: usize,
    /// Debris bytes reclaimed on disk.
    pub debris_bytes: u64,
    /// Decoded cache bytes evicted.
    pub evicted_bytes: u64,
}

/// Scatter-gather query execution over a [`ShardedStore`]: each shard
/// serves from its own byte-budgeted [`CachedStore`], partials merge in
/// ascending shard order, answers are byte-identical to the unsharded
/// [`QueryEngine`] (see the module docs for the argument).
#[derive(Debug)]
pub struct ShardedEngine {
    dir: PathBuf,
    caches: Vec<CachedStore>,
    /// Whether fan-out uses threads (more than one core available) or
    /// runs shards sequentially (identical results either way; the merge
    /// order is always ascending shard index).
    parallel: bool,
    /// Per-`(step, variable)` prefix row cuts, learned on the first full
    /// load — later region queries prune shards without touching them.
    cuts: CutsMemo,
}

impl ShardedEngine {
    /// Opens `dir` and splits `budget_bytes` of decoded-index cache
    /// evenly across its shards.
    pub fn open(dir: impl AsRef<Path>, budget_bytes: u64) -> Result<Self> {
        Self::from_store(ShardedStore::open(dir)?, budget_bytes)
    }

    /// Wraps an already-open [`ShardedStore`], splitting `budget_bytes`
    /// evenly across per-shard caches labeled `shard000`, `shard001`, …
    /// (their residency gauges publish per shard, not pooled).
    pub fn from_store(store: ShardedStore, budget_bytes: u64) -> Result<Self> {
        let dir = store.dir().to_path_buf();
        let shards = store.into_shards();
        if shards.is_empty() {
            return Err(IbisError::Config("sharded store has no shards".into()));
        }
        let per_shard = budget_bytes / shards.len() as u64;
        let caches = shards
            .into_iter()
            .enumerate()
            .map(|(i, s)| CachedStore::new(s, per_shard).with_label(format!("shard{i:03}")))
            .collect();
        let parallel = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            > 1;
        Ok(ShardedEngine {
            dir,
            caches,
            parallel,
            cuts: Mutex::new(HashMap::new()),
        })
    }

    /// The run directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The shard count.
    pub fn nshards(&self) -> usize {
        self.caches.len()
    }

    /// The per-shard caches, in shard order.
    pub fn shard_caches(&self) -> &[CachedStore] {
        &self.caches
    }

    /// Cache counters summed over every shard.
    pub fn cache_stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for c in &self.caches {
            let s = c.stats();
            total.hits += s.hits;
            total.misses += s.misses;
            total.evictions += s.evictions;
            total.resident_bytes += s.resident_bytes;
        }
        total
    }

    /// Publishes every shard cache's per-instance gauges (plus the
    /// static `query.cache.stat.*` family, which ends up reflecting the
    /// last shard — use the labeled gauges for per-shard views).
    pub fn publish_obs(&self) {
        for c in &self.caches {
            c.publish_obs();
        }
    }

    /// Runs `f(shard_index)` for the given shards and returns results in
    /// the same order — threaded when more than one core is available,
    /// sequential otherwise. A panicking task is contained as
    /// [`IbisError::WorkerPanic`].
    fn fanout<T, F>(&self, ids: &[usize], f: F) -> Vec<Result<T>>
    where
        T: Send,
        F: Fn(usize) -> Result<T> + Sync,
    {
        if !self.parallel || ids.len() <= 1 {
            return ids.iter().map(|&i| f(i)).collect();
        }
        OBS_SHARD_FANOUT.add(ids.len() as u64);
        std::thread::scope(|s| {
            let f = &f;
            let handles: Vec<_> = ids.iter().map(|&i| s.spawn(move || f(i))).collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or_else(|payload| {
                        Err(IbisError::WorkerPanic {
                            role: WorkerRole::Node,
                            step: None,
                            message: panic_message(payload.as_ref()),
                        })
                    })
                })
                .collect()
        })
    }

    /// The step's stored row permutation, shared by every shard (each
    /// holds the same global copy; shard 0's is authoritative).
    fn order_of(&self, step: usize) -> Result<Option<Arc<(RowOrder, RowPermutation)>>> {
        self.caches[0].get_order(step)
    }

    /// Memoized prefix cuts for `(step, variable)`, if a full load has
    /// happened already.
    fn known_cuts(&self, step: usize, variable: &str) -> Option<Arc<Vec<u64>>> {
        self.cuts.lock().get(&(step, variable.to_string())).cloned()
    }

    /// Loads every shard's index for `(variable, step)` and returns them
    /// with the prefix row cuts (`cuts[i]..cuts[i+1]` is shard `i`'s row
    /// range; `cuts[K]` the global length), memoizing the cuts for later
    /// pruning.
    fn load_all(
        &self,
        variable: &str,
        step: usize,
        deadline: Option<Instant>,
    ) -> Result<LoadedShards> {
        let ids: Vec<usize> = (0..self.caches.len()).collect();
        let mls = self
            .fanout(&ids, |i| {
                deadline_check(deadline, "shard load")?;
                self.caches[i].get(variable, step)
            })
            .into_iter()
            .collect::<Result<Vec<_>>>()?;
        let mut cuts = Vec::with_capacity(mls.len() + 1);
        cuts.push(0u64);
        for ml in &mls {
            cuts.push(cuts[cuts.len() - 1] + ml.low().len());
        }
        let cuts = Arc::new(cuts);
        self.cuts
            .lock()
            .insert((step, variable.to_string()), Arc::clone(&cuts));
        Ok((mls, cuts))
    }

    /// Shards whose row range intersects `region`, per `cuts`; an empty
    /// intersection keeps shard 0 so validation errors (and the empty
    /// answer) still surface exactly like the unsharded path.
    fn overlapping(cuts: &[u64], region: &Range<u64>) -> Vec<usize> {
        let hit: Vec<usize> = (0..cuts.len().saturating_sub(1))
            .filter(|&i| cuts[i] < region.end && cuts[i + 1] > region.start)
            .collect();
        if hit.is_empty() {
            vec![0]
        } else {
            hit
        }
    }

    /// Answers one query (scatter, evaluate, gather — see
    /// [`ShardedEngine::run_with_deadline`] for the budgeted form).
    pub fn run(&self, request: &QueryRequest) -> Result<QueryAnswer> {
        self.run_with_deadline(request, None)
    }

    /// [`ShardedEngine::run`] under a wall-clock budget, re-checked
    /// before every per-shard load exactly like the unsharded engine.
    pub fn run_with_deadline(
        &self,
        request: &QueryRequest,
        deadline: Option<Instant>,
    ) -> Result<QueryAnswer> {
        let result = self.run_inner(request, deadline);
        match &result {
            Ok(_) => OBS_SHARD_OK.inc(),
            Err(_) => OBS_SHARD_REJECTED.inc(),
        }
        result
    }

    fn run_inner(&self, request: &QueryRequest, deadline: Option<Instant>) -> Result<QueryAnswer> {
        match request {
            QueryRequest::Subset {
                step,
                variable,
                query,
            } => self.run_subset(*step, variable, query, deadline),
            QueryRequest::Correlation {
                step,
                var_a,
                var_b,
                query_a,
                query_b,
            } => self.run_correlation(*step, var_a, var_b, query_a, query_b, deadline),
        }
    }

    fn run_subset(
        &self,
        step: usize,
        variable: &str,
        query: &SubsetQuery,
        deadline: Option<Instant>,
    ) -> Result<QueryAnswer> {
        let order = self.order_of(step)?;
        let perm = order.as_deref().map(|(_, p)| p);
        // Pruned path: identity layout, a region predicate, and known
        // cuts — only shards the region touches are loaded or evaluated
        // (a missed shard's partial is empty by construction).
        let pruned = if perm.is_none() {
            query
                .position_range
                .clone()
                .zip(self.known_cuts(step, variable))
        } else {
            None
        };
        if let Some((region, cuts)) = pruned {
            let wanted = Self::overlapping(&cuts, &region);
            if wanted.len() < self.caches.len() {
                OBS_SHARD_PRUNED.add((self.caches.len() - wanted.len()) as u64);
            }
            let global_len = cuts[cuts.len() - 1];
            let counts = self.fanout(&wanted, |i| {
                deadline_check(deadline, "shard subset load")?;
                let ml = self.caches[i].get(variable, step)?;
                evaluate_ml_shard(query, &ml, cuts[i]..cuts[i + 1], global_len, None)
                    .map(|sel| sel.count_ones())
                    .map_err(IbisError::Query)
            });
            let mut selected = 0u64;
            for c in counts {
                selected += c?;
            }
            return Ok(QueryAnswer::Subset {
                selected,
                of: global_len,
            });
        }
        let (mls, cuts) = self.load_all(variable, step, deadline)?;
        let global_len = cuts[cuts.len() - 1];
        let ids: Vec<usize> = (0..mls.len()).collect();
        let counts = self.fanout(&ids, |i| {
            evaluate_ml_shard(query, &mls[i], cuts[i]..cuts[i + 1], global_len, perm)
                .map(|sel| sel.count_ones())
                .map_err(IbisError::Query)
        });
        let mut selected = 0u64;
        for c in counts {
            selected += c?;
        }
        Ok(QueryAnswer::Subset {
            selected,
            of: global_len,
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn run_correlation(
        &self,
        step: usize,
        var_a: &str,
        var_b: &str,
        query_a: &SubsetQuery,
        query_b: &SubsetQuery,
        deadline: Option<Instant>,
    ) -> Result<QueryAnswer> {
        let order = self.order_of(step)?;
        let perm = order.as_deref().map(|(_, p)| p);
        // The joint selection is AND of both predicates, so a shard
        // contributes a non-empty partial only where *both* regions (when
        // present) intersect its rows.
        let prune_region = match (&query_a.position_range, &query_b.position_range) {
            (Some(a), Some(b)) => Some(a.start.max(b.start)..a.end.min(b.end)),
            (Some(a), None) => Some(a.clone()),
            (None, Some(b)) => Some(b.clone()),
            (None, None) => None,
        };
        let pruned_cuts = if perm.is_none() {
            match (
                prune_region,
                self.known_cuts(step, var_a),
                self.known_cuts(step, var_b),
            ) {
                (Some(region), Some(ca), Some(cb)) if ca == cb => Some((region, ca)),
                _ => None,
            }
        } else {
            None
        };
        let (wanted, cuts, mls): (Vec<usize>, Arc<Vec<u64>>, Option<Vec<_>>) =
            if let Some((region, cuts)) = pruned_cuts {
                let wanted = Self::overlapping(&cuts, &region);
                if wanted.len() < self.caches.len() {
                    OBS_SHARD_PRUNED.add((self.caches.len() - wanted.len()) as u64);
                }
                (wanted, cuts, None)
            } else {
                let (mls_a, cuts_a) = self.load_all(var_a, step, deadline)?;
                let (mls_b, cuts_b) = self.load_all(var_b, step, deadline)?;
                let (gl_a, gl_b) = (cuts_a[cuts_a.len() - 1], cuts_b[cuts_b.len() - 1]);
                if gl_a != gl_b {
                    return Err(IbisError::Query(QueryError::LengthMismatch {
                        len_a: gl_a,
                        len_b: gl_b,
                    }));
                }
                let ids: Vec<usize> = (0..mls_a.len()).collect();
                let pairs: Vec<_> = mls_a.into_iter().zip(mls_b).collect();
                (ids, cuts_a, Some(pairs))
            };
        let global_len = cuts[cuts.len() - 1];
        let partials = match &mls {
            Some(pairs) => self.fanout(&wanted, |i| {
                let (a, b) = &pairs[i];
                correlation_partial_ml_shard(
                    a,
                    b,
                    query_a,
                    query_b,
                    cuts[i]..cuts[i + 1],
                    global_len,
                    perm,
                )
                .map(|p| (p, Arc::clone(a), Arc::clone(b)))
                .map_err(IbisError::Query)
            }),
            None => self.fanout(&wanted, |i| {
                deadline_check(deadline, "shard correlation load a")?;
                let a = self.caches[i].get(var_a, step)?;
                deadline_check(deadline, "shard correlation load b")?;
                let b = self.caches[i].get(var_b, step)?;
                correlation_partial_ml_shard(
                    &a,
                    &b,
                    query_a,
                    query_b,
                    cuts[i]..cuts[i + 1],
                    global_len,
                    None,
                )
                .map(|p| (p, a, b))
                .map_err(IbisError::Query)
            }),
        };
        // Gather: merge integer partials in ascending shard order, then
        // run the pure finishers once — bit-identical to the unsharded
        // answer (module docs).
        let mut merged: Option<(
            CorrelationPartial,
            Arc<MultiLevelIndex>,
            Arc<MultiLevelIndex>,
        )> = None;
        for part in partials {
            let (p, a, b) = part?;
            match &mut merged {
                Some((total, _, _)) => total.merge(&p),
                None => merged = Some((p, a, b)),
            }
        }
        let Some((total, a, b)) = merged else {
            return Err(IbisError::Config("sharded store has no shards".into()));
        };
        Ok(QueryAnswer::Correlation(finish_correlation(
            a.low().binner(),
            b.low().binner(),
            &total,
        )))
    }

    /// The full canonical selection for a subset query, concatenated from
    /// the per-shard canonical pieces in shard order — word-identical to
    /// the unsharded engine's selection (the byte-identity witness tests
    /// and benches assert against).
    pub fn selection(&self, step: usize, variable: &str, query: &SubsetQuery) -> Result<WahVec> {
        let order = self.order_of(step)?;
        let perm = order.as_deref().map(|(_, p)| p);
        let (mls, cuts) = self.load_all(variable, step, None)?;
        let global_len = cuts[cuts.len() - 1];
        let mut b = WahBuilder::new();
        for (i, ml) in mls.iter().enumerate() {
            let sel = evaluate_ml_shard(query, ml, cuts[i]..cuts[i + 1], global_len, perm)
                .map_err(IbisError::Query)?;
            b.append_wah(&sel);
        }
        Ok(b.finish())
    }

    /// Answers every query of a batch, in order; failures are
    /// per-request.
    pub fn run_batch(&self, requests: &[QueryRequest]) -> Vec<Result<QueryAnswer>> {
        requests.iter().map(|r| self.run(r)).collect()
    }

    /// Parses a JSON batch document, runs it, renders the answers —
    /// the same wire format as [`QueryEngine::run_batch_json`].
    pub fn run_batch_json(&self, text: &str) -> Result<String> {
        let requests = parse_batch(text)?;
        let answers = self.run_batch(&requests);
        Ok(render_answers(&answers))
    }

    /// One background-maintenance pass: compact durable debris in every
    /// shard (and the run directory), evict cached steps that left the
    /// hot set, squeeze residency to an idle target — each tier opt-in
    /// via [`MaintenanceConfig`].
    pub fn maintenance_once(&self, cfg: &MaintenanceConfig) -> Result<MaintenanceReport> {
        OBS_MAINT_RUNS.inc();
        let mut report = MaintenanceReport::default();
        if cfg.compact {
            let mut debris = CompactReport::default();
            compact_dir(&self.dir, &mut debris)?;
            for c in &self.caches {
                compact_dir(c.store().dir(), &mut debris)?;
            }
            report.debris_files = debris.files_removed;
            report.debris_bytes = debris.bytes_reclaimed;
        }
        if let Some(hot) = &cfg.hot_steps {
            for c in &self.caches {
                report.evicted_bytes += c.evict_retain(|step| hot.contains(&step));
            }
        }
        if let Some(total) = cfg.cache_target_bytes {
            let per_shard = total / self.caches.len() as u64;
            for c in &self.caches {
                report.evicted_bytes += c.evict_to(per_shard);
            }
        }
        OBS_MAINT_EVICTED.add(report.evicted_bytes);
        Ok(report)
    }
}

/// The engine behind a query server: one flat store or a sharded
/// scatter-gather tier, same request/answer surface either way (the
/// serving layer and CLI stay backend-agnostic).
#[derive(Debug)]
pub enum EngineBackend {
    /// The unsharded [`QueryEngine`].
    Single(QueryEngine),
    /// The scatter-gather [`ShardedEngine`].
    Sharded(ShardedEngine),
}

impl From<QueryEngine> for EngineBackend {
    fn from(engine: QueryEngine) -> Self {
        EngineBackend::Single(engine)
    }
}

impl From<ShardedEngine> for EngineBackend {
    fn from(engine: ShardedEngine) -> Self {
        EngineBackend::Sharded(engine)
    }
}

impl EngineBackend {
    /// Answers one query.
    pub fn run(&self, request: &QueryRequest) -> Result<QueryAnswer> {
        self.run_with_deadline(request, None)
    }

    /// Answers one query under a wall-clock budget.
    pub fn run_with_deadline(
        &self,
        request: &QueryRequest,
        deadline: Option<Instant>,
    ) -> Result<QueryAnswer> {
        match self {
            EngineBackend::Single(e) => e.run_with_deadline(request, deadline),
            EngineBackend::Sharded(e) => e.run_with_deadline(request, deadline),
        }
    }

    /// Parses, runs, and renders a JSON batch document.
    pub fn run_batch_json(&self, text: &str) -> Result<String> {
        match self {
            EngineBackend::Single(e) => e.run_batch_json(text),
            EngineBackend::Sharded(e) => e.run_batch_json(text),
        }
    }

    /// Cache counters (summed over shards for the sharded backend).
    pub fn cache_stats(&self) -> CacheStats {
        match self {
            EngineBackend::Single(e) => e.cache_stats(),
            EngineBackend::Sharded(e) => e.cache_stats(),
        }
    }

    /// How many stores serve behind this backend.
    pub fn nshards(&self) -> usize {
        match self {
            EngineBackend::Single(_) => 1,
            EngineBackend::Sharded(e) => e.nshards(),
        }
    }

    /// Publishes per-instance cache gauges.
    pub fn publish_obs(&self) {
        match self {
            EngineBackend::Single(e) => e.cache().publish_obs(),
            EngineBackend::Sharded(e) => e.publish_obs(),
        }
    }

    /// One maintenance pass; `None` for the single backend (nothing to
    /// compact or tier — its cache already self-evicts).
    pub fn maintenance_once(&self, cfg: &MaintenanceConfig) -> Result<Option<MaintenanceReport>> {
        match self {
            EngineBackend::Single(_) => Ok(None),
            EngineBackend::Sharded(e) => e.maintenance_once(cfg).map(Some),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CachedStore;
    use ibis_core::Binner;

    fn tmp(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("ibis-shard-{name}"));
        std::fs::remove_dir_all(&d).ok();
        d
    }

    /// Two correlated variables with spatial structure: values drift with
    /// the row index so region queries have non-trivial answers.
    fn sample_data(rows: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
        let mut x = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x % 1000) as f64 / 1000.0
        };
        let a: Vec<f64> = (0..rows)
            .map(|i| (i as f64 / rows as f64) * 8.0 + next())
            .collect();
        let b: Vec<f64> = a.iter().map(|v| 9.0 - v * 0.7 + next()).collect();
        (a, b)
    }

    fn binner() -> Binner {
        Binner::fixed_width(0.0, 10.0, 48)
    }

    /// Builds the same data as one flat store and one K-sharded store,
    /// returning `(flat_dir, sharded_dir)`.
    fn twin_stores(name: &str, rows: usize, k: usize) -> (PathBuf, PathBuf) {
        let flat = tmp(&format!("{name}-flat"));
        let sharded = tmp(&format!("{name}-sharded"));
        let mut wf = StoreWriter::create(&flat).expect("flat writer");
        let mut ws = ShardedWriter::create(&sharded, k).expect("sharded writer");
        for step in [0usize, 1] {
            let (a, b) = sample_data(rows, step as u64 + 1);
            let ia = BitmapIndex::build(&a, binner());
            let ib = BitmapIndex::build(&b, binner());
            wf.put(step, "temperature", &ia).expect("flat put");
            wf.put(step, "salinity", &ib).expect("flat put");
            ws.put(step, "temperature", &ia).expect("sharded put");
            ws.put(step, "salinity", &ib).expect("sharded put");
        }
        wf.finish().expect("flat finish");
        ws.finish().expect("sharded finish");
        (flat, sharded)
    }

    fn queries(rows: u64) -> Vec<QueryRequest> {
        let value = SubsetQuery {
            value_range: Some((2.0, 7.5)),
            position_range: None,
        };
        let region = SubsetQuery {
            value_range: None,
            position_range: Some(rows / 8..rows / 3),
        };
        let both = SubsetQuery {
            value_range: Some((1.0, 6.0)),
            position_range: Some(rows / 2..rows),
        };
        vec![
            QueryRequest::Subset {
                step: 0,
                variable: "temperature".into(),
                query: value.clone(),
            },
            QueryRequest::Subset {
                step: 1,
                variable: "temperature".into(),
                query: region.clone(),
            },
            QueryRequest::Subset {
                step: 0,
                variable: "salinity".into(),
                query: both.clone(),
            },
            QueryRequest::Correlation {
                step: 0,
                var_a: "temperature".into(),
                var_b: "salinity".into(),
                query_a: value,
                query_b: region,
            },
            QueryRequest::Correlation {
                step: 1,
                var_a: "temperature".into(),
                var_b: "salinity".into(),
                query_a: both.clone(),
                query_b: both,
            },
        ]
    }

    #[test]
    fn cuts_partition_and_are_monotone() {
        for (n, k) in [(0u64, 1usize), (1, 4), (100, 3), (3001, 4), (31, 31)] {
            let cuts = shard_cuts(n, k);
            assert_eq!(cuts.len(), k + 1);
            assert_eq!(cuts[0], 0);
            assert_eq!(cuts[k], n);
            assert!(cuts.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn shards_file_round_trips_and_detects_corruption() {
        let dir = tmp("shards-file");
        std::fs::create_dir_all(&dir).expect("mkdir");
        write_shards_file(&dir, 7).expect("write");
        assert!(is_sharded(&dir));
        assert_eq!(read_shards_file(&dir).expect("read"), 7);
        // flip the count without updating the CRC
        let text = std::fs::read_to_string(dir.join(SHARDS_FILE)).expect("read text");
        std::fs::write(dir.join(SHARDS_FILE), text.replace('7', "4")).expect("tamper");
        assert!(matches!(
            read_shards_file(&dir),
            Err(IbisError::Corrupt { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_shard_directory_is_a_hard_error() {
        let dir = tmp("missing-shard");
        let mut w = ShardedWriter::create(&dir, 3).expect("writer");
        let (a, _) = sample_data(600, 1);
        w.put(0, "temperature", &BitmapIndex::build(&a, binner()))
            .expect("put");
        w.finish().expect("finish");
        std::fs::remove_dir_all(dir.join("shard-001")).expect("drop a shard");
        assert!(ShardedStore::open(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sharded_answers_equal_unsharded_oracle() {
        for k in [1usize, 2, 4] {
            let rows = 3000;
            let (flat, sharded) = twin_stores(&format!("oracle-{k}"), rows, k);
            let oracle = QueryEngine::new(CachedStore::new(
                Store::open(&flat).expect("open"),
                64 << 20,
            ));
            let engine = ShardedEngine::open(&sharded, 64 << 20).expect("open sharded");
            for req in queries(rows as u64) {
                let want = oracle.run(&req).expect("oracle answers");
                // twice: the second run exercises the pruned warm path
                for _ in 0..2 {
                    let got = engine.run(&req).expect("sharded answers");
                    assert_eq!(got, want, "k={k} req={req:?}");
                }
            }
            std::fs::remove_dir_all(&flat).ok();
            std::fs::remove_dir_all(&sharded).ok();
        }
    }

    #[test]
    fn selection_concatenates_byte_identically() {
        let rows = 2500;
        let (flat, sharded) = twin_stores("ident", rows, 4);
        let store = Store::open(&flat).expect("open flat");
        let engine = ShardedEngine::open(&sharded, 64 << 20).expect("open sharded");
        let query = SubsetQuery {
            value_range: Some((1.5, 7.0)),
            position_range: Some(100..2100),
        };
        let ml = {
            let low = store.get(0, "temperature").expect("flat index");
            let group = (low.nbins() as f64).sqrt().ceil().max(1.0) as usize;
            MultiLevelIndex::from_low(low, group)
        };
        let want = query.evaluate_ml(&ml).expect("oracle selection");
        let got = engine.selection(0, "temperature", &query).expect("sharded");
        assert_eq!(got, want, "concatenated selection must be word-identical");
        std::fs::remove_dir_all(&flat).ok();
        std::fs::remove_dir_all(&sharded).ok();
    }

    #[test]
    fn invalid_queries_fail_like_the_oracle() {
        let rows = 1200;
        let (flat, sharded) = twin_stores("invalid", rows, 3);
        let oracle = QueryEngine::new(CachedStore::new(Store::open(&flat).expect("open"), 1 << 20));
        let engine = ShardedEngine::open(&sharded, 1 << 20).expect("open sharded");
        let bad = [
            SubsetQuery {
                value_range: Some((f64::NAN, 2.0)),
                position_range: None,
            },
            SubsetQuery {
                value_range: None,
                position_range: Some(0..rows as u64 + 5),
            },
            SubsetQuery {
                value_range: None,
                // inverted on purpose: start > end must be a typed error
                position_range: Some(std::ops::Range {
                    start: 900,
                    end: 100,
                }),
            },
        ];
        for q in bad {
            let req = QueryRequest::Subset {
                step: 0,
                variable: "temperature".into(),
                query: q,
            };
            let want = oracle.run(&req).expect_err("oracle rejects");
            // warm the cuts memo, then check the pruned path too
            for _ in 0..2 {
                let got = engine.run(&req).expect_err("sharded rejects");
                assert_eq!(
                    std::mem::discriminant(&got),
                    std::mem::discriminant(&want),
                    "same error class: got {got}, want {want}"
                );
            }
        }
        std::fs::remove_dir_all(&flat).ok();
        std::fs::remove_dir_all(&sharded).ok();
    }

    #[test]
    fn region_pruning_skips_untouched_shards() {
        let rows = 4000u64;
        let (_flat, sharded) = twin_stores("prune", rows as usize, 4);
        let engine = ShardedEngine::open(&sharded, 64 << 20).expect("open");
        let region_q = QueryRequest::Subset {
            step: 0,
            variable: "temperature".into(),
            query: SubsetQuery {
                value_range: None,
                position_range: Some(0..rows / 4),
            },
        };
        // Cold: full fan-out learns the cuts (4 misses).
        engine.run(&region_q).expect("cold");
        let cold = engine.cache_stats();
        assert_eq!(cold.misses, 4);
        // Warm, region in shard 0 only: no other shard is touched, so a
        // fresh (evicted) cache would still see just one miss. Here the
        // entries are resident: one hit, zero new misses.
        engine.run(&region_q).expect("warm");
        let warm = engine.cache_stats();
        assert_eq!(warm.misses, 4, "pruned shards must not be loaded");
        assert_eq!(warm.hits, cold.hits + 1, "only shard 0 evaluates");
        std::fs::remove_dir_all(&sharded).ok();
    }

    #[test]
    fn resume_survives_a_killed_shard_writer() {
        let dir = tmp("kill-resume");
        let rows = 900;
        let (a0, _) = sample_data(rows, 1);
        let index = BitmapIndex::build(&a0, binner());
        let mut w = ShardedWriter::create(&dir, 3).expect("writer");
        w.put(0, "temperature", &index).expect("put");
        // Simulate a node kill mid-run: drop the writer (journals remain,
        // no manifests), then tear shard 1's journal mid-line.
        drop(w);
        let j = dir.join("shard-001").join("JOURNAL");
        let bytes = std::fs::read(&j).expect("journal");
        std::fs::write(&j, &bytes[..bytes.len() - 3]).expect("tear");
        let mut w = ShardedWriter::resume(&dir).expect("resume");
        assert!(
            !w.contains(0, "temperature"),
            "shard 1's torn entry makes the step non-durable globally"
        );
        assert_eq!(w.durable_steps(), Vec::<usize>::new());
        w.put(0, "temperature", &index).expect("re-put repairs");
        assert!(w.contains(0, "temperature"));
        w.finish().expect("finish");
        let store = ShardedStore::open(&dir).expect("open");
        assert_eq!(store.steps(), vec![0]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compact_removes_quarantine_and_stale_journal_debris() {
        let dir = tmp("compact");
        let rows = 600;
        let (a0, _) = sample_data(rows, 5);
        let mut w = ShardedWriter::create(&dir, 2).expect("writer");
        w.put(0, "temperature", &BitmapIndex::build(&a0, binner()))
            .expect("put");
        w.finish().expect("finish");
        // plant debris: a quarantined blob, a temp file, a stale journal
        let s0 = dir.join("shard-000");
        std::fs::write(s0.join("old.ibis.quarantined"), b"junk").expect("debris");
        std::fs::write(s0.join(".x.tmp"), b"torn").expect("debris");
        std::fs::write(dir.join("shard-001").join("JOURNAL"), b"stale").expect("debris");
        let store = ShardedStore::open(&dir).expect("open");
        let report = store.compact().expect("compact");
        assert_eq!(report.files_removed, 3);
        assert!(report.bytes_reclaimed >= 13);
        assert!(!s0.join("old.ibis.quarantined").exists());
        assert!(!s0.join(".x.tmp").exists());
        assert!(!dir.join("shard-001").join("JOURNAL").exists());
        // second pass: nothing left
        assert_eq!(store.compact().expect("compact"), CompactReport::default());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn maintenance_tiers_evict_and_compact() {
        let rows = 2000;
        let (_flat, sharded) = twin_stores("maint", rows, 2);
        let engine = ShardedEngine::open(&sharded, 64 << 20).expect("open");
        for step in [0usize, 1] {
            for var in ["temperature", "salinity"] {
                for i in 0..engine.nshards() {
                    engine.shard_caches()[i].get(var, step).expect("warm");
                }
            }
        }
        let before = engine.cache_stats().resident_bytes;
        assert!(before > 0);
        // tier 1: step 1 leaves the hot set
        let rep = engine
            .maintenance_once(&MaintenanceConfig {
                compact: true,
                hot_steps: Some(vec![0]),
                cache_target_bytes: None,
            })
            .expect("maintenance");
        assert!(rep.evicted_bytes > 0);
        let mid = engine.cache_stats().resident_bytes;
        assert!(mid < before);
        // tier 2: squeeze to zero
        let rep = engine
            .maintenance_once(&MaintenanceConfig {
                compact: false,
                hot_steps: None,
                cache_target_bytes: Some(0),
            })
            .expect("maintenance");
        assert_eq!(rep.debris_files, 0);
        assert!(rep.evicted_bytes >= mid);
        assert_eq!(engine.cache_stats().resident_bytes, 0);
        std::fs::remove_dir_all(&sharded).ok();
    }

    #[test]
    fn backend_dispatches_both_engines() {
        let rows = 800;
        let (flat, sharded) = twin_stores("backend", rows, 2);
        let single: EngineBackend =
            QueryEngine::new(CachedStore::new(Store::open(&flat).expect("open"), 1 << 20)).into();
        let shard: EngineBackend = ShardedEngine::open(&sharded, 1 << 20).expect("open").into();
        assert_eq!(single.nshards(), 1);
        assert_eq!(shard.nshards(), 2);
        let req = QueryRequest::Subset {
            step: 0,
            variable: "temperature".into(),
            query: SubsetQuery {
                value_range: Some((0.0, 5.0)),
                position_range: None,
            },
        };
        assert_eq!(
            single.run(&req).expect("single"),
            shard.run(&req).expect("sharded")
        );
        assert!(single
            .maintenance_once(&MaintenanceConfig::default())
            .expect("noop")
            .is_none());
        assert!(shard
            .maintenance_once(&MaintenanceConfig::default())
            .expect("runs")
            .is_some());
        assert!(single.cache_stats().misses >= 1);
        assert!(shard.cache_stats().misses >= 2);
        std::fs::remove_dir_all(&flat).ok();
        std::fs::remove_dir_all(&sharded).ok();
    }
}
