//! Lossy **superset** bitmaps — FPR-bounded approximation with guaranteed
//! one-sided error, in the style of tree-encoded bitmaps' lossy
//! compression experiments.
//!
//! The pass absorbs *interior* 0-runs (0-runs flanked by 1-runs on both
//! sides) shorter than a threshold into the surrounding 1-fills. Only
//! `0 → 1` flips ever happen, so the result is a strict superset of the
//! exact bitmap: `exact & lossy == exact` and `exact | lossy == lossy`
//! hold bit-for-bit, which is what lets a query engine use the lossy
//! vector as a cheap pre-filter and refine with the exact bitmap only on
//! the rows the filter admits.
//!
//! The threshold is *derived from* a target false-positive rate rather
//! than given directly: with `budget = ⌊fpr × zeros(exact)⌋`, the pass
//! histograms the interior 0-run lengths and picks the largest threshold
//! `t` such that flipping every interior 0-run shorter than `t` stays
//! within the budget. The measured FPR (`bits_dropped / zeros`) is
//! therefore always ≤ the requested bound — the bound is a guarantee,
//! not a tendency. Absorbing short 0-runs lengthens the adjacent 1-fills
//! exactly as the sorting literature predicts compression wins from
//! longer runs, which is where the size reduction comes from.

use crate::binning::Binner;
use crate::index::BitmapIndex;
use crate::runs::Run;
use crate::wah::WahVec;
use crate::WahBuilder;
use ibis_obs::LazyCounter;

// Lossy-pass metrics (family `lossy`, see DESIGN.md §6l). No-ops without
// the `obs` feature.
static OBS_BITS_DROPPED: LazyCounter = LazyCounter::new("lossy.pass.bits_dropped");
static OBS_RUNS_ABSORBED: LazyCounter = LazyCounter::new("lossy.pass.runs_absorbed");

/// Smallest supported target false-positive rate.
pub const FPR_MIN: f64 = 1e-4;
/// Largest supported target false-positive rate.
pub const FPR_MAX: f64 = 1e-1;

/// Validates a requested FPR: finite and within `[FPR_MIN, FPR_MAX]`
/// (zero is also accepted and makes the pass an exact no-op).
pub fn valid_fpr(fpr: f64) -> bool {
    fpr == 0.0 || (fpr.is_finite() && (FPR_MIN..=FPR_MAX).contains(&fpr))
}

/// What one lossy pass did to one bitvector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LossyStats {
    /// The derived threshold: interior 0-runs strictly shorter than this
    /// were flipped (0 means nothing was flipped).
    pub threshold_bits: u64,
    /// Total 0-bits flipped to 1.
    pub bits_dropped: u64,
    /// Interior 0-runs absorbed.
    pub runs_absorbed: u64,
    /// 0-bits in the *exact* input (the FPR denominator).
    pub zeros: u64,
}

impl LossyStats {
    /// The realized false-positive rate, `bits_dropped / zeros`
    /// (0 when the input had no zeros). Always ≤ the requested bound.
    pub fn measured_fpr(&self) -> f64 {
        if self.zeros == 0 {
            0.0
        } else {
            self.bits_dropped as f64 / self.zeros as f64
        }
    }

    /// Accumulates another vector's stats (threshold becomes the max —
    /// the summary quantity for a per-bin index pass).
    pub fn merge(&mut self, other: &LossyStats) {
        self.threshold_bits = self.threshold_bits.max(other.threshold_bits);
        self.bits_dropped += other.bits_dropped;
        self.runs_absorbed += other.runs_absorbed;
        self.zeros += other.zeros;
    }
}

/// Maximal same-bit runs of a vector, at bit granularity (adjacent WAH
/// runs of the same bit merged, literal words decomposed).
fn maximal_runs(v: &WahVec) -> Vec<(bool, u64)> {
    let mut out: Vec<(bool, u64)> = Vec::new();
    let mut push = |bit: bool, n: u64| {
        if n == 0 {
            return;
        }
        match out.last_mut() {
            Some((b, len)) if *b == bit => *len += n,
            _ => out.push((bit, n)),
        }
    };
    for run in v.runs() {
        match run {
            Run::Fill(bit, n) => push(bit, n),
            Run::Literal(payload, nbits) => {
                let nbits = nbits as u32;
                let mut j = 0u32;
                while j < nbits {
                    let rest = payload >> j;
                    let bit = rest & 1 == 1;
                    let same = if bit {
                        (!rest).trailing_zeros()
                    } else if rest == 0 {
                        nbits - j
                    } else {
                        rest.trailing_zeros()
                    }
                    .min(nbits - j);
                    push(bit, same as u64);
                    j += same;
                }
            }
        }
    }
    out
}

/// Derives the largest flip threshold affordable under `budget` flipped
/// bits: sorts the interior 0-run lengths and walks them ascending,
/// admitting a length class only when *all* runs of that length fit —
/// threshold semantics, not greedy cherry-picking, so equal-length runs
/// are always treated alike. Returns `(threshold_bits, bits_flipped)`.
fn derive_threshold(mut interior_zero_lens: Vec<u64>, budget: u64) -> (u64, u64) {
    interior_zero_lens.sort_unstable();
    let mut threshold = 0u64;
    let mut flipped = 0u64;
    let mut i = 0usize;
    while i < interior_zero_lens.len() {
        let len = interior_zero_lens[i];
        let mut j = i;
        let mut class_bits = 0u64;
        while j < interior_zero_lens.len() && interior_zero_lens[j] == len {
            class_bits += len;
            j += 1;
        }
        if flipped + class_bits > budget {
            break;
        }
        flipped += class_bits;
        threshold = len + 1;
        i = j;
    }
    (threshold, flipped)
}

impl WahVec {
    /// The lossy superset of this vector at target false-positive rate
    /// `fpr`: interior 0-runs shorter than a budget-derived threshold are
    /// absorbed into the surrounding 1-fills. The result satisfies
    /// `self & result == self` (superset) and
    /// `result.count_ones() - self.count_ones() ≤ fpr × zeros(self)`
    /// (measured FPR ≤ requested), both by construction.
    ///
    /// # Panics
    /// Panics when `fpr` is not 0 or within
    /// [`FPR_MIN`]`..=`[`FPR_MAX`].
    pub fn lossy_superset(&self, fpr: f64) -> (WahVec, LossyStats) {
        assert!(
            valid_fpr(fpr),
            "lossy fpr {fpr} outside [{FPR_MIN}, {FPR_MAX}]"
        );
        let zeros = self.len() - self.count_ones();
        let budget = (fpr * zeros as f64).floor() as u64;
        let runs = maximal_runs(self);
        let interior: Vec<u64> = runs
            .iter()
            .enumerate()
            .filter(|&(i, &(bit, _))| !bit && i > 0 && i + 1 < runs.len())
            .map(|(_, &(_, n))| n)
            .collect();
        let (threshold, _) = derive_threshold(interior, budget);
        let mut stats = LossyStats {
            threshold_bits: threshold,
            zeros,
            ..LossyStats::default()
        };
        if threshold == 0 {
            return (self.clone(), stats);
        }
        let mut b = WahBuilder::new();
        let last = runs.len().saturating_sub(1);
        for (i, &(bit, n)) in runs.iter().enumerate() {
            let flip = !bit && i > 0 && i < last && n < threshold;
            if flip {
                stats.bits_dropped += n;
                stats.runs_absorbed += 1;
            }
            b.append_run(bit || flip, n);
        }
        OBS_BITS_DROPPED.add(stats.bits_dropped);
        OBS_RUNS_ABSORBED.add(stats.runs_absorbed);
        debug_assert!(stats.bits_dropped <= budget);
        (b.finish(), stats)
    }
}

impl BitmapIndex {
    /// The per-bin lossy superset of this index at target FPR `fpr`: each
    /// bin is passed through [`WahVec::lossy_superset`] with its own
    /// budget, so every bin — and therefore any OR of bins, i.e. any
    /// range-query selection — is a superset of its exact counterpart
    /// with measured FPR ≤ `fpr`.
    ///
    /// The returned index's cached counts are the *lossy* ones counts
    /// (consistent with its own bitmaps); note a lossy index no longer
    /// partitions rows across bins, which the range planner detects and
    /// handles by never planning the complement strategy on it.
    pub fn lossy(&self, fpr: f64) -> (BitmapIndex, LossyStats) {
        let mut stats = LossyStats::default();
        let bins: Vec<WahVec> = self
            .bins()
            .iter()
            .map(|bin| {
                let (lossy, s) = bin.lossy_superset(fpr);
                stats.merge(&s);
                lossy
            })
            .collect();
        (BitmapIndex::from_bins(self.binner().clone(), bins), stats)
    }
}

/// Builds the lossy index for `data` directly (build + per-bin pass);
/// convenience for callers that never need the exact index in memory.
pub fn build_lossy_index(data: &[f64], binner: Binner, fpr: f64) -> (BitmapIndex, LossyStats) {
    BitmapIndex::build(data, binner).lossy(fpr)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vec_of(bits: &[bool]) -> WahVec {
        WahVec::from_bits(bits.iter().copied())
    }

    #[test]
    fn exact_and_lossy_is_exact() {
        let patterns: Vec<Vec<bool>> = vec![
            (0..500).map(|i| !(40..45).contains(&(i % 50))).collect(),
            (0..1000).map(|i| (i / 3) % 7 != 0).collect(),
            (0..310).map(|i| i % 2 == 0).collect(),
            vec![true; 100],
            vec![false; 100],
        ];
        for bits in patterns {
            let exact = vec_of(&bits);
            for fpr in [0.0, 1e-4, 1e-3, 1e-2, 1e-1] {
                let (lossy, stats) = exact.lossy_superset(fpr);
                lossy.check_canonical().unwrap();
                assert_eq!(exact.and(&lossy), exact, "fpr {fpr}");
                assert_eq!(exact.or(&lossy), lossy, "fpr {fpr}");
                assert!(stats.measured_fpr() <= fpr, "fpr {fpr}: {stats:?}");
                assert_eq!(lossy.count_ones(), exact.count_ones() + stats.bits_dropped);
            }
        }
    }

    #[test]
    fn zero_fpr_is_identity() {
        let v = vec_of(&(0..400).map(|i| i % 9 < 2).collect::<Vec<_>>());
        let (lossy, stats) = v.lossy_superset(0.0);
        assert_eq!(lossy, v);
        assert_eq!(stats.bits_dropped, 0);
        assert_eq!(stats.threshold_bits, 0);
    }

    #[test]
    fn absorbs_short_gaps_and_shrinks() {
        // Long 1-runs separated by single-bit 0 gaps, plus one huge
        // interior 0-run: the long run funds the budget (it dominates the
        // zeros) but exceeds every affordable threshold, so exactly the
        // single-bit gaps are absorbed and the gap region collapses
        // toward one fill.
        let mut bits = vec![true; 1000];
        for _ in 0..20 {
            bits.push(false);
            bits.extend(vec![true; 99]);
        }
        bits.extend(vec![false; 5000]);
        bits.extend(vec![true; 100]);
        let exact = vec_of(&bits);
        let (lossy, stats) = exact.lossy_superset(0.1);
        assert_eq!(stats.bits_dropped, 20, "the 20 single-bit gaps");
        assert!(stats.threshold_bits >= 2);
        assert!(!lossy.get(4000), "the long 0-run survives");
        assert!(
            lossy.words().len() * 2 < exact.words().len(),
            "lossy {} vs exact {} words",
            lossy.words().len(),
            exact.words().len()
        );
        assert_eq!(exact.and(&lossy), exact);
        assert!(stats.measured_fpr() <= 0.1);
    }

    #[test]
    fn leading_and_trailing_zero_runs_survive() {
        // 0-runs touching either end are not interior: never flipped,
        // whatever the budget.
        let mut bits = vec![false; 10];
        bits.extend([true; 50]);
        bits.push(false);
        bits.extend([true; 50]);
        bits.extend([false; 10]);
        let exact = vec_of(&bits);
        let (lossy, stats) = exact.lossy_superset(0.1);
        assert!(!lossy.get(0));
        assert!(!lossy.get(lossy.len() - 1));
        assert_eq!(stats.bits_dropped, 1, "only the interior gap flips");
        assert!(lossy.get(60));
    }

    #[test]
    fn budget_respected_exactly() {
        // 9 interior gaps of 1 bit each among ~90 zeros; fpr=0.05 gives a
        // budget of ⌊0.05 × zeros⌋ flips — never exceeded.
        let mut bits = Vec::new();
        for _ in 0..10 {
            bits.extend(vec![true; 10]);
            bits.push(false);
        }
        bits.extend(vec![false; 80]);
        let exact = vec_of(&bits);
        let zeros = exact.len() - exact.count_ones();
        for fpr in [1e-4, 1e-3, 1e-2, 5e-2, 1e-1] {
            let (lossy, stats) = exact.lossy_superset(fpr);
            let budget = (fpr * zeros as f64).floor() as u64;
            assert!(stats.bits_dropped <= budget, "fpr {fpr}");
            assert_eq!(lossy.count_ones() - exact.count_ones(), stats.bits_dropped);
        }
    }

    #[test]
    fn threshold_treats_equal_lengths_alike() {
        // Two gaps of length 2 but budget for only one: neither flips
        // (threshold semantics — no cherry-picking within a length class).
        let mut bits = vec![true; 20];
        bits.extend([false, false]);
        bits.extend(vec![true; 20]);
        bits.extend([false, false]);
        bits.extend(vec![true; 20]);
        bits.extend(vec![false; 33]); // pad zeros so the budget is 3 bits
        let exact = vec_of(&bits);
        let zeros = exact.len() - exact.count_ones();
        let fpr = 3.2 / zeros as f64; // budget = 3 < 2+2
        let fpr = fpr.min(FPR_MAX);
        let (lossy, stats) = exact.lossy_superset(fpr);
        assert_eq!(stats.bits_dropped, 0);
        assert_eq!(lossy, exact);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn rejects_out_of_range_fpr() {
        let _ = WahVec::ones(100).lossy_superset(0.5);
    }

    #[test]
    fn index_lossy_is_per_bin_superset() {
        let data: Vec<f64> = (0..5000)
            .map(|i| ((i / 37) % 16) as f64 + if i % 97 == 0 { 1.0 } else { 0.0 })
            .collect();
        let binner = Binner::fixed_width(0.0, 17.0, 17);
        let exact = BitmapIndex::build(&data, binner.clone());
        let (lossy, stats) = exact.lossy(1e-2);
        // a lossy index doesn't partition rows, so check_consistent's
        // partition clause doesn't apply — check the rest directly
        assert_eq!(lossy.len(), exact.len());
        for b in 0..lossy.nbins() {
            lossy.bin(b).check_canonical().unwrap();
            assert_eq!(lossy.counts()[b], lossy.bin(b).count_ones());
        }
        assert!(
            lossy.counts().iter().sum::<u64>() >= exact.len(),
            "supersets can only grow the counts"
        );
        assert!(stats.measured_fpr() <= 1e-2);
        for b in 0..exact.nbins() {
            let e = exact.bin(b);
            let l = lossy.bin(b);
            assert_eq!(e.and(l), *e, "bin {b}");
        }
        // any range selection over the lossy index is a superset of the
        // exact selection
        for (lo, hi) in [(0.0, 17.0), (2.0, 5.0), (0.5, 16.5), (7.0, 7.5)] {
            let es = exact.query_range(lo, hi);
            let ls = lossy.query_range(lo, hi);
            assert_eq!(es.and(&ls), es, "[{lo},{hi})");
        }
    }

    #[test]
    fn build_lossy_index_matches_two_step() {
        let data: Vec<f64> = (0..800).map(|i| ((i / 11) % 9) as f64).collect();
        let binner = Binner::fixed_width(0.0, 9.0, 9);
        let (a, sa) = build_lossy_index(&data, binner.clone(), 1e-2);
        let (b, sb) = BitmapIndex::build(&data, binner).lossy(1e-2);
        assert_eq!(sa, sb);
        for i in 0..a.nbins() {
            assert_eq!(a.bin(i), b.bin(i));
        }
    }

    #[test]
    fn derive_threshold_edge_cases() {
        assert_eq!(derive_threshold(vec![], 100), (0, 0));
        assert_eq!(derive_threshold(vec![5], 4), (0, 0));
        assert_eq!(derive_threshold(vec![5], 5), (6, 5));
        assert_eq!(derive_threshold(vec![1, 1, 3], 2), (2, 2));
        assert_eq!(derive_threshold(vec![1, 1, 3], 5), (4, 5));
        // all runs of a class or none
        assert_eq!(derive_threshold(vec![2, 2], 3), (0, 0));
        assert_eq!(derive_threshold(vec![2, 2], 4), (3, 4));
    }
}
