//! Z-order (Morton) curve layout for multi-dimensional grids.
//!
//! The paper iterates multi-dimensional data in Z-order during bitmap
//! generation (Section 4.2, optimization 1) so that a *contiguous bit range*
//! of a bitvector corresponds to a *compact spatial block*. The correlation
//! miner's "basic spatial units" are then simply consecutive unit-sized
//! ranges of the Z-ordered bitvectors.

/// Interleaves the low 32 bits of `x` and `y` (x in even positions).
#[inline]
pub fn morton2(x: u32, y: u32) -> u64 {
    part1by1(x) | (part1by1(y) << 1)
}

/// Interleaves the low 21 bits of `x`, `y`, `z` (x in positions 0, 3, 6, …).
#[inline]
pub fn morton3(x: u32, y: u32, z: u32) -> u64 {
    debug_assert!(x < (1 << 21) && y < (1 << 21) && z < (1 << 21));
    part1by2(x) | (part1by2(y) << 1) | (part1by2(z) << 2)
}

/// Inverse of [`morton2`].
#[inline]
pub fn demorton2(m: u64) -> (u32, u32) {
    (compact1by1(m), compact1by1(m >> 1))
}

/// Inverse of [`morton3`].
#[inline]
pub fn demorton3(m: u64) -> (u32, u32, u32) {
    (compact1by2(m), compact1by2(m >> 1), compact1by2(m >> 2))
}

#[inline]
fn part1by1(x: u32) -> u64 {
    let mut x = x as u64;
    x &= 0xFFFF_FFFF;
    x = (x | (x << 16)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x << 8)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x << 2)) & 0x3333_3333_3333_3333;
    x = (x | (x << 1)) & 0x5555_5555_5555_5555;
    x
}

#[inline]
fn compact1by1(mut x: u64) -> u32 {
    x &= 0x5555_5555_5555_5555;
    x = (x | (x >> 1)) & 0x3333_3333_3333_3333;
    x = (x | (x >> 2)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x >> 4)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x >> 8)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x >> 16)) & 0x0000_0000_FFFF_FFFF;
    x as u32
}

#[inline]
fn part1by2(x: u32) -> u64 {
    let mut x = x as u64;
    x &= 0x1F_FFFF;
    x = (x | (x << 32)) & 0x001F_0000_0000_FFFF;
    x = (x | (x << 16)) & 0x001F_0000_FF00_00FF;
    x = (x | (x << 8)) & 0x100F_00F0_0F00_F00F;
    x = (x | (x << 4)) & 0x10C3_0C30_C30C_30C3;
    x = (x | (x << 2)) & 0x1249_2492_4924_9249;
    x
}

#[inline]
fn compact1by2(mut x: u64) -> u32 {
    x &= 0x1249_2492_4924_9249;
    x = (x | (x >> 2)) & 0x10C3_0C30_C30C_30C3;
    x = (x | (x >> 4)) & 0x100F_00F0_0F00_F00F;
    x = (x | (x >> 8)) & 0x001F_0000_FF00_00FF;
    x = (x | (x >> 16)) & 0x001F_0000_0000_FFFF;
    x = (x | (x >> 32)) & 0x0000_0000_001F_FFFF;
    x as u32
}

/// A Z-order traversal of a (possibly non-power-of-two) 2-D or 3-D grid.
///
/// `perm[z_position] = row_major_position`: applying the permutation yields
/// data in Z-order; spatial unit `u` of size `s` covers z-positions
/// `[u*s, (u+1)*s)`, a compact block of the grid.
#[derive(Debug, Clone)]
pub struct ZOrderLayout {
    dims: Vec<usize>,
    perm: Vec<u32>,
}

impl ZOrderLayout {
    /// Builds the layout for a grid with the given dimensions (2 or 3 dims;
    /// each ≤ 2^21 so Morton codes fit in `u64`).
    pub fn new(dims: &[usize]) -> Self {
        assert!(
            dims.len() == 2 || dims.len() == 3,
            "ZOrderLayout supports 2-D and 3-D grids, got {} dims",
            dims.len()
        );
        assert!(
            dims.iter().all(|&d| d > 0 && d <= 1 << 21),
            "dims out of range"
        );
        let n: usize = dims.iter().product();
        assert!(n <= u32::MAX as usize, "grid too large for u32 permutation");
        let mut keyed: Vec<(u64, u32)> = Vec::with_capacity(n);
        match dims {
            [nx, ny] => {
                for y in 0..*ny {
                    for x in 0..*nx {
                        let lin = (y * nx + x) as u32;
                        keyed.push((morton2(x as u32, y as u32), lin));
                    }
                }
            }
            [nx, ny, nz] => {
                for z in 0..*nz {
                    for y in 0..*ny {
                        for x in 0..*nx {
                            let lin = ((z * ny + y) * nx + x) as u32;
                            keyed.push((morton3(x as u32, y as u32, z as u32), lin));
                        }
                    }
                }
            }
            _ => unreachable!(),
        }
        keyed.sort_unstable_by_key(|&(m, _)| m);
        ZOrderLayout {
            dims: dims.to_vec(),
            perm: keyed.into_iter().map(|(_, l)| l).collect(),
        }
    }

    /// Grid dimensions.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Total number of cells.
    pub fn len(&self) -> usize {
        self.perm.len()
    }

    /// `true` for a zero-cell grid (cannot occur — dims are positive).
    pub fn is_empty(&self) -> bool {
        self.perm.is_empty()
    }

    /// The row-major position stored at Z-position `z`.
    pub fn row_major_of(&self, z: usize) -> usize {
        self.perm[z] as usize
    }

    /// Reorders row-major data into Z-order.
    pub fn reorder<T: Copy>(&self, data: &[T]) -> Vec<T> {
        assert_eq!(data.len(), self.perm.len(), "data length mismatch");
        self.perm.iter().map(|&p| data[p as usize]).collect()
    }

    /// Scatters Z-ordered data back to row-major.
    pub fn restore<T: Copy + Default>(&self, zdata: &[T]) -> Vec<T> {
        assert_eq!(zdata.len(), self.perm.len(), "data length mismatch");
        let mut out = vec![T::default(); zdata.len()];
        for (z, &p) in self.perm.iter().enumerate() {
            out[p as usize] = zdata[z];
        }
        out
    }

    /// Bounding box (inclusive min, exclusive max per dimension) of the
    /// spatial unit covering z-positions `[start, start+len)` — lets callers
    /// report *where* a mined spatial subset lives.
    pub fn unit_bounds(&self, start: usize, len: usize) -> (Vec<usize>, Vec<usize>) {
        assert!(
            start + len <= self.perm.len() && len > 0,
            "unit out of range"
        );
        let d = self.dims.len();
        let mut lo = vec![usize::MAX; d];
        let mut hi = vec![0usize; d];
        for z in start..start + len {
            let coords = self.coords_of(self.perm[z] as usize);
            for (k, &c) in coords.iter().enumerate() {
                lo[k] = lo[k].min(c);
                hi[k] = hi[k].max(c + 1);
            }
        }
        (lo, hi)
    }

    fn coords_of(&self, lin: usize) -> Vec<usize> {
        match self.dims.as_slice() {
            [nx, _] => vec![lin % nx, lin / nx],
            [nx, ny, _] => vec![lin % nx, (lin / nx) % ny, lin / (nx * ny)],
            _ => unreachable!(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn morton2_roundtrip() {
        for x in [0u32, 1, 7, 255, 1000, 65535] {
            for y in [0u32, 3, 128, 40000] {
                assert_eq!(demorton2(morton2(x, y)), (x, y));
            }
        }
    }

    #[test]
    fn morton3_roundtrip() {
        for x in [0u32, 1, 20, 1 << 20] {
            for y in [0u32, 5, 999] {
                for z in [0u32, 2, (1 << 21) - 1] {
                    assert_eq!(demorton3(morton3(x, y, z)), (x, y, z));
                }
            }
        }
    }

    #[test]
    fn morton2_known_values() {
        assert_eq!(morton2(0, 0), 0);
        assert_eq!(morton2(1, 0), 1);
        assert_eq!(morton2(0, 1), 2);
        assert_eq!(morton2(1, 1), 3);
        assert_eq!(morton2(2, 0), 4);
    }

    #[test]
    fn morton_orders_quadrants() {
        // All of the 2x2 block at origin precedes anything at (2,2)+.
        let block: Vec<u64> = vec![morton2(0, 0), morton2(1, 0), morton2(0, 1), morton2(1, 1)];
        assert!(block.iter().all(|&m| m < morton2(2, 2)));
    }

    #[test]
    fn layout_is_permutation() {
        for dims in [vec![4usize, 4], vec![3, 5], vec![2, 3, 4], vec![8, 8, 8]] {
            let z = ZOrderLayout::new(&dims);
            let n: usize = dims.iter().product();
            assert_eq!(z.len(), n);
            let mut seen = vec![false; n];
            for i in 0..n {
                let p = z.row_major_of(i);
                assert!(!seen[p], "duplicate in permutation");
                seen[p] = true;
            }
        }
    }

    #[test]
    fn reorder_restore_roundtrip() {
        let dims = [5usize, 7, 3];
        let n: usize = dims.iter().product();
        let data: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let z = ZOrderLayout::new(&dims);
        let zd = z.reorder(&data);
        assert_eq!(z.restore(&zd), data);
    }

    #[test]
    fn pow2_units_are_square_blocks() {
        // In an 8x8 grid, the first 4 z-positions are the 2x2 block at origin.
        let z = ZOrderLayout::new(&[8, 8]);
        let (lo, hi) = z.unit_bounds(0, 4);
        assert_eq!((lo, hi), (vec![0, 0], vec![2, 2]));
        let (lo, hi) = z.unit_bounds(0, 16);
        assert_eq!((lo, hi), (vec![0, 0], vec![4, 4]));
    }

    #[test]
    fn units_are_spatially_compact_3d() {
        let z = ZOrderLayout::new(&[8, 8, 8]);
        let (lo, hi) = z.unit_bounds(0, 8);
        assert_eq!((lo, hi), (vec![0, 0, 0], vec![2, 2, 2]));
    }

    #[test]
    #[should_panic(expected = "2-D and 3-D")]
    fn rejects_1d() {
        let _ = ZOrderLayout::new(&[10]);
    }
}
