//! Regenerates the paper's Figure 07 — run with
//! `cargo bench -p ibis-bench --bench fig07_heat3d_xeon`.

fn main() {
    ibis_bench::figures::fig07();
}
