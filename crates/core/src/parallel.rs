//! Parallel in-situ bitmap generation (Section 2.3, Figure 2).
//!
//! The time-step's data is logically partitioned into sub-blocks — one per
//! core assigned to bitmap generation — each core runs Algorithm 1 on its
//! sub-block independently, and the per-bin results are concatenated.
//! Sub-block boundaries are rounded to 31-bit segment multiples so the
//! concatenation is a pure word append (fills merge at the seams).

use crate::binning::Binner;
use crate::builder::WahBuilder;
use crate::index::BitmapIndex;
use crate::wah::{WahVec, SEG_BITS};
use rayon::prelude::*;

/// Splits `n` elements into at most `parts` chunks whose sizes (except the
/// last) are multiples of 31. Returns chunk lengths.
pub fn aligned_partition(n: usize, parts: usize) -> Vec<usize> {
    assert!(parts > 0, "need at least one part");
    if n == 0 {
        return vec![];
    }
    let seg = SEG_BITS as usize;
    let base = n.div_ceil(parts); // target chunk size
    let chunk = base.div_ceil(seg) * seg; // round up to segment multiple
    let mut out = Vec::new();
    let mut rem = n;
    while rem > 0 {
        let take = chunk.min(rem);
        out.push(take);
        rem -= take;
    }
    out
}

/// Builds a [`BitmapIndex`] in parallel on the current rayon pool: each
/// worker compresses one 31-aligned sub-block with Algorithm 1, then per-bin
/// results are concatenated (also in parallel across bins).
///
/// Produces bit-identical output to [`BitmapIndex::build`].
pub fn build_index_parallel(data: &[f64], binner: Binner) -> BitmapIndex {
    let threads = rayon::current_num_threads();
    let sizes = aligned_partition(data.len(), threads);
    if sizes.len() <= 1 {
        return BitmapIndex::build(data, binner);
    }
    let nbins = binner.nbins();
    // Phase 1: per-sub-block compression, fully independent (Figure 2).
    let mut blocks: Vec<&[f64]> = Vec::with_capacity(sizes.len());
    let mut off = 0;
    for &s in &sizes {
        blocks.push(&data[off..off + s]);
        off += s;
    }
    let partials: Vec<Vec<WahVec>> = blocks
        .par_iter()
        .map(|block| crate::builder::build_bins_reusing_scratch(&binner, block))
        .collect();
    // Phase 2: concatenate per bin.
    let bins: Vec<WahVec> = (0..nbins)
        .into_par_iter()
        .map(|b| {
            let mut bld = WahBuilder::new();
            for part in &partials {
                bld.append_wah(&part[b]);
            }
            bld.finish()
        })
        .collect();
    BitmapIndex::from_bins(binner, bins)
}

/// [`build_index_parallel`] over the reordered stream `data[perm[i]]`:
/// the *stored* order is partitioned into 31-aligned sub-blocks, each
/// worker gathers and compresses its slice of the permutation, and per-bin
/// results concatenate exactly as in the identity-order build.
///
/// Produces bit-identical output to [`BitmapIndex::build_permuted`].
///
/// # Panics
/// When `perm.len() != data.len()`.
pub fn build_index_parallel_permuted(
    data: &[f64],
    binner: Binner,
    perm: &crate::roworder::RowPermutation,
) -> BitmapIndex {
    assert_eq!(perm.len(), data.len(), "permutation length mismatch");
    let threads = rayon::current_num_threads();
    let sizes = aligned_partition(data.len(), threads);
    if sizes.len() <= 1 {
        return BitmapIndex::build_permuted(data, binner, perm);
    }
    let nbins = binner.nbins();
    let mut blocks: Vec<&[u32]> = Vec::with_capacity(sizes.len());
    let mut off = 0;
    for &s in &sizes {
        blocks.push(&perm.perm()[off..off + s]);
        off += s;
    }
    let partials: Vec<Vec<WahVec>> = blocks
        .par_iter()
        .map(|block| crate::builder::build_bins_reusing_scratch_permuted(&binner, data, block))
        .collect();
    let bins: Vec<WahVec> = (0..nbins)
        .into_par_iter()
        .map(|b| {
            let mut bld = WahBuilder::new();
            for part in &partials {
                bld.append_wah(&part[b]);
            }
            bld.finish()
        })
        .collect();
    BitmapIndex::from_bins(binner, bins)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_everything() {
        for n in [0usize, 1, 30, 31, 32, 100, 1000, 12345] {
            for parts in [1usize, 2, 3, 7, 16] {
                let sizes = aligned_partition(n, parts);
                assert_eq!(sizes.iter().sum::<usize>(), n, "n={n} parts={parts}");
                for (i, &s) in sizes.iter().enumerate() {
                    if i + 1 < sizes.len() {
                        assert_eq!(s % 31, 0, "non-final chunk must be 31-aligned");
                    }
                    assert!(s > 0);
                }
            }
        }
    }

    #[test]
    fn partition_respects_part_budget() {
        let sizes = aligned_partition(1000, 4);
        assert!(sizes.len() <= 4 + 1, "got {} chunks", sizes.len());
    }

    #[test]
    fn parallel_build_is_bit_identical() {
        let data: Vec<f64> = (0..20_000)
            .map(|i| ((i as f64 * 0.013).sin() * 50.0).round() / 10.0)
            .collect();
        let binner = Binner::fit_precision(&data, 1);
        let seq = BitmapIndex::build(&data, binner.clone());
        let par = build_index_parallel(&data, binner);
        assert_eq!(seq.nbins(), par.nbins());
        for b in 0..seq.nbins() {
            assert_eq!(seq.bin(b), par.bin(b), "bin {b} differs");
        }
        par.check_consistent().unwrap();
    }

    #[test]
    fn parallel_build_small_inputs() {
        for n in [0usize, 1, 30, 31, 62] {
            let data: Vec<f64> = (0..n).map(|i| (i % 5) as f64).collect();
            let binner = Binner::distinct_ints(0, 4);
            let seq = BitmapIndex::build(&data, binner.clone());
            let par = build_index_parallel(&data, binner);
            for b in 0..5 {
                assert_eq!(seq.bin(b), par.bin(b), "n={n} bin {b}");
            }
        }
    }

    #[test]
    fn parallel_build_inside_sized_pool() {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .unwrap();
        let data: Vec<f64> = (0..5000).map(|i| ((i / 100) % 8) as f64).collect();
        let binner = Binner::distinct_ints(0, 7);
        let par = pool.install(|| build_index_parallel(&data, binner.clone()));
        let seq = BitmapIndex::build(&data, binner);
        for b in 0..8 {
            assert_eq!(seq.bin(b), par.bin(b));
        }
    }
}
