//! Output containers shared by all simulations.

/// One named output array of a time-step.
#[derive(Debug, Clone)]
pub struct Field {
    /// Variable name, e.g. `"temperature"` or `"velocity_x"`.
    pub name: &'static str,
    /// One value per mesh element / node, row-major.
    pub data: Vec<f64>,
}

impl Field {
    /// Creates a field.
    pub fn new(name: &'static str, data: Vec<f64>) -> Self {
        Field { name, data }
    }

    /// Raw size in bytes (what the full-data method must keep and write).
    pub fn size_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f64>()
    }
}

/// The complete output of one simulated time-step.
#[derive(Debug, Clone)]
pub struct StepOutput {
    /// Zero-based time-step number.
    pub step: usize,
    /// All analysed arrays (Heat3D: 1; mini-LULESH: 12).
    pub fields: Vec<Field>,
}

impl StepOutput {
    /// Raw size in bytes across all fields.
    pub fn size_bytes(&self) -> usize {
        self.fields.iter().map(Field::size_bytes).sum()
    }

    /// Looks a field up by name.
    pub fn field(&self, name: &str) -> Option<&Field> {
        self.fields.iter().find(|f| f.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_and_lookup() {
        let s = StepOutput {
            step: 3,
            fields: vec![
                Field::new("a", vec![1.0; 100]),
                Field::new("b", vec![2.0; 50]),
            ],
        };
        assert_eq!(s.size_bytes(), 150 * 8);
        assert_eq!(s.field("b").unwrap().data.len(), 50);
        assert!(s.field("c").is_none());
    }
}
