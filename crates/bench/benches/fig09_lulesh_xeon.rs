//! Regenerates the paper's Figure 09 — run with
//! `cargo bench -p ibis-bench --bench fig09_lulesh_xeon`.

fn main() {
    ibis_bench::figures::fig09();
}
