//! Metrics-overhead smoke bench: the same kernel workload timed in the
//! instrumented build (default features) and the no-op build
//! (`--no-default-features`), merged into `BENCH_observability.json` at the
//! repository root.
//!
//! One `cargo bench` invocation is one build configuration, so — like the
//! differential test — the comparison spans two invocations: each run
//! writes `target/obs_overhead/<config>.csv`, and whichever run finds both
//! CSVs present merges them into the report. The instrumented run
//! additionally executes a small Ocean durable pipeline and a Heat3D
//! cluster so the embedded metrics snapshot covers all four families
//! (kernels, pipeline, store, cluster).
//!
//! The <5% overhead expectation is asserted *in the report*
//! (`"under_5pct_target"`), not as a hard failure: a loaded CI host can
//! blow any wall-clock ratio.
//!
//!     cargo bench -p ibis-bench --bench obs_overhead
//!     cargo bench -p ibis-bench --no-default-features --bench obs_overhead

use ibis_analysis::Metric;
use ibis_core::{Binner, BitmapIndex, RowOrder, WahVec};
use ibis_datagen::{Heat3DConfig, OceanConfig, OceanModel};
use ibis_insitu::{
    run_cluster, run_durable, ClusterConfig, ClusterIo, ClusterReduction, CoreAllocation,
    MachineModel, PipelineConfig, Reduction, RobustnessConfig, ScalingModel,
};
use std::hint::black_box;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

const N: usize = 1 << 18;

/// Mean seconds per iteration (same calibration scheme as micro_kernels).
fn measure<O>(mut f: impl FnMut() -> O) -> f64 {
    let t0 = Instant::now();
    black_box(f());
    let one = t0.elapsed().as_secs_f64().max(1e-9);
    let iters = ((0.06 / one).round() as u64).clamp(1, 1_000_000_000);
    let samples = 3;
    let mut total = 0.0;
    for _ in 0..samples {
        let t0 = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        total += t0.elapsed().as_secs_f64() / iters as f64;
    }
    total / samples as f64
}

/// The timed workload: every instrumented kernel path (run-path counting,
/// dense-path materialization, streaming index build with fill-run
/// recording, operand preparation). Identical source in both builds — the
/// measured difference is the metrics layer.
fn run_workload() -> Vec<(&'static str, f64)> {
    let sparse_a = WahVec::from_bits((0..N).map(|i| (i / 310) % 300 == 0));
    let sparse_b = WahVec::from_bits((0..N).map(|i| ((i + 155) / 310) % 300 == 0));
    let dense_a = WahVec::from_bits((0..N).map(|i| (i * 2654435761usize) % 100 < 30));
    let dense_b = WahVec::from_bits((0..N).map(|i| (i * 2246822519usize) % 100 < 30));
    let field: Vec<f64> = (0..N).map(|i| (i as f64 * 1e-4).sin() * 50.0).collect();
    let binner = Binner::fixed_width(-51.0, 51.0, 64);

    vec![
        (
            "and_count_sparse",
            measure(|| sparse_a.and_count(&sparse_b)),
        ),
        (
            "xor_count_sparse",
            measure(|| sparse_a.xor_count(&sparse_b)),
        ),
        ("and_count_dense", measure(|| dense_a.and_count(&dense_b))),
        ("and_dense", measure(|| dense_a.and(&dense_b))),
        ("or_sparse", measure(|| sparse_a.or(&sparse_b))),
        (
            "index_build",
            measure(|| BitmapIndex::build(&field, binner.clone())),
        ),
    ]
}

/// Family coverage for the embedded snapshot: a durable Ocean pipeline
/// (kernels + pipeline + store) and a small cluster run (cluster).
fn populate_families() {
    let store_dir = std::env::temp_dir().join(format!("ibis-obs-overhead-{}", std::process::id()));
    std::fs::remove_dir_all(&store_dir).ok();
    let cfg = PipelineConfig {
        machine: MachineModel::xeon32(),
        cores: 4,
        allocation: CoreAllocation::Shared, // durable runs are Shared-only
        reduction: Reduction::Bitmaps,
        steps: 9,
        select_k: 3,
        metric: Metric::ConditionalEntropy,
        binners: Vec::new(),
        per_step_precision: Some(0),
        row_order: RowOrder::Identity,
        queue_capacity: 2,
        sim_scaling: ScalingModel::heat3d(),
        robustness: RobustnessConfig::default(),
    };
    run_durable(OceanModel::new(OceanConfig::tiny()), &cfg, &store_dir).expect("durable run");
    std::fs::remove_dir_all(&store_dir).ok();

    let cluster = ClusterConfig {
        nodes: 2,
        cores_per_node: 2,
        machine: MachineModel::oakley_node(),
        heat: Heat3DConfig {
            nx: 12,
            ny: 12,
            nz: 16,
            ..Heat3DConfig::tiny()
        },
        sweeps_per_step: 1,
        steps: 7,
        select_k: 3,
        binner: Binner::precision(-1.0, 101.0, 0),
        reduction: ClusterReduction::Bitmaps,
        io: ClusterIo::Local,
        remote_bw: MachineModel::remote_link_bw(),
        sim_scaling: ScalingModel::heat3d(),
        robustness: RobustnessConfig::default(),
        coordinator_timeout: Duration::from_secs(30),
    };
    run_cluster(&cluster).expect("cluster run");
}

fn state_dir() -> PathBuf {
    let mut dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    dir.pop();
    dir.pop();
    dir.join("target").join("obs_overhead")
}

fn read_csv(path: &Path) -> Option<Vec<(String, f64)>> {
    let text = std::fs::read_to_string(path).ok()?;
    let mut out = Vec::new();
    for line in text.lines() {
        let (name, mean) = line.split_once(',')?;
        out.push((name.to_string(), mean.parse().ok()?));
    }
    Some(out)
}

fn merge_report(dir: &Path) {
    let Some(instrumented) = read_csv(&dir.join("instrumented.csv")) else {
        println!("obs_overhead: no instrumented.csv yet; run the default-features bench too");
        return;
    };
    let Some(noop) = read_csv(&dir.join("noop.csv")) else {
        println!("obs_overhead: no noop.csv yet; run the --no-default-features bench too");
        return;
    };
    let snapshot =
        std::fs::read_to_string(dir.join("snapshot.json")).unwrap_or_else(|_| "{}".to_string());

    let mut samples = String::new();
    let (mut sum_i, mut sum_n) = (0.0f64, 0.0f64);
    for (k, (name, mean_i)) in instrumented.iter().enumerate() {
        let Some((_, mean_n)) = noop.iter().find(|(n, _)| n == name) else {
            continue;
        };
        sum_i += mean_i;
        sum_n += mean_n;
        let pct = (mean_i / mean_n - 1.0) * 100.0;
        println!(
            "obs_overhead: {name:<18} instrumented {mean_i:.3e}s noop {mean_n:.3e}s ({pct:+.2}%)"
        );
        samples.push_str(&format!(
            "    {{\"name\": \"{name}\", \"instrumented_s\": {mean_i:e}, \
             \"noop_s\": {mean_n:e}, \"overhead_pct\": {pct:.3}}}{}\n",
            if k + 1 == instrumented.len() { "" } else { "," }
        ));
    }
    let overall = (sum_i / sum_n - 1.0) * 100.0;
    let under_5 = overall < 5.0;
    println!("obs_overhead: overall overhead {overall:+.2}% (under 5% target: {under_5})");

    let out = format!(
        "{{\n  \"workload\": \"kernel sweep, {N} bits, instrumented vs no-op build\",\n  \
         \"samples\": [\n{samples}  ],\n  \
         \"overall_overhead_pct\": {overall:.3},\n  \
         \"under_5pct_target\": {under_5},\n  \
         \"snapshot\": {snapshot}\n}}\n"
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_observability.json"
    );
    std::fs::write(path, out).expect("write BENCH_observability.json");
    println!("obs_overhead: wrote {path}");
}

fn main() {
    let config = if ibis_obs::ENABLED {
        "instrumented"
    } else {
        "noop"
    };
    println!("obs_overhead: timing the {config} build");
    let samples = run_workload();

    let dir = state_dir();
    std::fs::create_dir_all(&dir).expect("create state dir");
    let csv: String = samples
        .iter()
        .map(|(name, mean)| format!("{name},{mean:e}\n"))
        .collect();
    std::fs::write(dir.join(format!("{config}.csv")), csv).expect("write csv");

    if ibis_obs::ENABLED {
        populate_families();
        let snap = ibis_obs::global().snapshot();
        let families = snap.families();
        for family in ["kernels", "pipeline", "store", "cluster"] {
            assert!(
                families.contains(family),
                "family {family:?} missing from snapshot; have {families:?}"
            );
        }
        std::fs::write(dir.join("snapshot.json"), snap.to_json(2)).expect("write snapshot");
    }

    merge_report(&dir);
}
