//! Core-allocation strategies (Section 2.3, Figure 12): Shared Cores vs
//! Separate Cores at several splits, plus the Equations 1–2 automatic
//! split, on the Heat3D workload.
//!
//! ```text
//! cargo run --release --example core_allocation
//! ```

use ibis::analysis::Metric;
use ibis::core::{Binner, RowOrder};
use ibis::datagen::{Heat3D, Heat3DConfig};
use ibis::insitu::{
    auto_allocate, run_pipeline, CoreAllocation, LocalDisk, MachineModel, PipelineConfig,
    Reduction, RobustnessConfig, ScalingModel,
};

fn main() {
    let heat = Heat3DConfig {
        nx: 40,
        ny: 40,
        nz: 40,
        ..Default::default()
    };
    let machine = MachineModel::xeon32();
    let total_cores = 28; // the paper's Figure 12(a) budget
    let steps = 24;

    let base = PipelineConfig {
        machine: machine.clone(),
        cores: total_cores,
        allocation: CoreAllocation::Shared,
        reduction: Reduction::Bitmaps,
        steps,
        select_k: 6,
        metric: Metric::ConditionalEntropy,
        binners: vec![Binner::precision(-1.0, 101.0, 0)],
        per_step_precision: None,
        row_order: RowOrder::Identity,
        queue_capacity: 4,
        sim_scaling: ScalingModel::heat3d(),
        robustness: RobustnessConfig::default(),
    };

    println!(
        "Heat3D {}³, {} steps, modeled {} with {} cores\n",
        heat.nx, steps, machine.name, total_cores
    );
    println!(
        "{:<16} {:>10} {:>10} {:>12}",
        "allocation", "sim(s)", "bitmap(s)", "total(s)"
    );

    // Shared cores: phases alternate on all 28 cores.
    let disk = LocalDisk::new(machine.disk_bw);
    let shared = run_pipeline(Heat3D::new(heat.clone()), &base, &disk).expect("run");
    println!(
        "{:<16} {:>10.3} {:>10.3} {:>12.3}",
        "c_all (shared)", shared.phases.simulate, shared.phases.reduce, shared.total_modeled
    );

    // Separate cores at several splits (the paper's c_i_c_j bars).
    for (sim, bm) in [(24, 4), (20, 8), (16, 12), (12, 16), (8, 20)] {
        let mut cfg = base.clone();
        cfg.allocation = CoreAllocation::Separate {
            sim_cores: sim,
            bitmap_cores: bm,
        };
        let disk = LocalDisk::new(machine.disk_bw);
        let r = run_pipeline(Heat3D::new(heat.clone()), &cfg, &disk).expect("run");
        println!(
            "{:<16} {:>10.3} {:>10.3} {:>12.3}",
            format!("c{sim}_c{bm}"),
            r.phases.simulate,
            r.phases.reduce,
            r.total_modeled
        );
    }

    // Equations 1–2: probe a few steps, then split automatically.
    let mut probe = Heat3D::new(heat.clone());
    let alloc = auto_allocate(&mut probe, &base.binners, &machine, total_cores, 3);
    let CoreAllocation::Separate {
        sim_cores,
        bitmap_cores,
    } = alloc
    else {
        unreachable!()
    };
    let mut cfg = base.clone();
    cfg.allocation = alloc;
    let disk = LocalDisk::new(machine.disk_bw);
    let r = run_pipeline(Heat3D::new(heat), &cfg, &disk).expect("run");
    println!(
        "{:<16} {:>10.3} {:>10.3} {:>12.3}   <- Equations 1-2",
        format!("auto c{sim_cores}_c{bitmap_cores}"),
        r.phases.simulate,
        r.phases.reduce,
        r.total_modeled
    );
    println!("\nThe auto split balances the two pipelines so neither side starves the data queue.");
}
