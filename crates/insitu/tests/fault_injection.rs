//! Fault-injection matrix for the in-situ pipeline: every failure policy
//! against every core-allocation strategy, plus the acceptance properties
//! the robustness layer guarantees — no deadlock, no escaped panic, and
//! bit-identical failure reports for identical fault plans.

use ibis_analysis::sampling::SamplingMethod;
use ibis_analysis::Metric;
use ibis_core::{Binner, RowOrder};
use ibis_datagen::{Heat3D, Heat3DConfig};
use ibis_insitu::{
    run_pipeline, CoreAllocation, FailurePolicy, FaultPlan, IbisError, LocalDisk, MachineModel,
    PipelineConfig, Reduction, RobustnessConfig, ScalingModel, StepOutcome, WorkerRole,
};
use std::time::Duration;

fn heat() -> Heat3DConfig {
    Heat3DConfig {
        nx: 16,
        ny: 16,
        nz: 16,
        ..Heat3DConfig::tiny()
    }
}

fn cfg(allocation: CoreAllocation) -> PipelineConfig {
    PipelineConfig {
        machine: MachineModel::xeon32(),
        cores: 4,
        allocation,
        reduction: Reduction::Bitmaps,
        steps: 13,
        select_k: 4,
        metric: Metric::ConditionalEntropy,
        binners: vec![Binner::precision(-1.0, 101.0, 0)],
        per_step_precision: None,
        row_order: RowOrder::Identity,
        queue_capacity: 2,
        sim_scaling: ScalingModel::heat3d(),
        robustness: RobustnessConfig::default(),
    }
}

fn separate() -> CoreAllocation {
    CoreAllocation::Separate {
        sim_cores: 2,
        bitmap_cores: 2,
    }
}

fn fallback() -> FailurePolicy {
    FailurePolicy::FallbackSampling {
        percent: 10.0,
        method: SamplingMethod::Stride,
    }
}

/// Every policy × strategy × fault-site combination must terminate with
/// either a clean report or a structured error — never a hang and never an
/// escaped panic (a panic here would fail the test harness itself).
#[test]
fn fault_matrix_terminates_without_escaped_panics() {
    let policies = [FailurePolicy::Abort, FailurePolicy::SkipStep, fallback()];
    let allocations = [CoreAllocation::Shared, separate()];
    let plans = [
        FaultPlan::none().with_consumer_panic_at(3),
        FaultPlan::none().with_producer_panic_at(5),
        FaultPlan::none().with_producer_panic_at(0),
        FaultPlan::none().with_io_error_at(0).with_torn_write_at(1),
        FaultPlan::none().with_delayed_ack_at(2, 0.2),
    ];
    for policy in &policies {
        for allocation in &allocations {
            for plan in &plans {
                let mut c = cfg(*allocation);
                c.robustness.policy = policy.clone();
                c.robustness.faults = plan.clone();
                let disk = LocalDisk::new(1e9);
                match run_pipeline(Heat3D::new(heat()), &c, &disk) {
                    Ok(r) => {
                        assert_eq!(r.step_outcomes.len(), 13, "{plan:?}");
                        assert!(r.selected.len() <= 4);
                    }
                    Err(e) => {
                        // only structured, explainable failures allowed
                        let msg = e.to_string();
                        assert!(!msg.is_empty());
                        assert!(
                            matches!(e, IbisError::WorkerPanic { .. }),
                            "unexpected error class for {plan:?} under {policy:?}: {e}"
                        );
                    }
                }
            }
        }
    }
}

/// Abort policy surfaces the consumer panic as a structured error that
/// names the role, the step, and the panic message.
#[test]
fn abort_policy_reports_structured_consumer_panic() {
    let mut c = cfg(CoreAllocation::Shared);
    c.robustness.faults = FaultPlan::none().with_consumer_panic_at(3);
    let disk = LocalDisk::new(1e9);
    let err = run_pipeline(Heat3D::new(heat()), &c, &disk).unwrap_err();
    match err {
        IbisError::WorkerPanic {
            role,
            step,
            message,
        } => {
            assert_eq!(role, WorkerRole::Consumer);
            assert_eq!(step, Some(3));
            assert!(message.contains("injected fault"), "{message}");
        }
        other => panic!("expected WorkerPanic, got {other}"),
    }
}

/// The acceptance property: the same fault plan produces the identical
/// failure report on every run — same events, same outcomes, same error.
#[test]
fn identical_fault_plans_produce_identical_reports() {
    // a mixed plan hitting both storage and the consumer
    let plan = FaultPlan::none()
        .with_io_error_at(1)
        .with_torn_write_at(2)
        .with_consumer_panic_at(4);
    let mut c = cfg(CoreAllocation::Shared);
    c.robustness.policy = FailurePolicy::SkipStep;
    c.robustness.faults = plan;
    let run = || {
        let disk = LocalDisk::new(1e9);
        run_pipeline(Heat3D::new(heat()), &c, &disk).unwrap()
    };
    let a = run();
    let b = run();
    assert!(!a.fault_events.is_empty(), "plan must actually fire");
    assert_eq!(a.fault_events, b.fault_events);
    assert_eq!(a.step_outcomes, b.step_outcomes);
    assert_eq!(a.selected, b.selected);
    assert_eq!(a.bytes_written, b.bytes_written);
}

/// Same property for seed-derived plans and for the error path: two runs
/// of the same seeded plan under Abort fail with the *same* error.
#[test]
fn seeded_plan_failure_report_is_deterministic() {
    // find a seed whose derived plan panics the consumer
    let plan = (0u64..64)
        .map(|s| FaultPlan::seeded(s, 13))
        .find(|p| p.consumer_panic_at.is_some())
        .expect("some small seed derives a consumer panic");
    let mut c = cfg(CoreAllocation::Shared);
    c.robustness.faults = plan;
    let run = || {
        let disk = LocalDisk::new(1e9);
        run_pipeline(Heat3D::new(heat()), &c, &disk).unwrap_err()
    };
    assert_eq!(run(), run(), "identical seed, identical failure report");
}

/// SkipStep keeps going: the panicked step is recorded, everything else
/// completes, and the selector still returns a full selection.
#[test]
fn skip_policy_records_outcome_and_completes() {
    let mut c = cfg(CoreAllocation::Shared);
    c.robustness.policy = FailurePolicy::SkipStep;
    c.robustness.faults = FaultPlan::none().with_consumer_panic_at(6);
    let disk = LocalDisk::new(1e9);
    let r = run_pipeline(Heat3D::new(heat()), &c, &disk).unwrap();
    assert!(matches!(r.step_outcomes[6], StepOutcome::Skipped { .. }));
    assert_eq!(
        r.step_outcomes.iter().filter(|o| o.is_completed()).count(),
        12
    );
    assert_eq!(r.selected.len(), 4);
    assert!(
        !r.selected.contains(&6),
        "a skipped step cannot be selected"
    );
}

/// FallbackSampling substitutes a sampled summary for the failed step, so
/// the step stays eligible for selection.
#[test]
fn fallback_policy_keeps_step_eligible() {
    let mut c = cfg(CoreAllocation::Shared);
    c.robustness.policy = fallback();
    c.robustness.faults = FaultPlan::none().with_consumer_panic_at(6);
    let disk = LocalDisk::new(1e9);
    let r = run_pipeline(Heat3D::new(heat()), &c, &disk).unwrap();
    assert!(matches!(
        r.step_outcomes[6],
        StepOutcome::FallbackSampled { .. }
    ));
    assert_eq!(r.selected.len(), 4);
}

/// Regression: under Separate-Cores a consumer death used to strand the
/// producer on a full bounded queue forever. The failure must now surface
/// as a structured error well within a timeout.
#[test]
fn separate_cores_consumer_death_does_not_deadlock() {
    let (tx, rx) = std::sync::mpsc::channel();
    let handle = std::thread::spawn(move || {
        let mut c = cfg(separate());
        c.queue_capacity = 1; // smallest queue = fastest deadlock before the fix
        c.steps = 17;
        c.robustness.faults = FaultPlan::none().with_consumer_panic_at(2);
        let disk = LocalDisk::new(1e9);
        let result = run_pipeline(Heat3D::new(heat()), &c, &disk);
        tx.send(result).ok();
    });
    let result = rx
        .recv_timeout(Duration::from_secs(60))
        .expect("pipeline deadlocked: no result within 60s");
    handle.join().expect("runner thread panicked");
    let err = result.unwrap_err();
    assert!(
        matches!(
            err,
            IbisError::WorkerPanic {
                role: WorkerRole::Consumer,
                ..
            }
        ),
        "expected a contained consumer panic, got {err}"
    );
}

/// Transient storage faults are retried and absorbed: the run completes,
/// the events are on the record, and the modeled time reflects a delayed
/// acknowledgement.
#[test]
fn transient_write_faults_are_retried_and_logged() {
    let mut c = cfg(CoreAllocation::Shared);
    c.robustness.faults = FaultPlan::none()
        .with_io_error_at(0)
        .with_delayed_ack_at(1, 0.25);
    let disk = LocalDisk::new(1e9);
    let r = run_pipeline(Heat3D::new(heat()), &c, &disk).unwrap();
    assert!(r.step_outcomes.iter().all(StepOutcome::is_completed));
    assert_eq!(r.fault_events.len(), 2, "{:?}", r.fault_events);

    let clean = run_pipeline(Heat3D::new(heat()), &cfg(CoreAllocation::Shared), &disk).unwrap();
    assert_eq!(r.selected, clean.selected, "faults must not change results");
    assert!(
        r.phases.output > clean.phases.output,
        "backoff + delayed ack must show up in modeled output time"
    );
}

/// A persistently failing write exhausts the retry budget and aborts the
/// run with a storage error instead of looping forever.
#[test]
fn persistent_write_fault_exhausts_retries() {
    let mut c = cfg(CoreAllocation::Shared);
    c.robustness.faults = FaultPlan::none()
        .with_io_error_at(0)
        .with_persistent_write_faults();
    let disk = LocalDisk::new(1e9);
    let err = run_pipeline(Heat3D::new(heat()), &c, &disk).unwrap_err();
    assert!(
        matches!(err, IbisError::StorageExhausted { .. }),
        "expected StorageExhausted, got {err}"
    );
}
