//! Regenerates the paper's Figure 14 — run with
//! `cargo bench -p ibis-bench --bench fig14_mining`.

fn main() {
    ibis_bench::figures::fig14();
}
