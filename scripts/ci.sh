#!/usr/bin/env bash
# Local CI gate: formatting, lints (warnings are errors), and the full
# workspace test suite — in both kernel configurations.
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, all targets, -D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test (workspace)"
cargo test -q --workspace

echo "==> cargo test (ibis-core with legacy-kernels, for the A/B sweep)"
cargo test -q -p ibis-core --features legacy-kernels

echo "CI OK"
