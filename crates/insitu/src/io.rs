//! Storage cost models and a real file sink.
//!
//! The paper's win comes from writing compressed bitmaps instead of raw
//! arrays. We model write time as `bytes / bandwidth` for the local-disk
//! case, and for the cluster's shared remote data server we serialize
//! transfers through a single contended link ([`RemoteLink`]), which is
//! what produces the Figure 13 remote-case speedups. [`FileSink`] writes
//! real bytes for the examples.

use parking_lot::Mutex;
use std::io::Write;
use std::path::{Path, PathBuf};

/// A storage target with modeled write cost.
pub trait Storage: Send + Sync {
    /// Records a write of `bytes` starting at pipeline time `now` (seconds);
    /// returns the seconds until the write completes (including any queueing
    /// behind other writers).
    fn write(&self, now: f64, bytes: u64) -> f64;

    /// Total bytes accepted so far.
    fn bytes_written(&self) -> u64;
}

/// A node-local disk with fixed bandwidth: no contention between nodes.
#[derive(Debug)]
pub struct LocalDisk {
    bw: f64,
    written: Mutex<u64>,
}

impl LocalDisk {
    /// A disk writing at `bandwidth` bytes/second.
    pub fn new(bandwidth: f64) -> Self {
        assert!(bandwidth > 0.0, "bandwidth must be positive");
        LocalDisk {
            bw: bandwidth,
            written: Mutex::new(0),
        }
    }
}

impl Storage for LocalDisk {
    fn write(&self, _now: f64, bytes: u64) -> f64 {
        *self.written.lock() += bytes;
        bytes as f64 / self.bw
    }

    fn bytes_written(&self) -> u64 {
        *self.written.lock()
    }
}

/// The single remote data server of the cluster experiment: one shared link
/// of ~100 MB/s. Concurrent writers queue — a node's write completes only
/// after everything ahead of it has drained, so the *effective* per-node
/// bandwidth falls as the node count grows, exactly the effect that makes
/// the bitmaps method pull ahead remotely (1.24×→3.79× in Figure 13).
#[derive(Debug)]
pub struct RemoteLink {
    bw: f64,
    state: Mutex<RemoteState>,
}

#[derive(Debug, Default)]
struct RemoteState {
    busy_until: f64,
    written: u64,
}

impl RemoteLink {
    /// A link transferring at `bandwidth` bytes/second.
    pub fn new(bandwidth: f64) -> Self {
        assert!(bandwidth > 0.0, "bandwidth must be positive");
        RemoteLink {
            bw: bandwidth,
            state: Mutex::new(RemoteState::default()),
        }
    }
}

impl Storage for RemoteLink {
    fn write(&self, now: f64, bytes: u64) -> f64 {
        let mut st = self.state.lock();
        let start = st.busy_until.max(now);
        let end = start + bytes as f64 / self.bw;
        st.busy_until = end;
        st.written += bytes;
        end - now
    }

    fn bytes_written(&self) -> u64 {
        self.state.lock().written
    }
}

/// A real on-disk sink (used by the examples to demonstrate that selected
/// bitmaps are genuinely persisted and reloadable).
#[derive(Debug)]
pub struct FileSink {
    dir: PathBuf,
    written: Mutex<u64>,
}

impl FileSink {
    /// Creates (if needed) `dir` and sinks files into it.
    pub fn new(dir: impl AsRef<Path>) -> std::io::Result<Self> {
        std::fs::create_dir_all(dir.as_ref())?;
        Ok(FileSink {
            dir: dir.as_ref().to_path_buf(),
            written: Mutex::new(0),
        })
    }

    /// Writes one named blob; returns its path.
    pub fn write_blob(&self, name: &str, bytes: &[u8]) -> std::io::Result<PathBuf> {
        let path = self.dir.join(name);
        let mut f = std::fs::File::create(&path)?;
        f.write_all(bytes)?;
        *self.written.lock() += bytes.len() as u64;
        Ok(path)
    }

    /// Total bytes physically written.
    pub fn bytes_written(&self) -> u64 {
        *self.written.lock()
    }
}

/// Serializes a WAH bitvector into a portable byte blob (little-endian
/// `len` + words) and back — the on-disk format for selected bitmaps.
pub mod codec {
    use ibis_core::{Binner, BinnerSpec, BitmapIndex, WahVec};

    const INDEX_MAGIC: &[u8; 4] = b"IBIS";
    const INDEX_VERSION: u32 = 1;

    /// Encodes a complete index — binner, element count, every bitvector —
    /// into one blob. The binner round-trips exactly, so analyses on a
    /// reloaded index remain metric-compatible with in-memory indices.
    pub fn encode_index(index: &BitmapIndex) -> Vec<u8> {
        let mut out = Vec::with_capacity(index.size_bytes() + 64);
        out.extend_from_slice(INDEX_MAGIC);
        out.extend_from_slice(&INDEX_VERSION.to_le_bytes());
        match index.binner().spec() {
            BinnerSpec::Width { min, width, nbins } => {
                out.push(0u8);
                out.extend_from_slice(&min.to_le_bytes());
                out.extend_from_slice(&width.to_le_bytes());
                out.extend_from_slice(&(nbins as u64).to_le_bytes());
            }
            BinnerSpec::Edges(edges) => {
                out.push(1u8);
                out.extend_from_slice(&(edges.len() as u64).to_le_bytes());
                for e in edges {
                    out.extend_from_slice(&e.to_le_bytes());
                }
            }
        }
        out.extend_from_slice(&index.len().to_le_bytes());
        out.extend_from_slice(&(index.nbins() as u64).to_le_bytes());
        for bin in index.bins() {
            let blob = encode(bin);
            out.extend_from_slice(&(blob.len() as u64).to_le_bytes());
            out.extend_from_slice(&blob);
        }
        out
    }

    /// Decodes an index blob; `None` on any malformation (bad magic /
    /// version / truncation / inconsistent bitvectors).
    pub fn decode_index(bytes: &[u8]) -> Option<BitmapIndex> {
        let mut r = Reader { bytes, pos: 0 };
        if r.take(4)? != INDEX_MAGIC.as_slice() {
            return None;
        }
        if r.u32()? != INDEX_VERSION {
            return None;
        }
        let spec = match r.u8()? {
            0 => BinnerSpec::Width {
                min: r.f64()?,
                width: r.f64()?,
                nbins: r.u64()? as usize,
            },
            1 => {
                let count = r.u64()? as usize;
                if count < 2 || count > bytes.len() / 8 + 2 {
                    return None;
                }
                let mut edges = Vec::with_capacity(count);
                for _ in 0..count {
                    edges.push(r.f64()?);
                }
                if !edges.windows(2).all(|w| w[0] < w[1]) {
                    return None;
                }
                BinnerSpec::Edges(edges)
            }
            _ => return None,
        };
        // from_spec panics on garbage; validate the width variant first
        if let BinnerSpec::Width { min, width, nbins } = &spec {
            let width_ok = width.is_finite() && *width > 0.0;
            if !min.is_finite() || !width_ok || *nbins == 0 {
                return None;
            }
        }
        let binner = Binner::from_spec(spec);
        let len = r.u64()?;
        let nbins = r.u64()? as usize;
        if nbins != binner.nbins() {
            return None;
        }
        let mut bins = Vec::with_capacity(nbins);
        for _ in 0..nbins {
            let blen = r.u64()? as usize;
            let blob = r.take(blen)?;
            let v = decode(blob)?;
            if v.len() != len {
                return None;
            }
            bins.push(v);
        }
        if r.pos != bytes.len() {
            return None; // trailing garbage
        }
        Some(BitmapIndex::from_bins(binner, bins))
    }

    struct Reader<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl<'a> Reader<'a> {
        fn take(&mut self, n: usize) -> Option<&'a [u8]> {
            let end = self.pos.checked_add(n)?;
            let s = self.bytes.get(self.pos..end)?;
            self.pos = end;
            Some(s)
        }

        fn u8(&mut self) -> Option<u8> {
            Some(self.take(1)?[0])
        }

        fn u32(&mut self) -> Option<u32> {
            Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
        }

        fn u64(&mut self) -> Option<u64> {
            Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
        }

        fn f64(&mut self) -> Option<f64> {
            Some(f64::from_le_bytes(self.take(8)?.try_into().ok()?))
        }
    }

    /// Encodes a bitvector.
    pub fn encode(v: &WahVec) -> Vec<u8> {
        let words = v.words();
        let mut out = Vec::with_capacity(12 + words.len() * 4);
        out.extend_from_slice(&v.len().to_le_bytes());
        out.extend_from_slice(&(words.len() as u32).to_le_bytes());
        for w in words {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Decodes a bitvector; returns `None` on malformed input.
    pub fn decode(bytes: &[u8]) -> Option<WahVec> {
        if bytes.len() < 12 {
            return None;
        }
        let len = u64::from_le_bytes(bytes[..8].try_into().ok()?);
        let nwords = u32::from_le_bytes(bytes[8..12].try_into().ok()?) as usize;
        if bytes.len() != 12 + nwords * 4 {
            return None;
        }
        let words: Vec<u32> = (0..nwords)
            .map(|i| u32::from_le_bytes(bytes[12 + i * 4..16 + i * 4].try_into().unwrap()))
            .collect();
        WahVec::from_raw(words, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibis_core::WahVec;

    #[test]
    fn local_disk_time_is_linear() {
        let d = LocalDisk::new(100.0);
        assert_eq!(d.write(0.0, 500), 5.0);
        assert_eq!(d.write(100.0, 500), 5.0, "no contention on local disk");
        assert_eq!(d.bytes_written(), 1000);
    }

    #[test]
    fn remote_link_serializes_concurrent_writers() {
        let l = RemoteLink::new(100.0);
        // two writers arrive at t=0: the second queues behind the first
        let t1 = l.write(0.0, 500);
        let t2 = l.write(0.0, 500);
        assert_eq!(t1, 5.0);
        assert_eq!(t2, 10.0, "second writer waits for the first");
        // a writer arriving after the link drained sees no queue
        let t3 = l.write(20.0, 100);
        assert_eq!(t3, 1.0);
        assert_eq!(l.bytes_written(), 1100);
    }

    #[test]
    fn file_sink_round_trip() {
        let dir = std::env::temp_dir().join("ibis-test-sink");
        let sink = FileSink::new(&dir).unwrap();
        let v = WahVec::from_bits((0..1000).map(|i| i % 17 == 0));
        let blob = codec::encode(&v);
        let path = sink.write_blob("step0_bin3.wah", &blob).unwrap();
        let read = std::fs::read(&path).unwrap();
        let back = codec::decode(&read).unwrap();
        assert_eq!(back, v);
        assert_eq!(sink.bytes_written(), blob.len() as u64);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn codec_rejects_malformed() {
        assert!(codec::decode(&[1, 2, 3]).is_none());
        let v = WahVec::ones(62);
        let mut blob = codec::encode(&v);
        blob.pop();
        assert!(codec::decode(&blob).is_none());
    }

    #[test]
    fn index_codec_round_trip() {
        use ibis_core::{Binner, BitmapIndex};
        let data: Vec<f64> = (0..2000).map(|i| ((i as f64) * 0.01).sin() * 9.0).collect();
        for binner in [
            Binner::fixed_width(-10.0, 10.0, 25),
            Binner::from_edges(vec![-10.0, -3.0, 0.0, 1.5, 10.0]),
        ] {
            let idx = BitmapIndex::build(&data, binner);
            let blob = codec::encode_index(&idx);
            let back = codec::decode_index(&blob).expect("valid blob");
            assert_eq!(
                back.binner(),
                idx.binner(),
                "binner must round-trip exactly"
            );
            assert_eq!(back.len(), idx.len());
            assert_eq!(back.counts(), idx.counts());
            for b in 0..idx.nbins() {
                assert_eq!(back.bin(b), idx.bin(b));
            }
        }
    }

    #[test]
    fn index_codec_rejects_malformed() {
        use ibis_core::{Binner, BitmapIndex};
        let idx = BitmapIndex::build(&[1.0, 2.0, 3.0], Binner::fixed_width(0.0, 4.0, 4));
        let blob = codec::encode_index(&idx);
        assert!(codec::decode_index(&blob).is_some());
        // truncation
        assert!(codec::decode_index(&blob[..blob.len() - 1]).is_none());
        // bad magic
        let mut bad = blob.clone();
        bad[0] = b'X';
        assert!(codec::decode_index(&bad).is_none());
        // bad version
        let mut bad = blob.clone();
        bad[4] = 99;
        assert!(codec::decode_index(&bad).is_none());
        // trailing garbage
        let mut bad = blob.clone();
        bad.push(0);
        assert!(codec::decode_index(&bad).is_none());
        // empty
        assert!(codec::decode_index(&[]).is_none());
    }

    #[test]
    fn index_codec_file_round_trip() {
        use ibis_core::{Binner, BitmapIndex};
        let dir = std::env::temp_dir().join("ibis-test-index-sink");
        let sink = FileSink::new(&dir).unwrap();
        let data: Vec<f64> = (0..500).map(|i| (i % 40) as f64).collect();
        let idx = BitmapIndex::build(&data, Binner::fixed_width(0.0, 40.0, 40));
        let path = sink
            .write_blob("step7.ibis", &codec::encode_index(&idx))
            .unwrap();
        let back = codec::decode_index(&std::fs::read(&path).unwrap()).unwrap();
        assert_eq!(back.counts(), idx.counts());
        std::fs::remove_dir_all(&dir).ok();
    }
}
