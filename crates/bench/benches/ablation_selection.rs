//! Ablation bench — run with `cargo bench -p ibis-bench --bench ablation_selection`.

fn main() {
    ibis_bench::ablations::ablation_selection();
}
