//! Earth Mover's Distance (Section 3.1 Equation 3, Section 3.2 and
//! Figure 4): the distance between the value distributions of two
//! time-steps, in two variants.
//!
//! * **Count-based** — per bin, compare element counts between the two
//!   steps. We use the signed cumulative form (the classic 1-D EMD): the
//!   running sum of `count_A(j) − count_B(j)` is the mass that must flow
//!   past bin boundary `j`, and the EMD is the sum of its absolute values.
//!   From bitmaps this needs only the cached bin popcounts.
//! * **Spatial** — per bin, count *positions* whose membership differs
//!   between the two steps ("for each bin pair … find if there is a match at
//!   the same position"), then accumulate the paper's CFP sum. From bitmaps
//!   this is one compressed XOR + popcount per bin pair (Figure 4).
//!
//! Both variants are pure functions of per-bin integers, so the bitmap and
//! full-data paths agree exactly under the same binning.

use ibis_core::{Binner, BitmapIndex};
use rayon::prelude::*;

/// Count-based EMD from per-bin counts (shared scoring kernel).
pub fn emd_from_counts(counts_a: &[u64], counts_b: &[u64]) -> f64 {
    assert_eq!(
        counts_a.len(),
        counts_b.len(),
        "EMD needs the same binning scale"
    );
    let mut cfp = 0i64;
    let mut emd = 0u64;
    for (&ca, &cb) in counts_a.iter().zip(counts_b) {
        cfp += ca as i64 - cb as i64;
        emd += cfp.unsigned_abs();
    }
    emd as f64
}

/// Spatial EMD from per-bin position-difference counts (shared kernel):
/// Equation 3's cumulative-sum-of-CFP form, with `Diff(j)` = number of
/// positions whose bin-`j` membership differs.
pub fn emd_spatial_from_diffs(diffs: &[u64]) -> f64 {
    let mut cfp = 0u64;
    let mut emd = 0u64;
    for &d in diffs {
        cfp += d;
        emd += cfp;
    }
    emd as f64
}

/// Count-based EMD of two raw arrays under a shared binning scale.
pub fn emd_counts_full(a: &[f64], b: &[f64], binner: &Binner) -> f64 {
    let ha = crate::histogram::histogram(a, binner);
    let hb = crate::histogram::histogram(b, binner);
    emd_from_counts(&ha, &hb)
}

/// Count-based EMD of two indexed time-steps: read straight off the cached
/// bin counts — zero bitwise work.
///
/// # Panics
/// Panics if the indices were built with different binning scales.
pub fn emd_counts_index(a: &BitmapIndex, b: &BitmapIndex) -> f64 {
    assert_eq!(a.binner(), b.binner(), "EMD needs the same binning scale");
    emd_from_counts(a.counts(), b.counts())
}

/// Spatial EMD of two raw arrays: per bin, count positions in exactly one of
/// the two steps' bins (a full scan per pair — the cost the bitmap path
/// avoids).
pub fn emd_spatial_full(a: &[f64], b: &[f64], binner: &Binner) -> f64 {
    assert_eq!(a.len(), b.len(), "spatial EMD needs equal-length arrays");
    let mut diffs = vec![0u64; binner.nbins()];
    for (&x, &y) in a.iter().zip(b) {
        let bx = binner.bin_of(x);
        let by = binner.bin_of(y);
        if bx != by {
            // position is in bin bx of A but not of B, and vice versa
            diffs[bx as usize] += 1;
            diffs[by as usize] += 1;
        }
    }
    emd_spatial_from_diffs(&diffs)
}

/// Spatial EMD of two indexed time-steps: `m` compressed XOR popcounts, one
/// per bin pair — Figure 4's kernel. The per-bin XORs are independent and
/// run on the rayon pool; the diffs are exact `u64` counts collected in bin
/// order, so the cumulative sum (and the result) is identical to a serial
/// evaluation.
pub fn emd_spatial_index(a: &BitmapIndex, b: &BitmapIndex) -> f64 {
    assert_eq!(a.binner(), b.binner(), "EMD needs the same binning scale");
    assert_eq!(a.len(), b.len(), "spatial EMD needs equal element counts");
    let diffs: Vec<u64> = (0..a.nbins())
        .into_par_iter()
        .map(|j| a.bin(j).xor_count(b.bin(j)))
        .collect();
    emd_spatial_from_diffs(&diffs)
}

/// Pairwise count-based EMD table over a sequence of indexed steps:
/// `table[i][j] = emd_counts_index(steps[i], steps[j])`, with rows filled on
/// the rayon pool. Only the lower triangle is computed (the metric is
/// exactly symmetric — a sum of absolute integer flows), then mirrored, so
/// the table equals [`emd_counts_pairwise_serial`] byte-for-byte.
pub fn emd_counts_pairwise(steps: &[BitmapIndex]) -> Vec<Vec<f64>> {
    let lower: Vec<Vec<f64>> = (0..steps.len())
        .into_par_iter()
        .map(|i| {
            (0..i)
                .map(|j| emd_counts_index(&steps[i], &steps[j]))
                .collect()
        })
        .collect();
    mirror_lower(lower)
}

/// Serial baseline for [`emd_counts_pairwise`].
pub fn emd_counts_pairwise_serial(steps: &[BitmapIndex]) -> Vec<Vec<f64>> {
    let lower: Vec<Vec<f64>> = (0..steps.len())
        .map(|i| {
            (0..i)
                .map(|j| emd_counts_index(&steps[i], &steps[j]))
                .collect()
        })
        .collect();
    mirror_lower(lower)
}

/// Pairwise spatial EMD table over a sequence of indexed steps — the
/// all-pairs form of Figure 4's kernel, one row per step on the rayon pool.
pub fn emd_spatial_pairwise(steps: &[BitmapIndex]) -> Vec<Vec<f64>> {
    let lower: Vec<Vec<f64>> = (0..steps.len())
        .into_par_iter()
        .map(|i| {
            (0..i)
                .map(|j| emd_spatial_index(&steps[i], &steps[j]))
                .collect()
        })
        .collect();
    mirror_lower(lower)
}

/// Serial baseline for [`emd_spatial_pairwise`].
pub fn emd_spatial_pairwise_serial(steps: &[BitmapIndex]) -> Vec<Vec<f64>> {
    let lower: Vec<Vec<f64>> = (0..steps.len())
        .map(|i| {
            (0..i)
                .map(|j| emd_spatial_index(&steps[i], &steps[j]))
                .collect()
        })
        .collect();
    mirror_lower(lower)
}

/// Expands a lower-triangular distance table into a full square matrix with
/// a zero diagonal.
fn mirror_lower(lower: Vec<Vec<f64>>) -> Vec<Vec<f64>> {
    let n = lower.len();
    let mut full = vec![vec![0.0; n]; n];
    for (i, row) in lower.into_iter().enumerate() {
        for (j, d) in row.into_iter().enumerate() {
            full[i][j] = d;
            full[j][i] = d;
        }
    }
    full
}

// ---------------------------------------------------------------------------
// Lattice-aligned variants: the paper's per-step precision binning gives each
// time-step its own bin *range* (64–206 bitvectors in their Heat3D runs) on a
// shared bin lattice; EMD between two such steps maps both sides into the
// union bin space first.
// ---------------------------------------------------------------------------

/// Maps two lattice-aligned binners into a union bin space: returns
/// `(offset_a, offset_b, union_len)` such that `a` bin `j` sits at union
/// position `j + offset_a` and `b` bin `k` at `k + offset_b`. `None` when
/// the binners do not share a lattice.
fn union_space(a: &Binner, b: &Binner) -> Option<(usize, usize, usize)> {
    let off = a.alignment_offset(b)?; // b's low edge, in bins, relative to a's
    let a_start = 0i64;
    let b_start = off;
    let lo = a_start.min(b_start);
    let hi = (a.nbins() as i64).max(off + b.nbins() as i64);
    Some((
        (a_start - lo) as usize,
        (b_start - lo) as usize,
        (hi - lo) as usize,
    ))
}

/// Count-based EMD between indices whose binners share a lattice but may
/// cover different ranges. Equals [`emd_counts_index`] when the binners are
/// identical; `None` when the lattices differ.
pub fn emd_counts_index_aligned(a: &BitmapIndex, b: &BitmapIndex) -> Option<f64> {
    let (oa, ob, len) = union_space(a.binner(), b.binner())?;
    let mut ca = vec![0u64; len];
    let mut cb = vec![0u64; len];
    ca[oa..oa + a.nbins()].copy_from_slice(a.counts());
    cb[ob..ob + b.nbins()].copy_from_slice(b.counts());
    Some(emd_from_counts(&ca, &cb))
}

/// Spatial EMD between lattice-aligned indices: per union bin, the XOR
/// popcount of the corresponding bitvectors, with a bin absent from one
/// side contributing all of the other side's members.
pub fn emd_spatial_index_aligned(a: &BitmapIndex, b: &BitmapIndex) -> Option<f64> {
    assert_eq!(a.len(), b.len(), "spatial EMD needs equal element counts");
    let (oa, ob, len) = union_space(a.binner(), b.binner())?;
    let diffs: Vec<u64> = (0..len)
        .into_par_iter()
        .map(|g| {
            let ja = g.checked_sub(oa).filter(|&j| j < a.nbins());
            let kb = g.checked_sub(ob).filter(|&k| k < b.nbins());
            match (ja, kb) {
                (Some(j), Some(k)) => a.bin(j).xor_count(b.bin(k)),
                (Some(j), None) => a.counts()[j],
                (None, Some(k)) => b.counts()[k],
                (None, None) => 0,
            }
        })
        .collect();
    Some(emd_spatial_from_diffs(&diffs))
}

/// Full-data comparator for [`emd_counts_index_aligned`] (exactness oracle).
pub fn emd_counts_full_aligned(
    a: &[f64],
    b: &[f64],
    binner_a: &Binner,
    binner_b: &Binner,
) -> Option<f64> {
    let (oa, ob, len) = union_space(binner_a, binner_b)?;
    let mut ca = vec![0u64; len];
    let mut cb = vec![0u64; len];
    for &v in a {
        ca[binner_a.bin_of(v) as usize + oa] += 1;
    }
    for &v in b {
        cb[binner_b.bin_of(v) as usize + ob] += 1;
    }
    Some(emd_from_counts(&ca, &cb))
}

/// Full-data comparator for [`emd_spatial_index_aligned`].
pub fn emd_spatial_full_aligned(
    a: &[f64],
    b: &[f64],
    binner_a: &Binner,
    binner_b: &Binner,
) -> Option<f64> {
    assert_eq!(a.len(), b.len(), "spatial EMD needs equal-length arrays");
    let (oa, ob, len) = union_space(binner_a, binner_b)?;
    let mut diffs = vec![0u64; len];
    for (&x, &y) in a.iter().zip(b) {
        let ga = binner_a.bin_of(x) as usize + oa;
        let gb = binner_b.bin_of(y) as usize + ob;
        if ga != gb {
            diffs[ga] += 1;
            diffs[gb] += 1;
        }
    }
    Some(emd_spatial_from_diffs(&diffs))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_steps_have_zero_emd() {
        let data: Vec<f64> = (0..500).map(|i| ((i * 7) % 20) as f64).collect();
        let b = Binner::distinct_ints(0, 19);
        assert_eq!(emd_counts_full(&data, &data, &b), 0.0);
        assert_eq!(emd_spatial_full(&data, &data, &b), 0.0);
        let idx = BitmapIndex::build(&data, b);
        assert_eq!(emd_counts_index(&idx, &idx), 0.0);
        assert_eq!(emd_spatial_index(&idx, &idx), 0.0);
    }

    #[test]
    fn one_bin_shift_moves_one_unit() {
        // one element moves one bin to the right: EMD = 1
        let a = [0.0, 1.0, 2.0];
        let b = [0.0, 1.0, 3.0];
        let binner = Binner::distinct_ints(0, 3);
        assert_eq!(
            emd_from_counts(
                &crate::histogram::histogram(&a, &binner),
                &crate::histogram::histogram(&b, &binner),
            ),
            1.0
        );
    }

    #[test]
    fn emd_scales_with_distance_moved() {
        // moving mass 3 bins costs 3x moving it 1 bin
        let base = [0.0f64; 10];
        let near: Vec<f64> = vec![1.0; 10];
        let far: Vec<f64> = vec![3.0; 10];
        let binner = Binner::distinct_ints(0, 3);
        let e_near = emd_counts_full(&base, &near, &binner);
        let e_far = emd_counts_full(&base, &far, &binner);
        assert_eq!(e_near, 10.0);
        assert_eq!(e_far, 30.0);
    }

    #[test]
    fn count_emd_is_symmetric() {
        let a: Vec<f64> = (0..300).map(|i| ((i * 3) % 11) as f64).collect();
        let b: Vec<f64> = (0..300).map(|i| ((i * 5) % 11) as f64).collect();
        let binner = Binner::distinct_ints(0, 10);
        assert_eq!(
            emd_counts_full(&a, &b, &binner),
            emd_counts_full(&b, &a, &binner)
        );
        assert_eq!(
            emd_spatial_full(&a, &b, &binner),
            emd_spatial_full(&b, &a, &binner)
        );
    }

    #[test]
    fn spatial_detects_rearrangement_count_does_not() {
        // Same histogram, different positions: count EMD = 0 but spatial > 0
        // — the reason the paper has the second method.
        let a = [0.0, 0.0, 1.0, 1.0];
        let b = [1.0, 1.0, 0.0, 0.0];
        let binner = Binner::distinct_ints(0, 1);
        assert_eq!(emd_counts_full(&a, &b, &binner), 0.0);
        assert!(emd_spatial_full(&a, &b, &binner) > 0.0);
    }

    #[test]
    fn bitmap_paths_are_exact() {
        let a: Vec<f64> = (0..5000).map(|i| (i as f64 * 0.002).sin() * 20.0).collect();
        let b: Vec<f64> = (0..5000)
            .map(|i| (i as f64 * 0.002 + 0.4).sin() * 20.0)
            .collect();
        let binner = Binner::fixed_width(-21.0, 21.0, 40);
        let ia = BitmapIndex::build(&a, binner.clone());
        let ib = BitmapIndex::build(&b, binner.clone());
        assert_eq!(emd_counts_index(&ia, &ib), emd_counts_full(&a, &b, &binner));
        assert_eq!(
            emd_spatial_index(&ia, &ib),
            emd_spatial_full(&a, &b, &binner)
        );
    }

    #[test]
    #[should_panic(expected = "same binning scale")]
    fn different_binners_rejected() {
        let a = BitmapIndex::build(&[1.0], Binner::fixed_width(0.0, 2.0, 2));
        let b = BitmapIndex::build(&[1.0], Binner::fixed_width(0.0, 2.0, 4));
        let _ = emd_counts_index(&a, &b);
    }

    #[test]
    fn aligned_emd_reduces_to_plain_when_binners_match() {
        let a: Vec<f64> = (0..400).map(|i| ((i * 3) % 30) as f64 / 3.0).collect();
        let b: Vec<f64> = (0..400).map(|i| ((i * 7) % 30) as f64 / 3.0).collect();
        let binner = Binner::fixed_width(0.0, 10.0, 20);
        let ia = BitmapIndex::build(&a, binner.clone());
        let ib = BitmapIndex::build(&b, binner.clone());
        assert_eq!(
            emd_counts_index_aligned(&ia, &ib),
            Some(emd_counts_index(&ia, &ib))
        );
        assert_eq!(
            emd_spatial_index_aligned(&ia, &ib),
            Some(emd_spatial_index(&ia, &ib))
        );
    }

    #[test]
    fn aligned_emd_per_step_binners_exact() {
        // two "time-steps" with different value ranges, per-step anchored
        // precision binning — the paper's Heat3D configuration
        let a: Vec<f64> = (0..600)
            .map(|i| 3.0 + (i as f64 * 0.01).sin() * 2.0)
            .collect();
        let b: Vec<f64> = (0..600)
            .map(|i| 5.5 + (i as f64 * 0.013).cos() * 3.0)
            .collect();
        let ba = Binner::fit_precision_anchored(&a, 1);
        let bb = Binner::fit_precision_anchored(&b, 1);
        assert_ne!(ba.nbins(), bb.nbins(), "per-step bin counts should differ");
        let ia = BitmapIndex::build(&a, ba.clone());
        let ib = BitmapIndex::build(&b, bb.clone());
        // bitmap path == full-data path, exactly
        assert_eq!(
            emd_counts_index_aligned(&ia, &ib).unwrap(),
            emd_counts_full_aligned(&a, &b, &ba, &bb).unwrap()
        );
        assert_eq!(
            emd_spatial_index_aligned(&ia, &ib).unwrap(),
            emd_spatial_full_aligned(&a, &b, &ba, &bb).unwrap()
        );
        // and both are symmetric
        assert_eq!(
            emd_counts_index_aligned(&ia, &ib),
            emd_counts_index_aligned(&ib, &ia)
        );
        assert_eq!(
            emd_spatial_index_aligned(&ia, &ib),
            emd_spatial_index_aligned(&ib, &ia)
        );
    }

    #[test]
    fn aligned_emd_rejects_different_lattices() {
        let a = BitmapIndex::build(&[1.0], Binner::fixed_width(0.0, 2.0, 2));
        let b = BitmapIndex::build(&[1.0], Binner::fixed_width(0.0, 2.0, 3));
        assert_eq!(emd_counts_index_aligned(&a, &b), None);
        assert_eq!(emd_spatial_index_aligned(&a, &b), None);
    }

    #[test]
    fn aligned_emd_disjoint_ranges() {
        // completely disjoint value ranges: every element differs
        let a = vec![1.05; 62];
        let b = vec![9.05; 62];
        let ba = Binner::fit_precision_anchored(&a, 1);
        let bb = Binner::fit_precision_anchored(&b, 1);
        let ia = BitmapIndex::build(&a, ba);
        let ib = BitmapIndex::build(&b, bb);
        // spatial: each of the 62 positions differs in both bins
        let d = emd_spatial_index_aligned(&ia, &ib).unwrap();
        assert!(d > 0.0);
        let c = emd_counts_index_aligned(&ia, &ib).unwrap();
        // all 62 elements must travel 80 lattice cells: EMD = 62 * 80
        assert_eq!(c, 62.0 * 80.0);
    }

    #[test]
    fn pairwise_tables_match_direct_and_serial() {
        let binner = Binner::fixed_width(-21.0, 21.0, 30);
        let steps: Vec<BitmapIndex> = (0..6)
            .map(|s| {
                let data: Vec<f64> = (0..2000)
                    .map(|i| (i as f64 * 0.003 + s as f64 * 0.3).sin() * 20.0)
                    .collect();
                BitmapIndex::build(&data, binner.clone())
            })
            .collect();
        let counts = emd_counts_pairwise(&steps);
        let spatial = emd_spatial_pairwise(&steps);
        assert_eq!(counts, emd_counts_pairwise_serial(&steps));
        assert_eq!(spatial, emd_spatial_pairwise_serial(&steps));
        for i in 0..steps.len() {
            assert_eq!(counts[i][i], 0.0);
            assert_eq!(spatial[i][i], 0.0);
            for j in 0..i {
                assert_eq!(counts[i][j], emd_counts_index(&steps[i], &steps[j]));
                assert_eq!(spatial[i][j], emd_spatial_index(&steps[i], &steps[j]));
                assert_eq!(counts[i][j], counts[j][i]);
                assert_eq!(spatial[i][j], spatial[j][i]);
            }
        }
    }

    #[test]
    fn spatial_diffs_relate_to_xor() {
        // Each differing position contributes to exactly two bins' diffs.
        let a = [0.0, 1.0, 2.0, 2.0];
        let b = [1.0, 1.0, 2.0, 0.0];
        let binner = Binner::distinct_ints(0, 2);
        let ia = BitmapIndex::build(&a, binner.clone());
        let ib = BitmapIndex::build(&b, binner.clone());
        let total_xor: u64 = (0..3).map(|j| ia.bin(j).xor_count(ib.bin(j))).sum();
        let differing = a.iter().zip(&b).filter(|(x, y)| x != y).count() as u64;
        assert_eq!(total_xor, 2 * differing);
    }
}
