//! Regenerates the paper's Figure 10 — run with
//! `cargo bench -p ibis-bench --bench fig10_lulesh_mic`.

fn main() {
    ibis_bench::figures::fig10();
}
