//! Property-based tests for the WAH bitvector and builders, checked against
//! the uncompressed [`Bitset`] oracle.

use ibis_core::bbc::BbcVec;
use ibis_core::{
    Binner, BitmapIndex, Bitset, MultiLevelIndex, MultiWahBuilder, WahBuilder, WahVec,
};
use proptest::prelude::*;

/// Bit patterns biased toward runs (the regime WAH targets) as well as noise.
fn bit_vec() -> impl Strategy<Value = Vec<bool>> {
    prop_oneof![
        // pure noise
        proptest::collection::vec(any::<bool>(), 0..400),
        // run-structured: concatenated (bit, len) runs
        proptest::collection::vec((any::<bool>(), 1usize..120), 0..12).prop_map(|runs| {
            runs.into_iter()
                .flat_map(|(b, n)| std::iter::repeat_n(b, n))
                .collect()
        }),
        // sparse ones
        (1usize..2000, proptest::collection::vec(0usize..2000, 0..10)).prop_map(|(len, ones)| {
            let mut v = vec![false; len];
            for o in ones {
                if o < len {
                    v[o] = true;
                }
            }
            v
        }),
    ]
}

fn pair_same_len() -> impl Strategy<Value = (Vec<bool>, Vec<bool>)> {
    (0usize..500).prop_flat_map(|n| {
        (
            proptest::collection::vec(any::<bool>(), n),
            proptest::collection::vec(any::<bool>(), n),
        )
    })
}

proptest! {
    #[test]
    fn roundtrip(bits in bit_vec()) {
        let v = WahVec::from_bits(bits.iter().copied());
        prop_assert_eq!(v.len(), bits.len() as u64);
        prop_assert_eq!(v.to_bools(), bits);
        v.check_canonical().unwrap();
    }

    #[test]
    fn count_ones_matches_oracle(bits in bit_vec()) {
        let v = WahVec::from_bits(bits.iter().copied());
        let oracle = Bitset::from_bits(bits.iter().copied());
        prop_assert_eq!(v.count_ones(), oracle.count_ones());
    }

    #[test]
    fn get_matches_oracle(bits in bit_vec()) {
        let v = WahVec::from_bits(bits.iter().copied());
        for (i, &b) in bits.iter().enumerate() {
            prop_assert_eq!(v.get(i as u64), b);
        }
    }

    #[test]
    fn iter_ones_matches(bits in bit_vec()) {
        let v = WahVec::from_bits(bits.iter().copied());
        let want: Vec<u64> = bits.iter().enumerate()
            .filter_map(|(i, &b)| b.then_some(i as u64)).collect();
        prop_assert_eq!(v.iter_ones().collect::<Vec<_>>(), want);
    }

    #[test]
    fn binary_ops_match_oracle((a_bits, b_bits) in pair_same_len()) {
        let a = WahVec::from_bits(a_bits.iter().copied());
        let b = WahVec::from_bits(b_bits.iter().copied());
        let n = a_bits.len();

        let and = a.and(&b);
        let or = a.or(&b);
        let xor = a.xor(&b);
        let andnot = a.andnot(&b);
        for i in 0..n {
            let (x, y) = (a_bits[i], b_bits[i]);
            prop_assert_eq!(and.get(i as u64), x & y);
            prop_assert_eq!(or.get(i as u64), x | y);
            prop_assert_eq!(xor.get(i as u64), x ^ y);
            prop_assert_eq!(andnot.get(i as u64), x & !y);
        }
        and.check_canonical().unwrap();
        or.check_canonical().unwrap();
        xor.check_canonical().unwrap();
        andnot.check_canonical().unwrap();
        prop_assert_eq!(a.and_count(&b), and.count_ones());
        prop_assert_eq!(a.xor_count(&b), xor.count_ones());
    }

    #[test]
    fn ranged_count_matches_scan(bits in bit_vec(), lo_frac in 0.0f64..1.0, hi_frac in 0.0f64..1.0) {
        let v = WahVec::from_bits(bits.iter().copied());
        let n = bits.len() as u64;
        let (mut lo, mut hi) = ((lo_frac * n as f64) as u64, (hi_frac * n as f64) as u64);
        if lo > hi { std::mem::swap(&mut lo, &mut hi); }
        let want = bits[lo as usize..hi as usize].iter().filter(|&&b| b).count() as u64;
        prop_assert_eq!(v.count_ones_in_range(lo, hi), want);
    }

    #[test]
    fn per_unit_counts_sum(bits in bit_vec(), unit in 1u64..100) {
        let v = WahVec::from_bits(bits.iter().copied());
        let per = v.count_ones_per_unit(unit);
        prop_assert_eq!(per.iter().sum::<u64>(), v.count_ones());
        prop_assert_eq!(per.len() as u64, v.len().div_ceil(unit));
    }

    #[test]
    fn concat_roundtrip(a_bits in bit_vec(), b_bits in bit_vec()) {
        // Pad a to a 31-bit boundary as the parallel generator does.
        let mut a_bits = a_bits;
        while !a_bits.len().is_multiple_of(31) { a_bits.push(false); }
        let mut a = WahVec::from_bits(a_bits.iter().copied());
        let b = WahVec::from_bits(b_bits.iter().copied());
        a.concat(&b);
        let want: Vec<bool> = a_bits.into_iter().chain(b_bits).collect();
        prop_assert_eq!(a.to_bools(), want);
        a.check_canonical().unwrap();
    }

    #[test]
    fn builder_append_run_equivalence(runs in proptest::collection::vec((any::<bool>(), 0u64..200), 0..10)) {
        // append_run(bit, n) must equal pushing n bits one at a time.
        let mut fast = WahBuilder::new();
        let mut slow = WahBuilder::new();
        for &(bit, n) in &runs {
            fast.append_run(bit, n);
            for _ in 0..n { slow.push_bit(bit); }
        }
        let (f, s) = (fast.finish(), slow.finish());
        prop_assert_eq!(&f, &s);
        f.check_canonical().unwrap();
    }

    #[test]
    fn multi_builder_partitions_positions(ids in proptest::collection::vec(0u32..12, 0..400)) {
        let mut mb = MultiWahBuilder::new(12);
        mb.extend_from(&ids);
        let bins = mb.finish();
        // every position is set in exactly the bin of its id
        for (pos, &id) in ids.iter().enumerate() {
            for (b, bin) in bins.iter().enumerate() {
                prop_assert_eq!(bin.get(pos as u64), b as u32 == id);
            }
        }
        for bin in &bins {
            bin.check_canonical().unwrap();
        }
    }

    #[test]
    fn index_counts_are_histogram(data in proptest::collection::vec(-100.0f64..100.0, 0..500), nbins in 1usize..40) {
        let binner = Binner::fixed_width(-100.0, 100.0, nbins);
        let idx = BitmapIndex::build(&data, binner.clone());
        let mut hist = vec![0u64; nbins];
        for &v in &data {
            hist[binner.bin_of(v) as usize] += 1;
        }
        prop_assert_eq!(idx.counts(), hist.as_slice());
        idx.check_consistent().unwrap();
    }

    #[test]
    fn multilevel_consistent(data in proptest::collection::vec(0.0f64..10.0, 1..300), group in 1usize..8) {
        let ml = MultiLevelIndex::build(&data, Binner::fixed_width(0.0, 10.0, 17), group);
        ml.check_consistent().unwrap();
    }

    #[test]
    fn parallel_build_identical(data in proptest::collection::vec(0.0f64..50.0, 0..800)) {
        let binner = Binner::fixed_width(0.0, 50.0, 25);
        let seq = BitmapIndex::build(&data, binner.clone());
        let par = ibis_core::build_index_parallel(&data, binner);
        for b in 0..25 {
            prop_assert_eq!(seq.bin(b), par.bin(b));
        }
    }

    #[test]
    fn bbc_roundtrip_and_counts(bits in bit_vec()) {
        let v = BbcVec::from_bits(bits.iter().copied());
        prop_assert_eq!(v.len(), bits.len() as u64);
        prop_assert_eq!(v.to_bools(), bits.clone());
        let ones = bits.iter().filter(|&&b| b).count() as u64;
        prop_assert_eq!(v.count_ones(), ones);
    }

    #[test]
    fn bbc_and_count_matches_wah((a_bits, b_bits) in pair_same_len()) {
        let ba = BbcVec::from_bits(a_bits.iter().copied());
        let bb = BbcVec::from_bits(b_bits.iter().copied());
        let wa = WahVec::from_bits(a_bits.iter().copied());
        let wb = WahVec::from_bits(b_bits.iter().copied());
        prop_assert_eq!(ba.and_count(&bb), wa.and_count(&wb));
    }

    #[test]
    fn not_is_involution(bits in bit_vec()) {
        let v = WahVec::from_bits(bits.iter().copied());
        prop_assert_eq!(&v.not().not(), &v);
    }

    #[test]
    fn or_many_equals_fold(vec_count in 0usize..6, len in 0usize..200, seed in any::<u64>()) {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state
        };
        let vecs: Vec<WahVec> = (0..vec_count)
            .map(|_| WahVec::from_bits((0..len).map(|_| next() % 3 == 0)))
            .collect();
        let many = WahVec::or_many(vecs.iter());
        let fold = vecs.iter().fold(None::<WahVec>, |acc, v| match acc {
            None => Some(v.clone()),
            Some(a) => Some(a.or(v)),
        });
        match fold {
            None => prop_assert_eq!(many.len(), 0),
            Some(f) => prop_assert_eq!(many, f),
        }
    }
}
