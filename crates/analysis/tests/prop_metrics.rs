//! Property-based tests for the analysis layer: information-theoretic
//! invariants, metric laws, and — above all — bit-exact agreement between
//! the bitmap and full-data paths on arbitrary inputs (the paper's central
//! claim, tested adversarially rather than on hand-picked data).

use ibis_analysis::emd::{
    emd_counts_full, emd_counts_index, emd_from_counts, emd_spatial_full, emd_spatial_index,
};
use ibis_analysis::entropy::{
    conditional_entropy_full, conditional_entropy_index, mutual_information_full,
    mutual_information_index, shannon_entropy_full, shannon_entropy_index,
};
use ibis_analysis::histogram::histogram;
use ibis_analysis::mining::indicator_mi;
use ibis_analysis::selection::{select_greedy, Partitioning};
use ibis_analysis::{mine_full, mine_index, Metric, MiningConfig, StepSummary, VarSummary};
use ibis_core::{Binner, BitmapIndex};
use proptest::prelude::*;

/// Arbitrary data in a fixed range plus a binner over that range.
fn data_and_binner() -> impl Strategy<Value = (Vec<f64>, Binner)> {
    (
        proptest::collection::vec(-50.0f64..50.0, 1..400),
        1usize..24,
    )
        .prop_map(|(data, nbins)| (data, Binner::fixed_width(-50.0, 50.0, nbins)))
}

fn two_arrays() -> impl Strategy<Value = (Vec<f64>, Vec<f64>, Binner)> {
    (1usize..300, 1usize..20).prop_flat_map(|(n, nbins)| {
        (
            proptest::collection::vec(-50.0f64..50.0, n),
            proptest::collection::vec(-50.0f64..50.0, n),
            Just(Binner::fixed_width(-50.0, 50.0, nbins)),
        )
    })
}

proptest! {
    #[test]
    fn entropy_bitmap_exact((data, binner) in data_and_binner()) {
        let idx = BitmapIndex::build(&data, binner.clone());
        prop_assert_eq!(shannon_entropy_index(&idx), shannon_entropy_full(&data, &binner));
    }

    #[test]
    fn entropy_bounds((data, binner) in data_and_binner()) {
        let h = shannon_entropy_full(&data, &binner);
        prop_assert!(h >= 0.0);
        prop_assert!(h <= (binner.nbins() as f64).log2() + 1e-9, "H exceeds log2(bins)");
    }

    #[test]
    fn mi_and_ce_bitmap_exact((a, b, binner) in two_arrays()) {
        let ia = BitmapIndex::build(&a, binner.clone());
        let ib = BitmapIndex::build(&b, binner.clone());
        prop_assert_eq!(
            mutual_information_index(&ia, &ib),
            mutual_information_full(&a, &b, &binner, &binner)
        );
        prop_assert_eq!(
            conditional_entropy_index(&ia, &ib),
            conditional_entropy_full(&a, &b, &binner, &binner)
        );
    }

    #[test]
    fn mi_bounded_by_entropies((a, b, binner) in two_arrays()) {
        let mi = mutual_information_full(&a, &b, &binner, &binner);
        let ha = shannon_entropy_full(&a, &binner);
        let hb = shannon_entropy_full(&b, &binner);
        prop_assert!(mi >= 0.0);
        prop_assert!(mi <= ha.min(hb) + 1e-9, "MI {mi} exceeds min(H)={}", ha.min(hb));
    }

    #[test]
    fn ce_bounds((a, b, binner) in two_arrays()) {
        let ce = conditional_entropy_full(&a, &b, &binner, &binner);
        let ha = shannon_entropy_full(&a, &binner);
        prop_assert!(ce >= -1e-9 && ce <= ha + 1e-9);
    }

    #[test]
    fn emd_bitmap_exact((a, b, binner) in two_arrays()) {
        let ia = BitmapIndex::build(&a, binner.clone());
        let ib = BitmapIndex::build(&b, binner.clone());
        prop_assert_eq!(emd_counts_index(&ia, &ib), emd_counts_full(&a, &b, &binner));
        prop_assert_eq!(emd_spatial_index(&ia, &ib), emd_spatial_full(&a, &b, &binner));
    }

    #[test]
    fn emd_is_a_metric_on_histograms(
        ha in proptest::collection::vec(0u64..50, 8),
        hb in proptest::collection::vec(0u64..50, 8),
        hc in proptest::collection::vec(0u64..50, 8),
    ) {
        // identity, symmetry, triangle inequality (for equal-mass inputs the
        // cumulative form is the true 1-D EMD; with unequal mass it is still
        // a valid metric on count vectors)
        prop_assert_eq!(emd_from_counts(&ha, &ha), 0.0);
        prop_assert_eq!(emd_from_counts(&ha, &hb), emd_from_counts(&hb, &ha));
        let ab = emd_from_counts(&ha, &hb);
        let bc = emd_from_counts(&hb, &hc);
        let ac = emd_from_counts(&ha, &hc);
        prop_assert!(ac <= ab + bc + 1e-9, "triangle violated: {ac} > {ab} + {bc}");
    }

    #[test]
    fn emd_zero_iff_same_histogram((a, b, binner) in two_arrays()) {
        let same = histogram(&a, &binner) == histogram(&b, &binner);
        let emd = emd_counts_full(&a, &b, &binner);
        prop_assert_eq!(emd == 0.0, same);
    }

    #[test]
    fn indicator_mi_symmetry(n in 1u64..200, ca in 0u64..200, cb in 0u64..200, cab in 0u64..200) {
        let ca = ca.min(n);
        let cb = cb.min(n);
        let cab = cab.min(ca).min(cb).max((ca + cb).saturating_sub(n));
        prop_assert_eq!(indicator_mi(n, ca, cb, cab), indicator_mi(n, cb, ca, cab));
    }

    #[test]
    fn selection_bitmap_equals_full(
        seeds in proptest::collection::vec(0.0f64..6.0, 4..12),
        k_frac in 0.2f64..0.9,
    ) {
        // synthesize one step per seed (deterministic smooth fields)
        let binner = Binner::fixed_width(-1.1, 1.1, 12);
        let make = |bitmap: bool| -> Vec<StepSummary> {
            seeds.iter().enumerate().map(|(i, &ph)| {
                let data: Vec<f64> =
                    (0..400).map(|j| ((j as f64) * 0.021 + ph).sin()).collect();
                let var = if bitmap {
                    VarSummary::bitmap(&data, binner.clone())
                } else {
                    VarSummary::full(data, binner.clone())
                };
                StepSummary { step: i, vars: vec![var] }
            }).collect()
        };
        let n = seeds.len();
        let k = ((n as f64 * k_frac) as usize).clamp(1, n);
        let full = make(false);
        let bm = make(true);
        for metric in [Metric::ConditionalEntropy, Metric::Emd, Metric::EmdSpatial] {
            let a = select_greedy(&full, k, metric, Partitioning::FixedLength);
            let b = select_greedy(&bm, k, metric, Partitioning::FixedLength);
            prop_assert_eq!(a, b, "{:?}", metric);
        }
    }

    #[test]
    fn mining_bitmap_equals_full((a, b, binner) in two_arrays(), unit in 8u64..64) {
        let cfg = MiningConfig {
            value_threshold: 0.01,
            spatial_threshold: 0.05,
            unit_size: unit,
        };
        let ia = BitmapIndex::build(&a, binner.clone());
        let ib = BitmapIndex::build(&b, binner.clone());
        let rb = mine_index(&ia, &ib, &cfg);
        let rf = mine_full(&a, &b, &binner, &binner, &cfg);
        prop_assert_eq!(rb.subsets, rf.subsets);
        prop_assert_eq!(rb.pairs_pruned, rf.pairs_pruned);
        prop_assert_eq!(rb.units_evaluated, rf.units_evaluated);
    }
}
