//! Offline post-analysis on persisted bitmaps — the final stage of the
//! paper's workflow: the in-situ phase wrote only the selected time-steps'
//! compressed indices; later (possibly on another machine), analysts reload
//! those files and keep working *without ever having had the raw data*.
//!
//! This example runs the in-situ phase with a real file sink, then reloads
//! the `.ibis` files and performs range queries, aggregation with
//! guaranteed error bounds, and cross-step comparisons on the reloaded
//! indices.
//!
//! ```text
//! cargo run --release --example offline_postanalysis
//! ```

use ibis::analysis::aggregate;
use ibis::analysis::emd::emd_spatial_index;
use ibis::analysis::entropy::{conditional_entropy_index, shannon_entropy_index};
use ibis::analysis::Metric;
use ibis::core::{Binner, BitmapIndex, RowOrder};
use ibis::datagen::{Heat3D, Heat3DConfig, Simulation};
use ibis::insitu::{
    run_pipeline, CoreAllocation, LocalDisk, MachineModel, PipelineConfig, Reduction,
    RobustnessConfig, ScalingModel, Store, StoreWriter,
};

fn main() {
    let dir = std::env::temp_dir().join("ibis-offline-demo");
    let heat = Heat3DConfig {
        nx: 40,
        ny: 40,
        nz: 40,
        ..Default::default()
    };
    let binner = Binner::precision(-1.0, 101.0, 0);
    let steps = 24;

    // ---- in-situ phase: select 6 of 24 steps, persist their bitmaps ----
    let cfg = PipelineConfig {
        machine: MachineModel::xeon32(),
        cores: 8,
        allocation: CoreAllocation::Shared,
        reduction: Reduction::Bitmaps,
        steps,
        select_k: 6,
        metric: Metric::ConditionalEntropy,
        binners: vec![binner.clone()],
        per_step_precision: None,
        row_order: RowOrder::Identity,
        queue_capacity: 4,
        sim_scaling: ScalingModel::heat3d(),
        robustness: RobustnessConfig::default(),
    };
    let disk = LocalDisk::new(MachineModel::xeon32().disk_bw);
    let report = run_pipeline(Heat3D::new(heat.clone()), &cfg, &disk).expect("run");
    println!("in-situ phase selected steps {:?}", report.selected);

    let mut writer = StoreWriter::create(&dir).expect("create output dir");
    let mut sim = Heat3D::new(heat);
    for step in 0..steps {
        let out = sim.step();
        if report.selected.contains(&step) {
            let idx = BitmapIndex::build(&out.fields[0].data, binner.clone());
            writer.put(step, "temperature", &idx).unwrap();
        }
    }
    writer.finish().unwrap();
    println!(
        "persisted {} indices to {}\n",
        report.selected.len(),
        dir.display()
    );

    // ---- offline phase: reload and analyse; no raw data exists here ----
    let store = Store::open(&dir).expect("open run directory");
    let indices: Vec<(String, BitmapIndex)> = store
        .load_series("temperature")
        .unwrap()
        .into_iter()
        .map(|(step, idx)| (format!("step{step:04}"), idx))
        .collect();
    println!(
        "reloaded {} indices; per-step post-analysis:",
        indices.len()
    );
    println!(
        "{:<10} {:>10} {:>14} {:>12} {:>16}",
        "step", "entropy", "mean(±bound)", "hot cells", "Δ vs previous"
    );
    let mut prev: Option<&BitmapIndex> = None;
    for (name, idx) in &indices {
        let h = shannon_entropy_index(idx);
        let mean = aggregate::mean(idx).unwrap();
        // range query: how much of the mesh is hotter than 50 degrees?
        let hot = idx.query_range(50.0, 101.0).count_ones();
        let delta = match prev {
            Some(p) => format!("{:.4}", conditional_entropy_index(idx, p)),
            None => "-".into(),
        };
        println!(
            "{name:<10} {h:>10.4} {:>8.2}±{:<5.2} {hot:>12} {delta:>16}",
            mean.value, mean.bound
        );
        prev = Some(idx);
    }

    // spatial EMD between the first and last selected steps
    let first = &indices.first().unwrap().1;
    let last = &indices.last().unwrap().1;
    println!(
        "\nspatial EMD between first and last selected step: {:.0}",
        emd_spatial_index(first, last)
    );
    assert!(shannon_entropy_index(last) > 0.0);
    std::fs::remove_dir_all(&dir).ok();
    println!("(demo directory cleaned up)");
}
