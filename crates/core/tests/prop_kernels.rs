//! Property tests for the adaptive dense-path kernels, checked against the
//! uncompressed [`Bitset`] oracle across adversarial densities: all-fill
//! vectors, alternating 31-bit runs, dense random noise, and every tail
//! width in `1..31`. Each pair is exercised on both sides of the density
//! cutover, and all materialized results are checked for canonical form.

use ibis_core::{BbcVec, Bitset, DenseBits, WahVec};
use proptest::prelude::*;

/// Adversarial bit patterns for the kernel sweep.
fn kernel_bits() -> impl Strategy<Value = Vec<bool>> {
    prop_oneof![
        // all-fill: one value end to end (tail width varies with len)
        (any::<bool>(), 0usize..1200).prop_map(|(b, n)| vec![b; n]),
        // alternating 31-bit runs — every word is a fill, none mergeable
        (any::<bool>(), 1usize..24, 0usize..31).prop_map(|(start, nruns, tail)| {
            let mut v = Vec::with_capacity(nruns * 31 + tail);
            let mut bit = start;
            for _ in 0..nruns {
                v.extend(std::iter::repeat_n(bit, 31));
                bit = !bit;
            }
            v.extend(std::iter::repeat_n(bit, tail));
            v
        }),
        // dense random noise — incompressible, forces the dense cutover
        proptest::collection::vec(any::<bool>(), 0..900),
        // fill/literal mixture with explicit tail widths 1..31
        (
            proptest::collection::vec((any::<bool>(), 1usize..100), 0..10),
            1usize..31,
            any::<bool>(),
        )
            .prop_map(|(runs, tail, tbit)| {
                let mut v: Vec<bool> = runs
                    .into_iter()
                    .flat_map(|(b, n)| std::iter::repeat_n(b, n))
                    .collect();
                let aligned = v.len() - v.len() % 31;
                v.truncate(aligned);
                v.extend(std::iter::repeat_n(tbit, tail));
                v
            }),
    ]
}

/// Two same-length vectors drawn independently from the adversarial pool.
fn kernel_pair() -> impl Strategy<Value = (Vec<bool>, Vec<bool>)> {
    (kernel_bits(), kernel_bits()).prop_map(|(mut a, mut b)| {
        let n = a.len().min(b.len());
        a.truncate(n);
        b.truncate(n);
        (a, b)
    })
}

fn oracle(bits: &[bool]) -> Bitset {
    Bitset::from_bits(bits.iter().copied())
}

proptest! {
    #[test]
    fn materializing_kernels_match_oracle((a_bits, b_bits) in kernel_pair()) {
        let a = WahVec::from_bits(a_bits.iter().copied());
        let b = WahVec::from_bits(b_bits.iter().copied());

        let mut want_and = oracle(&a_bits);
        want_and.and_assign(&oracle(&b_bits));
        let mut want_or = oracle(&a_bits);
        want_or.or_assign(&oracle(&b_bits));
        let mut want_xor = oracle(&a_bits);
        want_xor.xor_assign(&oracle(&b_bits));

        for (got, want) in [
            (a.and(&b), &want_and),
            (a.or(&b), &want_or),
            (a.xor(&b), &want_xor),
        ] {
            got.check_canonical().unwrap();
            prop_assert_eq!(got.len(), want.len());
            for i in 0..got.len() {
                prop_assert_eq!(got.get(i), want.get(i), "bit {}", i);
            }
        }

        // andnot via the identity a & !b == a ^ (a & b)
        let andnot = a.andnot(&b);
        andnot.check_canonical().unwrap();
        let mut want_andnot = oracle(&a_bits);
        let mut ab = oracle(&a_bits);
        ab.and_assign(&oracle(&b_bits));
        want_andnot.xor_assign(&ab);
        for i in 0..andnot.len() {
            prop_assert_eq!(andnot.get(i), want_andnot.get(i), "bit {}", i);
        }
    }

    #[test]
    fn count_kernels_match_oracle_on_both_cutover_sides((a_bits, b_bits) in kernel_pair()) {
        let a = WahVec::from_bits(a_bits.iter().copied());
        let b = WahVec::from_bits(b_bits.iter().copied());
        let mut and_o = oracle(&a_bits);
        and_o.and_assign(&oracle(&b_bits));
        let mut xor_o = oracle(&a_bits);
        xor_o.xor_assign(&oracle(&b_bits));

        // Adaptive entry points (pick their own path by density)…
        prop_assert_eq!(a.and_count(&b), and_o.count_ones());
        prop_assert_eq!(a.xor_count(&b), xor_o.count_ones());

        // …and the dense path forced explicitly, regardless of cutover.
        let da = DenseBits::from_wah(&a);
        let db = DenseBits::from_wah(&b);
        prop_assert_eq!(da.and_count(&db), and_o.count_ones());
        prop_assert_eq!(da.xor_count(&db), xor_o.count_ones());
        prop_assert_eq!(da.and_count_wah(&b), and_o.count_ones());
        prop_assert_eq!(da.xor_count_wah(&b), xor_o.count_ones());
        prop_assert_eq!(db.and_count_wah(&a), and_o.count_ones());
        prop_assert_eq!(db.xor_count_wah(&a), xor_o.count_ones());
    }

    #[test]
    fn dense_roundtrip_is_bit_exact_and_canonical(bits in kernel_bits()) {
        let v = WahVec::from_bits(bits.iter().copied());
        let d = DenseBits::from_wah(&v);
        prop_assert_eq!(d.len(), v.len());
        prop_assert_eq!(d.count_ones(), v.count_ones());
        for (i, &b) in bits.iter().enumerate() {
            prop_assert_eq!(d.get(i as u64), b, "bit {}", i);
        }
        let back = d.to_wah();
        back.check_canonical().unwrap();
        prop_assert_eq!(&back, &v);
    }

    #[test]
    fn not_is_direct_complement(bits in kernel_bits()) {
        let v = WahVec::from_bits(bits.iter().copied());
        let n = v.not();
        n.check_canonical().unwrap();
        prop_assert_eq!(n.len(), v.len());
        prop_assert_eq!(n.count_ones() + v.count_ones(), v.len());
        prop_assert_eq!(n.not(), v);
        for (i, &b) in bits.iter().enumerate() {
            prop_assert_eq!(n.get(i as u64), !b);
        }
    }

    #[test]
    fn prepared_operand_matches_direct((a_bits, b_bits) in kernel_pair()) {
        let a = WahVec::from_bits(a_bits.iter().copied());
        let b = WahVec::from_bits(b_bits.iter().copied());
        let p = a.prepare();
        prop_assert_eq!(p.is_dense(), a.is_dense());
        prop_assert_eq!(p.and_count(&b), a.and_count(&b));
        prop_assert_eq!(p.xor_count(&b), a.xor_count(&b));
        for unit in [1u64, 31, 64] {
            prop_assert_eq!(
                p.and_count_per_unit(&b, unit),
                a.and(&b).count_ones_per_unit(unit),
                "unit {}", unit
            );
        }
    }

    #[test]
    fn stats_header_matches_oracle(bits in kernel_bits()) {
        let v = WahVec::from_bits(bits.iter().copied());
        let s = *v.stats();
        prop_assert_eq!(s.ones, oracle(&bits).count_ones());
        prop_assert_eq!(s.words, v.words().len());
        if !bits.is_empty() {
            let want = s.ones as f64 / bits.len() as f64;
            prop_assert!((s.density - want).abs() < 1e-12);
        }
    }

    #[test]
    fn and_wah_into_reuses_scratch_correctly((a_bits, b_bits) in kernel_pair()) {
        let a = WahVec::from_bits(a_bits.iter().copied());
        let b = WahVec::from_bits(b_bits.iter().copied());
        let da = DenseBits::from_wah(&a);
        let mut want = oracle(&a_bits);
        want.and_assign(&oracle(&b_bits));

        prop_assert_eq!(da.and_wah(&b).count_ones(), want.count_ones());
        // the into-variant must fully rebuild a dirty scratch buffer
        let mut scratch = DenseBits::from_wah(&WahVec::ones(a.len()));
        da.and_wah_into(&b, &mut scratch);
        prop_assert_eq!(scratch.count_ones(), want.count_ones());
        for (i, _) in a_bits.iter().enumerate() {
            prop_assert_eq!(scratch.get(i as u64), want.get(i as u64), "bit {}", i);
        }
    }

    #[test]
    fn bbc_and_count_handles_trailing_partial_bytes(
        (a_bits, b_bits) in kernel_pair(),
        tail in 1usize..8,
        ta in any::<bool>(),
        tb in any::<bool>(),
    ) {
        // Force a length that is NOT a multiple of 8, so the last byte of
        // each BBC vector is partial — the classic masking bug site.
        let mut a_bits = a_bits;
        let mut b_bits = b_bits;
        let aligned = a_bits.len() - a_bits.len() % 8;
        a_bits.truncate(aligned);
        b_bits.truncate(aligned);
        a_bits.extend(std::iter::repeat_n(ta, tail));
        b_bits.extend(std::iter::repeat_n(tb, tail));

        let a = BbcVec::from_bits(a_bits.iter().copied());
        let b = BbcVec::from_bits(b_bits.iter().copied());
        prop_assert_eq!(a.len() % 8, tail as u64 % 8);
        prop_assert_eq!(a.to_bools(), a_bits.clone());

        let want = a_bits.iter().zip(&b_bits).filter(|(x, y)| **x && **y).count() as u64;
        prop_assert_eq!(a.and_count(&b), want);
        prop_assert_eq!(b.and_count(&a), want);
        prop_assert_eq!(
            a.count_ones(),
            a_bits.iter().filter(|&&x| x).count() as u64
        );
    }

    #[test]
    fn or_many_matches_fold(vecs in proptest::collection::vec(kernel_bits(), 1..6)) {
        // Truncate all inputs to the shortest length so they are unionable.
        let n = vecs.iter().map(Vec::len).min().unwrap_or(0);
        let wahs: Vec<WahVec> = vecs
            .iter()
            .map(|v| WahVec::from_bits(v.iter().take(n).copied()))
            .collect();
        let got = WahVec::or_many(wahs.iter());
        got.check_canonical().unwrap();
        let want = wahs
            .iter()
            .skip(1)
            .fold(wahs[0].clone(), |acc, v| acc.or(v));
        prop_assert_eq!(got, want);
    }
}
