//! Deterministic fault injection for the in-situ pipeline.
//!
//! Surviving worker panics, torn writes, and flaky links is only credible
//! if every failure path is exercised — so faults are *planned*, not
//! random: a [`FaultPlan`] is either built explicitly or derived from a
//! seed by a fixed PRNG, and the runtime [`FaultInjector`] fires each
//! fault at a deterministic operation index. The same plan therefore
//! produces the identical failure report on every run, which the test
//! suite asserts.
//!
//! Sites:
//!
//! * **storage writes** — transient I/O errors, torn writes (the transfer
//!   dies midway), delayed acks (a slow remote link);
//! * **workers** — the producer (simulation), consumer (reduction), or a
//!   cluster node panics at a chosen time-step;
//! * **kill** — the whole process "dies" at a chosen step (crash/resume
//!   testing for the durable pipeline);
//! * **serving** — a query worker serves a request slowly, a worker thread
//!   dies mid-request (the pool respawns it), or a client connection
//!   stalls mid-frame. Serving faults are keyed by *request op index*
//!   (the n-th request the server admits) and *connection index* (accept
//!   order), so the same plan replays identically under the SLO tests.

use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};

/// Where a fault can fire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// A storage write (modeled disk/link or a real blob write).
    StorageWrite,
    /// The simulation step of the producer.
    Producer,
    /// The reduction step of the consumer.
    Consumer,
    /// A cluster node's step (any phase on the node thread).
    Node(usize),
}

/// What a storage-write fault does.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WriteFault {
    /// The write fails outright with an I/O error.
    IoError,
    /// The transfer dies midway: partial bytes may be on disk, the
    /// operation reports failure.
    Torn,
    /// The write succeeds but its acknowledgement is delayed by the given
    /// modeled seconds (a slow or congested link).
    DelayedAck(f64),
}

/// A deterministic schedule of faults.
///
/// Write faults are keyed by the *operation index*: the n-th storage write
/// the run performs (0-based, counted by the [`FaultInjector`]). Worker
/// panics and kills are keyed by time-step.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Write operations that fail with an I/O error.
    pub io_error_ops: BTreeSet<u64>,
    /// Write operations that tear mid-transfer.
    pub torn_write_ops: BTreeSet<u64>,
    /// Write operations whose ack is delayed, and by how many modeled
    /// seconds.
    pub delayed_ack_ops: BTreeMap<u64, u64>,
    /// When `false` (default) a faulted write op succeeds if retried —
    /// the transient-failure model. When `true` the op fails on every
    /// attempt, exhausting the retry budget.
    pub persistent_write_faults: bool,
    /// Panic the simulation (producer) at this step.
    pub producer_panic_at: Option<usize>,
    /// Panic the reduction (consumer) at this step.
    pub consumer_panic_at: Option<usize>,
    /// Panic cluster node `.0` at step `.1`.
    pub node_panic_at: Option<(usize, usize)>,
    /// Kill the durable pipeline before processing this step (crash
    /// simulation for checkpoint/resume tests).
    pub kill_at_step: Option<usize>,
    /// Serving: extra worker latency in milliseconds, keyed by request op
    /// index (the n-th request the query server admits).
    pub slow_request_ops: BTreeMap<u64, u64>,
    /// Serving: request ops whose worker panics mid-execution and dies.
    /// The panic is contained per-request and the pool respawns the
    /// worker, so only the in-flight request is poisoned.
    pub worker_death_ops: BTreeSet<u64>,
    /// Serving: client connections (0-based accept order) that stall
    /// mid-frame. Drives load-generator clients; the server reaps them
    /// via its read timeout.
    pub stalled_client_conns: BTreeSet<u64>,
}

/// Delayed acks are stored in milliseconds so the plan stays `Eq`-friendly
/// and bit-exactly reproducible.
const MILLIS: f64 = 1e-3;

impl FaultPlan {
    /// A plan with no faults.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// `true` if the plan schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        *self == FaultPlan::default()
    }

    /// Derives a mixed plan from `seed`, scaled to a run of `steps`
    /// time-steps: a few transient I/O errors, possibly a torn write, a
    /// delayed ack, and possibly a consumer panic. Identical seeds yield
    /// identical plans.
    pub fn seeded(seed: u64, steps: usize) -> Self {
        let mut rng = SplitMix64::new(seed);
        let steps = steps.max(1) as u64;
        let mut plan = FaultPlan::default();
        // 1–3 transient I/O errors somewhere in the first `steps` writes.
        for _ in 0..(1 + rng.below(3)) {
            plan.io_error_ops.insert(rng.below(steps));
        }
        if rng.below(2) == 0 {
            plan.torn_write_ops.insert(rng.below(steps));
        }
        if rng.below(2) == 0 {
            // 50–550 ms of extra modeled latency on one ack
            plan.delayed_ack_ops
                .insert(rng.below(steps), 50 + rng.below(500));
        }
        if rng.below(3) == 0 {
            plan.consumer_panic_at = Some(rng.below(steps) as usize);
        }
        plan
    }

    /// Builder: fail write op `op` with a transient I/O error.
    pub fn with_io_error_at(mut self, op: u64) -> Self {
        self.io_error_ops.insert(op);
        self
    }

    /// Builder: tear write op `op`.
    pub fn with_torn_write_at(mut self, op: u64) -> Self {
        self.torn_write_ops.insert(op);
        self
    }

    /// Builder: delay write op `op`'s ack by `seconds` (modeled).
    pub fn with_delayed_ack_at(mut self, op: u64, seconds: f64) -> Self {
        self.delayed_ack_ops
            .insert(op, (seconds / MILLIS).round() as u64);
        self
    }

    /// Builder: make write faults permanent (every retry fails too).
    pub fn with_persistent_write_faults(mut self) -> Self {
        self.persistent_write_faults = true;
        self
    }

    /// Builder: panic the producer at `step`.
    pub fn with_producer_panic_at(mut self, step: usize) -> Self {
        self.producer_panic_at = Some(step);
        self
    }

    /// Builder: panic the consumer at `step`.
    pub fn with_consumer_panic_at(mut self, step: usize) -> Self {
        self.consumer_panic_at = Some(step);
        self
    }

    /// Builder: panic cluster node `node` at `step`.
    pub fn with_node_panic_at(mut self, node: usize, step: usize) -> Self {
        self.node_panic_at = Some((node, step));
        self
    }

    /// Builder: kill the durable pipeline before processing `step`.
    pub fn with_kill_at_step(mut self, step: usize) -> Self {
        self.kill_at_step = Some(step);
        self
    }

    /// Builder: serve request op `op` slowly (`ms` extra worker latency).
    pub fn with_slow_request(mut self, op: u64, ms: u64) -> Self {
        self.slow_request_ops.insert(op, ms);
        self
    }

    /// Builder: kill the worker executing request op `op` (contained
    /// panic + pool respawn).
    pub fn with_worker_death_at(mut self, op: u64) -> Self {
        self.worker_death_ops.insert(op);
        self
    }

    /// Builder: stall client connection `conn` (accept order) mid-frame.
    pub fn with_stalled_client(mut self, conn: u64) -> Self {
        self.stalled_client_conns.insert(conn);
        self
    }

    /// Derives a serving-path plan from `seed`, scaled to a run of
    /// `requests`: a few slow-worker events, possibly a worker death, and
    /// possibly a stalled client. Identical seeds yield identical plans —
    /// the determinism regression the serving tests assert.
    pub fn seeded_serving(seed: u64, requests: usize) -> Self {
        let mut rng = SplitMix64::new(seed ^ 0x5E57_1A6B_17A5_0FF5);
        let n = requests.max(1) as u64;
        let mut plan = FaultPlan::default();
        // 1–3 slow-worker events of 20–100 ms somewhere in the run.
        for _ in 0..(1 + rng.below(3)) {
            plan.slow_request_ops
                .insert(rng.below(n), 20 + rng.below(80));
        }
        if rng.below(2) == 0 {
            plan.worker_death_ops.insert(rng.below(n));
        }
        if rng.below(2) == 0 {
            plan.stalled_client_conns.insert(rng.below(4));
        }
        plan
    }
}

/// Runtime state of a plan: counts write operations, fires scheduled
/// faults, and records every event for the failure report.
#[derive(Debug, Default)]
pub struct FaultInjector {
    plan: FaultPlan,
    write_ops: AtomicU64,
    events: Mutex<Vec<String>>,
}

impl FaultInjector {
    /// An injector executing `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            plan,
            write_ops: AtomicU64::new(0),
            events: Mutex::new(Vec::new()),
        }
    }

    /// An injector that never fires (production mode).
    pub fn inert() -> Self {
        Self::new(FaultPlan::none())
    }

    /// The plan being executed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Claims the next write-operation index and returns the fault (if
    /// any) scheduled for it. `attempt` is 0 for the first try; transient
    /// faults (the default) only fire on attempt 0, persistent faults fire
    /// on every attempt.
    ///
    /// Retries of the same logical write must call
    /// [`FaultInjector::write_fault_for`] with the op index this returned,
    /// not claim a fresh one.
    pub fn begin_write(&self) -> u64 {
        self.write_ops.fetch_add(1, Ordering::Relaxed)
    }

    /// The fault scheduled for write `op` at retry `attempt`, if it fires.
    pub fn write_fault_for(&self, op: u64, attempt: u32) -> Option<WriteFault> {
        if attempt > 0 && !self.plan.persistent_write_faults {
            return None;
        }
        if self.plan.io_error_ops.contains(&op) {
            self.record(format!(
                "write op {op} attempt {attempt}: injected I/O error"
            ));
            return Some(WriteFault::IoError);
        }
        if self.plan.torn_write_ops.contains(&op) {
            self.record(format!(
                "write op {op} attempt {attempt}: injected torn write"
            ));
            return Some(WriteFault::Torn);
        }
        if let Some(ms) = self.plan.delayed_ack_ops.get(&op) {
            self.record(format!(
                "write op {op} attempt {attempt}: ack delayed {ms}ms"
            ));
            return Some(WriteFault::DelayedAck(*ms as f64 * MILLIS));
        }
        None
    }

    /// Panics (with a recognizable message) if the plan schedules a panic
    /// at `site`/`step`. Callers run this *inside* their `catch_unwind`
    /// region, so the injected panic exercises the real containment path.
    pub fn maybe_panic(&self, site: FaultSite, step: usize) {
        let fire = match site {
            FaultSite::Producer => self.plan.producer_panic_at == Some(step),
            FaultSite::Consumer => self.plan.consumer_panic_at == Some(step),
            FaultSite::Node(id) => self.plan.node_panic_at == Some((id, step)),
            FaultSite::StorageWrite => false,
        };
        if fire {
            let who = match site {
                FaultSite::Producer => "producer".to_string(),
                FaultSite::Consumer => "consumer".to_string(),
                FaultSite::Node(id) => format!("node {id}"),
                FaultSite::StorageWrite => unreachable!("not a panic site"),
            };
            self.record(format!("{who} step {step}: injected panic"));
            panic!("injected fault: {who} panic at step {step}");
        }
    }

    /// `true` if the plan kills the run before `step`; records the event.
    pub fn should_kill_at(&self, step: usize) -> bool {
        if self.plan.kill_at_step == Some(step) {
            self.record(format!("step {step}: injected kill"));
            true
        } else {
            false
        }
    }

    /// The injected extra service latency for serving request `op`, if
    /// any; records the event.
    pub fn serve_delay_for(&self, op: u64) -> Option<std::time::Duration> {
        let ms = *self.plan.slow_request_ops.get(&op)?;
        self.record(format!("request op {op}: injected slow worker {ms}ms"));
        Some(std::time::Duration::from_millis(ms))
    }

    /// `true` if the worker executing serving request `op` is scheduled
    /// to die. The worker calls [`FaultInjector::worker_death_panic`]
    /// inside its per-request `catch_unwind` (poisoning only that
    /// request), then exits its thread so the pool's respawn path runs.
    pub fn worker_death_at(&self, op: u64) -> bool {
        self.plan.worker_death_ops.contains(&op)
    }

    /// Records and fires the worker-death panic for request `op`.
    pub fn worker_death_panic(&self, op: u64) -> ! {
        self.record(format!("request op {op}: injected worker death"));
        panic!("{INJECTED_PANIC_PREFIX} worker death at request op {op}");
    }

    /// `true` if client connection `conn` (accept order) should stall
    /// mid-frame; records the event. Consulted by load generators — the
    /// server itself only ever sees the resulting silence.
    pub fn client_stall_at(&self, conn: u64) -> bool {
        if self.plan.stalled_client_conns.contains(&conn) {
            self.record(format!("connection {conn}: injected stalled client"));
            true
        } else {
            false
        }
    }

    /// Appends an event line to the failure report (also used by the
    /// pipeline to log contained panics and retry outcomes).
    pub fn record(&self, event: String) {
        self.events.lock().push(event);
    }

    /// Snapshot of every fault event fired so far, in firing order within
    /// each thread. Event strings contain only deterministic quantities
    /// (op indices, steps, attempt numbers) so two runs of the same plan
    /// compare equal.
    pub fn events(&self) -> Vec<String> {
        let mut ev = self.events.lock().clone();
        // Producer and consumer record concurrently under Separate-Cores;
        // sort for a stable cross-run order.
        ev.sort();
        ev
    }
}

/// The panic-role marker for injected panics (used to assert a contained
/// panic was the injected one).
pub const INJECTED_PANIC_PREFIX: &str = "injected fault:";

/// SplitMix64: tiny, deterministic, good enough for deriving fault mixes.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64 {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_reproducible() {
        for seed in [0u64, 1, 42, 0xDEAD_BEEF] {
            assert_eq!(FaultPlan::seeded(seed, 20), FaultPlan::seeded(seed, 20));
        }
        // different seeds almost surely differ
        assert_ne!(FaultPlan::seeded(1, 20), FaultPlan::seeded(2, 20));
    }

    #[test]
    fn transient_faults_fire_once() {
        let inj = FaultInjector::new(FaultPlan::none().with_io_error_at(0));
        let op = inj.begin_write();
        assert_eq!(inj.write_fault_for(op, 0), Some(WriteFault::IoError));
        assert_eq!(inj.write_fault_for(op, 1), None, "retry succeeds");
        let op2 = inj.begin_write();
        assert_eq!(inj.write_fault_for(op2, 0), None);
    }

    #[test]
    fn persistent_faults_fire_on_every_attempt() {
        let inj = FaultInjector::new(
            FaultPlan::none()
                .with_io_error_at(0)
                .with_persistent_write_faults(),
        );
        let op = inj.begin_write();
        for attempt in 0..5 {
            assert_eq!(inj.write_fault_for(op, attempt), Some(WriteFault::IoError));
        }
    }

    #[test]
    fn injected_panic_is_catchable_and_recorded() {
        let inj = FaultInjector::new(FaultPlan::none().with_consumer_panic_at(3));
        inj.maybe_panic(FaultSite::Consumer, 2); // no fire
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            inj.maybe_panic(FaultSite::Consumer, 3)
        }));
        assert!(r.is_err());
        let events = inj.events();
        assert_eq!(events.len(), 1);
        assert!(events[0].contains("injected panic"));
    }

    #[test]
    fn seeded_serving_plans_are_reproducible() {
        for seed in [0u64, 1, 42, 0xDEAD_BEEF] {
            assert_eq!(
                FaultPlan::seeded_serving(seed, 100),
                FaultPlan::seeded_serving(seed, 100)
            );
        }
        assert_ne!(
            FaultPlan::seeded_serving(1, 100),
            FaultPlan::seeded_serving(2, 100)
        );
    }

    #[test]
    fn serving_faults_fire_at_their_ops_and_record() {
        let inj = FaultInjector::new(
            FaultPlan::none()
                .with_slow_request(3, 25)
                .with_worker_death_at(5)
                .with_stalled_client(1),
        );
        assert_eq!(inj.serve_delay_for(0), None);
        assert_eq!(
            inj.serve_delay_for(3),
            Some(std::time::Duration::from_millis(25))
        );
        assert!(!inj.worker_death_at(4));
        assert!(inj.worker_death_at(5));
        let r =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| inj.worker_death_panic(5)));
        assert!(r.is_err());
        assert!(!inj.client_stall_at(0));
        assert!(inj.client_stall_at(1));
        let events = inj.events();
        assert_eq!(events.len(), 3, "{events:?}");
        assert!(events.iter().any(|e| e.contains("slow worker")));
        assert!(events.iter().any(|e| e.contains("worker death")));
        assert!(events.iter().any(|e| e.contains("stalled client")));
    }

    #[test]
    fn delayed_ack_round_trips_milliseconds() {
        let inj = FaultInjector::new(FaultPlan::none().with_delayed_ack_at(0, 0.25));
        let op = inj.begin_write();
        match inj.write_fault_for(op, 0) {
            Some(WriteFault::DelayedAck(s)) => assert!((s - 0.25).abs() < 1e-9),
            other => panic!("expected delayed ack, got {other:?}"),
        }
    }
}
