//! The in-situ sampling baseline (Section 5.5): reduce data by keeping a
//! subset of elements, then analyse the sample.
//!
//! Sampling is cheap to produce and shrinks every later stage, but — unlike
//! bitmaps — it *loses information*: metrics computed on a sample differ
//! from the full-data values, and the paper quantifies that loss with CFPs
//! of per-pair metric differences (Figures 16 and 17). This module provides
//! the samplers and the loss measurements.

use crate::cfp::Cfp;
use crate::summary::{Metric, StepSummary, VarSummary};
use ibis_core::{Binner, LossyStats};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How elements are chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplingMethod {
    /// Every `k`-th element (systematic sampling) — deterministic, cheap,
    /// preserves coarse spatial structure.
    Stride,
    /// Uniform random subset drawn with the given seed.
    Random(u64),
}

/// Down-samples `data` to (approximately) `percent`% of its elements.
///
/// # Panics
/// Panics unless `0 < percent <= 100`.
pub fn sample(data: &[f64], percent: f64, method: SamplingMethod) -> Vec<f64> {
    assert!(
        percent > 0.0 && percent <= 100.0,
        "percent must be in (0, 100]"
    );
    let keep = ((data.len() as f64 * percent / 100.0).round() as usize)
        .max(1)
        .min(data.len());
    if keep == data.len() {
        return data.to_vec();
    }
    match method {
        SamplingMethod::Stride => {
            // pick indices i*len/keep — exactly `keep` elements, evenly spread
            (0..keep).map(|i| data[i * data.len() / keep]).collect()
        }
        SamplingMethod::Random(seed) => {
            // partial Fisher-Yates over an index vector
            let mut rng = StdRng::seed_from_u64(seed);
            let mut idx: Vec<usize> = (0..data.len()).collect();
            for i in 0..keep {
                let j = rng.gen_range(i..idx.len());
                idx.swap(i, j);
            }
            let mut picked = idx[..keep].to_vec();
            picked.sort_unstable();
            picked.into_iter().map(|i| data[i]).collect()
        }
    }
}

/// Builds the sampled summary of a step: each variable down-sampled and kept
/// as raw (sampled) data, analysed with the full-data metric path.
pub fn sampled_summary(
    step: usize,
    fields: &[(Vec<f64>, Binner)],
    percent: f64,
    method: SamplingMethod,
) -> StepSummary {
    StepSummary {
        step,
        vars: fields
            .iter()
            .map(|(data, binner)| VarSummary::full(sample(data, percent, method), binner.clone()))
            .collect(),
    }
}

/// The bitmap-side counterpart of [`sampled_summary`]: every step's bitmap
/// summaries mapped through their [lossy supersets](StepSummary::lossy) at
/// `fpr`, with the drop accounting merged. The result plugs straight into
/// [`pairwise_metric_loss`] / [`loss_cfp`] in place of sampled summaries,
/// so the lossy-bitmap information loss is measured on exactly the same
/// footing as the sampling baseline.
pub fn lossy_summaries(steps: &[StepSummary], fpr: f64) -> (Vec<StepSummary>, LossyStats) {
    let mut stats = LossyStats::default();
    let out = steps
        .iter()
        .map(|s| {
            let (l, st) = s.lossy(fpr);
            stats.merge(&st);
            l
        })
        .collect();
    (out, stats)
}

/// Per-pair absolute metric differences between full-data steps and their
/// sampled counterparts — the Figure 16 measurement. Returns one value per
/// ordered step pair `(i, j)`, `i < j`.
pub fn pairwise_metric_loss(
    full: &[StepSummary],
    sampled: &[StepSummary],
    metric: Metric,
) -> Vec<f64> {
    assert_eq!(full.len(), sampled.len(), "step counts differ");
    let mut out = Vec::new();
    for i in 0..full.len() {
        for j in i + 1..full.len() {
            let orig = full[j].metric(&full[i], metric);
            let samp = sampled[j].metric(&sampled[i], metric);
            out.push((orig - samp).abs());
        }
    }
    out
}

/// Per-pair *relative* loss `|orig − sample| / orig` (pairs with `orig == 0`
/// are skipped) — the paper's "average information loss" percentages.
pub fn pairwise_relative_loss(
    full: &[StepSummary],
    sampled: &[StepSummary],
    metric: Metric,
) -> Vec<f64> {
    assert_eq!(full.len(), sampled.len(), "step counts differ");
    let mut out = Vec::new();
    for i in 0..full.len() {
        for j in i + 1..full.len() {
            let orig = full[j].metric(&full[i], metric);
            if orig.abs() < 1e-12 {
                continue;
            }
            let samp = sampled[j].metric(&sampled[i], metric);
            out.push(((orig - samp) / orig).abs());
        }
    }
    out
}

/// CFP of the absolute per-pair losses at a given sampling level.
pub fn loss_cfp(full: &[StepSummary], sampled: &[StepSummary], metric: Metric) -> Cfp {
    Cfp::from_values(pairwise_metric_loss(full, sampled, metric))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn steps(n: usize) -> Vec<(Vec<f64>, Binner)> {
        (0..n)
            .map(|s| {
                let data: Vec<f64> = (0..3000)
                    .map(|i| (i as f64 * 0.01 + s as f64 * 0.5).sin() * 8.0)
                    .collect();
                (data, Binner::fixed_width(-9.0, 9.0, 18))
            })
            .collect()
    }

    fn full_summaries(fields: &[(Vec<f64>, Binner)]) -> Vec<StepSummary> {
        fields
            .iter()
            .enumerate()
            .map(|(s, (d, b))| StepSummary {
                step: s,
                vars: vec![VarSummary::full(d.clone(), b.clone())],
            })
            .collect()
    }

    #[test]
    fn sample_sizes() {
        let data: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        assert_eq!(sample(&data, 30.0, SamplingMethod::Stride).len(), 300);
        assert_eq!(sample(&data, 1.0, SamplingMethod::Random(7)).len(), 10);
        assert_eq!(sample(&data, 100.0, SamplingMethod::Stride).len(), 1000);
        // never empty
        assert_eq!(sample(&data[..3], 1.0, SamplingMethod::Stride).len(), 1);
    }

    #[test]
    fn stride_sample_is_deterministic_and_spread() {
        let data: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let s = sample(&data, 10.0, SamplingMethod::Stride);
        assert_eq!(
            s,
            vec![0.0, 10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0]
        );
    }

    #[test]
    fn random_sample_reproducible_by_seed() {
        let data: Vec<f64> = (0..500).map(|i| (i as f64).sin()).collect();
        let a = sample(&data, 20.0, SamplingMethod::Random(42));
        let b = sample(&data, 20.0, SamplingMethod::Random(42));
        let c = sample(&data, 20.0, SamplingMethod::Random(43));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "percent must be")]
    fn rejects_zero_percent() {
        let _ = sample(&[1.0], 0.0, SamplingMethod::Stride);
    }

    #[test]
    fn sampling_loses_information_and_more_so_at_lower_levels() {
        // The Figure 16 effect: smaller sample ⇒ larger loss.
        let fields = steps(6);
        let full = full_summaries(&fields);
        let mut means = Vec::new();
        for pct in [50.0, 15.0, 2.0] {
            let sampled: Vec<StepSummary> = (0..fields.len())
                .map(|s| sampled_summary(s, &fields[s..s + 1], pct, SamplingMethod::Stride))
                .collect();
            let losses = pairwise_relative_loss(&full, &sampled, Metric::ConditionalEntropy);
            assert!(!losses.is_empty());
            means.push(losses.iter().sum::<f64>() / losses.len() as f64);
        }
        assert!(
            means[0] < means[2],
            "50% loss {} should be below 2% loss {}",
            means[0],
            means[2]
        );
        assert!(means[0] > 0.0, "sampling must lose something");
    }

    #[test]
    fn full_sample_has_zero_loss() {
        let fields = steps(4);
        let full = full_summaries(&fields);
        let sampled: Vec<StepSummary> = (0..fields.len())
            .map(|s| sampled_summary(s, &fields[s..s + 1], 100.0, SamplingMethod::Stride))
            .collect();
        let losses = pairwise_metric_loss(&full, &sampled, Metric::ConditionalEntropy);
        assert!(losses.iter().all(|&l| l == 0.0));
        let cfp = loss_cfp(&full, &sampled, Metric::ConditionalEntropy);
        assert_eq!(cfp.mean(), 0.0);
    }

    fn bitmap_summaries(fields: &[(Vec<f64>, Binner)]) -> Vec<StepSummary> {
        fields
            .iter()
            .enumerate()
            .map(|(s, (d, b))| StepSummary {
                step: s,
                vars: vec![VarSummary::bitmap(d, b.clone())],
            })
            .collect()
    }

    #[test]
    fn lossy_loss_measured_on_the_sampling_footing() {
        // The lossy-bitmap counterpart of the Figure 16 measurement:
        // lossy summaries plug into the same per-pair loss machinery, the
        // loss grows with FPR, and at a mid FPR the information loss
        // undercuts an aggressive sampling baseline while both reduce
        // resident bytes.
        let fields = steps(6);
        let full = bitmap_summaries(&fields);
        let mut means = Vec::new();
        for fpr in [1e-4, 1e-2, 1e-1] {
            let (lossy, stats) = lossy_summaries(&full, fpr);
            assert_eq!(lossy.len(), full.len());
            assert!(stats.measured_fpr() <= fpr, "fpr {fpr}");
            let losses = pairwise_relative_loss(&full, &lossy, Metric::ConditionalEntropy);
            assert!(!losses.is_empty());
            means.push(losses.iter().sum::<f64>() / losses.len() as f64);
        }
        assert!(
            means[0] <= means[2],
            "1e-4 loss {} should not exceed 1e-1 loss {}",
            means[0],
            means[2]
        );

        // sampling baseline at 2%: on this smooth field the lossy-bitmap
        // loss at FPR 1e-2 stays below it
        let sampled: Vec<StepSummary> = (0..fields.len())
            .map(|s| sampled_summary(s, &fields[s..s + 1], 2.0, SamplingMethod::Stride))
            .collect();
        let full_raw = full_summaries(&fields);
        let sampling_losses =
            pairwise_relative_loss(&full_raw, &sampled, Metric::ConditionalEntropy);
        let sampling_mean = sampling_losses.iter().sum::<f64>() / sampling_losses.len() as f64;
        assert!(
            means[1] < sampling_mean,
            "lossy@1e-2 loss {} should undercut 2% sampling loss {sampling_mean}",
            means[1]
        );
    }
}
