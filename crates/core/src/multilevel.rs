//! Multi-level bitmap indices (Figure 1's high-level indices).
//!
//! The high level groups `group` consecutive low bins per high bin; a high
//! bitvector is the OR of its children. The correlation miner starts at the
//! high level to prune uncorrelated value ranges cheaply (Section 4.2,
//! optimization 2) and only descends into the children of surviving bins.

use crate::binning::Binner;
use crate::index::BitmapIndex;
use crate::wah::WahVec;

/// A two-level bitmap index over one array.
#[derive(Debug, Clone)]
pub struct MultiLevelIndex {
    low: BitmapIndex,
    high: BitmapIndex,
    group: usize,
}

impl MultiLevelIndex {
    /// Builds both levels: the low level with Algorithm 1 (via the fused
    /// bin+compress fast path of [`BitmapIndex::build`]), the high level by
    /// OR-ing each group of `group` low bitvectors (no second data scan).
    pub fn build(data: &[f64], binner: Binner, group: usize) -> Self {
        let low = BitmapIndex::build(data, binner);
        Self::from_low(low, group)
    }

    /// Derives the high level from an existing low-level index.
    pub fn from_low(low: BitmapIndex, group: usize) -> Self {
        assert!(group >= 1, "group must be at least 1");
        let high_binner = low.binner().coarsen(group);
        let n_high = high_binner.nbins();
        let mut high_bins = Vec::with_capacity(n_high);
        for h in 0..n_high {
            let lo = h * group;
            let hi = (lo + group).min(low.nbins());
            let mut v = WahVec::or_many(low.bins()[lo..hi].iter());
            if v.is_empty() {
                v = WahVec::zeros(low.len());
            }
            high_bins.push(v);
        }
        let high = BitmapIndex::from_bins(high_binner, high_bins);
        MultiLevelIndex { low, high, group }
    }

    /// The low (fine) level.
    pub fn low(&self) -> &BitmapIndex {
        &self.low
    }

    /// The high (coarse) level.
    pub fn high(&self) -> &BitmapIndex {
        &self.high
    }

    /// Low bins grouped under each high bin.
    pub fn group(&self) -> usize {
        self.group
    }

    /// The low-bin range belonging to high bin `h`.
    pub fn children(&self, h: usize) -> std::ops::Range<usize> {
        assert!(h < self.high.nbins(), "high bin {h} out of range");
        let lo = h * self.group;
        lo..(lo + self.group).min(self.low.nbins())
    }

    /// Total compressed bytes across both levels.
    pub fn size_bytes(&self) -> usize {
        self.low.size_bytes() + self.high.size_bytes()
    }

    /// Verifies that each high bitvector equals the OR of its children and
    /// both levels are internally consistent.
    pub fn check_consistent(&self) -> Result<(), String> {
        self.low
            .check_consistent()
            .map_err(|e| format!("low: {e}"))?;
        self.high
            .check_consistent()
            .map_err(|e| format!("high: {e}"))?;
        for h in 0..self.high.nbins() {
            let children = self.children(h);
            let or = WahVec::or_many(self.low.bins()[children.clone()].iter());
            if &or != self.high.bin(h) {
                return Err(format!("high bin {h} != OR of low bins {children:?}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_high_level() {
        // Figure 1: values 1..4, high level groups [1,2] and [3,4].
        let data = [4.0, 1.0, 2.0, 2.0, 3.0, 4.0, 3.0, 1.0];
        let ml = MultiLevelIndex::build(&data, Binner::distinct_ints(1, 4), 2);
        assert_eq!(ml.high().nbins(), 2);
        let i0: Vec<bool> = "01110001".chars().map(|c| c == '1').collect();
        let i1: Vec<bool> = "10001110".chars().map(|c| c == '1').collect();
        assert_eq!(ml.high().bin(0).to_bools(), i0);
        assert_eq!(ml.high().bin(1).to_bools(), i1);
        ml.check_consistent().unwrap();
    }

    #[test]
    fn ragged_last_group() {
        let data: Vec<f64> = (0..700).map(|i| (i % 7) as f64).collect();
        let ml = MultiLevelIndex::build(&data, Binner::distinct_ints(0, 6), 3);
        assert_eq!(ml.high().nbins(), 3); // groups {0,1,2} {3,4,5} {6}
        assert_eq!(ml.children(2), 6..7);
        assert_eq!(ml.high().counts()[2], 100);
        ml.check_consistent().unwrap();
    }

    #[test]
    fn high_counts_sum_children() {
        let data: Vec<f64> = (0..5000).map(|i| ((i * 17) % 90) as f64 / 9.0).collect();
        let ml = MultiLevelIndex::build(&data, Binner::fixed_width(0.0, 10.0, 20), 4);
        for h in 0..ml.high().nbins() {
            let want: u64 = ml.children(h).map(|b| ml.low().counts()[b]).sum();
            assert_eq!(ml.high().counts()[h], want, "high bin {h}");
        }
    }

    #[test]
    fn high_binner_agrees_with_grouping() {
        let data: Vec<f64> = (0..1000).map(|i| i as f64 / 100.0).collect();
        let ml = MultiLevelIndex::build(&data, Binner::fixed_width(0.0, 10.0, 10), 3);
        for &v in &data {
            let low_bin = ml.low().binner().bin_of(v) as usize;
            let high_bin = ml.high().binner().bin_of(v) as usize;
            assert!(ml.children(high_bin).contains(&low_bin), "v={v}");
        }
    }

    #[test]
    fn group_one_levels_identical() {
        let data = [1.0, 2.0, 3.0, 1.0];
        let ml = MultiLevelIndex::build(&data, Binner::distinct_ints(1, 3), 1);
        assert_eq!(ml.high().nbins(), ml.low().nbins());
        for b in 0..3 {
            assert_eq!(ml.high().bin(b), ml.low().bin(b));
        }
    }
}
