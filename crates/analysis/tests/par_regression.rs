//! Regression: the parallel analytics fan-outs (mining rows, greedy
//! candidate scoring, DP pairwise tables) must produce **byte-identical**
//! results — same values, same ordering — as their serial baselines, on the
//! Ocean ground-truth dataset whose planted temperature–salinity
//! correlation makes the outputs non-trivial.

use ibis_analysis::{
    mine_index, mine_index_serial, select_dp, select_dp_serial, select_greedy,
    select_greedy_serial, Metric, MiningConfig, Partitioning, StepSummary, VarSummary,
};
use ibis_core::{Binner, BitmapIndex, ZOrderLayout};
use ibis_datagen::{OceanConfig, OceanModel, Simulation};

fn ocean_cfg() -> OceanConfig {
    OceanConfig {
        nlon: 48,
        nlat: 32,
        ndepth: 4,
        ..Default::default()
    }
}

#[test]
fn parallel_mining_identical_to_serial_on_ocean() {
    let cfg = ocean_cfg();
    let ocean = OceanModel::new(cfg.clone());
    let z = ZOrderLayout::new(&[cfg.nlon, cfg.nlat, cfg.ndepth]);
    let t = z.reorder(&ocean.variable("temperature"));
    let s = z.reorder(&ocean.variable("salinity"));
    let it = BitmapIndex::build(&t, Binner::fit(&t, 24));
    let is = BitmapIndex::build(&s, Binner::fit(&s, 24));
    let mining = MiningConfig {
        value_threshold: 0.002,
        spatial_threshold: 0.08,
        unit_size: 256,
    };
    let par = mine_index(&it, &is, &mining);
    let ser = mine_index_serial(&it, &is, &mining);
    assert!(
        !ser.subsets.is_empty(),
        "planted correlation must produce subsets"
    );
    assert_eq!(
        par.subsets, ser.subsets,
        "fan-out must not change mining results"
    );
    assert_eq!(par.pairs_evaluated, ser.pairs_evaluated);
    assert_eq!(par.pairs_pruned, ser.pairs_pruned);
    assert_eq!(par.units_evaluated, ser.units_evaluated);
}

#[test]
fn parallel_selection_identical_to_serial_on_ocean() {
    let cfg = ocean_cfg();
    let mut ocean = OceanModel::new(cfg);
    // One binning scale across all steps (the paper's shared-scale setting).
    let binner = Binner::fit(&ocean.variable("temperature"), 24);
    let steps: Vec<StepSummary> = (0..14)
        .map(|_| {
            let out = ocean.step();
            let temp = &out
                .field("temperature")
                .expect("ocean emits temperature")
                .data;
            StepSummary {
                step: out.step,
                vars: vec![VarSummary::bitmap(temp, binner.clone())],
            }
        })
        .collect();
    for metric in [Metric::ConditionalEntropy, Metric::Emd, Metric::EmdSpatial] {
        for part in [Partitioning::FixedLength, Partitioning::InfoVolume] {
            let par = select_greedy(&steps, 5, metric, part);
            let ser = select_greedy_serial(&steps, 5, metric, part);
            assert_eq!(par, ser, "greedy {metric:?} {part:?}");
        }
        let par = select_dp(&steps, 5, metric);
        let ser = select_dp_serial(&steps, 5, metric);
        assert_eq!(par, ser, "dp {metric:?}");
    }
}
