//! Machine models: the three platforms of the paper's evaluation.
//!
//! Compute phases are genuinely executed (inside rayon pools, so all
//! parallel code paths are exercised) and their wall times measured; the
//! *effect of a core count* is then applied analytically via an Amdahl
//! scaling curve per workload ([`ScalingModel`]) and a relative per-core
//! speed, and I/O time is modeled as `bytes / bandwidth`. This keeps the
//! paper's crossover mechanics — compute phases shrink with cores while
//! output time stays constant — reproducible on any host, including
//! single-core CI runners.

/// A platform profile: core budget, relative core speed, storage bandwidth
/// and memory capacity.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineModel {
    /// Display name.
    pub name: &'static str,
    /// Cores available on the node.
    pub total_cores: usize,
    /// Per-core speed relative to the Xeon x5650 baseline (1.0).
    pub core_speed: f64,
    /// Local disk write bandwidth in bytes/second.
    pub disk_bw: f64,
    /// Node memory in bytes.
    pub mem_bytes: u64,
}

const MB: f64 = 1024.0 * 1024.0;
const GB: u64 = 1024 * 1024 * 1024;

impl MachineModel {
    /// The paper's 32-core Intel Xeon x5650 node with 1 TB memory (OSC).
    pub fn xeon32() -> Self {
        MachineModel {
            name: "xeon-32",
            total_cores: 32,
            core_speed: 1.0,
            disk_bw: 500.0 * MB,
            mem_bytes: 1024 * GB,
        }
    }

    /// The paper's 60-core Intel Xeon Phi (MIC) with 8 GB memory: many slow
    /// cores, markedly lower I/O bandwidth.
    pub fn mic60() -> Self {
        MachineModel {
            name: "mic-60",
            total_cores: 60,
            core_speed: 0.25,
            disk_bw: 120.0 * MB,
            mem_bytes: 8 * GB,
        }
    }

    /// One Oakley-cluster node: 12 Xeon cores, 48 GB, shared filesystem.
    pub fn oakley_node() -> Self {
        MachineModel {
            name: "oakley-node",
            total_cores: 12,
            core_speed: 1.0,
            disk_bw: 300.0 * MB,
            mem_bytes: 48 * GB,
        }
    }

    /// The paper's remote data server link: ~100 MB/s, shared by all nodes.
    pub fn remote_link_bw() -> f64 {
        100.0 * MB
    }

    /// Builds a rayon pool for a `cores`-core phase. The width is capped at
    /// both the machine's budget and the *host's* real parallelism: threads
    /// beyond physical cores achieve no speedup, and the timing model
    /// normalizes measurements by the width actually granted, so
    /// oversubscribing would corrupt the modeled times.
    pub fn pool(&self, cores: usize) -> rayon::ThreadPool {
        let n = cores.clamp(1, self.total_cores).min(host_parallelism());
        // Building a pool fails only when threads cannot be spawned
        // (resource exhaustion). Degrade the width before giving up: the
        // timing model normalizes by the width actually granted.
        for width in (1..=n).rev() {
            if let Ok(pool) = rayon::ThreadPoolBuilder::new().num_threads(width).build() {
                return pool;
            }
        }
        panic!("cannot spawn even a single worker thread")
    }
}

/// The host's real parallelism (1 if it cannot be determined).
pub fn host_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Correction factor for wall-clock measurements taken while
/// `active_threads` compute concurrently: when they exceed the host's
/// cores, each thread's elapsed time includes the others' compute, so the
/// measurement overstates the thread's own work by roughly the
/// oversubscription ratio. Returns a factor in `(0, 1]` to multiply the
/// measured duration by.
pub fn contention_correction(active_threads: usize) -> f64 {
    (host_parallelism() as f64 / active_threads.max(1) as f64).min(1.0)
}

/// Scales a measured duration by the oversubscription correction.
pub fn decontend(measured: std::time::Duration, active_threads: usize) -> std::time::Duration {
    measured.mul_f64(contention_correction(active_threads))
}

/// On-CPU nanoseconds of the calling thread
/// (`clock_gettime(CLOCK_THREAD_CPUTIME_ID)`); `None` when the platform
/// does not expose it. Unlike `/proc/*/schedstat`, this clock is updated
/// at read time, so millisecond-scale phases measure accurately.
#[cfg(unix)]
pub fn thread_cpu_ns() -> Option<u64> {
    let mut ts = libc::timespec {
        tv_sec: 0,
        tv_nsec: 0,
    };
    // SAFETY: ts is a valid out-pointer; the clock id is a constant.
    let rc = unsafe { libc::clock_gettime(libc::CLOCK_THREAD_CPUTIME_ID, &mut ts) };
    (rc == 0).then(|| ts.tv_sec as u64 * 1_000_000_000 + ts.tv_nsec as u64)
}

/// Fallback for platforms without a thread CPU clock.
#[cfg(not(unix))]
pub fn thread_cpu_ns() -> Option<u64> {
    None
}

/// A phase clock that measures the calling thread's *CPU* time when the
/// platform exposes it — immune to oversubscription when several pipeline
/// threads share fewer host cores — and falls back to wall-clock time
/// elsewhere.
#[derive(Debug)]
pub struct PhaseClock {
    wall: std::time::Instant,
    cpu0: Option<u64>,
}

impl PhaseClock {
    /// Starts the clock on the calling thread.
    pub fn start() -> Self {
        PhaseClock {
            wall: std::time::Instant::now(),
            cpu0: thread_cpu_ns(),
        }
    }

    /// Elapsed compute time (CPU time when available, else wall).
    pub fn elapsed(&self) -> std::time::Duration {
        match (self.cpu0, thread_cpu_ns()) {
            (Some(a), Some(b)) => std::time::Duration::from_nanos(b.saturating_sub(a)),
            _ => self.wall.elapsed(),
        }
    }
}

/// Runs `f` inside `pool` and measures its compute time: for a one-thread
/// pool the worker's CPU time is exact regardless of what other pipeline
/// threads are doing; wider pools are measured by wall clock (the caller
/// should [`decontend`] if other thread groups computed concurrently).
pub fn timed_in_pool<R: Send>(
    pool: &rayon::ThreadPool,
    f: impl FnOnce() -> R + Send,
) -> (R, std::time::Duration) {
    if pool.current_num_threads() == 1 {
        pool.install(|| {
            let clock = PhaseClock::start();
            let r = f();
            let d = clock.elapsed();
            (r, d)
        })
    } else {
        let t0 = std::time::Instant::now();
        let r = pool.install(f);
        (r, t0.elapsed())
    }
}

/// Amdahl scaling curve: `speedup(n) = 1 / (s + (1-s)/n)` with serial
/// fraction `s`. Each workload gets its own curve — the paper observed
/// Heat3D scaling poorly (1.3× from 12 to 28 cores) while bitmap generation
/// scaled almost linearly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalingModel {
    /// Serial (non-parallelizable) fraction in `[0, 1]`.
    pub serial_frac: f64,
}

impl ScalingModel {
    /// A curve with the given serial fraction.
    pub fn new(serial_frac: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&serial_frac),
            "serial fraction out of range"
        );
        ScalingModel { serial_frac }
    }

    /// Heat3D's limited scalability (matches the paper's 1.3× from 12→28).
    pub fn heat3d() -> Self {
        ScalingModel::new(0.10)
    }

    /// Mini-LULESH scales better (most of the step is element/node loops).
    pub fn lulesh() -> Self {
        ScalingModel::new(0.05)
    }

    /// Bitmap generation is embarrassingly parallel over sub-blocks.
    pub fn bitmap_gen() -> Self {
        ScalingModel::new(0.02)
    }

    /// Metric evaluation parallelizes over bin pairs / candidate steps.
    pub fn selection() -> Self {
        ScalingModel::new(0.10)
    }

    /// Speedup at `n` cores.
    pub fn speedup(&self, n: usize) -> f64 {
        let n = n.max(1) as f64;
        1.0 / (self.serial_frac + (1.0 - self.serial_frac) / n)
    }
}

/// Converts a measured phase duration into the modeled wall seconds on
/// `target_cores` cores of a machine with the given per-core speed.
///
/// `threads_used` is the pool width the phase actually ran with; the
/// measured time is first normalized to its serial equivalent through the
/// same curve, so on a single-core host the conversion is exact
/// (`speedup(1) = 1`) and on a multi-core host the already-realized speedup
/// is not double-counted.
pub fn modeled_seconds(
    measured: std::time::Duration,
    threads_used: usize,
    target_cores: usize,
    scaling: &ScalingModel,
    core_speed: f64,
) -> f64 {
    assert!(core_speed > 0.0, "core speed must be positive");
    let serial_equiv = measured.as_secs_f64() * scaling.speedup(threads_used);
    serial_equiv / scaling.speedup(target_cores) / core_speed
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn presets_are_distinct_platforms() {
        let xeon = MachineModel::xeon32();
        let mic = MachineModel::mic60();
        assert!(mic.total_cores > xeon.total_cores);
        assert!(mic.core_speed < xeon.core_speed);
        assert!(mic.disk_bw < xeon.disk_bw);
        assert!(mic.mem_bytes < xeon.mem_bytes);
    }

    #[test]
    fn speedup_monotone_and_bounded() {
        let s = ScalingModel::heat3d();
        let mut prev = 0.0;
        for n in [1usize, 2, 4, 8, 16, 32, 64] {
            let sp = s.speedup(n);
            assert!(sp >= prev, "speedup must not decrease");
            assert!(sp <= 1.0 / s.serial_frac + 1e-9, "Amdahl ceiling");
            prev = sp;
        }
        assert!((s.speedup(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn heat3d_matches_papers_scaling_observation() {
        // "the speedup is only 1.3x when we use 28 cores compared with 12"
        let s = ScalingModel::heat3d();
        let ratio = s.speedup(28) / s.speedup(12);
        assert!((1.2..1.4).contains(&ratio), "12→28 core ratio {ratio}");
    }

    #[test]
    fn modeled_seconds_scales_down_with_cores() {
        let d = Duration::from_secs_f64(10.0);
        let s = ScalingModel::bitmap_gen();
        let t1 = modeled_seconds(d, 1, 1, &s, 1.0);
        let t8 = modeled_seconds(d, 1, 8, &s, 1.0);
        let t32 = modeled_seconds(d, 1, 32, &s, 1.0);
        assert!((t1 - 10.0).abs() < 1e-9);
        assert!(t8 < t1 && t32 < t8);
        // near-linear workload: 8 cores ⇒ ~7x
        assert!(t1 / t8 > 6.0);
    }

    #[test]
    fn modeled_seconds_accounts_for_slow_cores() {
        let d = Duration::from_secs_f64(1.0);
        let s = ScalingModel::new(0.0);
        let xeon = modeled_seconds(d, 1, 4, &s, 1.0);
        let mic = modeled_seconds(d, 1, 4, &s, 0.25);
        assert!((mic / xeon - 4.0).abs() < 1e-9);
    }

    #[test]
    fn normalization_is_consistent() {
        // measuring with p threads then targeting p cores is the identity
        let d = Duration::from_secs_f64(3.0);
        let s = ScalingModel::new(0.2);
        let t = modeled_seconds(d, 6, 6, &s, 1.0);
        assert!((t - 3.0).abs() < 1e-12);
    }

    #[test]
    fn pool_caps_at_machine_budget_and_host() {
        let m = MachineModel::oakley_node();
        let p = m.pool(100);
        assert_eq!(p.current_num_threads(), 12.min(host_parallelism()));
        let p1 = m.pool(0);
        assert_eq!(p1.current_num_threads(), 1);
    }
}
