//! Property suite for the pluggable row-order layer: every [`RowOrder`]
//! over every grid shape (ragged, non-power-of-two, degenerate `1×1×N`)
//! must produce a checked bijection whose `reorder ∘ inverse` is the
//! identity, and an index built from reordered data must select exactly
//! the inverse-mapped row set of the identity-order index — across all
//! binner kinds and with the reordered bin patterns surviving every codec
//! round-trip byte-identically.

use ibis_core::{BbcVec, Binner, BitmapIndex, Codec, RoaringVec, RowOrder, RowPermutation, WahVec};
use proptest::prelude::*;

/// Values laced with NaN and out-of-range extremes (the clamp paths).
fn value() -> impl Strategy<Value = f64> {
    prop_oneof![
        -120.0f64..120.0,
        -120.0f64..120.0,
        -120.0f64..120.0,
        Just(f64::NAN),
        prop_oneof![
            Just(-1e30f64),
            Just(1e30),
            Just(f64::INFINITY),
            Just(f64::NEG_INFINITY)
        ],
    ]
}

/// Grid shapes spanning the spatial orders' regimes: ragged 2-D and 3-D
/// (non-power-of-two on purpose), degenerate `1×1×N`, and size-1 middle
/// axes that exercise the axis-dropping path.
fn dims() -> impl Strategy<Value = Vec<usize>> {
    prop_oneof![
        (2usize..14, 2usize..14).prop_map(|(a, b)| vec![a, b]),
        (2usize..7, 2usize..7, 2usize..7).prop_map(|(a, b, c)| vec![a, b, c]),
        (1usize..120).prop_map(|n| vec![1, 1, n]),
        (2usize..10, 2usize..10).prop_map(|(a, c)| vec![a, 1, c]),
    ]
}

/// A grid plus a field covering it. Fields are drawn both as pure noise
/// and as spatially smooth ramps (where the spatial curves actually pay).
fn grid() -> impl Strategy<Value = (Vec<usize>, Vec<f64>)> {
    dims().prop_flat_map(|d| {
        let n: usize = d.iter().product();
        let smooth = (0.0f64..0.3)
            .prop_map(move |slope| (0..n).map(|i| (slope * i as f64).sin() * 90.0).collect());
        let noisy = proptest::collection::vec(value(), n);
        (Just(d), prop_oneof![noisy, smooth])
    })
}

/// All binner kinds: fixed-width, decimal precision, distinct ints, and
/// explicit edges (the non-branchless fallback arm).
fn binner() -> impl Strategy<Value = Binner> {
    prop_oneof![
        (1usize..40).prop_map(|n| Binner::fixed_width(-100.0, 100.0, n)),
        Just(Binner::precision(-100.0, 100.0, 0)),
        Just(Binner::distinct_ints(-100, 100)),
        (2usize..12).prop_map(|n| {
            Binner::from_edges(
                (0..=n)
                    .map(|i| -100.0 + 200.0 * i as f64 / n as f64)
                    .collect(),
            )
        }),
    ]
}

fn assert_bijection(p: &RowPermutation, n: usize) -> Result<(), TestCaseError> {
    prop_assert_eq!(p.len(), n);
    let mut seen = vec![false; n];
    for &o in p.perm() {
        prop_assert!(!seen[o as usize], "row {} gathered twice", o);
        seen[o as usize] = true;
    }
    for original in 0..n {
        prop_assert_eq!(p.perm()[p.inv()[original] as usize] as usize, original);
    }
    Ok(())
}

proptest! {
    #[test]
    fn every_order_is_an_invertible_reorder((dims, data) in grid(), binner in binner()) {
        let row_ids: Vec<u32> = (0..data.len() as u32).collect();
        for order in RowOrder::ALL {
            let Some(p) = order.permutation(&dims, &binner, &data) else {
                // Identity, a degenerate grid, or an already-ordered field:
                // the order *is* the identity and nothing is materialized.
                continue;
            };
            assert_bijection(&p, data.len())?;
            prop_assert!(!p.is_identity(), "identity perms must normalize to None");
            // reorder ∘ inverse == identity, on a payload that tells every
            // row apart regardless of the field's values
            prop_assert_eq!(&p.restore(&p.reorder(&row_ids)), &row_ids);
            // the persisted form round-trips through the checked decoder
            let back = RowPermutation::from_inverse(p.inv().to_vec()).unwrap();
            prop_assert_eq!(&back, &p);
        }
    }

    #[test]
    fn reordered_index_selects_inverse_mapped_rows((dims, data) in grid(), binner in binner()) {
        let identity = BitmapIndex::build(&data, binner.clone());
        for order in RowOrder::ALL {
            let Some(p) = order.permutation(&dims, &binner, &data) else {
                continue;
            };
            let permuted = BitmapIndex::build_permuted(&data, binner.clone(), &p);
            prop_assert_eq!(permuted.nbins(), identity.nbins());
            // the whole-index inverse: unpermute must reproduce the
            // identity-order index byte-identically
            let restored = permuted.unpermute(&p);
            for b in 0..identity.nbins() {
                prop_assert_eq!(restored.bin(b), identity.bin(b), "unpermuted bin {}", b);
            }
            prop_assert_eq!(restored.counts(), identity.counts());
            for b in 0..identity.nbins() {
                let stored = permuted.bin(b);
                // the stored selection, mapped back to original row ids,
                // is byte-identical to the identity-order bin
                let mapped = p.map_selection_to_original(stored);
                prop_assert_eq!(
                    &mapped, identity.bin(b),
                    "bin {} differs under {}", b, order.name()
                );
                // and the reordered bit pattern survives every codec
                // round-trip exactly (WAH is the interchange form)
                prop_assert_eq!(&WahVec::from_wah(stored).to_wah(), stored);
                prop_assert_eq!(&BbcVec::from_wah(stored).to_wah(), stored);
                prop_assert_eq!(&RoaringVec::from_wah(stored).to_wah(), stored);
            }
        }
    }
}

/// Degenerate grids have exactly one locality-preserving traversal — the
/// one we already have — so spatial orders must normalize to identity
/// rather than persisting a useless permutation.
#[test]
fn degenerate_grids_stay_identity() {
    let binner = Binner::distinct_ints(0, 9);
    for dims in [vec![1, 1, 37], vec![37], vec![1, 37, 1], vec![1, 1, 1]] {
        let n: usize = dims.iter().product();
        let data: Vec<f64> = (0..n).map(|i| ((i * 7) % 10) as f64).collect();
        for order in [RowOrder::ZOrder, RowOrder::Hilbert] {
            assert!(
                order.permutation(&dims, &binner, &data).is_none(),
                "{} must fall back to identity on {:?}",
                order.name(),
                dims
            );
        }
    }
}
