//! Structured errors for the in-situ pipeline.
//!
//! The bitmap store *replaces* the raw simulation output, so a failure
//! anywhere in the generate→select→persist path is potential data loss and
//! must be reported precisely, never collapsed into a panic or a bare
//! `None`. Every variant is `Clone + PartialEq` so failure reports are
//! comparable across runs — the property the deterministic fault-injection
//! tests assert on.

use std::fmt;

/// Result alias used throughout `ibis-insitu`.
pub type Result<T> = std::result::Result<T, IbisError>;

/// Which pipeline actor a failure originated in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerRole {
    /// The simulation (producer) side.
    Producer,
    /// The reduction/selection (consumer) side.
    Consumer,
    /// A cluster node thread.
    Node,
    /// The cluster's selection coordinator.
    Coordinator,
}

impl fmt::Display for WorkerRole {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            WorkerRole::Producer => "producer",
            WorkerRole::Consumer => "consumer",
            WorkerRole::Node => "node",
            WorkerRole::Coordinator => "coordinator",
        })
    }
}

/// Why a serialized blob failed to decode. Produced by
/// [`crate::io::codec::decode`] / [`crate::io::codec::decode_index`];
/// guaranteed to cover every malformation a byte stream can exhibit, so
/// decoding is total (never panics) on adversarial input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The blob does not start with the `IBIS` magic.
    BadMagic,
    /// Unknown format version.
    BadVersion(u32),
    /// The blob ends before a required field.
    Truncated {
        /// Byte offset at which more input was required.
        at: usize,
    },
    /// Bytes remain after the last decoded field.
    TrailingBytes {
        /// Number of undecoded trailing bytes.
        extra: usize,
    },
    /// The binner specification is invalid (non-finite edge, zero width,
    /// unordered edges, zero bins, or an unknown tag).
    BadBinner,
    /// A bitvector's compressed words are malformed (overlong fill,
    /// unmasked literal, coverage mismatch).
    BadBitvector(ibis_core::RawWahError),
    /// A bitvector's length disagrees with the index header.
    LengthMismatch {
        /// Length declared by the index header.
        expected: u64,
        /// Length the bitvector decoded to.
        got: u64,
    },
    /// The bin count disagrees with the binner.
    BinCountMismatch {
        /// Bins the binner defines.
        expected: usize,
        /// Bins the blob carries.
        got: usize,
    },
    /// A non-WAH codec payload (BBC stream, Roaring containers) is
    /// malformed, or a bin carries an unknown codec tag.
    BadCodec {
        /// Bin the payload belongs to.
        bin: usize,
        /// What the codec's validator found.
        detail: String,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadMagic => f.write_str("bad magic (not an IBIS blob)"),
            DecodeError::BadVersion(v) => write!(f, "unsupported format version {v}"),
            DecodeError::Truncated { at } => write!(f, "truncated at byte {at}"),
            DecodeError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after the last field")
            }
            DecodeError::BadBinner => f.write_str("invalid binner specification"),
            DecodeError::BadBitvector(e) => write!(f, "malformed bitvector: {e}"),
            DecodeError::LengthMismatch { expected, got } => {
                write!(f, "bitvector length {got} != declared {expected}")
            }
            DecodeError::BinCountMismatch { expected, got } => {
                write!(f, "bin count {got} != binner's {expected}")
            }
            DecodeError::BadCodec { bin, detail } => {
                write!(f, "bin {bin}: malformed codec payload: {detail}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// The error type of the in-situ pipeline, store, and cluster.
#[derive(Debug, Clone, PartialEq)]
pub enum IbisError {
    /// Invalid run configuration.
    Config(String),
    /// A filesystem operation failed. The OS error is captured as a kind +
    /// message pair so the variant stays `Clone`/`PartialEq`.
    Io {
        /// What was being done (`"write s000001_temperature.ibis"`).
        context: String,
        /// The `std::io::ErrorKind` of the underlying error.
        kind: std::io::ErrorKind,
        /// The underlying error's message.
        message: String,
    },
    /// A blob failed to decode.
    Decode {
        /// File the blob came from, when known.
        file: Option<String>,
        /// The typed decode failure.
        source: DecodeError,
    },
    /// A stored blob failed its integrity check (CRC/framing mismatch).
    Corrupt {
        /// The offending file.
        file: String,
        /// What the check found.
        detail: String,
    },
    /// A store manifest is malformed.
    Manifest {
        /// 1-based line number.
        line: usize,
        /// What is wrong with it.
        reason: String,
    },
    /// A requested store entry does not exist.
    NotFound {
        /// Requested step.
        step: usize,
        /// Requested variable.
        variable: String,
    },
    /// A worker thread panicked; the panic was contained.
    WorkerPanic {
        /// Which actor panicked.
        role: WorkerRole,
        /// The time-step being processed, when known.
        step: Option<usize>,
        /// The panic payload, stringified.
        message: String,
    },
    /// A channel peer disappeared (its thread died or exited early).
    Disconnected {
        /// The actor whose peer vanished.
        role: WorkerRole,
        /// What was being waited for.
        waiting_for: String,
    },
    /// A storage write kept failing after every retry.
    StorageExhausted {
        /// Storage site description.
        site: String,
        /// Attempts made (including the first).
        attempts: u32,
        /// The last failure's message.
        last_error: String,
    },
    /// A storage operation exceeded its retry deadline.
    DeadlineExceeded {
        /// Storage site description.
        site: String,
        /// The deadline in modeled seconds.
        deadline: f64,
    },
    /// A cluster node failed; carries every node's failure.
    NodeFailure {
        /// `(node id, failure description)` per failed node.
        failures: Vec<(usize, String)>,
    },
    /// The selection coordinator gave up (timeout or lost quorum).
    Coordination(String),
    /// The run was killed by an injected fault (crash simulation).
    Killed {
        /// The time-step at which the kill fired.
        step: usize,
    },
    /// A checkpoint file exists but cannot be trusted.
    BadCheckpoint(String),
    /// A subset/correlation query is malformed (NaN bound, out-of-range
    /// region, mismatched variables) — the analysis layer's typed error,
    /// surfaced so a bad query can never kill a long-running pipeline.
    Query(ibis_analysis::QueryError),
    /// A query batch request could not be understood (bad JSON, missing or
    /// mistyped field).
    BadRequest {
        /// Zero-based position in the batch, when the batch itself parsed.
        index: Option<usize>,
        /// What is wrong with the request.
        reason: String,
    },
}

impl fmt::Display for IbisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IbisError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            IbisError::Io {
                context,
                kind,
                message,
            } => write!(f, "I/O error while {context}: {message} ({kind:?})"),
            IbisError::Decode { file, source } => match file {
                Some(file) => write!(f, "{file}: decode failed: {source}"),
                None => write!(f, "decode failed: {source}"),
            },
            IbisError::Corrupt { file, detail } => write!(f, "{file}: corrupt: {detail}"),
            IbisError::Manifest { line, reason } => {
                write!(f, "MANIFEST line {line}: {reason}")
            }
            IbisError::NotFound { step, variable } => {
                write!(f, "no entry for step {step} variable {variable:?}")
            }
            IbisError::WorkerPanic {
                role,
                step,
                message,
            } => match step {
                Some(s) => write!(f, "{role} panicked at step {s}: {message}"),
                None => write!(f, "{role} panicked: {message}"),
            },
            IbisError::Disconnected { role, waiting_for } => {
                write!(f, "{role} lost its peer while waiting for {waiting_for}")
            }
            IbisError::StorageExhausted {
                site,
                attempts,
                last_error,
            } => write!(
                f,
                "{site}: write failed after {attempts} attempts: {last_error}"
            ),
            IbisError::DeadlineExceeded { site, deadline } => {
                write!(f, "{site}: retry deadline of {deadline}s exceeded")
            }
            IbisError::NodeFailure { failures } => {
                write!(f, "{} node(s) failed:", failures.len())?;
                for (id, msg) in failures {
                    write!(f, " [node {id}: {msg}]")?;
                }
                Ok(())
            }
            IbisError::Coordination(msg) => write!(f, "selection coordination failed: {msg}"),
            IbisError::Killed { step } => write!(f, "run killed at step {step} (injected)"),
            IbisError::BadCheckpoint(msg) => write!(f, "unusable checkpoint: {msg}"),
            IbisError::Query(e) => write!(f, "invalid query: {e}"),
            IbisError::BadRequest { index, reason } => match index {
                Some(i) => write!(f, "query {i}: bad request: {reason}"),
                None => write!(f, "bad request: {reason}"),
            },
        }
    }
}

impl std::error::Error for IbisError {}

impl IbisError {
    /// Wraps a `std::io::Error` with context, flattening it into the
    /// clonable representation.
    pub fn io(context: impl Into<String>, err: &std::io::Error) -> Self {
        IbisError::Io {
            context: context.into(),
            kind: err.kind(),
            message: err.to_string(),
        }
    }
}

impl From<DecodeError> for IbisError {
    fn from(source: DecodeError) -> Self {
        IbisError::Decode { file: None, source }
    }
}

impl From<ibis_analysis::QueryError> for IbisError {
    fn from(source: ibis_analysis::QueryError) -> Self {
        IbisError::Query(source)
    }
}

/// Renders a caught panic payload as a message (the two payload types the
/// standard `panic!` machinery produces, with a fallback).
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_their_context() {
        let e = IbisError::io(
            "write s000001_temperature.ibis",
            &std::io::Error::other("disk on fire"),
        );
        let s = e.to_string();
        assert!(s.contains("s000001_temperature.ibis") && s.contains("disk on fire"));

        let e = IbisError::WorkerPanic {
            role: WorkerRole::Consumer,
            step: Some(7),
            message: "boom".into(),
        };
        assert!(e.to_string().contains("consumer panicked at step 7"));
    }

    #[test]
    fn errors_are_comparable() {
        let a = IbisError::Killed { step: 3 };
        let b = IbisError::Killed { step: 3 };
        assert_eq!(a, b);
        assert_ne!(a, IbisError::Killed { step: 4 });
    }

    #[test]
    fn panic_payloads_stringify() {
        let p = std::panic::catch_unwind(|| panic!("static msg")).unwrap_err();
        assert_eq!(panic_message(p.as_ref()), "static msg");
        let p = std::panic::catch_unwind(|| panic!("formatted {}", 3)).unwrap_err();
        assert_eq!(panic_message(p.as_ref()), "formatted 3");
    }
}
