//! Ablation bench — run with `cargo bench -p ibis-bench --bench ablation_multilevel`.

fn main() {
    ibis_bench::ablations::ablation_multilevel();
}
