//! Ablation studies for the design choices DESIGN.md calls out — each
//! isolates one mechanism of the system and quantifies what it buys.

use crate::{heat3d_binner, heat3d_config, secs, speedup, Figure};
use ibis_analysis::selection::{chain_score, select_dp, select_greedy, Partitioning};
use ibis_analysis::{mine_index, mine_multilevel, Metric, MiningConfig, StepSummary, VarSummary};
use ibis_core::{
    bbc::BbcVec, build_index_two_phase, Binner, BitmapIndex, Bitset, MultiLevelIndex, ZOrderLayout,
};
use ibis_datagen::{Heat3D, OceanConfig, OceanModel, Simulation};
use std::time::Instant;

/// Ablation A: streaming Algorithm 1 vs naive two-phase construction —
/// transient memory and build time. The paper's in-place compression
/// exists precisely because the two-phase transient exceeds the data.
pub fn ablation_streaming_build() {
    let mut fig = Figure::new(
        "ablation_build",
        "Streaming (Algorithm 1) vs two-phase index construction",
        &["elements", "bins", "builder", "transient(MB)", "time(s)"],
    );
    let mut heat = Heat3D::new(heat3d_config());
    let step = heat.step();
    let data = &step.fields[0].data;
    let binner = heat3d_binner();
    let data_mb = (data.len() * 8) as f64 / 1e6;

    let t0 = Instant::now();
    let streaming = BitmapIndex::build(data, binner.clone());
    let streaming_time = t0.elapsed().as_secs_f64();
    // Algorithm 1's working state: the compressed output plus one segment
    // per bin (the latter is bytes, not MB).
    let streaming_transient = streaming.size_bytes() as f64 / 1e6;

    let t0 = Instant::now();
    let (two_phase, transient) = build_index_two_phase(data, binner.clone());
    let two_phase_time = t0.elapsed().as_secs_f64();

    fig.row(&[
        &data.len(),
        &binner.nbins(),
        &"raw data (reference)",
        &format!("{data_mb:.2}"),
        &"-",
    ]);
    fig.row(&[
        &data.len(),
        &binner.nbins(),
        &"streaming (Alg. 1)",
        &format!("{streaming_transient:.2}"),
        &secs(streaming_time),
    ]);
    fig.row(&[
        &data.len(),
        &binner.nbins(),
        &"two-phase (uncompressed)",
        &format!("{:.2}", transient as f64 / 1e6),
        &secs(two_phase_time),
    ]);
    fig.finish();
    assert!(
        (transient as f64) > data_mb * 1e6,
        "the uncompressed transient must exceed the raw data"
    );
    for b in 0..binner.nbins() {
        assert_eq!(
            streaming.bin(b),
            two_phase.bin(b),
            "outputs must be identical"
        );
    }
}

/// Ablation B: greedy vs dynamic-programming selection — chain quality
/// (the DP objective) and runtime, on bitmap summaries.
pub fn ablation_selection() {
    let mut fig = Figure::new(
        "ablation_selection",
        "Greedy vs DP time-steps selection (bitmap summaries)",
        &["selector", "k", "chain_score", "time(s)", "selected"],
    );
    let mut heat3d = heat3d_config();
    heat3d.nx /= 2;
    heat3d.ny /= 2;
    heat3d.nz /= 2;
    let mut sim = Heat3D::new(heat3d);
    let binner = heat3d_binner();
    let steps: Vec<StepSummary> = sim
        .run(24)
        .into_iter()
        .map(|s| StepSummary {
            step: s.step,
            vars: vec![VarSummary::bitmap(&s.fields[0].data, binner.clone())],
        })
        .collect();
    let metric = Metric::ConditionalEntropy;
    for k in [4usize, 6, 8] {
        let t0 = Instant::now();
        let greedy = select_greedy(&steps, k, metric, Partitioning::FixedLength);
        let greedy_t = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let info = select_greedy(&steps, k, metric, Partitioning::InfoVolume);
        let info_t = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let dp = select_dp(&steps, k, metric);
        let dp_t = t0.elapsed().as_secs_f64();
        let gs = chain_score(&steps, &greedy.selected, metric);
        let is = chain_score(&steps, &info.selected, metric);
        let ds = chain_score(&steps, &dp.selected, metric);
        fig.row(&[
            &"greedy-fixed",
            &k,
            &format!("{gs:.4}"),
            &secs(greedy_t),
            &format!("{:?}", greedy.selected),
        ]);
        fig.row(&[
            &"greedy-infovol",
            &k,
            &format!("{is:.4}"),
            &secs(info_t),
            &format!("{:?}", info.selected),
        ]);
        fig.row(&[
            &"dp",
            &k,
            &format!("{ds:.4}"),
            &secs(dp_t),
            &format!("{:?}", dp.selected),
        ]);
        assert!(
            ds >= gs - 1e-9,
            "DP must not lose to greedy on its own objective"
        );
    }
    fig.finish();
}

/// Ablation C: Z-order vs row-major layout for spatial mining — how well
/// the miner's contiguous units localize the planted correlation band.
pub fn ablation_zorder() {
    let mut fig = Figure::new(
        "ablation_zorder",
        "Z-order vs row-major layout: spatial localization of mined subsets",
        &[
            "layout",
            "subsets",
            "in_band_top20",
            "mean_lat_extent",
            "mean_lon_extent",
        ],
    );
    let cfg = OceanConfig {
        nlon: 128,
        nlat: 96,
        ndepth: 1,
        ..Default::default()
    };
    let ocean = OceanModel::new(cfg.clone());
    let t_row = ocean.variable("temperature");
    let s_row = ocean.variable("salinity");
    let z = ZOrderLayout::new(&[cfg.nlon, cfg.nlat]);
    let mining = MiningConfig {
        value_threshold: 0.002,
        spatial_threshold: 0.08,
        unit_size: 256,
    };
    let band = (
        (cfg.current_band.0 * cfg.nlat as f64) as usize,
        (cfg.current_band.1 * cfg.nlat as f64) as usize,
    );

    for (label, zorder) in [("z-order", true), ("row-major", false)] {
        let (t, s) = if zorder {
            (z.reorder(&t_row), z.reorder(&s_row))
        } else {
            (t_row.clone(), s_row.clone())
        };
        let bt = Binner::fit(&t, 24);
        let bs = Binner::fit(&s, 24);
        let r = mine_index(
            &BitmapIndex::build(&t, bt),
            &BitmapIndex::build(&s, bs),
            &mining,
        );
        // where does each top unit live?
        let unit_cells = |unit: usize| -> Vec<usize> {
            let start = unit * mining.unit_size as usize;
            let len = (mining.unit_size as usize).min(t.len() - start);
            (start..start + len)
                .map(|p| if zorder { z.row_major_of(p) } else { p })
                .collect()
        };
        let mut in_band = 0usize;
        let mut lat_extent = 0.0f64;
        let mut lon_extent = 0.0f64;
        let top: Vec<_> = r.subsets.iter().take(20).collect();
        for sub in &top {
            let cells = unit_cells(sub.unit);
            let lats: Vec<usize> = cells.iter().map(|&c| c / cfg.nlon).collect();
            let lons: Vec<usize> = cells.iter().map(|&c| c % cfg.nlon).collect();
            let (lo, hi) = (*lats.iter().min().unwrap(), *lats.iter().max().unwrap() + 1);
            lat_extent += (hi - lo) as f64;
            lon_extent += (lons.iter().max().unwrap() + 1 - lons.iter().min().unwrap()) as f64;
            if hi > band.0 && lo < band.1 {
                in_band += 1;
            }
        }
        lat_extent /= top.len().max(1) as f64;
        lon_extent /= top.len().max(1) as f64;
        fig.row(&[
            &label,
            &r.subsets.len(),
            &format!("{in_band}/{}", top.len()),
            &format!("{lat_extent:.1}"),
            &format!("{lon_extent:.1}"),
        ]);
    }
    fig.finish();
}

/// Ablation D: multi-level pruning effectiveness vs group size — fine pairs
/// avoided and wall time, with the strong subsets preserved.
pub fn ablation_multilevel() {
    let mut fig = Figure::new(
        "ablation_multilevel",
        "Multi-level mining: pruning effectiveness vs group size",
        &[
            "group",
            "high_pruned",
            "low_pairs",
            "time(s)",
            "speedup_vs_flat",
            "subsets",
            "strong_recall",
        ],
    );
    let cfg = OceanConfig {
        nlon: 192,
        nlat: 144,
        ndepth: 2,
        ..Default::default()
    };
    let ocean = OceanModel::new(cfg.clone());
    let z = ZOrderLayout::new(&[cfg.nlon, cfg.nlat, cfg.ndepth]);
    let t = z.reorder(&ocean.variable("temperature"));
    let s = z.reorder(&ocean.variable("salinity"));
    let bt = Binner::fit(&t, 48);
    let bs = Binner::fit(&s, 48);
    let it = BitmapIndex::build(&t, bt);
    let is = BitmapIndex::build(&s, bs);
    let mining = MiningConfig {
        value_threshold: 0.004,
        spatial_threshold: 0.08,
        unit_size: 512,
    };

    let t0 = Instant::now();
    let flat = mine_index(&it, &is, &mining);
    let flat_t = t0.elapsed().as_secs_f64();
    fig.row(&[
        &1usize,
        &0usize,
        &flat.pairs_evaluated,
        &secs(flat_t),
        &"1.00x",
        &flat.subsets.len(),
        &"1.00",
    ]);

    for group in [2usize, 4, 8] {
        let mt = MultiLevelIndex::from_low(it.clone(), group);
        let ms = MultiLevelIndex::from_low(is.clone(), group);
        let t0 = Instant::now();
        let (r, stats) = mine_multilevel(&mt, &ms, &mining);
        let ml_t = t0.elapsed().as_secs_f64();
        // recall over the flat miner's strong subsets — coarsening can
        // dilute a fine pair below T, so the pruning trades recall for
        // work; the table quantifies that tradeoff.
        let strong: Vec<_> = flat.subsets.iter().filter(|s| s.spatial_mi > 0.4).collect();
        let kept = strong.iter().filter(|s| r.subsets.contains(s)).count();
        let recall = kept as f64 / strong.len().max(1) as f64;
        if group == 2 {
            assert!(recall >= 0.8, "group 2 recall collapsed: {recall}");
        }
        fig.row(&[
            &group,
            &stats.high_pairs_pruned,
            &stats.low_pairs_evaluated,
            &secs(ml_t),
            &speedup(flat_t, ml_t),
            &r.subsets.len(),
            &format!("{recall:.2}"),
        ]);
    }
    fig.finish();
}

/// Ablation E: compression codecs — WAH (word-aligned, the paper's choice)
/// vs a BBC-style byte-aligned code vs uncompressed bitsets: index size and
/// AND+popcount throughput on a real Heat3D time-step's bitvectors.
pub fn ablation_codec() {
    let mut fig = Figure::new(
        "ablation_codec",
        "Codec comparison on one Heat3D step's index",
        &["codec", "index(KB)", "vs_raw", "and_count_all_pairs(s)"],
    );
    let mut heat3d = heat3d_config();
    heat3d.nx /= 2;
    heat3d.ny /= 2;
    heat3d.nz /= 2;
    let mut sim = Heat3D::new(heat3d);
    sim.run(4); // let structure develop
    let data = sim.step().fields.remove(0).data;
    let binner = heat3d_binner();
    let raw_kb = (data.len() * 8) as f64 / 1024.0;
    let index = BitmapIndex::build(&data, binner.clone());
    let nonempty: Vec<usize> = (0..index.nbins())
        .filter(|&b| index.counts()[b] > 0)
        .collect();

    // WAH
    let wah_kb = index.size_bytes() as f64 / 1024.0;
    let t0 = Instant::now();
    let mut acc = 0u64;
    for &j in &nonempty {
        for &k in &nonempty {
            acc += index.bin(j).and_count(index.bin(k));
        }
    }
    let wah_t = t0.elapsed().as_secs_f64();
    fig.row(&[
        &"wah",
        &format!("{wah_kb:.1}"),
        &format!("{:.1}%", 100.0 * wah_kb / raw_kb),
        &secs(wah_t),
    ]);

    // BBC-style
    let bbc: Vec<BbcVec> = (0..index.nbins())
        .map(|b| BbcVec::from_bits(index.bin(b).iter_bits()))
        .collect();
    let bbc_kb = bbc.iter().map(BbcVec::size_bytes).sum::<usize>() as f64 / 1024.0;
    let t0 = Instant::now();
    let mut acc2 = 0u64;
    for &j in &nonempty {
        for &k in &nonempty {
            acc2 += bbc[j].and_count(&bbc[k]);
        }
    }
    let bbc_t = t0.elapsed().as_secs_f64();
    assert_eq!(acc, acc2, "codecs must agree");
    fig.row(&[
        &"bbc-style",
        &format!("{bbc_kb:.1}"),
        &format!("{:.1}%", 100.0 * bbc_kb / raw_kb),
        &secs(bbc_t),
    ]);

    // uncompressed
    let sets: Vec<Bitset> = (0..index.nbins())
        .map(|b| Bitset::from_bits(index.bin(b).iter_bits()))
        .collect();
    let raw_idx_kb = sets.iter().map(Bitset::size_bytes).sum::<usize>() as f64 / 1024.0;
    let t0 = Instant::now();
    let mut acc3 = 0u64;
    for &j in &nonempty {
        for &k in &nonempty {
            let mut x = sets[j].clone();
            x.and_assign(&sets[k]);
            acc3 += x.count_ones();
        }
    }
    let bs_t = t0.elapsed().as_secs_f64();
    assert_eq!(acc, acc3, "codecs must agree");
    fig.row(&[
        &"uncompressed",
        &format!("{raw_idx_kb:.1}"),
        &format!("{:.1}%", 100.0 * raw_idx_kb / raw_kb),
        &secs(bs_t),
    ]);
    fig.finish();
}
