//! Zero-dependency observability for the ibis workspace.
//!
//! The paper's claims are performance claims, and the runtime decisions
//! behind them (dense-vs-compressed kernel dispatch, bounded-queue
//! backpressure, retry/backoff, node failures) are exactly the things a
//! printline can't regress. This crate provides the smallest useful
//! substrate for recording them:
//!
//! - a sharded, lock-light [`MetricsRegistry`] holding monotonic
//!   [`Counter`]s, [`Gauge`]s (with a max watermark) and fixed-bucket
//!   [`Histogram`]s — registration takes a shard lock once, every update
//!   after that is a relaxed atomic;
//! - static handles ([`LazyCounter`], [`LazyGauge`], [`LazyHistogram`])
//!   that self-register in the [`global`] registry on first touch, so
//!   instrumentation sites are plain `static K: LazyCounter = ...` with no
//!   setup plumbing;
//! - RAII span timers ([`CounterSpan`], [`HistogramSpan`]) that add
//!   elapsed wall nanoseconds on drop;
//! - mergeable [`Snapshot`]s — merge is total, associative and
//!   commutative (counters add, gauge values add and watermarks take the
//!   max, histograms add bucket-wise; any kind or bucket-layout mismatch
//!   collapses to an absorbing [`MetricValue::Conflict`]) — with
//!   deterministic hand-rolled JSON serialization.
//!
//! # Feature gating
//!
//! With the `obs` feature (on by default) the handles talk to the global
//! registry. Built with `--no-default-features` every handle method is an
//! inline empty function and nothing ever registers: the instrumented
//! binary and the no-op binary must behave identically, which
//! `tests/obs_differential.rs` in the workspace root proves by comparing
//! store bytes and selections across both builds.
//!
//! Metric names are dot-separated, `family.component.metric`; the leading
//! segment is the *family* (`kernels`, `pipeline`, `store`, `cluster`,
//! `analysis`) used to group report sections. See DESIGN.md §6e.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
#[cfg(feature = "obs")]
use std::time::Instant;

/// `true` when this build records metrics (`obs` feature enabled).
pub const ENABLED: bool = cfg!(feature = "obs");

// ---------------------------------------------------------------------------
// metric primitives
// ---------------------------------------------------------------------------

/// A monotonic counter. Updates are relaxed atomics; within one process
/// the observed value never decreases (only [`MetricsRegistry::reset`],
/// a test affordance, zeroes it).
#[derive(Debug, Default)]
pub struct Counter {
    v: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.v.store(0, Ordering::Relaxed);
    }
}

/// A signed gauge with a high-water mark. `set`/`add` update the value and
/// fold it into the watermark, so `max` records the peak ever observed.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
    max: AtomicI64,
}

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the current value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Adjusts the current value by `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        let new = self.value.fetch_add(delta, Ordering::Relaxed) + delta;
        self.max.fetch_max(new, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts one.
    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Current value.
    pub fn value(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Highest value ever set (at least 0: the gauge starts at zero).
    pub fn max(&self) -> i64 {
        self.max.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// A fixed-bucket histogram. A recorded value lands in the first bucket
/// whose upper bound is `>= v`; values above every bound land in the
/// implicit overflow bucket, so there are `bounds.len() + 1` buckets.
#[derive(Debug)]
pub struct Histogram {
    bounds: Box<[u64]>,
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    /// A histogram over `bounds` (must be strictly increasing; this is
    /// the caller's contract, not re-checked on the hot path).
    pub fn new(bounds: &[u64]) -> Self {
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds: bounds.into(),
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        let idx = bucket_index(&self.bounds, v);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Merges a locally-accumulated bucket array in one atomic pass — the
    /// batch form of [`record`](Self::record) for hot loops that cannot
    /// afford per-observation atomics. `buckets[i]` counts observations
    /// bucketed with [`bucket_index`] over this histogram's bounds; `sum`
    /// is their value total. A length mismatch is ignored (observability
    /// must not panic the host).
    pub fn merge_counts(&self, buckets: &[u64], sum: u64) {
        if buckets.len() != self.buckets.len() {
            debug_assert!(false, "merge_counts: bucket layout mismatch");
            return;
        }
        let mut total = 0u64;
        for (slot, &n) in self.buckets.iter().zip(buckets) {
            if n > 0 {
                slot.fetch_add(n, Ordering::Relaxed);
                total += n;
            }
        }
        if total > 0 {
            self.count.fetch_add(total, Ordering::Relaxed);
            self.sum.fetch_add(sum, Ordering::Relaxed);
        }
    }

    /// The configured bucket upper bounds.
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Per-bucket observation counts (`bounds.len() + 1` entries, the
    /// last being the overflow bucket).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded values (wrapping at u64).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        for b in self.buckets.iter() {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
    }
}

/// The bucket a value falls into for the given bounds: the first bucket
/// whose upper bound is `>= v`, or the overflow bucket (`bounds.len()`).
/// Exposed so hot paths can bucket into a local array without atomics and
/// flush once via [`Histogram::merge_counts`].
#[inline]
pub fn bucket_index(bounds: &[u64], v: u64) -> usize {
    bounds.partition_point(|&b| b < v)
}

/// Exponential nanosecond bounds (1µs … ~1s) for latency histograms.
pub const TIME_NS_BOUNDS: &[u64] = &[
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
];

/// Power-of-two-ish bounds for WAH fill-run lengths in bits.
pub const RUN_BITS_BOUNDS: &[u64] = &[62, 248, 992, 7_936, 63_488, 507_904, 4_063_232];

// ---------------------------------------------------------------------------
// registry
// ---------------------------------------------------------------------------

const SHARD_COUNT: usize = 8;

enum Entry {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A sharded name → metric registry. Looking a metric up (or registering
/// it) locks one shard; the returned `Arc` is then updated lock-free, so
/// steady-state instrumentation never contends on the registry itself.
///
/// The first registration of a name fixes its kind (and, for histograms,
/// its bounds). A later request under the same name with a different kind
/// gets a detached metric that is never snapshotted — observability must
/// not panic the host program.
#[derive(Default)]
pub struct MetricsRegistry {
    shards: [Mutex<BTreeMap<String, Entry>>; SHARD_COUNT],
}

fn shard_of(name: &str) -> usize {
    // FNV-1a, folded into the shard count
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    (h % SHARD_COUNT as u64) as usize
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    fn shard(&self, name: &str) -> std::sync::MutexGuard<'_, BTreeMap<String, Entry>> {
        self.shards[shard_of(name)]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    /// The counter registered under `name`, creating it if absent.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut shard = self.shard(name);
        match shard
            .entry(name.to_string())
            .or_insert_with(|| Entry::Counter(Arc::new(Counter::new())))
        {
            Entry::Counter(c) => Arc::clone(c),
            _ => Arc::new(Counter::new()), // kind clash: detached
        }
    }

    /// The gauge registered under `name`, creating it if absent.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut shard = self.shard(name);
        match shard
            .entry(name.to_string())
            .or_insert_with(|| Entry::Gauge(Arc::new(Gauge::new())))
        {
            Entry::Gauge(g) => Arc::clone(g),
            _ => Arc::new(Gauge::new()),
        }
    }

    /// The histogram registered under `name`, creating it over `bounds`
    /// if absent (an existing histogram keeps its original bounds).
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Arc<Histogram> {
        let mut shard = self.shard(name);
        match shard
            .entry(name.to_string())
            .or_insert_with(|| Entry::Histogram(Arc::new(Histogram::new(bounds))))
        {
            Entry::Histogram(h) => Arc::clone(h),
            _ => Arc::new(Histogram::new(bounds)),
        }
    }

    /// A point-in-time copy of every registered metric. Internally this
    /// merges the per-shard views, which is well-defined because metric
    /// names are unique across shards.
    pub fn snapshot(&self) -> Snapshot {
        let mut entries = BTreeMap::new();
        for shard in &self.shards {
            let guard = shard.lock().unwrap_or_else(|e| e.into_inner());
            for (name, entry) in guard.iter() {
                let value = match entry {
                    Entry::Counter(c) => MetricValue::Counter(c.value()),
                    Entry::Gauge(g) => MetricValue::Gauge {
                        value: g.value(),
                        max: g.max(),
                    },
                    Entry::Histogram(h) => MetricValue::Histogram {
                        bounds: h.bounds().to_vec(),
                        buckets: h.bucket_counts(),
                        count: h.count(),
                        sum: h.sum(),
                    },
                };
                entries.insert(name.clone(), value);
            }
        }
        Snapshot { entries }
    }

    /// Zeroes every registered metric (registrations survive). Test-only
    /// affordance: it breaks the monotonicity contract of [`Counter`], so
    /// production code must never call it mid-run.
    pub fn reset(&self) {
        for shard in &self.shards {
            let guard = shard.lock().unwrap_or_else(|e| e.into_inner());
            for entry in guard.values() {
                match entry {
                    Entry::Counter(c) => c.reset(),
                    Entry::Gauge(g) => g.reset(),
                    Entry::Histogram(h) => h.reset(),
                }
            }
        }
    }
}

/// The process-wide registry all static handles register in.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

// ---------------------------------------------------------------------------
// snapshots
// ---------------------------------------------------------------------------

/// The value of one metric inside a [`Snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// A monotonic counter reading.
    Counter(u64),
    /// A gauge reading with its high-water mark.
    Gauge {
        /// Value at snapshot time.
        value: i64,
        /// Highest value observed.
        max: i64,
    },
    /// A histogram reading.
    Histogram {
        /// Bucket upper bounds.
        bounds: Vec<u64>,
        /// Per-bucket counts (`bounds.len() + 1`, last = overflow).
        buckets: Vec<u64>,
        /// Total observations.
        count: u64,
        /// Sum of observed values.
        sum: u64,
    },
    /// Two snapshots disagreed on a metric's kind or bucket layout. This
    /// value is *absorbing* under merge — merging anything into a
    /// conflict stays a conflict — which is what keeps merge associative
    /// and commutative while still being total.
    Conflict,
}

fn merge_value(a: &MetricValue, b: &MetricValue) -> MetricValue {
    use MetricValue::*;
    match (a, b) {
        (Counter(x), Counter(y)) => Counter(x + y),
        (Gauge { value: v1, max: m1 }, Gauge { value: v2, max: m2 }) => Gauge {
            value: v1 + v2,
            max: (*m1).max(*m2),
        },
        (
            Histogram {
                bounds: b1,
                buckets: k1,
                count: c1,
                sum: s1,
            },
            Histogram {
                bounds: b2,
                buckets: k2,
                count: c2,
                sum: s2,
            },
        ) if b1 == b2 && k1.len() == k2.len() => Histogram {
            bounds: b1.clone(),
            buckets: k1.iter().zip(k2).map(|(x, y)| x + y).collect(),
            count: c1 + c2,
            sum: s1.wrapping_add(*s2),
        },
        _ => Conflict,
    }
}

/// An immutable point-in-time view of a set of metrics, mergeable with
/// other snapshots (e.g. from other processes or run phases).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Snapshot {
    entries: BTreeMap<String, MetricValue>,
}

impl Snapshot {
    /// Builds a snapshot directly from entries (tests, external merges).
    pub fn from_entries(entries: BTreeMap<String, MetricValue>) -> Self {
        Snapshot { entries }
    }

    /// The metric name → value map, ordered by name.
    pub fn entries(&self) -> &BTreeMap<String, MetricValue> {
        &self.entries
    }

    /// The value recorded under `name`, if any.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries.get(name)
    }

    /// `true` when no metric was ever registered (the no-op build).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Merges two snapshots: union of names, values combined per kind
    /// (counters add, gauges add values / max watermarks, histograms add
    /// bucket-wise). Associative and commutative; kind mismatches become
    /// the absorbing [`MetricValue::Conflict`].
    pub fn merge(&self, other: &Snapshot) -> Snapshot {
        let mut entries = self.entries.clone();
        for (name, value) in &other.entries {
            entries
                .entry(name.clone())
                .and_modify(|mine| *mine = merge_value(mine, value))
                .or_insert_with(|| value.clone());
        }
        Snapshot { entries }
    }

    /// The metric families present: the leading dot-separated segment of
    /// each name (`"pipeline.queue.stall_ns"` → `"pipeline"`).
    pub fn families(&self) -> BTreeSet<String> {
        self.entries
            .keys()
            .map(|k| k.split('.').next().unwrap_or(k).to_string())
            .collect()
    }

    /// Serializes to the workspace's hand-rolled JSON style: one object
    /// with `counters`, `gauges`, `histograms` and `conflicts` sections,
    /// names sorted, `indent` spaces of leading indentation per line.
    /// Deterministic for a given snapshot.
    pub fn to_json(&self, indent: usize) -> String {
        let pad = " ".repeat(indent);
        let inner = " ".repeat(indent + 2);
        let item = " ".repeat(indent + 4);
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut histograms = Vec::new();
        let mut conflicts = Vec::new();
        for (name, value) in &self.entries {
            match value {
                MetricValue::Counter(v) => counters.push(format!("{item}\"{name}\": {v}")),
                MetricValue::Gauge { value, max } => gauges.push(format!(
                    "{item}\"{name}\": {{ \"value\": {value}, \"max\": {max} }}"
                )),
                MetricValue::Histogram {
                    bounds,
                    buckets,
                    count,
                    sum,
                } => histograms.push(format!(
                    "{item}\"{name}\": {{ \"bounds\": {}, \"buckets\": {}, \"count\": {count}, \"sum\": {sum} }}",
                    json_u64_array(bounds),
                    json_u64_array(buckets),
                )),
                MetricValue::Conflict => conflicts.push(format!("{item}\"{name}\"")),
            }
        }
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!(
            "{inner}\"counters\": {{\n{}\n{inner}}},\n",
            counters.join(",\n")
        ));
        out.push_str(&format!(
            "{inner}\"gauges\": {{\n{}\n{inner}}},\n",
            gauges.join(",\n")
        ));
        out.push_str(&format!(
            "{inner}\"histograms\": {{\n{}\n{inner}}},\n",
            histograms.join(",\n")
        ));
        out.push_str(&format!(
            "{inner}\"conflicts\": [{}]\n",
            conflicts
                .iter()
                .map(|c| c.trim_start().to_string())
                .collect::<Vec<_>>()
                .join(", ")
        ));
        out.push_str(&format!("{pad}}}"));
        // empty sections render as `{\n\n}`; collapse to `{}`
        out.replace(&format!("{{\n\n{inner}}}"), "{}")
    }
}

fn json_u64_array(xs: &[u64]) -> String {
    let body = xs
        .iter()
        .map(|x| x.to_string())
        .collect::<Vec<_>>()
        .join(", ");
    format!("[{body}]")
}

// ---------------------------------------------------------------------------
// static handles — the instrumented variants
// ---------------------------------------------------------------------------

#[cfg(feature = "obs")]
mod handles {
    use super::*;

    /// A `static`-friendly counter handle that registers itself in the
    /// [`global`] registry on first use. With the `obs` feature off this
    /// type is an inert unit struct and every method is an empty inline
    /// function.
    pub struct LazyCounter {
        name: &'static str,
        cell: OnceLock<Arc<Counter>>,
    }

    impl LazyCounter {
        /// A handle for the metric `name` (not yet registered).
        pub const fn new(name: &'static str) -> Self {
            LazyCounter {
                name,
                cell: OnceLock::new(),
            }
        }

        fn get(&self) -> &Arc<Counter> {
            self.cell.get_or_init(|| global().counter(self.name))
        }

        /// Adds `n`.
        #[inline]
        pub fn add(&self, n: u64) {
            self.get().add(n);
        }

        /// Adds one.
        #[inline]
        pub fn inc(&self) {
            self.add(1);
        }

        /// Current value (0 in the no-op build).
        pub fn value(&self) -> u64 {
            self.get().value()
        }

        /// Starts an RAII span that adds elapsed wall nanoseconds to this
        /// counter when dropped.
        pub fn span(&self) -> CounterSpan {
            CounterSpan {
                target: Arc::clone(self.get()),
                start: Instant::now(),
            }
        }
    }

    /// A `static`-friendly gauge handle; see [`LazyCounter`].
    pub struct LazyGauge {
        name: &'static str,
        cell: OnceLock<Arc<Gauge>>,
    }

    impl LazyGauge {
        /// A handle for the metric `name` (not yet registered).
        pub const fn new(name: &'static str) -> Self {
            LazyGauge {
                name,
                cell: OnceLock::new(),
            }
        }

        fn get(&self) -> &Arc<Gauge> {
            self.cell.get_or_init(|| global().gauge(self.name))
        }

        /// Sets the value.
        #[inline]
        pub fn set(&self, v: i64) {
            self.get().set(v);
        }

        /// Adjusts the value by `delta`.
        #[inline]
        pub fn add(&self, delta: i64) {
            self.get().add(delta);
        }

        /// Adds one.
        #[inline]
        pub fn inc(&self) {
            self.add(1);
        }

        /// Subtracts one.
        #[inline]
        pub fn dec(&self) {
            self.add(-1);
        }

        /// Current value (0 in the no-op build).
        pub fn value(&self) -> i64 {
            self.get().value()
        }

        /// Highest value observed (0 in the no-op build).
        pub fn max(&self) -> i64 {
            self.get().max()
        }
    }

    /// A `static`-friendly histogram handle; see [`LazyCounter`].
    pub struct LazyHistogram {
        name: &'static str,
        bounds: &'static [u64],
        cell: OnceLock<Arc<Histogram>>,
    }

    impl LazyHistogram {
        /// A handle for the metric `name` over `bounds`.
        pub const fn new(name: &'static str, bounds: &'static [u64]) -> Self {
            LazyHistogram {
                name,
                bounds,
                cell: OnceLock::new(),
            }
        }

        fn get(&self) -> &Arc<Histogram> {
            self.cell
                .get_or_init(|| global().histogram(self.name, self.bounds))
        }

        /// Records one observation.
        #[inline]
        pub fn record(&self, v: u64) {
            self.get().record(v);
        }

        /// Merges a locally-accumulated bucket array; see
        /// [`Histogram::merge_counts`].
        #[inline]
        pub fn merge_counts(&self, buckets: &[u64], sum: u64) {
            self.get().merge_counts(buckets, sum);
        }

        /// Total observations (0 in the no-op build).
        pub fn count(&self) -> u64 {
            self.get().count()
        }

        /// Starts an RAII span that records elapsed wall nanoseconds into
        /// this histogram when dropped.
        pub fn span(&self) -> HistogramSpan {
            HistogramSpan {
                target: Arc::clone(self.get()),
                start: Instant::now(),
            }
        }
    }

    /// RAII timer: adds elapsed wall nanoseconds to a counter on drop.
    #[must_use = "a span records on drop; binding it to _ measures nothing"]
    pub struct CounterSpan {
        target: Arc<Counter>,
        start: Instant,
    }

    impl Drop for CounterSpan {
        fn drop(&mut self) {
            self.target.add(self.start.elapsed().as_nanos() as u64);
        }
    }

    /// RAII timer: records elapsed wall nanoseconds into a histogram on
    /// drop.
    #[must_use = "a span records on drop; binding it to _ measures nothing"]
    pub struct HistogramSpan {
        target: Arc<Histogram>,
        start: Instant,
    }

    impl Drop for HistogramSpan {
        fn drop(&mut self) {
            self.target.record(self.start.elapsed().as_nanos() as u64);
        }
    }
}

// ---------------------------------------------------------------------------
// static handles — the no-op variants (`--no-default-features`)
// ---------------------------------------------------------------------------

#[cfg(not(feature = "obs"))]
mod handles {
    /// No-op counter handle: every method is an inline empty function.
    pub struct LazyCounter;

    impl LazyCounter {
        /// A handle that records nothing.
        pub const fn new(_name: &'static str) -> Self {
            LazyCounter
        }

        /// Does nothing.
        #[inline(always)]
        pub fn add(&self, _n: u64) {}

        /// Does nothing.
        #[inline(always)]
        pub fn inc(&self) {}

        /// Always 0.
        pub fn value(&self) -> u64 {
            0
        }

        /// A span that measures nothing.
        pub fn span(&self) -> CounterSpan {
            CounterSpan
        }
    }

    /// No-op gauge handle.
    pub struct LazyGauge;

    impl LazyGauge {
        /// A handle that records nothing.
        pub const fn new(_name: &'static str) -> Self {
            LazyGauge
        }

        /// Does nothing.
        #[inline(always)]
        pub fn set(&self, _v: i64) {}

        /// Does nothing.
        #[inline(always)]
        pub fn add(&self, _delta: i64) {}

        /// Does nothing.
        #[inline(always)]
        pub fn inc(&self) {}

        /// Does nothing.
        #[inline(always)]
        pub fn dec(&self) {}

        /// Always 0.
        pub fn value(&self) -> i64 {
            0
        }

        /// Always 0.
        pub fn max(&self) -> i64 {
            0
        }
    }

    /// No-op histogram handle.
    pub struct LazyHistogram;

    impl LazyHistogram {
        /// A handle that records nothing.
        pub const fn new(_name: &'static str, _bounds: &'static [u64]) -> Self {
            LazyHistogram
        }

        /// Does nothing.
        #[inline(always)]
        pub fn record(&self, _v: u64) {}

        /// Does nothing.
        #[inline(always)]
        pub fn merge_counts(&self, _buckets: &[u64], _sum: u64) {}

        /// Always 0.
        pub fn count(&self) -> u64 {
            0
        }

        /// A span that measures nothing.
        pub fn span(&self) -> HistogramSpan {
            HistogramSpan
        }
    }

    /// No-op span.
    #[must_use]
    pub struct CounterSpan;

    /// No-op span.
    #[must_use]
    pub struct HistogramSpan;
}

pub use handles::{CounterSpan, HistogramSpan, LazyCounter, LazyGauge, LazyHistogram};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.value(), 42);
    }

    #[test]
    fn gauge_tracks_watermark() {
        let g = Gauge::new();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.value(), 1);
        assert_eq!(g.max(), 2);
        g.set(-5);
        assert_eq!(g.value(), -5);
        assert_eq!(g.max(), 2);
    }

    #[test]
    fn histogram_buckets_values() {
        let h = Histogram::new(&[10, 100]);
        for v in [1, 10, 11, 100, 101, 5000] {
            h.record(v);
        }
        assert_eq!(h.bucket_counts(), vec![2, 2, 2]);
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1 + 10 + 11 + 100 + 101 + 5000);
    }

    #[test]
    fn registry_returns_same_metric_and_snapshots() {
        let r = MetricsRegistry::new();
        r.counter("a.x").add(3);
        r.counter("a.x").add(4);
        r.gauge("b.y").set(7);
        r.histogram("c.z", &[1]).record(9);
        let snap = r.snapshot();
        assert_eq!(snap.get("a.x"), Some(&MetricValue::Counter(7)));
        assert_eq!(
            snap.get("b.y"),
            Some(&MetricValue::Gauge { value: 7, max: 7 })
        );
        assert_eq!(
            snap.families(),
            ["a", "b", "c"].iter().map(|s| s.to_string()).collect()
        );
        r.reset();
        assert_eq!(r.snapshot().get("a.x"), Some(&MetricValue::Counter(0)));
    }

    #[test]
    fn kind_clash_returns_detached_metric() {
        let r = MetricsRegistry::new();
        r.counter("dual").inc();
        let g = r.gauge("dual"); // clash: stays a counter in the registry
        g.set(99);
        assert_eq!(r.snapshot().get("dual"), Some(&MetricValue::Counter(1)));
    }

    #[test]
    fn merge_adds_counters_and_maxes_gauges() {
        let mut a = BTreeMap::new();
        a.insert("c".into(), MetricValue::Counter(2));
        a.insert("g".into(), MetricValue::Gauge { value: 1, max: 5 });
        let mut b = BTreeMap::new();
        b.insert("c".into(), MetricValue::Counter(3));
        b.insert("g".into(), MetricValue::Gauge { value: 2, max: 4 });
        b.insert("only_b".into(), MetricValue::Counter(9));
        let m = Snapshot::from_entries(a).merge(&Snapshot::from_entries(b));
        assert_eq!(m.get("c"), Some(&MetricValue::Counter(5)));
        assert_eq!(m.get("g"), Some(&MetricValue::Gauge { value: 3, max: 5 }));
        assert_eq!(m.get("only_b"), Some(&MetricValue::Counter(9)));
    }

    #[test]
    fn merge_conflict_is_absorbing() {
        let c = Snapshot::from_entries(
            [("m".to_string(), MetricValue::Counter(1))]
                .into_iter()
                .collect(),
        );
        let g = Snapshot::from_entries(
            [("m".to_string(), MetricValue::Gauge { value: 0, max: 0 })]
                .into_iter()
                .collect(),
        );
        let clash = c.merge(&g);
        assert_eq!(clash.get("m"), Some(&MetricValue::Conflict));
        assert_eq!(clash.merge(&c).get("m"), Some(&MetricValue::Conflict));
    }

    #[test]
    fn json_is_deterministic_and_sectioned() {
        let r = MetricsRegistry::new();
        r.counter("k.a").add(1);
        r.gauge("k.b").set(2);
        r.histogram("k.c", &[5]).record(3);
        let s1 = r.snapshot().to_json(0);
        let s2 = r.snapshot().to_json(0);
        assert_eq!(s1, s2);
        assert!(s1.contains("\"counters\""), "{s1}");
        assert!(s1.contains("\"k.a\": 1"), "{s1}");
        assert!(s1.contains("\"buckets\": [1, 0]"), "{s1}");
    }

    #[test]
    fn empty_snapshot_renders_empty_sections() {
        let s = Snapshot::default().to_json(0);
        assert!(s.contains("\"counters\": {}"), "{s}");
        assert!(s.contains("\"conflicts\": []"), "{s}");
    }

    #[cfg(feature = "obs")]
    #[test]
    fn lazy_handles_register_globally() {
        static PROBE: LazyCounter = LazyCounter::new("test.probe.lazy");
        PROBE.add(2);
        {
            let _span = PROBE.span();
        }
        assert!(PROBE.value() >= 2);
        assert!(global().snapshot().get("test.probe.lazy").is_some());
    }

    #[cfg(not(feature = "obs"))]
    #[test]
    fn noop_handles_record_nothing() {
        static PROBE: LazyCounter = LazyCounter::new("test.probe.noop");
        PROBE.add(2);
        assert_eq!(PROBE.value(), 0);
        assert!(global().snapshot().is_empty());
    }
}
